//! Workspace integration tests: the same update stream through independent
//! implementations must agree.

use dmpc::connectivity::DmpcConnectivity;
use dmpc::core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc::graph::streams::{self, Update};
use dmpc::graph::{DynamicGraph, UnionFind};
use dmpc::matching::DmpcMaximalMatching;
use dmpc::reduction::{ReducedConnectivity, ReducedMatching};

fn norm_partition(labels: &[u32]) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = map.len() as u32;
            *map.entry(l).or_insert(next)
        })
        .collect()
}

#[test]
fn dmpc_and_reduction_connectivity_agree() {
    let n = 36;
    let params = DmpcParams::new(n, 200);
    let mut dmpc = DmpcConnectivity::new(params);
    let mut reduced = ReducedConnectivity::new(n);
    let ups = streams::churn_stream(n, 70, 150, 0.5, 17);
    let mut g = DynamicGraph::new(n);
    for &u in &ups {
        match u {
            Update::Insert(e) => {
                g.insert(e).unwrap();
                dmpc.insert(e);
                reduced.insert(e);
            }
            Update::Delete(e) => {
                g.delete(e).unwrap();
                dmpc.delete(e);
                reduced.delete(e);
            }
        }
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(dmpc.connected(a, b), reduced.connected(a, b));
            }
        }
    }
    // And against union-find recomputation at the end.
    let mut uf = UnionFind::new(n);
    for e in g.edges() {
        uf.union(e.u, e.v);
    }
    let uf_labels: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
    assert_eq!(
        norm_partition(&dmpc.component_labels()),
        norm_partition(&uf_labels)
    );
}

#[test]
fn dmpc_and_reduction_matching_are_both_maximal() {
    let n = 32;
    let params = DmpcParams::new(n, 180);
    let mut dmpc = DmpcMaximalMatching::new(params);
    let mut reduced = ReducedMatching::new(n, 180);
    let ups = streams::churn_stream(n, 60, 120, 0.5, 23);
    let mut g = DynamicGraph::new(n);
    for &u in &ups {
        match u {
            Update::Insert(e) => {
                g.insert(e).unwrap();
                dmpc.insert(e);
                reduced.insert(e);
            }
            Update::Delete(e) => {
                g.delete(e).unwrap();
                dmpc.delete(e);
                reduced.delete(e);
            }
        }
    }
    for m in [dmpc.matching(), reduced.matching()] {
        assert!(dmpc::graph::matching::is_valid_matching(&g, &m));
        assert!(dmpc::graph::matching::is_maximal_matching(&g, &m));
    }
    // Both are 2-approximations, so they differ by at most a factor 2.
    let (a, b) = (dmpc.matching().size(), reduced.matching().size());
    assert!(2 * a >= b && 2 * b >= a);
}

#[test]
fn simulator_parallel_backend_is_identical() {
    // Same stream, serial vs parallel stepping: identical metrics.
    let n = 24;
    let params = DmpcParams::new(n, 120);
    let ups = streams::tree_churn_stream(n, 40, 3);
    let run = |_parallel: bool| -> Vec<(usize, usize, usize)> {
        let mut alg = DmpcConnectivity::new(params);
        ups.iter()
            .map(|&u| {
                let m = alg.apply(u);
                (m.rounds, m.max_active_machines, m.max_words_per_round)
            })
            .collect()
    };
    assert_eq!(run(false), run(true));
}
