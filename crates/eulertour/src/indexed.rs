//! The paper's indexed Euler-tour representation (Section 5).
//!
//! Every vertex stores the set of tour positions at which it appears; all
//! structural updates are O(1)-word-describable arithmetic maps over those
//! positions. [`TourOp`] is exactly the message a machine receives in the
//! distributed algorithm; [`IndexedForest`] applies the ops over a whole
//! graph and is used both sequentially and as the per-machine kernel.
//!
//! **Paper erratum.** The paper's insert splices the absorbed tour right
//! after `f(x)`. When `x` is the root of its tree (`f(x) = 1`) that splice
//! point falls *inside* the pair `(x, first-child)` and the result is no
//! longer an Euler walk; worse, a later `delete` would remove the wrong two
//! parent appearances (our differential property test found this). We
//! therefore splice at position 0 when `x` is the root — the new subtree
//! becomes the root's first child — which is the unique walk-preserving
//! extension and coincides with the paper's formulas for every non-root `x`
//! (the worked Figure 1 example, where `x = g` is not a root, is unaffected).
//! The splice position remains a single word in the broadcast message.

use crate::explicit::ExplicitTour;
use crate::TourIx;
use dmpc_graph::{Edge, V};
use std::collections::{HashMap, HashSet};

/// Component identifier (fresh ids are allocated when a tree is split).
pub type CompId = u32;

/// The reroot index map: `i <- ((i + elen - l_y) mod elen) + 1`.
/// Callers must skip the reroot when `y` is already the root, as the paper
/// does ("we first make y the root ... if it is not already").
pub fn map_reroot(i: TourIx, elen: TourIx, l_y: TourIx) -> TourIx {
    debug_assert!(i >= 1 && i <= elen && l_y <= elen);
    ((i + elen - l_y) % elen) + 1
}

/// An O(1)-word description of a tour update, broadcast to all machines;
/// each machine applies it to its locally stored vertices via
/// [`apply_op_to_vertex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TourOp {
    /// Reroot component `comp` (tour length `elen`) at the vertex `y` whose
    /// last appearance is `l_y`.
    Reroot {
        /// Component being rerooted.
        comp: CompId,
        /// Tour length of the component.
        elen: TourIx,
        /// `l(y)` before the reroot.
        l_y: TourIx,
        /// The new root (for assertions/debugging only).
        y: V,
    },
    /// Splice component `b` — already rerooted at `y` — into component `a`
    /// just after `f(x)`; the merged component keeps id `a`.
    Link {
        /// Surviving component (contains `x`).
        a: CompId,
        /// Absorbed component (contains `y`).
        b: CompId,
        /// Endpoint in `a`.
        x: V,
        /// Endpoint in `b` (root of `b`).
        y: V,
        /// Splice position in `a`'s tour: `f(x)`, or 0 when `x` is the root
        /// of `a` (including the singleton case) — see the module docs.
        fx: TourIx,
        /// Tour length of `b` (0 when `b` is a singleton).
        elen_b: TourIx,
    },
    /// Remove tree edge `(x, y)` where `x` is the parent; the subtree of `y`
    /// (positions `fy..=ly`) becomes component `new_comp`.
    Cut {
        /// Component being split.
        comp: CompId,
        /// Parent endpoint.
        x: V,
        /// Child endpoint.
        y: V,
        /// `f(y)` before the cut.
        fy: TourIx,
        /// `l(y)` before the cut.
        ly: TourIx,
        /// Fresh id for the detached component.
        new_comp: CompId,
    },
}

/// Applies `op` to one vertex's state: its component id and sorted index
/// list. Returns the vertex's (possibly new) component id.
///
/// This function is the entire per-machine work of the distributed
/// connectivity algorithm: O(1) words of control information transform any
/// number of locally stored indexes.
pub fn apply_op_to_vertex(op: &TourOp, w: V, comp_w: CompId, idx: &mut Vec<TourIx>) -> CompId {
    match *op {
        TourOp::Reroot {
            comp, elen, l_y, ..
        } => {
            if comp_w == comp {
                for i in idx.iter_mut() {
                    *i = map_reroot(*i, elen, l_y);
                }
                idx.sort_unstable();
            }
            comp_w
        }
        TourOp::Link {
            a,
            b,
            x,
            y,
            fx,
            elen_b,
        } => {
            if comp_w == b {
                for i in idx.iter_mut() {
                    *i += fx + 2;
                }
                if w == y {
                    idx.push(fx + 2);
                    idx.push(fx + elen_b + 3);
                }
                idx.sort_unstable();
                a
            } else if comp_w == a {
                for i in idx.iter_mut() {
                    if *i > fx {
                        *i += elen_b + 4;
                    }
                }
                if w == x {
                    idx.push(fx + 1);
                    idx.push(fx + elen_b + 4);
                }
                idx.sort_unstable();
                a
            } else {
                comp_w
            }
        }
        TourOp::Cut {
            comp,
            x,
            y,
            fy,
            ly,
            new_comp,
        } => {
            if comp_w != comp {
                return comp_w;
            }
            if w == x {
                idx.retain(|&i| i != fy - 1 && i != ly + 1);
            }
            if w == y {
                idx.retain(|&i| i != fy && i != ly);
            }
            // After dropping the four edge appearances, remaining indexes are
            // strictly inside (fy, ly) for the detached side and outside
            // [fy-1, ly+1] for the remaining side.
            let inside = idx.first().is_some_and(|&i| i > fy && i < ly);
            debug_assert!(
                idx.iter().all(|&i| (i > fy && i < ly) == inside),
                "indexes of {w} straddle the cut"
            );
            if inside {
                for i in idx.iter_mut() {
                    *i -= fy;
                }
                new_comp
            } else {
                let span = (ly - fy + 1) + 2;
                for i in idx.iter_mut() {
                    if *i > ly {
                        *i -= span;
                    }
                }
                // A vertex with no indexes left is a singleton; if it is the
                // child endpoint y it forms the new component by itself.
                if idx.is_empty() && w == y {
                    new_comp
                } else {
                    comp_w
                }
            }
        }
    }
}

/// A whole forest in the indexed representation: the sequential model of the
/// distributed state, and the ground-truth oracle for the machine-sharded
/// version.
#[derive(Clone, Debug)]
pub struct IndexedForest {
    comp: Vec<CompId>,
    idx: Vec<Vec<TourIx>>,
    members: HashMap<CompId, Vec<V>>,
    tree_edges: HashSet<Edge>,
    next_comp: CompId,
}

impl IndexedForest {
    /// `n` singleton components; vertex `v` starts in component `v`.
    pub fn new(n: usize) -> Self {
        IndexedForest {
            comp: (0..n as CompId).collect(),
            idx: vec![Vec::new(); n],
            members: (0..n as CompId).map(|v| (v, vec![v as V])).collect(),
            tree_edges: HashSet::new(),
            next_comp: n as CompId,
        }
    }

    /// Bulk-loads a tree (given by its edges and root) whose vertices are all
    /// currently singletons, using the canonical DFS tour. This mirrors the
    /// paper's preprocessing, which builds tours once and then maintains them
    /// incrementally. The merged component keeps the root's id.
    pub fn load_tree(&mut self, edges: &[Edge], root: V) {
        if edges.is_empty() {
            return;
        }
        let tour = ExplicitTour::from_tree(edges, root);
        let comp = self.comp[root as usize];
        let mut vs: Vec<V> = vec![root];
        for e in edges {
            for v in [e.u, e.v] {
                if v != root && self.comp[v as usize] != comp {
                    assert_eq!(
                        self.tree_size(v),
                        1,
                        "load_tree target vertex {v} is not a singleton"
                    );
                    vs.push(v);
                }
            }
        }
        vs.sort_unstable();
        vs.dedup();
        assert_eq!(vs.len(), edges.len() + 1, "edges must form a tree");
        for &v in &vs {
            let old = self.comp[v as usize];
            if old != comp {
                self.members.remove(&old);
            }
            self.comp[v as usize] = comp;
            self.idx[v as usize] = tour.indexes(v);
        }
        self.members.insert(comp, vs);
        for &e in edges {
            self.tree_edges.insert(e);
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.comp.len()
    }

    /// Component id of `v`.
    pub fn comp_of(&self, v: V) -> CompId {
        self.comp[v as usize]
    }

    /// True if `a` and `b` are in the same tree.
    pub fn connected(&self, a: V, b: V) -> bool {
        self.comp_of(a) == self.comp_of(b)
    }

    /// Number of vertices in `v`'s tree.
    pub fn tree_size(&self, v: V) -> usize {
        self.members[&self.comp_of(v)].len()
    }

    /// Vertices of `v`'s tree.
    pub fn tree_members(&self, v: V) -> &[V] {
        &self.members[&self.comp_of(v)]
    }

    /// Tour length of `v`'s tree: `4(|T|-1)`.
    pub fn elen(&self, v: V) -> TourIx {
        4 * (self.tree_size(v) as TourIx - 1)
    }

    /// First appearance of `v` (0 for singletons).
    pub fn f(&self, v: V) -> TourIx {
        self.idx[v as usize].first().copied().unwrap_or(0)
    }

    /// Last appearance of `v` (0 for singletons).
    pub fn l(&self, v: V) -> TourIx {
        self.idx[v as usize].last().copied().unwrap_or(0)
    }

    /// The sorted index list of `v`.
    pub fn indexes(&self, v: V) -> &[TourIx] {
        &self.idx[v as usize]
    }

    /// The tree edges currently present.
    pub fn tree_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.tree_edges.iter().copied()
    }

    /// Number of tree edges.
    pub fn n_tree_edges(&self) -> usize {
        self.tree_edges.len()
    }

    /// True if `(x,y)` is a tree edge.
    pub fn is_tree_edge(&self, e: Edge) -> bool {
        self.tree_edges.contains(&e)
    }

    /// True if `u` is an ancestor of `w` (including `u == w`) in their common
    /// tree, via the f/l nesting test the paper uses.
    pub fn is_ancestor(&self, u: V, w: V) -> bool {
        if u == w {
            return true;
        }
        if !self.connected(u, w) || self.tree_size(u) == 1 {
            return false;
        }
        self.f(u) <= self.f(w) && self.l(u) >= self.l(w)
    }

    /// For tree edge `e`, returns `(parent, child)` via span nesting.
    pub fn orient_tree_edge(&self, e: Edge) -> (V, V) {
        debug_assert!(self.is_tree_edge(e));
        if self.f(e.u) <= self.f(e.v) && self.l(e.u) >= self.l(e.v) {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        }
    }

    /// True if tree edge `e` lies on the tree path between `x` and `y`
    /// (the paper's Section 5.1 test: the child endpoint is an ancestor of
    /// exactly one of `x`, `y`).
    pub fn on_path(&self, e: Edge, x: V, y: V) -> bool {
        let (_, c) = self.orient_tree_edge(e);
        self.is_ancestor(c, x) ^ self.is_ancestor(c, y)
    }

    /// Applies an op to every member of the given components, rebuilding
    /// membership lists in linear time.
    fn apply_all(&mut self, op: &TourOp, comps: &[CompId]) {
        let affected: Vec<V> = comps
            .iter()
            .filter_map(|c| self.members.get(c))
            .flat_map(|vs| vs.iter().copied())
            .collect();
        let mut new_lists: HashMap<CompId, Vec<V>> = HashMap::new();
        for &w in &affected {
            let old = self.comp[w as usize];
            let new = apply_op_to_vertex(op, w, old, &mut self.idx[w as usize]);
            self.comp[w as usize] = new;
            new_lists.entry(new).or_default().push(w);
        }
        for c in comps {
            self.members.remove(c);
        }
        for (c, vs) in new_lists {
            self.members.insert(c, vs);
        }
    }

    /// The reroot op for rerooting `y`'s tree at `y`, or `None` when `y` is
    /// already the root or a singleton.
    pub fn reroot_op(&self, y: V) -> Option<TourOp> {
        let elen = self.elen(y);
        if elen == 0 || self.f(y) == 1 {
            return None;
        }
        Some(TourOp::Reroot {
            comp: self.comp_of(y),
            elen,
            l_y: self.l(y),
            y,
        })
    }

    /// Links two trees with new tree edge `(x,y)`. Returns the ops that were
    /// applied (reroot of `y`'s side, if any, then the link) so callers can
    /// mirror them onto distributed state. Panics if already connected.
    pub fn link(&mut self, x: V, y: V) -> Vec<TourOp> {
        assert!(!self.connected(x, y), "link would create a cycle");
        let mut ops = Vec::new();
        if let Some(op) = self.reroot_op(y) {
            self.apply_all(&op, &[self.comp_of(y)]);
            ops.push(op);
        }
        // Erratum fix (see module docs): splice at 0 when x is the root.
        let fx = if self.f(x) <= 1 { 0 } else { self.f(x) };
        let op = TourOp::Link {
            a: self.comp_of(x),
            b: self.comp_of(y),
            x,
            y,
            fx,
            elen_b: self.elen(y),
        };
        self.apply_all(&op, &[self.comp_of(x), self.comp_of(y)]);
        ops.push(op);
        self.tree_edges.insert(Edge::new(x, y));
        ops
    }

    /// Cuts tree edge `(x,y)`; the child side gets a fresh component id.
    /// Returns the applied op. Panics if `(x,y)` is not a tree edge.
    pub fn cut(&mut self, x: V, y: V) -> TourOp {
        let e = Edge::new(x, y);
        let (p, c) = self.orient_tree_edge(e);
        assert!(self.tree_edges.remove(&e), "({x},{y}) is not a tree edge");
        let new_comp = self.next_comp;
        self.next_comp += 1;
        let op = TourOp::Cut {
            comp: self.comp_of(p),
            x: p,
            y: c,
            fy: self.f(c),
            ly: self.l(c),
            new_comp,
        };
        self.apply_all(&op, &[self.comp_of(p)]);
        op
    }

    /// Full structural audit: each component's index lists partition
    /// `1..=4(k-1)` and each vertex's index count equals twice its tree
    /// degree. Used by property tests.
    pub fn verify(&self) -> Result<(), String> {
        let mut deg: HashMap<V, usize> = HashMap::new();
        for e in &self.tree_edges {
            *deg.entry(e.u).or_default() += 1;
            *deg.entry(e.v).or_default() += 1;
        }
        for (&c, vs) in &self.members {
            let k = vs.len() as TourIx;
            let elen = 4 * (k - 1);
            let mut seen = vec![false; elen as usize + 1];
            for &v in vs {
                if self.comp[v as usize] != c {
                    return Err(format!("member list of {c} contains stray {v}"));
                }
                let d = deg.get(&v).copied().unwrap_or(0);
                if self.idx[v as usize].len() != 2 * d {
                    return Err(format!(
                        "vertex {v}: {} indexes but tree degree {d}",
                        self.idx[v as usize].len()
                    ));
                }
                for &i in &self.idx[v as usize] {
                    if i < 1 || i > elen {
                        return Err(format!("vertex {v}: index {i} out of 1..={elen}"));
                    }
                    if seen[i as usize] {
                        return Err(format!("index {i} appears twice in component {c}"));
                    }
                    seen[i as usize] = true;
                }
            }
            if seen[1..].iter().any(|&s| !s) {
                return Err(format!("component {c}: missing tour positions"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1's forest loaded canonically: a=0..g=6; tree1 rooted b with
    /// edges (b,c),(c,d),(b,e); tree2 rooted a with (a,f),(f,g).
    fn fig1_forest() -> IndexedForest {
        let mut fo = IndexedForest::new(7);
        fo.load_tree(&[Edge::new(1, 2), Edge::new(2, 3), Edge::new(1, 4)], 1);
        fo.load_tree(&[Edge::new(0, 5), Edge::new(5, 6)], 0);
        fo
    }

    #[test]
    fn figure1_initial_brackets() {
        let fo = fig1_forest();
        assert_eq!((fo.f(1), fo.l(1)), (1, 12));
        assert_eq!((fo.f(2), fo.l(2)), (2, 7));
        assert_eq!((fo.f(3), fo.l(3)), (4, 5));
        assert_eq!((fo.f(4), fo.l(4)), (10, 11));
        assert_eq!((fo.f(0), fo.l(0)), (1, 8));
        assert_eq!((fo.f(5), fo.l(5)), (2, 7));
        assert_eq!((fo.f(6), fo.l(6)), (4, 5));
        fo.verify().unwrap();
    }

    #[test]
    fn figure1_link_e_g() {
        let mut fo = fig1_forest();
        // insert (e,g): x=g (tree 2), y=e (tree 1). The reroot of tree 1 at e
        // reproduces Figure 1(ii); the link reproduces Figure 1(iii).
        let ops = fo.link(6, 4);
        assert_eq!(ops.len(), 2, "reroot then link");
        assert_eq!((fo.f(0), fo.l(0)), (1, 24));
        assert_eq!((fo.f(5), fo.l(5)), (2, 23));
        assert_eq!((fo.f(6), fo.l(6)), (4, 21));
        assert_eq!((fo.f(4), fo.l(4)), (6, 19));
        assert_eq!((fo.f(1), fo.l(1)), (8, 17));
        assert_eq!((fo.f(2), fo.l(2)), (10, 15));
        assert_eq!((fo.f(3), fo.l(3)), (12, 13));
        assert!(fo.connected(0, 3));
        fo.verify().unwrap();
    }

    #[test]
    fn figure2_cut_a_b() {
        // Figure 2's tree: a root; b (children c->d, e); f (child g).
        let mut fo = IndexedForest::new(7);
        fo.load_tree(
            &[
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(1, 4),
                Edge::new(0, 5),
                Edge::new(5, 6),
            ],
            0,
        );
        assert_eq!((fo.f(0), fo.l(0)), (1, 24));
        assert_eq!((fo.f(1), fo.l(1)), (2, 15));
        fo.cut(0, 1);
        assert!(!fo.connected(0, 1));
        assert_eq!((fo.f(1), fo.l(1)), (1, 12));
        assert_eq!((fo.f(2), fo.l(2)), (2, 7));
        assert_eq!((fo.f(3), fo.l(3)), (4, 5));
        assert_eq!((fo.f(4), fo.l(4)), (10, 11));
        assert_eq!((fo.f(0), fo.l(0)), (1, 8));
        assert_eq!((fo.f(5), fo.l(5)), (2, 7));
        assert_eq!((fo.f(6), fo.l(6)), (4, 5));
        fo.verify().unwrap();
    }

    #[test]
    fn ancestor_and_path_tests() {
        let mut fo = IndexedForest::new(6);
        fo.load_tree(
            &[
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(1, 4),
            ],
            0,
        );
        assert!(fo.is_ancestor(0, 3));
        assert!(fo.is_ancestor(1, 4));
        assert!(!fo.is_ancestor(4, 3));
        assert!(!fo.is_ancestor(3, 0));
        assert!(fo.is_ancestor(2, 2));
        assert!(!fo.is_ancestor(0, 5));
        // Path from 3 to 4 uses (2,3),(1,2),(1,4) but not (0,1).
        assert!(fo.on_path(Edge::new(2, 3), 3, 4));
        assert!(fo.on_path(Edge::new(1, 2), 3, 4));
        assert!(fo.on_path(Edge::new(1, 4), 3, 4));
        assert!(!fo.on_path(Edge::new(0, 1), 3, 4));
    }

    #[test]
    fn singleton_edge_cases() {
        let mut fo = IndexedForest::new(3);
        fo.link(0, 1);
        assert_eq!(fo.indexes(0), &[1, 4]);
        assert_eq!(fo.indexes(1), &[2, 3]);
        fo.cut(0, 1);
        assert!(fo.indexes(0).is_empty());
        assert!(fo.indexes(1).is_empty());
        assert!(!fo.connected(0, 1));
        assert_eq!(fo.tree_size(0), 1);
        fo.verify().unwrap();
        fo.link(1, 0);
        assert!(fo.connected(0, 1));
        fo.verify().unwrap();
    }

    #[test]
    fn link_at_root_keeps_bracket_structure() {
        // Splicing at the root exercises the paper's f(x)=1 corner; with the
        // erratum fix the result remains a valid Euler walk and later cuts
        // stay consistent.
        let mut fo = IndexedForest::new(4);
        fo.link(0, 1);
        fo.link(0, 2);
        fo.link(0, 3);
        fo.verify().unwrap();
        assert!(fo.is_ancestor(0, 1));
        assert!(fo.is_ancestor(0, 2));
        assert!(fo.is_ancestor(0, 3));
        assert!(!fo.is_ancestor(1, 2));
        fo.cut(0, 2);
        fo.verify().unwrap();
        assert!(!fo.connected(0, 2));
        assert!(fo.connected(0, 3));
    }

    #[test]
    #[should_panic]
    fn link_same_component_panics() {
        let mut fo = IndexedForest::new(3);
        fo.link(0, 1);
        fo.link(1, 0);
        fo.link(0, 1);
    }

    #[test]
    #[should_panic]
    fn cut_non_tree_edge_panics() {
        let mut fo = IndexedForest::new(3);
        fo.link(0, 1);
        fo.cut(1, 2);
    }
}
