//! Explicit Euler tours by direct sequence splicing.
//!
//! This representation is the obviously-correct ground truth: `link`, `cut`
//! and `reroot` are literal sequence surgery. The distributed representation
//! ([`crate::indexed::IndexedForest`]) is differentially tested against it.

use crate::TourIx;
use dmpc_graph::{Edge, V};
use std::collections::{BTreeMap, BTreeSet};

/// An explicit E-tour of one tree: the sequence of endpoints of traversed
/// edges (each tree edge contributes four entries: two per direction).
/// Positions are 1-based in the API; a singleton tree has an empty sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplicitTour {
    seq: Vec<V>,
}

impl ExplicitTour {
    /// The empty tour of a singleton tree.
    pub fn singleton() -> Self {
        ExplicitTour { seq: Vec::new() }
    }

    /// Builds the canonical tour of the tree spanned by `edges` rooted at
    /// `root`, visiting children in increasing vertex order. Panics if the
    /// edges do not form a tree containing `root`.
    pub fn from_tree(edges: &[Edge], root: V) -> Self {
        let mut adj: BTreeMap<V, BTreeSet<V>> = BTreeMap::new();
        for e in edges {
            adj.entry(e.u).or_default().insert(e.v);
            adj.entry(e.v).or_default().insert(e.u);
        }
        let mut seq = Vec::with_capacity(4 * edges.len());
        // Iterative DFS emitting (parent, child) on the way down and
        // (child, parent) on the way up.
        let mut stack: Vec<(V, Option<V>, bool)> = vec![(root, None, false)];
        let mut visited: BTreeSet<V> = BTreeSet::new();
        while let Some((v, parent, expanded)) = stack.pop() {
            if expanded {
                if let Some(p) = parent {
                    seq.push(v);
                    seq.push(p);
                }
                continue;
            }
            if !visited.insert(v) {
                panic!("edges contain a cycle through {v}");
            }
            if let Some(p) = parent {
                seq.push(p);
                seq.push(v);
            }
            stack.push((v, parent, true));
            if let Some(children) = adj.get(&v) {
                // Reverse order so the smallest child is expanded first.
                for &c in children.iter().rev() {
                    if Some(c) != parent {
                        stack.push((c, Some(v), false));
                    }
                }
            }
        }
        assert_eq!(
            visited.len(),
            edges.len() + 1,
            "edges do not form a single tree containing the root"
        );
        ExplicitTour { seq }
    }

    /// Builds a tour directly from a 1-based sequence (for tests/figures).
    pub fn from_seq(seq: Vec<V>) -> Self {
        ExplicitTour { seq }
    }

    /// The sequence (position 1 is element 0).
    pub fn seq(&self) -> &[V] {
        &self.seq
    }

    /// Tour length `ELength = 4(|T|-1)`.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for the empty (singleton) tour.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Number of vertices of the underlying tree.
    pub fn tree_size(&self) -> usize {
        if self.seq.is_empty() {
            1
        } else {
            self.seq.len() / 4 + 1
        }
    }

    /// First appearance of `v` (1-based), or 0 if absent/singleton.
    pub fn f(&self, v: V) -> TourIx {
        self.seq
            .iter()
            .position(|&x| x == v)
            .map_or(0, |p| p as TourIx + 1)
    }

    /// Last appearance of `v` (1-based), or 0 if absent/singleton.
    pub fn l(&self, v: V) -> TourIx {
        self.seq
            .iter()
            .rposition(|&x| x == v)
            .map_or(0, |p| p as TourIx + 1)
    }

    /// All appearances of `v` (1-based, increasing).
    pub fn indexes(&self, v: V) -> Vec<TourIx> {
        self.seq
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x == v)
            .map(|(i, _)| i as TourIx + 1)
            .collect()
    }

    /// The root (first element), if the tree is not a singleton.
    pub fn root(&self) -> Option<V> {
        self.seq.first().copied()
    }

    /// Reroots the tour at `y`: rotates the sequence so that it starts with
    /// the edge from `y` to its former parent (the paper's index map
    /// `i <- ((i + ELen - l(y)) mod ELen) + 1`). A no-op if `y` is already
    /// the root or the tree is a singleton.
    pub fn reroot(&mut self, y: V) {
        if self.seq.is_empty() || self.root() == Some(y) {
            return;
        }
        let l = self.l(y);
        assert!(l > 0, "{y} not on tour");
        // New position of old index i is ((i + ELen - l) mod ELen) + 1, so
        // old 1-based index l lands at position 1: rotate left by l-1.
        self.seq.rotate_left(l as usize - 1);
    }

    /// Validity check: the sequence is a closed walk from its first vertex
    /// using each of `edges` exactly twice (once per direction), with edges
    /// listed as consecutive endpoint pairs.
    pub fn is_valid_for(&self, edges: &[Edge]) -> bool {
        if edges.is_empty() {
            return self.seq.is_empty();
        }
        if self.seq.len() != 4 * edges.len() {
            return false;
        }
        let set: BTreeSet<Edge> = edges.iter().copied().collect();
        let mut used: BTreeSet<(V, V)> = BTreeSet::new();
        let root = self.seq[0];
        let mut cur = root;
        for pair in self.seq.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a != cur || a == b || !set.contains(&Edge::new(a, b)) {
                return false;
            }
            if !used.insert((a, b)) {
                return false; // direction traversed twice
            }
            cur = b;
        }
        cur == root && used.len() == 2 * edges.len()
    }

    /// Links tree `other` (rooted anywhere) below vertex `x` of `self` via
    /// the new edge `(x, y)`, per the paper's `insert` splice:
    /// `A[1..=f(x)] ++ [x, y] ++ reroot(B, y) ++ [y, x] ++ A[f(x)+1..]`.
    ///
    /// Erratum handling: when `x` is the root of `self` (`f(x) = 1`), the
    /// paper's splice point would fall inside the pair `(x, first-child)`
    /// and break the walk; we splice at position 0 instead (the new subtree
    /// becomes the root's first child), which is the unique valid extension
    /// and coincides with the paper's formulas for every non-root `x`.
    pub fn link(&mut self, x: V, mut other: ExplicitTour, y: V) {
        let fx = self.f(x) as usize;
        if !self.seq.is_empty() {
            assert!(fx > 0, "{x} not in this tour");
        }
        let fx = if fx <= 1 { 0 } else { fx };
        other.reroot(y);
        let mut out = Vec::with_capacity(self.seq.len() + other.seq.len() + 4);
        out.extend_from_slice(&self.seq[..fx]);
        out.push(x);
        out.push(y);
        out.extend_from_slice(&other.seq);
        out.push(y);
        out.push(x);
        out.extend_from_slice(&self.seq[fx..]);
        self.seq = out;
    }

    /// Cuts the tree edge `(x, y)`; `self` keeps the side of the tour root
    /// and the detached side (rooted at the lower endpoint) is returned.
    pub fn cut(&mut self, x: V, y: V) -> ExplicitTour {
        // The lower endpoint is the one whose appearances nest inside the
        // other's.
        let (fx, lx, fy, ly) = (self.f(x), self.l(x), self.f(y), self.l(y));
        assert!(fx > 0 && fy > 0, "endpoints must be on the tour");
        let (child_f, child_l) = if fx <= fy && lx >= ly {
            (fy, ly)
        } else {
            assert!(fy <= fx && ly >= lx, "({x},{y}) endpoints unrelated");
            (fx, lx)
        };
        let (cf, cl) = (child_f as usize, child_l as usize);
        // The detached tour keeps positions f(y)+1 ..= l(y)-1: y's own
        // appearances at f(y) and l(y) belonged to the deleted edge.
        let detached = ExplicitTour {
            seq: self.seq[cf..cl - 1].to_vec(),
        };
        let mut rest = Vec::with_capacity(self.seq.len() - (cl - cf + 1) - 2);
        rest.extend_from_slice(&self.seq[..cf - 2]);
        rest.extend_from_slice(&self.seq[cl + 1..]);
        self.seq = rest;
        detached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tree of Figure 1, tour 1: root b=1, children c=2 (child d=3), e=4.
    /// Vertex names: a=0,b=1,c=2,d=3,e=4,f=5,g=6.
    fn fig1_tree1() -> (Vec<Edge>, ExplicitTour) {
        let edges = vec![Edge::new(1, 2), Edge::new(2, 3), Edge::new(1, 4)];
        (edges.clone(), ExplicitTour::from_tree(&edges, 1))
    }

    #[test]
    fn builds_figure1_tour() {
        let (edges, t) = fig1_tree1();
        assert_eq!(t.seq(), &[1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1]);
        assert!(t.is_valid_for(&edges));
        assert_eq!(t.len(), 12);
        assert_eq!(t.tree_size(), 4);
        assert_eq!((t.f(1), t.l(1)), (1, 12));
        assert_eq!((t.f(2), t.l(2)), (2, 7));
        assert_eq!((t.f(3), t.l(3)), (4, 5));
        assert_eq!((t.f(4), t.l(4)), (10, 11));
    }

    #[test]
    fn reroot_matches_figure1_ii() {
        let (edges, mut t) = fig1_tree1();
        t.reroot(4); // reroot at e
        assert_eq!(t.seq(), &[4, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4]);
        assert!(t.is_valid_for(&edges));
        assert_eq!((t.f(4), t.l(4)), (1, 12));
        assert_eq!((t.f(1), t.l(1)), (2, 11));
        assert_eq!((t.f(2), t.l(2)), (4, 9));
        assert_eq!((t.f(3), t.l(3)), (6, 7));
    }

    #[test]
    fn reroot_at_root_is_noop() {
        let (_, mut t) = fig1_tree1();
        let before = t.clone();
        t.reroot(1);
        assert_eq!(t, before);
    }

    #[test]
    fn link_matches_figure1_iii() {
        // Tree 2: a=0 root, f=5, g=6; tour [a,f,f,g,g,f,f,a].
        let t2_edges = vec![Edge::new(0, 5), Edge::new(5, 6)];
        let mut t2 = ExplicitTour::from_tree(&t2_edges, 0);
        assert_eq!(t2.seq(), &[0, 5, 5, 6, 6, 5, 5, 0]);
        let (_, t1) = fig1_tree1();
        // Insert edge (e,g) = (4,6): x = g (in t2), y = e (in t1).
        t2.link(6, t1, 4);
        assert_eq!(
            t2.seq(),
            &[0, 5, 5, 6, 6, 4, 4, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 6, 6, 5, 5, 0]
        );
        assert_eq!((t2.f(0), t2.l(0)), (1, 24));
        assert_eq!((t2.f(5), t2.l(5)), (2, 23));
        assert_eq!((t2.f(6), t2.l(6)), (4, 21));
        assert_eq!((t2.f(4), t2.l(4)), (6, 19));
        assert_eq!((t2.f(1), t2.l(1)), (8, 17));
        assert_eq!((t2.f(2), t2.l(2)), (10, 15));
        assert_eq!((t2.f(3), t2.l(3)), (12, 13));
    }

    #[test]
    fn link_singletons() {
        let mut a = ExplicitTour::singleton();
        a.link(7, ExplicitTour::singleton(), 9);
        assert_eq!(a.seq(), &[7, 9, 9, 7]);
        assert!(a.is_valid_for(&[Edge::new(7, 9)]));
    }

    #[test]
    fn cut_matches_figure2() {
        // Figure 2 tree: a(0) root; children b(1), f(5); b's children c(2)
        // [child d(3)] and e(4); f's child g(6).
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(1, 4),
            Edge::new(0, 5),
            Edge::new(5, 6),
        ];
        let mut t = ExplicitTour::from_tree(&edges, 0);
        assert_eq!(
            t.seq(),
            &[0, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1, 1, 0, 0, 5, 5, 6, 6, 5, 5, 0]
        );
        let detached = t.cut(0, 1);
        // Figure 2(iii): tour 1 = [b,c,c,d,d,c,c,b,b,e,e,b], tour 2 = [a,f,f,g,g,f,f,a].
        assert_eq!(detached.seq(), &[1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1]);
        assert_eq!(t.seq(), &[0, 5, 5, 6, 6, 5, 5, 0]);
        assert_eq!((detached.f(1), detached.l(1)), (1, 12));
        assert_eq!((detached.f(2), detached.l(2)), (2, 7));
        assert_eq!((detached.f(3), detached.l(3)), (4, 5));
        assert_eq!((detached.f(4), detached.l(4)), (10, 11));
        assert_eq!((t.f(0), t.l(0)), (1, 8));
        assert_eq!((t.f(5), t.l(5)), (2, 7));
        assert_eq!((t.f(6), t.l(6)), (4, 5));
    }

    #[test]
    fn cut_leaf_leaves_singleton() {
        let edges = vec![Edge::new(0, 1)];
        let mut t = ExplicitTour::from_tree(&edges, 0);
        let d = t.cut(0, 1);
        assert!(t.is_empty());
        assert!(d.is_empty());
        assert_eq!(t.tree_size(), 1);
    }

    #[test]
    fn link_then_cut_roundtrip() {
        let (edges1, t1) = fig1_tree1();
        let mut t2 = ExplicitTour::from_tree(&[Edge::new(0, 5)], 0);
        t2.link(5, t1.clone(), 2);
        let mut all_edges = edges1.clone();
        all_edges.push(Edge::new(0, 5));
        all_edges.push(Edge::new(5, 2));
        assert!(t2.is_valid_for(&all_edges));
        let detached = t2.cut(5, 2);
        assert!(detached.is_valid_for(&edges1));
        assert!(t2.is_valid_for(&[Edge::new(0, 5)]));
        // The detached side is rooted at y = 2.
        assert_eq!(detached.root(), Some(2));
    }
}
