//! A sequence treap with parent pointers, order-statistic queries, and OR
//! aggregates over small flag sets.
//!
//! This is the balanced-sequence engine underneath the sequential Euler tour
//! trees ([`crate::ett`]): split *at a node* (no index needed), merge,
//! order comparison, and flag search — each O(log n) expected.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Node handle.
pub type NodeId = u32;
/// Sentinel for "no node".
pub const NIL: NodeId = u32::MAX;

struct Node<T> {
    val: T,
    prio: u64,
    left: NodeId,
    right: NodeId,
    parent: NodeId,
    size: u32,
    flags: u8,
    agg: u8,
}

/// An arena of treap nodes forming any number of disjoint sequences.
pub struct SeqTreap<T> {
    nodes: Vec<Node<T>>,
    free: Vec<NodeId>,
    rng: SmallRng,
}

impl<T> SeqTreap<T> {
    /// New arena; `seed` fixes the priority stream for reproducibility.
    pub fn new(seed: u64) -> Self {
        SeqTreap {
            nodes: Vec::new(),
            free: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// True when no nodes are allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocates a singleton sequence holding `val`.
    pub fn alloc(&mut self, val: T) -> NodeId {
        let prio = self.rng.gen();
        let node = Node {
            val,
            prio,
            left: NIL,
            right: NIL,
            parent: NIL,
            size: 1,
            flags: 0,
            agg: 0,
        };
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeId
        }
    }

    /// Frees a node. The node must be a detached singleton.
    pub fn dealloc(&mut self, x: NodeId) {
        let n = &self.nodes[x as usize];
        debug_assert!(n.left == NIL && n.right == NIL && n.parent == NIL);
        self.free.push(x);
    }

    /// The node's value.
    pub fn val(&self, x: NodeId) -> &T {
        &self.nodes[x as usize].val
    }

    fn size_of(&self, x: NodeId) -> u32 {
        if x == NIL {
            0
        } else {
            self.nodes[x as usize].size
        }
    }

    fn agg_of(&self, x: NodeId) -> u8 {
        if x == NIL {
            0
        } else {
            self.nodes[x as usize].agg
        }
    }

    fn pull(&mut self, x: NodeId) {
        let (l, r) = (self.nodes[x as usize].left, self.nodes[x as usize].right);
        let size = 1 + self.size_of(l) + self.size_of(r);
        let agg = self.nodes[x as usize].flags | self.agg_of(l) | self.agg_of(r);
        let n = &mut self.nodes[x as usize];
        n.size = size;
        n.agg = agg;
    }

    /// Root of the sequence containing `x` (walks parent pointers).
    pub fn root_of(&self, mut x: NodeId) -> NodeId {
        while self.nodes[x as usize].parent != NIL {
            x = self.nodes[x as usize].parent;
        }
        x
    }

    /// Length of the sequence rooted at `root`.
    pub fn seq_len(&self, root: NodeId) -> usize {
        self.size_of(root) as usize
    }

    /// Concatenates two sequences (given by their roots); returns new root.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let r = self.merge(ar, b);
            self.nodes[a as usize].right = r;
            self.nodes[r as usize].parent = a;
            self.pull(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let l = self.merge(a, bl);
            self.nodes[b as usize].left = l;
            self.nodes[l as usize].parent = b;
            self.pull(b);
            b
        }
    }

    /// Splits the sequence containing `x` into (everything before `x`,
    /// `x` and everything after). Returns the two roots (left may be NIL).
    pub fn split_before(&mut self, x: NodeId) -> (NodeId, NodeId) {
        // Detach x's left subtree: it is the innermost piece of the left part.
        let l = self.nodes[x as usize].left;
        if l != NIL {
            self.nodes[l as usize].parent = NIL;
        }
        self.nodes[x as usize].left = NIL;
        self.pull(x);
        let mut left_root = l;
        let mut right_root = x;
        let mut cur = x;
        let mut p = self.nodes[x as usize].parent;
        self.nodes[x as usize].parent = NIL;
        // Walk the original ancestor chain. Each ancestor has higher priority
        // than everything accumulated so far (all its descendants), so
        // re-rooting the accumulated part under it preserves the heap shape.
        while p != NIL {
            let pp = self.nodes[p as usize].parent;
            let was_right = self.nodes[p as usize].right == cur;
            if was_right {
                // p and its left subtree precede x.
                self.nodes[p as usize].right = left_root;
                if left_root != NIL {
                    self.nodes[left_root as usize].parent = p;
                }
                self.nodes[p as usize].parent = NIL;
                self.pull(p);
                left_root = p;
            } else {
                // p and its right subtree follow the right part.
                self.nodes[p as usize].left = right_root;
                if right_root != NIL {
                    self.nodes[right_root as usize].parent = p;
                }
                self.nodes[p as usize].parent = NIL;
                self.pull(p);
                right_root = p;
            }
            cur = p;
            p = pp;
        }
        (left_root, right_root)
    }

    /// Splits into (`x` and everything before, everything after `x`).
    pub fn split_after(&mut self, x: NodeId) -> (NodeId, NodeId) {
        let r = self.nodes[x as usize].right;
        if r != NIL {
            self.nodes[r as usize].parent = NIL;
        }
        self.nodes[x as usize].right = NIL;
        self.pull(x);
        let mut right_root = r;
        let mut left_root = x;
        let mut cur = x;
        let mut p = self.nodes[x as usize].parent;
        self.nodes[x as usize].parent = NIL;
        while p != NIL {
            let pp = self.nodes[p as usize].parent;
            let was_right = self.nodes[p as usize].right == cur;
            if was_right {
                self.nodes[p as usize].right = left_root;
                if left_root != NIL {
                    self.nodes[left_root as usize].parent = p;
                }
                self.nodes[p as usize].parent = NIL;
                self.pull(p);
                left_root = p;
            } else {
                self.nodes[p as usize].left = right_root;
                if right_root != NIL {
                    self.nodes[right_root as usize].parent = p;
                }
                self.nodes[p as usize].parent = NIL;
                self.pull(p);
                right_root = p;
            }
            cur = p;
            p = pp;
        }
        (left_root, right_root)
    }

    /// 0-based position of `x` within its sequence.
    pub fn index_of(&self, x: NodeId) -> usize {
        let mut idx = self.size_of(self.nodes[x as usize].left) as usize;
        let mut cur = x;
        let mut p = self.nodes[x as usize].parent;
        while p != NIL {
            if self.nodes[p as usize].right == cur {
                idx += self.size_of(self.nodes[p as usize].left) as usize + 1;
            }
            cur = p;
            p = self.nodes[p as usize].parent;
        }
        idx
    }

    /// True if `x` appears strictly before `y` (same sequence assumed).
    pub fn precedes(&self, x: NodeId, y: NodeId) -> bool {
        self.index_of(x) < self.index_of(y)
    }

    /// First node of the sequence rooted at `root`.
    pub fn first(&self, mut root: NodeId) -> NodeId {
        while self.nodes[root as usize].left != NIL {
            root = self.nodes[root as usize].left;
        }
        root
    }

    /// Last node of the sequence rooted at `root`.
    pub fn last(&self, mut root: NodeId) -> NodeId {
        while self.nodes[root as usize].right != NIL {
            root = self.nodes[root as usize].right;
        }
        root
    }

    /// Sets or clears flag bits on `x`, updating aggregates up to the root.
    pub fn set_flags(&mut self, x: NodeId, bits: u8, on: bool) {
        {
            let n = &mut self.nodes[x as usize];
            if on {
                n.flags |= bits;
            } else {
                n.flags &= !bits;
            }
        }
        let mut cur = x;
        while cur != NIL {
            self.pull(cur);
            cur = self.nodes[cur as usize].parent;
        }
    }

    /// The node's own flags.
    pub fn flags(&self, x: NodeId) -> u8 {
        self.nodes[x as usize].flags
    }

    /// Finds the leftmost node in `root`'s subtree whose flags contain `bit`.
    pub fn find_flag(&self, root: NodeId, bit: u8) -> Option<NodeId> {
        if root == NIL || self.agg_of(root) & bit == 0 {
            return None;
        }
        let mut cur = root;
        loop {
            let l = self.nodes[cur as usize].left;
            if l != NIL && self.agg_of(l) & bit != 0 {
                cur = l;
            } else if self.nodes[cur as usize].flags & bit != 0 {
                return Some(cur);
            } else {
                cur = self.nodes[cur as usize].right;
                debug_assert!(cur != NIL, "aggregate promised a flagged node");
            }
        }
    }

    /// In-order traversal of the sequence rooted at `root` (testing).
    pub fn in_order(&self, root: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let x = stack.pop().unwrap();
            out.push(x);
            cur = self.nodes[x as usize].right;
        }
        out
    }

    /// Structural audit of the sequence rooted at `root` (testing): parent
    /// pointers, sizes, aggregates, and heap order.
    pub fn check_invariants(&self, root: NodeId) -> Result<(), String> {
        if root == NIL {
            return Ok(());
        }
        if self.nodes[root as usize].parent != NIL {
            return Err("root has a parent".into());
        }
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            let n = &self.nodes[x as usize];
            let mut size = 1;
            let mut agg = n.flags;
            for c in [n.left, n.right] {
                if c != NIL {
                    let cn = &self.nodes[c as usize];
                    if cn.parent != x {
                        return Err(format!("child {c} parent mismatch"));
                    }
                    if cn.prio > n.prio {
                        return Err(format!("heap violation at {x}"));
                    }
                    size += cn.size;
                    agg |= cn.agg;
                    stack.push(c);
                }
            }
            if n.size != size {
                return Err(format!("size mismatch at {x}"));
            }
            if n.agg != agg {
                return Err(format!("agg mismatch at {x}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_seq(t: &mut SeqTreap<u32>, vals: &[u32]) -> (NodeId, Vec<NodeId>) {
        let ids: Vec<NodeId> = vals.iter().map(|&v| t.alloc(v)).collect();
        let mut root = NIL;
        for &id in &ids {
            root = t.merge(root, id);
        }
        (root, ids)
    }

    fn values(t: &SeqTreap<u32>, root: NodeId) -> Vec<u32> {
        t.in_order(root).iter().map(|&x| *t.val(x)).collect()
    }

    #[test]
    fn merge_preserves_order() {
        let mut t = SeqTreap::new(1);
        let (root, _) = build_seq(&mut t, &(0..100).collect::<Vec<_>>());
        assert_eq!(values(&t, root), (0..100).collect::<Vec<_>>());
        t.check_invariants(root).unwrap();
        assert_eq!(t.seq_len(root), 100);
    }

    #[test]
    fn split_before_every_position() {
        for pos in 0..20 {
            let mut t = SeqTreap::new(7);
            let (_, ids) = build_seq(&mut t, &(0..20).collect::<Vec<_>>());
            let (l, r) = t.split_before(ids[pos]);
            let lv = if l == NIL { vec![] } else { values(&t, l) };
            let rv = values(&t, r);
            assert_eq!(lv, (0..pos as u32).collect::<Vec<_>>());
            assert_eq!(rv, (pos as u32..20).collect::<Vec<_>>());
            t.check_invariants(l).ok();
            t.check_invariants(r).unwrap();
        }
    }

    #[test]
    fn split_after_every_position() {
        for pos in 0..20 {
            let mut t = SeqTreap::new(9);
            let (_, ids) = build_seq(&mut t, &(0..20).collect::<Vec<_>>());
            let (l, r) = t.split_after(ids[pos]);
            let lv = values(&t, l);
            let rv = if r == NIL { vec![] } else { values(&t, r) };
            assert_eq!(lv, (0..=pos as u32).collect::<Vec<_>>());
            assert_eq!(rv, (pos as u32 + 1..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn index_and_precedes() {
        let mut t = SeqTreap::new(3);
        let (_, ids) = build_seq(&mut t, &(0..50).collect::<Vec<_>>());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(t.index_of(id), i);
        }
        assert!(t.precedes(ids[3], ids[40]));
        assert!(!t.precedes(ids[40], ids[3]));
    }

    #[test]
    fn flags_and_find() {
        let mut t = SeqTreap::new(5);
        let (root, ids) = build_seq(&mut t, &(0..32).collect::<Vec<_>>());
        assert_eq!(t.find_flag(root, 1), None);
        t.set_flags(ids[17], 1, true);
        t.set_flags(ids[9], 1, true);
        let root = t.root_of(ids[0]);
        let hit = t.find_flag(root, 1).unwrap();
        assert_eq!(*t.val(hit), 9, "leftmost flagged node");
        t.set_flags(ids[9], 1, false);
        let root = t.root_of(ids[0]);
        assert_eq!(*t.val(t.find_flag(root, 1).unwrap()), 17);
        t.set_flags(ids[17], 1, false);
        let root = t.root_of(ids[0]);
        assert_eq!(t.find_flag(root, 1), None);
        t.check_invariants(root).unwrap();
    }

    #[test]
    fn split_merge_roundtrip_preserves_everything() {
        let mut t = SeqTreap::new(11);
        let (root, ids) = build_seq(&mut t, &(0..64).collect::<Vec<_>>());
        t.set_flags(ids[30], 2, true);
        let (a, b) = t.split_before(ids[32]);
        let joined = t.merge(a, b);
        assert_eq!(values(&t, joined), (0..64).collect::<Vec<_>>());
        assert_eq!(*t.val(t.find_flag(joined, 2).unwrap()), 30);
        assert_eq!(joined, t.root_of(ids[0]));
        assert_eq!(root, root); // silence unused
    }

    #[test]
    fn first_last() {
        let mut t = SeqTreap::new(13);
        let (root, _) = build_seq(&mut t, &[5, 6, 7, 8]);
        assert_eq!(*t.val(t.first(root)), 5);
        assert_eq!(*t.val(t.last(root)), 8);
    }

    #[test]
    fn alloc_reuses_freed_slots() {
        let mut t = SeqTreap::new(17);
        let a = t.alloc(1);
        assert_eq!(t.len(), 1);
        t.dealloc(a);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        let b = t.alloc(2);
        assert_eq!(a, b, "slot reused");
        assert_eq!(t.len(), 1);
    }
}
