//! The worked examples of the paper's Figures 1 and 2, exposed as reusable
//! scenarios. The unit tests here are the "golden" reproduction of both
//! figures; the `euler_tour_figures` example renders them.
//!
//! Vertex naming in both figures: `a=0, b=1, c=2, d=3, e=4, f=5, g=6`.

use crate::explicit::ExplicitTour;
use crate::indexed::IndexedForest;
use dmpc_graph::{Edge, V};

/// Human-readable name of a figure vertex.
pub fn vertex_name(v: V) -> char {
    (b'a' + v as u8) as char
}

/// Figure 1 tree 1: root `b`, edges (b,c), (c,d), (b,e).
pub fn fig1_tree1_edges() -> Vec<Edge> {
    vec![Edge::new(1, 2), Edge::new(2, 3), Edge::new(1, 4)]
}

/// Figure 1 tree 2: root `a`, edges (a,f), (f,g).
pub fn fig1_tree2_edges() -> Vec<Edge> {
    vec![Edge::new(0, 5), Edge::new(5, 6)]
}

/// Figure 2 tree: root `a`, edges (a,b), (b,c), (c,d), (b,e), (a,f), (f,g).
pub fn fig2_edges() -> Vec<Edge> {
    vec![
        Edge::new(0, 1),
        Edge::new(1, 2),
        Edge::new(2, 3),
        Edge::new(1, 4),
        Edge::new(0, 5),
        Edge::new(5, 6),
    ]
}

/// Figure 1 scenario, explicit representation. Returns the three stages:
/// (i) the initial two tours, (ii) tree 1 rerooted at `e`, (iii) after the
/// insertion of edge (e,g).
pub fn fig1_explicit() -> (Vec<ExplicitTour>, ExplicitTour, ExplicitTour) {
    let t1 = ExplicitTour::from_tree(&fig1_tree1_edges(), 1);
    let t2 = ExplicitTour::from_tree(&fig1_tree2_edges(), 0);
    let mut t1_rerooted = t1.clone();
    t1_rerooted.reroot(4);
    let mut merged = t2.clone();
    merged.link(6, t1.clone(), 4);
    (vec![t1, t2], t1_rerooted, merged)
}

/// Figure 2 scenario, explicit representation. Returns (i) the initial tour
/// and (iii) the two tours after deleting edge (a,b).
pub fn fig2_explicit() -> (ExplicitTour, ExplicitTour, ExplicitTour) {
    let t = ExplicitTour::from_tree(&fig2_edges(), 0);
    let mut remaining = t.clone();
    let detached = remaining.cut(0, 1);
    (t, detached, remaining)
}

/// Figure 1 scenario on the indexed (distributed-style) representation.
pub fn fig1_indexed() -> IndexedForest {
    let mut fo = IndexedForest::new(7);
    fo.load_tree(&fig1_tree1_edges(), 1);
    fo.load_tree(&fig1_tree2_edges(), 0);
    fo
}

/// Figure 2 scenario on the indexed representation.
pub fn fig2_indexed() -> IndexedForest {
    let mut fo = IndexedForest::new(7);
    fo.load_tree(&fig2_edges(), 0);
    fo
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 1(i): both tours and every bracket.
    #[test]
    fn golden_fig1_initial() {
        let (initial, _, _) = fig1_explicit();
        assert_eq!(initial[0].seq(), &[1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1]);
        assert_eq!(initial[1].seq(), &[0, 5, 5, 6, 6, 5, 5, 0]);
    }

    /// Paper Figure 1(ii): tree 1 rerooted at e.
    #[test]
    fn golden_fig1_reroot() {
        let (_, rerooted, _) = fig1_explicit();
        assert_eq!(rerooted.seq(), &[4, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4]);
    }

    /// Paper Figure 1(iii): the merged tour after inserting (e,g).
    #[test]
    fn golden_fig1_link() {
        let (_, _, merged) = fig1_explicit();
        assert_eq!(
            merged.seq(),
            &[0, 5, 5, 6, 6, 4, 4, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 6, 6, 5, 5, 0]
        );
    }

    /// Paper Figure 2(i) and (iii).
    #[test]
    fn golden_fig2_cut() {
        let (initial, detached, remaining) = fig2_explicit();
        assert_eq!(
            initial.seq(),
            &[0, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1, 1, 0, 0, 5, 5, 6, 6, 5, 5, 0]
        );
        assert_eq!(detached.seq(), &[1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1]);
        assert_eq!(remaining.seq(), &[0, 5, 5, 6, 6, 5, 5, 0]);
    }

    /// The indexed representation reproduces the explicit one on both
    /// figures, index set by index set.
    #[test]
    fn indexed_matches_explicit_fig1() {
        let mut fo = fig1_indexed();
        fo.link(6, 4);
        let (_, _, merged) = fig1_explicit();
        for v in 0..7 {
            assert_eq!(fo.indexes(v).to_vec(), merged.indexes(v), "vertex {v}");
        }
    }

    #[test]
    fn indexed_matches_explicit_fig2() {
        let mut fo = fig2_indexed();
        fo.cut(0, 1);
        let (_, detached, remaining) = fig2_explicit();
        for v in [1u32, 2, 3, 4] {
            assert_eq!(fo.indexes(v).to_vec(), detached.indexes(v), "vertex {v}");
        }
        for v in [0u32, 5, 6] {
            assert_eq!(fo.indexes(v).to_vec(), remaining.indexes(v), "vertex {v}");
        }
    }

    #[test]
    fn vertex_names() {
        assert_eq!(vertex_name(0), 'a');
        assert_eq!(vertex_name(6), 'g');
    }
}
