//! Euler tour machinery for the DMPC reproduction.
//!
//! The paper's Section 5 maintains, for every connected component, an Euler
//! tour ("E-tour") of a spanning tree, represented *implicitly*: each vertex
//! knows the set of tour indexes at which it appears, and updates are pure
//! arithmetic maps on those indexes that every machine can apply locally
//! after receiving an `O(1)`-word broadcast. This crate provides:
//!
//! * [`explicit::ExplicitTour`] — the tour as an explicit sequence, by direct
//!   splicing. Obviously correct; used as differential-testing ground truth
//!   and to render the paper's Figures 1 and 2.
//! * [`indexed::IndexedForest`] — the paper's index arithmetic (reroot, link,
//!   cut, ancestor tests, path-edge tests). This is the representation the
//!   distributed algorithm shards across machines.
//! * [`figures`] — the exact worked examples of the paper's Figures 1 and 2,
//!   used as golden tests and by the figure-reproduction example.
//! * [`treap`] / [`ett`] — a sequence treap with parent pointers and
//!   subtree aggregates, and Euler-tour trees built on it. These power the
//!   sequential Holm–de Lichtenberg–Thorup connectivity structure that the
//!   paper's Section 7 reduction consumes.
//!
//! Tour conventions (matching the paper): the tour of a tree `T` rooted at
//! `r` is the sequence of endpoints of traversed edges, each edge traversed
//! twice, so its length is `4(|T|-1)`; positions are 1-based; `f(v)`/`l(v)`
//! are the first/last positions of `v`. A singleton tree has an empty tour
//! and `f = l = 0`.
//!
//! # Example
//!
//! The explicit and indexed representations agree on `f`/`l` (the
//! differential test suite checks this over random operation streams):
//!
//! ```
//! use dmpc_eulertour::{ExplicitTour, IndexedForest};
//! use dmpc_graph::Edge;
//!
//! let edges = [Edge::new(0, 1), Edge::new(1, 2)]; // path 0-1-2
//! let explicit = ExplicitTour::from_tree(&edges, 0);
//! let mut forest = IndexedForest::new(3);
//! forest.load_tree(&edges, 0);
//!
//! assert_eq!(explicit.len(), 8); // 4(|T| - 1) tour positions
//! assert_eq!(forest.f(1), explicit.f(1));
//! assert_eq!(forest.l(1), explicit.l(1));
//! assert!(forest.connected(0, 2));
//! ```

pub mod ett;
pub mod explicit;
pub mod figures;
pub mod indexed;
pub mod treap;

pub use ett::EttForest;
pub use explicit::ExplicitTour;
pub use indexed::IndexedForest;

/// Tour index (1-based; 0 means "no appearance", i.e. a singleton vertex).
pub type TourIx = u64;
