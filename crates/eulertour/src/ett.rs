//! Sequential Euler tour trees over the sequence treap.
//!
//! Each tree's Euler tour is a treap sequence of *elements*: one self-loop
//! element per vertex (its permanent representative) and two directed arc
//! elements per tree edge. `link`/`cut`/`reroot` are O(log n) expected.
//!
//! Flag bits (used by the HDT connectivity structure in `dmpc-seqdyn`):
//! * [`EttForest::VERTEX_MARK`] — set on a vertex element to indicate "this
//!   vertex has incident non-tree edges at this level".
//! * [`EttForest::EDGE_MARK`] — set on the canonical arc of a tree edge to
//!   indicate "this tree edge has level exactly this forest's level".

use crate::treap::{NodeId, SeqTreap, NIL};
use dmpc_graph::{Edge, V};
use std::collections::HashMap;

/// An element of an Euler tour sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Elem {
    /// A vertex's permanent self-loop occurrence.
    Vert(V),
    /// A directed arc of a tree edge.
    Arc(V, V),
}

/// A forest of Euler tour trees on vertices `0..n`.
pub struct EttForest {
    treap: SeqTreap<Elem>,
    vnode: Vec<NodeId>,
    arcs: HashMap<(V, V), NodeId>,
}

impl EttForest {
    /// Flag bit marking vertices (see module docs).
    pub const VERTEX_MARK: u8 = 1;
    /// Flag bit marking canonical tree-edge arcs.
    pub const EDGE_MARK: u8 = 2;

    /// `n` singleton trees.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut treap = SeqTreap::new(seed);
        let vnode = (0..n as V).map(|v| treap.alloc(Elem::Vert(v))).collect();
        EttForest {
            treap,
            vnode,
            arcs: HashMap::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.vnode.len()
    }

    /// Treap root identifying `v`'s tree (stable only until the next
    /// structural update).
    pub fn tree_of(&self, v: V) -> NodeId {
        self.treap.root_of(self.vnode[v as usize])
    }

    /// True if `a` and `b` are in the same tree.
    pub fn connected(&self, a: V, b: V) -> bool {
        self.tree_of(a) == self.tree_of(b)
    }

    /// Number of vertices in `v`'s tree (a tree of k vertices has
    /// `3k-2` sequence elements: k self-loops + 2(k-1) arcs).
    pub fn tree_size(&self, v: V) -> usize {
        self.treap.seq_len(self.tree_of(v)).div_ceil(3)
    }

    /// True if `(u,v)` is a tree edge of this forest.
    pub fn has_edge(&self, u: V, v: V) -> bool {
        self.arcs.contains_key(&(u, v))
    }

    /// Rotates `v`'s tour so it begins at `v`'s self-loop element.
    pub fn reroot(&mut self, v: V) {
        let x = self.vnode[v as usize];
        let (a, b) = self.treap.split_before(x);
        self.treap.merge(b, a);
    }

    /// Links the trees of `u` and `v` with a new tree edge. Panics if they
    /// are already connected.
    pub fn link(&mut self, u: V, v: V) {
        assert!(!self.connected(u, v), "link({u},{v}) would create a cycle");
        self.reroot(u);
        self.reroot(v);
        let uv = self.treap.alloc(Elem::Arc(u, v));
        let vu = self.treap.alloc(Elem::Arc(v, u));
        self.arcs.insert((u, v), uv);
        self.arcs.insert((v, u), vu);
        let tu = self.tree_of(u);
        let tv = self.tree_of(v);
        // Tour(u) ++ (u,v) ++ Tour(v) ++ (v,u).
        let r = self.treap.merge(tu, uv);
        let r = self.treap.merge(r, tv);
        self.treap.merge(r, vu);
    }

    /// Cuts tree edge `(u,v)`. Panics if it is not a tree edge.
    pub fn cut(&mut self, u: V, v: V) {
        let a1 = self.arcs.remove(&(u, v)).expect("not a tree edge");
        let a2 = self.arcs.remove(&(v, u)).expect("not a tree edge");
        let (first, second) = if self.treap.precedes(a1, a2) {
            (a1, a2)
        } else {
            (a2, a1)
        };
        let (before, _rest) = self.treap.split_before(first);
        let (mid_with_arcs, after) = self.treap.split_after(second);
        // mid_with_arcs = [first, inner..., second]; strip both arcs.
        let (first_alone, mid) = self.treap.split_after(first);
        debug_assert_eq!(first_alone, first);
        let (inner, second_alone) = if mid == NIL {
            (NIL, NIL)
        } else {
            self.treap.split_before(second)
        };
        debug_assert!(mid == NIL || second_alone == second);
        let _ = inner; // inner subtree tour: one resulting tree
        let _ = mid_with_arcs;
        self.treap.merge(before, after);
        self.treap.dealloc(first);
        self.treap.dealloc(second);
    }

    /// Sets/clears the vertex mark on `v`.
    pub fn mark_vertex(&mut self, v: V, on: bool) {
        self.treap
            .set_flags(self.vnode[v as usize], Self::VERTEX_MARK, on);
    }

    /// True if `v` carries the vertex mark.
    pub fn vertex_marked(&self, v: V) -> bool {
        self.treap.flags(self.vnode[v as usize]) & Self::VERTEX_MARK != 0
    }

    /// Sets/clears the edge mark on tree edge `e` (canonical arc `u->v`).
    pub fn mark_edge(&mut self, e: Edge, on: bool) {
        let arc = *self.arcs.get(&(e.u, e.v)).expect("not a tree edge");
        self.treap.set_flags(arc, Self::EDGE_MARK, on);
    }

    /// Finds any marked vertex in `v`'s tree.
    pub fn find_marked_vertex(&self, v: V) -> Option<V> {
        let root = self.tree_of(v);
        self.treap
            .find_flag(root, Self::VERTEX_MARK)
            .map(|x| match *self.treap.val(x) {
                Elem::Vert(w) => w,
                Elem::Arc(..) => unreachable!("vertex mark on an arc"),
            })
    }

    /// Finds any marked tree edge in `v`'s tree.
    pub fn find_marked_edge(&self, v: V) -> Option<Edge> {
        let root = self.tree_of(v);
        self.treap
            .find_flag(root, Self::EDGE_MARK)
            .map(|x| match *self.treap.val(x) {
                Elem::Arc(a, b) => Edge::new(a, b),
                Elem::Vert(_) => unreachable!("edge mark on a vertex"),
            })
    }

    /// The vertices of `v`'s tree in tour order (O(k); testing and
    /// small-tree enumeration).
    pub fn tree_vertices(&self, v: V) -> Vec<V> {
        self.treap
            .in_order(self.tree_of(v))
            .into_iter()
            .filter_map(|x| match *self.treap.val(x) {
                Elem::Vert(w) => Some(w),
                Elem::Arc(..) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::UnionFind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn link_cut_basics() {
        let mut f = EttForest::new(5, 1);
        assert!(!f.connected(0, 1));
        assert_eq!(f.tree_size(0), 1);
        f.link(0, 1);
        f.link(1, 2);
        assert!(f.connected(0, 2));
        assert_eq!(f.tree_size(0), 3);
        assert!(f.has_edge(0, 1));
        f.cut(0, 1);
        assert!(!f.connected(0, 2));
        assert!(f.connected(1, 2));
        assert_eq!(f.tree_size(1), 2);
        assert_eq!(f.tree_size(0), 1);
    }

    #[test]
    fn cut_adjacent_arcs_leaf() {
        let mut f = EttForest::new(2, 2);
        f.link(0, 1);
        assert_eq!(f.tree_size(0), 2);
        f.cut(0, 1);
        assert_eq!(f.tree_size(0), 1);
        assert_eq!(f.tree_size(1), 1);
        // Re-link in the opposite direction.
        f.link(1, 0);
        assert!(f.connected(0, 1));
    }

    #[test]
    fn tree_vertices_enumeration() {
        let mut f = EttForest::new(6, 3);
        f.link(0, 1);
        f.link(1, 2);
        f.link(1, 3);
        let mut vs = f.tree_vertices(2);
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2, 3]);
        assert_eq!(f.tree_vertices(5), vec![5]);
    }

    #[test]
    fn marks_follow_structure() {
        let mut f = EttForest::new(6, 4);
        f.link(0, 1);
        f.link(1, 2);
        f.link(3, 4);
        f.mark_vertex(2, true);
        assert!(f.vertex_marked(2));
        assert_eq!(f.find_marked_vertex(0), Some(2));
        assert_eq!(f.find_marked_vertex(3), None);
        f.mark_edge(Edge::new(0, 1), true);
        assert_eq!(f.find_marked_edge(2), Some(Edge::new(0, 1)));
        // After cutting (1,2), vertex 2's mark leaves 0's tree.
        f.cut(1, 2);
        assert_eq!(f.find_marked_vertex(0), None);
        assert_eq!(f.find_marked_vertex(2), Some(2));
        f.mark_vertex(2, false);
        assert_eq!(f.find_marked_vertex(2), None);
    }

    #[test]
    fn randomized_against_union_find() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 24;
            let mut f = EttForest::new(n, trial);
            let mut edges: Vec<Edge> = Vec::new();
            for _ in 0..200 {
                let a = rng.gen_range(0..n as V);
                let b = rng.gen_range(0..n as V);
                if a == b {
                    continue;
                }
                if rng.gen_bool(0.7) {
                    if !f.connected(a, b) {
                        f.link(a, b);
                        edges.push(Edge::new(a, b));
                    }
                } else if !edges.is_empty() {
                    let i = rng.gen_range(0..edges.len());
                    let e = edges.swap_remove(i);
                    f.cut(e.u, e.v);
                }
                // Cross-check connectivity against a rebuilt union-find.
                let mut uf = UnionFind::new(n);
                for e in &edges {
                    uf.union(e.u, e.v);
                }
                for _ in 0..10 {
                    let x = rng.gen_range(0..n as V);
                    let y = rng.gen_range(0..n as V);
                    assert_eq!(f.connected(x, y), uf.same(x, y), "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn reroot_preserves_membership_and_size() {
        let mut f = EttForest::new(8, 7);
        for v in 1..8 {
            f.link(v - 1, v);
        }
        for v in 0..8 {
            f.reroot(v);
            assert_eq!(f.tree_size(0), 8);
            let mut vs = f.tree_vertices(3);
            vs.sort_unstable();
            assert_eq!(vs, (0..8).collect::<Vec<_>>());
        }
    }
}
