//! Differential property tests: the paper's index arithmetic
//! ([`IndexedForest`]) against literal sequence splicing
//! ([`ExplicitTour`]) and against union-find connectivity, over random
//! structural update sequences.

use dmpc_eulertour::indexed::CompId;
use dmpc_eulertour::{ExplicitTour, IndexedForest};
use dmpc_graph::{Edge, UnionFind, V};
use proptest::prelude::*;
use std::collections::HashMap;

/// A mirrored pair of representations driven by the same operations.
struct Mirror {
    indexed: IndexedForest,
    explicit: HashMap<CompId, ExplicitTour>,
}

impl Mirror {
    fn new(n: usize) -> Self {
        Mirror {
            indexed: IndexedForest::new(n),
            explicit: (0..n as CompId)
                .map(|c| (c, ExplicitTour::singleton()))
                .collect(),
        }
    }

    fn link(&mut self, x: V, y: V) {
        let (ca, cb) = (self.indexed.comp_of(x), self.indexed.comp_of(y));
        self.indexed.link(x, y);
        let tb = self.explicit.remove(&cb).unwrap();
        let ta = self.explicit.get_mut(&ca).unwrap();
        ta.link(x, tb, y);
    }

    fn cut(&mut self, x: V, y: V) {
        let ca = self.indexed.comp_of(x);
        self.indexed.cut(x, y);
        // The parent side always keeps `ca`; the child (detached) side gets
        // the fresh id.
        let (new_cx, new_cy) = (self.indexed.comp_of(x), self.indexed.comp_of(y));
        let child_comp = if new_cx == ca { new_cy } else { new_cx };
        assert_ne!(child_comp, ca);
        let detached = self.explicit.get_mut(&ca).unwrap().cut(x, y);
        self.explicit.insert(child_comp, detached);
    }

    fn check(&self) {
        self.indexed.verify().expect("indexed verify");
        for v in 0..self.indexed.n() as V {
            let comp = self.indexed.comp_of(v);
            let tour = &self.explicit[&comp];
            assert_eq!(
                self.indexed.indexes(v).to_vec(),
                tour.indexes(v),
                "vertex {v} index sets diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random link/cut sequences: the two representations stay identical and
    /// connectivity matches union-find recomputation.
    #[test]
    fn indexed_matches_explicit_random(ops in proptest::collection::vec((0u32..12, 0u32..12, any::<bool>()), 1..120)) {
        let n = 12usize;
        let mut m = Mirror::new(n);
        let mut edges: Vec<Edge> = Vec::new();
        for (a, b, ins) in ops {
            if a == b { continue; }
            let e = Edge::new(a, b);
            if ins {
                if !m.indexed.connected(a, b) {
                    m.link(a, b);
                    edges.push(e);
                    m.check();
                }
            } else if m.indexed.is_tree_edge(e) {
                m.cut(a, b);
                edges.retain(|&x| x != e);
                m.check();
            }
        }
        // Final connectivity cross-check.
        let mut uf = UnionFind::new(n);
        for e in &edges {
            uf.union(e.u, e.v);
        }
        for x in 0..n as V {
            for y in 0..n as V {
                prop_assert_eq!(m.indexed.connected(x, y), uf.same(x, y));
            }
        }
    }

    /// Ancestor tests agree with a BFS-computed parent relation.
    #[test]
    fn ancestor_matches_bfs(extra in 0usize..8, seed in 0u64..500) {
        let n = 16usize;
        let edges = dmpc_graph::generators::random_tree_plus(n, 0, seed);
        let _ = extra;
        let mut fo = IndexedForest::new(n);
        fo.load_tree(&edges, 0);
        // BFS parents from root 0.
        let g = dmpc_graph::DynamicGraph::from_edges(n, &edges);
        let mut parent = vec![u32::MAX; n];
        let mut order = vec![0u32];
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut qi = 0;
        while qi < order.len() {
            let x = order[qi];
            qi += 1;
            for y in g.neighbors(x) {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    parent[y as usize] = x;
                    order.push(y);
                }
            }
        }
        let is_anc = |u: V, w: V| {
            let mut cur = w;
            loop {
                if cur == u { return true; }
                if parent[cur as usize] == u32::MAX { return false; }
                cur = parent[cur as usize];
            }
        };
        for u in 0..n as V {
            for w in 0..n as V {
                prop_assert_eq!(fo.is_ancestor(u, w), is_anc(u, w), "u={} w={}", u, w);
            }
        }
    }
}
