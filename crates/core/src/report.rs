//! Plain-text table rendering for the bench binaries, plus a serde-free
//! plain-text serialization of [`BatchMetrics`] (no external deps).

use dmpc_mpc::{AggregateMetrics, BatchMetrics, QueryMetrics};

/// One row of a Table-1-style report.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Algorithm / problem name.
    pub name: String,
    /// Paper-claimed bounds (rounds, machines, communication), free text.
    pub claimed: (String, String, String),
    /// Measured aggregate.
    pub agg: AggregateMetrics,
    /// Optional batched-execution measurement on the same stream; rendered
    /// as an amortized-cost column when present.
    pub batch: Option<BatchMetrics>,
    /// Optional batched query-wave measurement against the final structure;
    /// rendered as an amortized rounds-per-query column when present.
    pub query: Option<QueryMetrics>,
}

/// Renders rows as an aligned plain-text table comparing paper claims with
/// measured worst cases. Rows carrying a [`TableRow::batch`] measurement get
/// an extra amortized rounds-per-update column; rows carrying a
/// [`TableRow::query`] measurement get an amortized rounds-per-query column.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let with_batch = rows.iter().any(|r| r.batch.is_some());
    let with_query = rows.iter().any(|r| r.query.is_some());
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut header = format!(
        "{:<26} | {:>14} | {:>9} | {:>16} | {:>10} | {:>16} | {:>12} | {:>5}",
        "problem",
        "claimed rounds",
        "rounds",
        "claimed machines",
        "machines",
        "claimed comm",
        "comm (words)",
        "viol"
    );
    if with_batch {
        header.push_str(&format!(" | {:>13}", "batch rnds/up"));
    }
    if with_query {
        header.push_str(&format!(" | {:>12}", "query rnds/q"));
    }
    header.push('\n');
    let width = header.len();
    out.push_str(&"-".repeat(width.saturating_sub(1)));
    out.push('\n');
    out.push_str(&header);
    out.push_str(&"-".repeat(width.saturating_sub(1)));
    out.push('\n');
    for r in rows {
        let mut line = format!(
            "{:<26} | {:>14} | {:>9} | {:>16} | {:>10} | {:>16} | {:>12} | {:>5}",
            r.name,
            r.claimed.0,
            r.agg.max_rounds,
            r.claimed.1,
            r.agg.max_active_machines,
            r.claimed.2,
            r.agg.max_words_per_round,
            r.agg.violations,
        );
        if with_batch {
            match &r.batch {
                Some(b) => line.push_str(&format!(" | {:>13.2}", b.amortized_rounds())),
                None => line.push_str(&format!(" | {:>13}", "-")),
            }
        }
        if with_query {
            match &r.query {
                Some(q) => line.push_str(&format!(" | {:>12.2}", q.amortized_rounds())),
                None => line.push_str(&format!(" | {:>12}", "-")),
            }
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

/// Serializes a [`BatchMetrics`] as one stable `key=value` line, e.g.
/// `updates=64 rounds=12 max_active=9 max_words=210 total_words=900
/// total_msgs=188 violations=0`. Serde-free by design: reports embed it
/// verbatim and [`batch_from_plain`] round-trips it.
pub fn batch_to_plain(b: &BatchMetrics) -> String {
    format!(
        "updates={} rounds={} max_active={} machines_touched={} max_words={} total_words={} total_msgs={} lost_words={} lost_msgs={} violations={} conflict_groups={} conflict_depth={} max_lanes={}",
        b.updates,
        b.rounds,
        b.max_active_machines,
        b.machines_touched,
        b.max_words_per_round,
        b.total_words,
        b.total_messages,
        b.lost_words,
        b.lost_messages,
        b.violations,
        b.conflict_groups,
        b.conflict_depth,
        b.max_lanes
    )
}

/// Parses the output of [`batch_to_plain`]. Missing keys default to zero
/// (today's readers accept shorter lines from older writers); unknown keys
/// are rejected, so growing the format is a breaking change for readers
/// this old — bump deliberately.
pub fn batch_from_plain(s: &str) -> Result<BatchMetrics, String> {
    let mut b = BatchMetrics::default();
    for tok in s.split_whitespace() {
        let (key, val) = tok
            .split_once('=')
            .ok_or_else(|| format!("malformed token {tok:?}"))?;
        let val: usize = val
            .parse()
            .map_err(|e| format!("bad value in {tok:?}: {e}"))?;
        match key {
            "updates" => b.updates = val,
            "rounds" => b.rounds = val,
            "max_active" => b.max_active_machines = val,
            "machines_touched" => b.machines_touched = val,
            "max_words" => b.max_words_per_round = val,
            "total_words" => b.total_words = val,
            "total_msgs" => b.total_messages = val,
            "lost_words" => b.lost_words = val,
            "lost_msgs" => b.lost_messages = val,
            "violations" => b.violations = val,
            "conflict_groups" => b.conflict_groups = val,
            "conflict_depth" => b.conflict_depth = val,
            "max_lanes" => b.max_lanes = val,
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    Ok(b)
}

/// Serializes a [`QueryMetrics`] as one stable `key=value` line (the
/// query-plane sibling of [`batch_to_plain`]); [`query_from_plain`]
/// round-trips it.
pub fn query_to_plain(q: &QueryMetrics) -> String {
    format!(
        "queries={} rounds={} max_active={} machines_touched={} max_words={} total_words={} total_msgs={} violations={}",
        q.queries,
        q.rounds,
        q.max_active_machines,
        q.machines_touched,
        q.max_words_per_round,
        q.total_words,
        q.total_messages,
        q.violations
    )
}

/// Parses the output of [`query_to_plain`]. Missing keys default to zero;
/// unknown keys are rejected (same forward-compatibility contract as
/// [`batch_from_plain`]).
pub fn query_from_plain(s: &str) -> Result<QueryMetrics, String> {
    let mut q = QueryMetrics::default();
    for tok in s.split_whitespace() {
        let (key, val) = tok
            .split_once('=')
            .ok_or_else(|| format!("malformed token {tok:?}"))?;
        let val: usize = val
            .parse()
            .map_err(|e| format!("bad value in {tok:?}: {e}"))?;
        match key {
            "queries" => q.queries = val,
            "rounds" => q.rounds = val,
            "max_active" => q.max_active_machines = val,
            "machines_touched" => q.machines_touched = val,
            "max_words" => q.max_words_per_round = val,
            "total_words" => q.total_words = val,
            "total_msgs" => q.total_messages = val,
            "violations" => q.violations = val,
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    Ok(q)
}

/// Renders a scaling sweep as `N, rounds, machines, words` rows plus fitted
/// slopes.
pub fn render_sweep(name: &str, sweep: &crate::experiment::ScalingSweep) -> String {
    let mut out = String::new();
    out.push_str(&format!("scaling of {name} (worst case per update)\n"));
    out.push_str(&format!(
        "{:>10} | {:>7} | {:>9} | {:>12}\n",
        "N", "rounds", "machines", "words/round"
    ));
    for p in &sweep.points {
        out.push_str(&format!(
            "{:>10} | {:>7} | {:>9} | {:>12}\n",
            p.input_size, p.agg.max_rounds, p.agg.max_active_machines, p.agg.max_words_per_round
        ));
    }
    out.push_str(&format!(
        "fitted exponents vs N: rounds {:+.3}, machines {:+.3}, words {:+.3}\n",
        sweep.rounds_slope(),
        sweep.machines_slope(),
        sweep.words_slope()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows() {
        let mut agg = AggregateMetrics::default();
        let m = dmpc_mpc::UpdateMetrics {
            rounds: 3,
            max_active_machines: 2,
            max_words_per_round: 40,
            ..Default::default()
        };
        agg.absorb(&m);
        let rows = vec![TableRow {
            name: "maximal matching".into(),
            claimed: ("O(1)".into(), "O(1)".into(), "O(sqrt N)".into()),
            agg,
            batch: None,
            query: None,
        }];
        let s = render_table("Table 1", &rows);
        assert!(s.contains("maximal matching"));
        assert!(s.contains("O(sqrt N)"));
        assert!(s.contains(" 3 "));
        assert!(!s.contains("batch rnds/up"));
        assert!(!s.contains("query rnds/q"));
    }

    #[test]
    fn renders_batch_column_when_present() {
        let mut agg = AggregateMetrics::default();
        agg.absorb(&dmpc_mpc::UpdateMetrics::default());
        let b = BatchMetrics {
            updates: 4,
            rounds: 10,
            ..Default::default()
        };
        let rows = vec![
            TableRow {
                name: "batched".into(),
                claimed: ("O(1)".into(), "O(1)".into(), "O(sqrt N)".into()),
                agg: agg.clone(),
                batch: Some(b),
                query: Some(QueryMetrics {
                    queries: 8,
                    rounds: 4,
                    ..Default::default()
                }),
            },
            TableRow {
                name: "unbatched".into(),
                claimed: ("O(1)".into(), "O(1)".into(), "O(sqrt N)".into()),
                agg,
                batch: None,
                query: None,
            },
        ];
        let s = render_table("Table 1", &rows);
        assert!(s.contains("batch rnds/up"));
        assert!(s.contains("2.50"));
        // The query column renders amortized rounds per query.
        assert!(s.contains("query rnds/q"));
        assert!(s.contains("0.50"));
        // Rows without a batch measurement render a dash.
        assert!(s
            .lines()
            .any(|l| l.starts_with("unbatched") && l.ends_with('-')));
    }

    #[test]
    fn batch_plain_text_round_trips() {
        let b = BatchMetrics {
            updates: 64,
            rounds: 120,
            max_active_machines: 9,
            machines_touched: 14,
            max_words_per_round: 210,
            total_words: 9000,
            total_messages: 1888,
            lost_words: 17,
            lost_messages: 3,
            violations: 2,
            conflict_groups: 7,
            conflict_depth: 3,
            max_lanes: 5,
        };
        let line = batch_to_plain(&b);
        assert_eq!(batch_from_plain(&line).unwrap(), b);
        // Missing keys default to zero; junk is rejected.
        assert_eq!(batch_from_plain("updates=3").unwrap().updates, 3);
        assert!(batch_from_plain("nope=1").is_err());
        assert!(batch_from_plain("updates").is_err());
        assert!(batch_from_plain("updates=x").is_err());
    }

    #[test]
    fn batch_plain_text_reads_pre_conflict_lines() {
        // Lines written before the conflict-scheduler fields existed
        // (BENCH_PR2..PR8 reports) parse with the new fields zeroed.
        let old = "updates=64 rounds=120 max_active=9 machines_touched=14 max_words=210 total_words=9000 total_msgs=1888 lost_words=17 lost_msgs=3 violations=2";
        let b = batch_from_plain(old).unwrap();
        assert_eq!(b.updates, 64);
        assert_eq!(b.violations, 2);
        assert_eq!(b.conflict_groups, 0);
        assert_eq!(b.conflict_depth, 0);
        assert_eq!(b.max_lanes, 0);
    }

    #[test]
    fn query_plain_text_round_trips() {
        let q = QueryMetrics {
            queries: 256,
            rounds: 16,
            max_active_machines: 11,
            machines_touched: 14,
            max_words_per_round: 120,
            total_words: 900,
            total_messages: 300,
            violations: 0,
        };
        let line = query_to_plain(&q);
        assert_eq!(query_from_plain(&line).unwrap(), q);
        assert_eq!(query_from_plain("queries=3").unwrap().queries, 3);
        assert!(query_from_plain("nope=1").is_err());
        assert!(query_from_plain("queries=x").is_err());
    }

    #[test]
    fn renders_sweep() {
        let mut sweep = crate::experiment::ScalingSweep::default();
        let mut agg = AggregateMetrics::default();
        agg.absorb(&dmpc_mpc::UpdateMetrics::default());
        sweep.push(1024, agg);
        let s = render_sweep("connectivity", &sweep);
        assert!(s.contains("1024"));
        assert!(s.contains("fitted exponents"));
    }
}
