//! Plain-text table rendering for the bench binaries (no external deps).

use dmpc_mpc::AggregateMetrics;

/// One row of a Table-1-style report.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Algorithm / problem name.
    pub name: String,
    /// Paper-claimed bounds (rounds, machines, communication), free text.
    pub claimed: (String, String, String),
    /// Measured aggregate.
    pub agg: AggregateMetrics,
}

/// Renders rows as an aligned plain-text table comparing paper claims with
/// measured worst cases.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let header = format!(
        "{:<26} | {:>14} | {:>9} | {:>16} | {:>10} | {:>16} | {:>12} | {:>5}\n",
        "problem",
        "claimed rounds",
        "rounds",
        "claimed machines",
        "machines",
        "claimed comm",
        "comm (words)",
        "viol"
    );
    let width = header.len();
    out.push_str(&"-".repeat(width.saturating_sub(1)));
    out.push('\n');
    out.push_str(&header);
    out.push_str(&"-".repeat(width.saturating_sub(1)));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<26} | {:>14} | {:>9} | {:>16} | {:>10} | {:>16} | {:>12} | {:>5}\n",
            r.name,
            r.claimed.0,
            r.agg.max_rounds,
            r.claimed.1,
            r.agg.max_active_machines,
            r.claimed.2,
            r.agg.max_words_per_round,
            r.agg.violations,
        ));
    }
    out
}

/// Renders a scaling sweep as `N, rounds, machines, words` rows plus fitted
/// slopes.
pub fn render_sweep(name: &str, sweep: &crate::experiment::ScalingSweep) -> String {
    let mut out = String::new();
    out.push_str(&format!("scaling of {name} (worst case per update)\n"));
    out.push_str(&format!(
        "{:>10} | {:>7} | {:>9} | {:>12}\n",
        "N", "rounds", "machines", "words/round"
    ));
    for p in &sweep.points {
        out.push_str(&format!(
            "{:>10} | {:>7} | {:>9} | {:>12}\n",
            p.input_size, p.agg.max_rounds, p.agg.max_active_machines, p.agg.max_words_per_round
        ));
    }
    out.push_str(&format!(
        "fitted exponents vs N: rounds {:+.3}, machines {:+.3}, words {:+.3}\n",
        sweep.rounds_slope(),
        sweep.machines_slope(),
        sweep.words_slope()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows() {
        let mut agg = AggregateMetrics::default();
        let m = dmpc_mpc::UpdateMetrics {
            rounds: 3,
            max_active_machines: 2,
            max_words_per_round: 40,
            ..Default::default()
        };
        agg.absorb(&m);
        let rows = vec![TableRow {
            name: "maximal matching".into(),
            claimed: ("O(1)".into(), "O(1)".into(), "O(sqrt N)".into()),
            agg,
        }];
        let s = render_table("Table 1", &rows);
        assert!(s.contains("maximal matching"));
        assert!(s.contains("O(sqrt N)"));
        assert!(s.contains(" 3 "));
    }

    #[test]
    fn renders_sweep() {
        let mut sweep = crate::experiment::ScalingSweep::default();
        let mut agg = AggregateMetrics::default();
        agg.absorb(&dmpc_mpc::UpdateMetrics::default());
        sweep.push(1024, agg);
        let s = render_sweep("connectivity", &sweep);
        assert!(s.contains("1024"));
        assert!(s.contains("fitted exponents"));
    }
}
