//! The interface implemented by every DMPC dynamic algorithm in this
//! workspace.

use dmpc_graph::{Edge, Update, Weight, WeightedUpdate};
use dmpc_mpc::UpdateMetrics;

/// A fully-dynamic distributed graph algorithm: processes one edge update at
/// a time and reports the DMPC cost of each.
pub trait DynamicGraphAlgorithm {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Processes an edge insertion, returning the update's metered cost.
    fn insert(&mut self, e: Edge) -> UpdateMetrics;

    /// Processes an edge deletion, returning the update's metered cost.
    fn delete(&mut self, e: Edge) -> UpdateMetrics;

    /// Applies any unweighted update.
    fn apply(&mut self, u: Update) -> UpdateMetrics {
        match u {
            Update::Insert(e) => self.insert(e),
            Update::Delete(e) => self.delete(e),
        }
    }
}

/// A fully-dynamic distributed algorithm on weighted graphs (the MST
/// algorithms).
pub trait WeightedDynamicGraphAlgorithm {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Processes a weighted edge insertion.
    fn insert(&mut self, e: Edge, w: Weight) -> UpdateMetrics;

    /// Processes an edge deletion.
    fn delete(&mut self, e: Edge) -> UpdateMetrics;

    /// Applies any weighted update.
    fn apply(&mut self, u: WeightedUpdate) -> UpdateMetrics {
        match u {
            WeightedUpdate::Insert(e, w) => self.insert(e, w),
            WeightedUpdate::Delete(e) => self.delete(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        inserts: usize,
        deletes: usize,
    }

    impl DynamicGraphAlgorithm for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn insert(&mut self, _e: Edge) -> UpdateMetrics {
            self.inserts += 1;
            UpdateMetrics::default()
        }
        fn delete(&mut self, _e: Edge) -> UpdateMetrics {
            self.deletes += 1;
            UpdateMetrics::default()
        }
    }

    #[test]
    fn apply_dispatches() {
        let mut d = Dummy {
            inserts: 0,
            deletes: 0,
        };
        let e = Edge::new(0, 1);
        d.apply(Update::Insert(e));
        d.apply(Update::Delete(e));
        d.apply(Update::Insert(e));
        assert_eq!((d.inserts, d.deletes), (2, 1));
        assert_eq!(d.name(), "dummy");
    }
}
