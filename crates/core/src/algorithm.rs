//! The interface implemented by every DMPC dynamic algorithm in this
//! workspace.
//!
//! The unit of work is a *batch* of `k` edge updates; a single update is the
//! `k = 1` special case. Every algorithm gets batching for free through the
//! looped [`DynamicGraphAlgorithm::apply_batch`] default; algorithms with a
//! genuinely batched machine program (shared preprocessing fan-out, shared
//! coordinator rounds) override it and report a lower amortized cost.

use dmpc_graph::{Edge, Query, QueryAnswer, Update, Weight, WeightedUpdate};
use dmpc_mpc::{BatchMetrics, QueryMetrics, UpdateMetrics};

/// The reference batch execution: apply the updates one by one, in order,
/// summing their costs. This is both the default `apply_batch` and the
/// baseline the genuinely batched overrides are compared against in the
/// `batch_scaling` bench.
pub fn apply_batch_looped<A: DynamicGraphAlgorithm + ?Sized>(
    alg: &mut A,
    updates: &[Update],
) -> BatchMetrics {
    let mut b = BatchMetrics::default();
    for &u in updates {
        b.absorb_update(&alg.apply(u));
    }
    b
}

/// The reference query-wave execution: answer the queries one by one, in
/// order, summing their costs. This is both the default `answer_queries`
/// and the looped baseline the genuinely batched overrides are compared
/// against in the `query_scaling` bench.
pub fn answer_queries_looped<A: QueryableAlgorithm + ?Sized>(
    alg: &mut A,
    queries: &[Query],
) -> (Vec<QueryAnswer>, QueryMetrics) {
    let mut answers = Vec::with_capacity(queries.len());
    let mut total = QueryMetrics::default();
    for &q in queries {
        let (a, m) = alg.answer_query(q);
        answers.push(a);
        total.merge(&m);
    }
    (answers, total)
}

/// The query plane: read-only access to the maintained structure, metered
/// like updates but amortized over queries. Both algorithm traits extend
/// this, so every algorithm keeps compiling via the defaults — answering
/// [`QueryAnswer::Unsupported`] per query and looping singles for waves.
/// Algorithms with a genuinely batched machine program (one fan-out wave
/// answering all `q` queries in O(1) rounds) override [`Self::answer_queries`].
///
/// Queries MUST NOT modify the maintained structure: interleaving query
/// waves anywhere in an update stream must not change any later answer or
/// update outcome (pinned by the query-plane property tests).
pub trait QueryableAlgorithm {
    /// Answers one query, returning the answer and the metered cost.
    /// The default supports nothing.
    fn answer_query(&mut self, q: Query) -> (QueryAnswer, QueryMetrics) {
        let _ = q;
        (QueryAnswer::Unsupported, QueryMetrics::one_unanswered())
    }

    /// Answers an ordered batch of queries as one unit of work and returns
    /// the answers (index-aligned with `queries`) plus the combined,
    /// amortizable cost. The default loops [`Self::answer_query`]; overrides
    /// must return bit-identical answers while sharing rounds across the
    /// wave.
    fn answer_queries(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
        answer_queries_looped(self, queries)
    }
}

/// Looped batch execution for weighted algorithms.
pub fn apply_weighted_batch_looped<A: WeightedDynamicGraphAlgorithm + ?Sized>(
    alg: &mut A,
    updates: &[WeightedUpdate],
) -> BatchMetrics {
    let mut b = BatchMetrics::default();
    for &u in updates {
        b.absorb_update(&alg.apply(u));
    }
    b
}

/// A fully-dynamic distributed graph algorithm: processes edge updates —
/// singly or in batches — and reports the DMPC cost of each unit of work.
/// The [`QueryableAlgorithm`] supertrait adds the read side; its defaults
/// answer nothing, so algorithms without a query program just write
/// `impl QueryableAlgorithm for X {}`.
pub trait DynamicGraphAlgorithm: QueryableAlgorithm {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Processes an edge insertion, returning the update's metered cost.
    fn insert(&mut self, e: Edge) -> UpdateMetrics;

    /// Processes an edge deletion, returning the update's metered cost.
    fn delete(&mut self, e: Edge) -> UpdateMetrics;

    /// Applies any unweighted update.
    fn apply(&mut self, u: Update) -> UpdateMetrics {
        match u {
            Update::Insert(e) => self.insert(e),
            Update::Delete(e) => self.delete(e),
        }
    }

    /// Applies an ordered batch of updates as one unit of work and returns
    /// its combined, amortizable cost. The default loops [`Self::apply`], so
    /// every algorithm supports batches; overrides must preserve sequential
    /// batch semantics (see `dmpc_graph::streams::coalesce` for the
    /// intra-batch cancellation rules) while sharing rounds across the batch.
    fn apply_batch(&mut self, updates: &[Update]) -> BatchMetrics {
        apply_batch_looped(self, updates)
    }

    /// Current total resident memory across the algorithm's machines, in
    /// words — a peak-RSS proxy the wall-clock benchmarks sample between
    /// batches. The default (0) opts out.
    fn resident_words(&self) -> usize {
        0
    }

    /// The largest batch of updates the algorithm's machine program admits
    /// as one unit of work under the send-cap budget (`None`: no
    /// driver-imposed bound). The service front-end caps its admission
    /// windows at this budget so a closed window never outruns what one
    /// chunked [`Self::apply_batch`] round trip can carry.
    fn admission_budget(&self) -> Option<usize> {
        None
    }
}

/// A fully-dynamic distributed algorithm on weighted graphs (the MST
/// algorithms). Queries arrive through the same [`QueryableAlgorithm`]
/// supertrait as the unweighted interface.
pub trait WeightedDynamicGraphAlgorithm: QueryableAlgorithm {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Processes a weighted edge insertion.
    fn insert(&mut self, e: Edge, w: Weight) -> UpdateMetrics;

    /// Processes an edge deletion.
    fn delete(&mut self, e: Edge) -> UpdateMetrics;

    /// Applies any weighted update.
    fn apply(&mut self, u: WeightedUpdate) -> UpdateMetrics {
        match u {
            WeightedUpdate::Insert(e, w) => self.insert(e, w),
            WeightedUpdate::Delete(e) => self.delete(e),
        }
    }

    /// Applies an ordered batch of weighted updates as one unit of work.
    /// Defaults to looping [`Self::apply`]; see
    /// [`DynamicGraphAlgorithm::apply_batch`] for the override contract.
    fn apply_batch(&mut self, updates: &[WeightedUpdate]) -> BatchMetrics {
        apply_weighted_batch_looped(self, updates)
    }

    /// Largest admissible batch under the send-cap budget; see
    /// [`DynamicGraphAlgorithm::admission_budget`].
    fn admission_budget(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        inserts: usize,
        deletes: usize,
    }

    impl QueryableAlgorithm for Dummy {}
    impl DynamicGraphAlgorithm for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn insert(&mut self, _e: Edge) -> UpdateMetrics {
            self.inserts += 1;
            UpdateMetrics::default()
        }
        fn delete(&mut self, _e: Edge) -> UpdateMetrics {
            self.deletes += 1;
            UpdateMetrics::default()
        }
    }

    #[test]
    fn apply_dispatches() {
        let mut d = Dummy {
            inserts: 0,
            deletes: 0,
        };
        let e = Edge::new(0, 1);
        d.apply(Update::Insert(e));
        d.apply(Update::Delete(e));
        d.apply(Update::Insert(e));
        assert_eq!((d.inserts, d.deletes), (2, 1));
        assert_eq!(d.name(), "dummy");
    }

    #[test]
    fn default_query_plane_answers_unsupported() {
        let mut d = Dummy {
            inserts: 0,
            deletes: 0,
        };
        let (a, m) = d.answer_query(Query::MatchingSize);
        assert_eq!(a, QueryAnswer::Unsupported);
        assert_eq!(m.queries, 1);
        assert_eq!(m.rounds, 0);
        let (answers, wave) = d.answer_queries(&[Query::Connected(0, 1), Query::ComponentOf(2)]);
        assert_eq!(answers, vec![QueryAnswer::Unsupported; 2]);
        assert_eq!(wave.queries, 2);
        assert!(wave.clean());
        // The query plane never mutates the algorithm.
        assert_eq!((d.inserts, d.deletes), (0, 0));
    }

    #[test]
    fn default_apply_batch_loops_in_order() {
        let mut d = Dummy {
            inserts: 0,
            deletes: 0,
        };
        let e = Edge::new(0, 1);
        let b = d.apply_batch(&[Update::Insert(e), Update::Delete(e), Update::Insert(e)]);
        assert_eq!((d.inserts, d.deletes), (2, 1));
        assert_eq!(b.updates, 3);
        assert!(b.clean());
    }

    #[test]
    fn default_admission_budget_is_unbounded() {
        let d = Dummy {
            inserts: 0,
            deletes: 0,
        };
        assert_eq!(d.admission_budget(), None);
    }
}
