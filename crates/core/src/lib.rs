//! The DMPC model layer: model parameters, the dynamic-algorithm interface,
//! verified experiment drivers, and Table-1-style reporting.
//!
//! The paper defines the **DMPC** model (Section 2): machines with
//! `O(sqrt(N))`-word memories, where `N = n + m` is the input size; a
//! dynamic algorithm processes each edge insertion/deletion in synchronous
//! rounds, and its complexity is the triple
//! *(rounds per update, active machines per round, communication per round)*.
//! This crate turns those definitions into code:
//!
//! * [`DmpcParams`] — derives `S`, the machine count, and related quantities
//!   from `n` and the edge capacity, exactly as the paper's algorithms assume.
//! * [`DynamicGraphAlgorithm`] / [`WeightedDynamicGraphAlgorithm`] — the
//!   interface every distributed algorithm in this workspace implements.
//!   The unit of work is a batch of `k` updates (`apply_batch`, defaulting
//!   to a loop over `apply` so single updates are the `k = 1` case).
//! * [`experiment`] — drivers that replay update streams, verify the
//!   maintained solution against references after every update, and
//!   aggregate worst-case metrics; plus scaling sweeps with log-log slope
//!   fits used to check Table 1's growth shapes.
//! * [`elastic`] — the chaos-plane surface ([`ElasticAlgorithm`]) and the
//!   churn harness that interleaves kill/revive/split/merge events with a
//!   workload stream, recovering failures via checkpoint + replay.
//! * [`report`] — plain-text table rendering for the bench binaries.
//!
//! # Example
//!
//! ```
//! use dmpc_core::DmpcParams;
//!
//! // n = 256 vertices, capacity for m_max = 768 edges: N = n + m_max.
//! let p = DmpcParams::new(256, 768);
//! assert_eq!(p.input_size(), 1024);
//! assert_eq!(p.sqrt_n(), 32); // machine memory S = O(sqrt N) words
//! assert!(p.storage_machines() >= 1);
//! ```

pub mod algorithm;
pub mod elastic;
pub mod experiment;
pub mod model;
pub mod report;

pub use algorithm::{
    answer_queries_looped, apply_batch_looped, apply_weighted_batch_looped, DynamicGraphAlgorithm,
    QueryableAlgorithm, WeightedDynamicGraphAlgorithm,
};
pub use elastic::{
    apply_unweighted, digest_snapshots, run_chaos_stream, run_chaos_stream_with, run_plain_stream,
    AppliedEvent, ChaosOptions, ChurnReport, DrainRecord, ElasticAlgorithm, MidFlightRecovery,
};
pub use experiment::{
    run_stream, run_stream_batched, run_stream_batched_verified, run_stream_verified, ScalingPoint,
    ScalingSweep,
};
pub use model::DmpcParams;
