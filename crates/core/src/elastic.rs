//! Elasticity and recovery: the trait surface drivers expose to the chaos
//! plane, and the harness that interleaves chaos events with a workload
//! stream.
//!
//! # The recovery model
//!
//! Machines fail by *fail-stop*: a killed machine loses its state and
//! silently drops inbound messages (the simulator records each drop as a
//! `DeadMachine` violation, so a correct harness shows zero). Recovery is
//! checkpoint + replay:
//!
//! 1. The harness keeps a **checkpoint** — per-machine plain-text snapshots
//!    taken every `checkpoint_every` batches (only at full-cluster health) —
//!    plus the **op suffix**: the logical batches applied since.
//! 2. To revive machine `m`, the harness rebuilds its state on an
//!    off-cluster *replica*: a fresh instance restored from the checkpoint
//!    with the suffix replayed (algorithms without snapshot support replay
//!    the full log instead). Determinism makes the replica's shard `m`
//!    bit-identical to what the dead machine should hold, because the live
//!    cluster processed exactly the same ops before the kill and none since
//!    (batches arriving during an outage are deferred).
//! 3. The replica's shard-`m` snapshot is staged at a live peer and shipped
//!    to the revived machine through the metered message plane in
//!    capacity-budgeted chunks, so recovery cost appears in the same
//!    rounds/words/machines-touched units as updates.
//!
//! Split/merge shard migrations go through [`ElasticAlgorithm::split`] /
//! [`ElasticAlgorithm::merge`]; the harness checkpoints right after each
//! migration so replay suffixes never straddle a repartition.

use crate::algorithm::DynamicGraphAlgorithm;
use dmpc_graph::{Query, QueryAnswer, Update};
use dmpc_mpc::chaos::{fnv1a, ChaosKind, ChaosPlan};
use dmpc_mpc::{BatchMetrics, MachineId, QueryMetrics, RecoveryMetrics, UpdateMetrics};

/// The chaos-plane surface of a distributed dynamic algorithm: per-machine
/// snapshot/restore plus metered kill/revive/split/merge transitions.
///
/// Implementations must keep [`ElasticAlgorithm::state_digest`] a pure
/// function of the logical machine states, so a chaos run and a
/// failure-free run over the same stream can be compared bit-for-bit.
pub trait ElasticAlgorithm {
    /// Number of machines in the cluster.
    fn n_shards(&self) -> usize;

    /// True if machine `m` may be killed (coordinator-based algorithms
    /// exempt their distinguished reliable machine, as the paper assumes).
    fn killable(&self, m: MachineId) -> bool;

    /// True if machine `m` currently accepts messages.
    fn is_alive(&self, m: MachineId) -> bool;

    /// The executor's quiescence cap — the legal range of mid-flight round
    /// offsets is `1..=round_limit()` (see [`ChaosPlan::validate`]).
    fn round_limit(&self) -> usize;

    /// Arms a mid-flight chaos event on the underlying cluster: `kind`
    /// fires at the start of round `at_round` of the *next* quiescence run
    /// (see `dmpc_mpc::Cluster::arm_in_round`). Events that never fire are
    /// fenced to their epoch and discarded.
    fn arm_in_round(&mut self, at_round: u32, kind: ChaosKind);

    /// Machine-local state restore from a [`ElasticAlgorithm::snapshot_machine`]
    /// snapshot, *without* metered traffic — the abort path of an
    /// epoch-fenced batch, where a surviving machine rolls its own state
    /// back to the pre-batch frontier (a local operation in a real
    /// deployment: the frontier snapshot is resident on the machine).
    fn restore_machine(&mut self, m: MachineId, snap: &str);

    /// True when full-cluster checkpoints and per-machine restores are
    /// supported. When false the harness recovers by full-log replay and
    /// never calls [`ElasticAlgorithm::checkpoint`] /
    /// [`ElasticAlgorithm::restore`].
    fn supports_restore(&self) -> bool {
        true
    }

    /// Plain-text snapshot of machine `m`'s program state.
    fn snapshot_machine(&self, m: MachineId) -> String;

    /// Full-cluster checkpoint: one snapshot per machine.
    fn checkpoint(&self) -> Vec<String> {
        (0..self.n_shards() as MachineId)
            .map(|m| self.snapshot_machine(m))
            .collect()
    }

    /// Restores every machine from a full-cluster checkpoint.
    fn restore(&mut self, snaps: &[String]);

    /// Fail-stops machine `m`: wipes its state and drops its messages.
    fn kill(&mut self, m: MachineId);

    /// Revives machine `m` from `snap` (its recovered plain-text state):
    /// the snapshot is staged at a live peer and shipped through the
    /// metered message plane. Returns the handoff's metrics.
    fn revive(&mut self, m: MachineId, snap: &str) -> UpdateMetrics;

    /// Splits machine `m`'s shard, migrating half its range to a
    /// neighbour. `None` when unsupported or invalid (range too small).
    fn split(&mut self, m: MachineId) -> Option<UpdateMetrics> {
        let _ = m;
        None
    }

    /// Merges machine `m`'s shard into a neighbour, emptying `m`'s range.
    /// `None` when unsupported or invalid (already empty).
    fn merge(&mut self, m: MachineId) -> Option<UpdateMetrics> {
        let _ = m;
        None
    }

    /// Digest of the full logical state (machine states in machine order).
    fn state_digest(&self) -> u64;
}

/// One applied chaos event with its metered cost (the bench trajectory).
#[derive(Clone, Debug)]
pub struct AppliedEvent {
    /// Batch index the event fired before.
    pub at_batch: usize,
    /// Human-readable event, e.g. `"kill 3"`.
    pub kind: String,
    /// Rounds of metered recovery/migration traffic (0 for kills).
    pub rounds: usize,
    /// Words of metered recovery/migration traffic.
    pub words: usize,
    /// Distinct machines the recovery run touched.
    pub machines_touched: usize,
    /// Logical updates replayed on the off-cluster replica.
    pub replay_updates: usize,
}

/// One epoch abort + recovery caused by a mid-flight kill: the full retry
/// trajectory the tentpole asks [`ChurnReport`] to carry.
#[derive(Clone, Debug)]
pub struct MidFlightRecovery {
    /// Batch whose epoch was aborted.
    pub at_batch: usize,
    /// Round offset (1-based) at which the first kill fired.
    pub kill_round: u32,
    /// Machines that died mid-flight.
    pub victims: Vec<MachineId>,
    /// Which retry attempt this abort was (1-based; 1 = the first
    /// execution of the batch was the one aborted).
    pub attempt: usize,
    /// Rounds the aborted epoch burned before the harness gave up on it.
    pub aborted_rounds: usize,
    /// Machine-to-machine words quarantined as `LostInFlight`.
    pub lost_words: usize,
    /// Machine-to-machine messages quarantined as `LostInFlight`.
    pub lost_messages: usize,
    /// Simulated backoff before the retry (exponential in the attempt).
    pub backoff_rounds: usize,
    /// Metered rounds of the victim rebuild (checkpoint+replay handoff).
    pub recovery_rounds: usize,
    /// Metered words of the victim rebuild.
    pub recovery_words: usize,
    /// Logical updates replayed on the off-cluster replica.
    pub replay_updates: usize,
    /// Degraded-mode reads answered while the victim rebuilt.
    pub reads_answered: usize,
    /// How many of those reads came back [`QueryAnswer::Degraded`].
    pub degraded_answers: usize,
    /// End-to-end recovery latency in rounds: from the kill firing to the
    /// cluster standing at the restored frontier, ready to re-execute
    /// (aborted remainder + backoff + metered rebuild).
    pub latency_rounds: usize,
}

/// One deferred batch drained after full health returned — the
/// deferral-accounting record (no deferral is invisible in the report).
#[derive(Clone, Copy, Debug)]
pub struct DrainRecord {
    /// The deferred batch's index in the stream.
    pub batch: usize,
    /// Stream position at which it was actually applied (`batches.len()`
    /// for the final drain after the stream ended).
    pub drained_at: usize,
    /// Deferral latency in batches (`drained_at - batch`).
    pub latency_batches: usize,
}

/// Tuning for [`run_chaos_stream_with`].
#[derive(Clone, Copy, Debug)]
pub struct ChaosOptions<'a> {
    /// Take a full-cluster checkpoint every this many applied batches
    /// (0 disables periodic checkpoints; recovery then replays from the
    /// last migration checkpoint or the start).
    pub checkpoint_every: usize,
    /// How many times a mid-flight-aborted batch may be re-executed before
    /// the harness gives up (panics). Each retry runs clean — the armed
    /// events fired in the first attempt — so one retry normally suffices;
    /// the budget guards against pathological plans.
    pub retry_budget: usize,
    /// Base of the simulated exponential backoff recorded per retry
    /// (`base << attempt` rounds). Recorded as latency, not executed.
    pub backoff_base_rounds: usize,
    /// Reads issued against the cluster while any machine is down — during
    /// mid-flight rebuilds and boundary deferral windows. Answers touching
    /// a dead owner come back [`QueryAnswer::Degraded`]; the rest stay
    /// exact ("writes pause, reads degrade").
    pub outage_reads: &'a [Query],
}

impl Default for ChaosOptions<'static> {
    fn default() -> Self {
        ChaosOptions {
            checkpoint_every: 8,
            retry_budget: 3,
            backoff_base_rounds: 2,
            outage_reads: &[],
        }
    }
}

/// Outcome of a chaos run: workload cost, recovery cost, the per-event
/// trajectory, and the final state digest for bit-identical comparisons.
#[derive(Clone, Debug, Default)]
pub struct ChurnReport {
    /// Batches applied (every batch in the stream, deferred or not).
    pub batches: usize,
    /// Logical updates applied.
    pub updates: usize,
    /// Events applied, in order, with costs.
    pub applied: Vec<AppliedEvent>,
    /// Events skipped as invalid (e.g. split of a 1-vertex shard, revive of
    /// an alive machine, mid-flight events targeting a deferred batch).
    pub skipped: usize,
    /// Recovery-cost totals.
    pub recovery: RecoveryMetrics,
    /// Workload-cost totals (the batches themselves; aborted epochs are
    /// *not* merged here — their cost lives in [`ChurnReport::mid_flight`]
    /// and [`ChurnReport::aborted_rounds`]).
    pub workload: BatchMetrics,
    /// Batch re-executions forced by mid-flight kills.
    pub retries: usize,
    /// Total rounds burned in aborted epochs.
    pub aborted_rounds: usize,
    /// Per-abort retry/backoff/recovery trajectory.
    pub mid_flight: Vec<MidFlightRecovery>,
    /// Every deferred batch with its drain position and latency.
    pub drained: Vec<DrainRecord>,
    /// Reads answered while some machine was down.
    pub reads_answered: usize,
    /// How many outage reads came back [`QueryAnswer::Degraded`].
    pub degraded_answers: usize,
    /// Metered cost of the outage read waves.
    pub outage_reads: QueryMetrics,
    /// Digest of the final cluster state.
    pub final_digest: u64,
}

/// Drives `batches` through an algorithm while applying `plan`'s chaos
/// events between batches, recovering every failure via checkpoint+replay
/// (or full-log replay when snapshots are unsupported).
///
/// `make` builds a fresh instance (used for the recovery replicas — it must
/// be deterministic); `apply` applies one batch (the indirection lets
/// weighted algorithms map `Update`s to weighted updates). Batches arriving
/// while any machine is dead are deferred and drained right after the
/// revive that restores full health; every machine still dead after the
/// last batch is revived, so the final state covers the whole stream.
pub fn run_chaos_stream<A, F, App>(
    make: F,
    apply: App,
    batches: &[Vec<Update>],
    plan: &ChaosPlan,
    checkpoint_every: usize,
) -> ChurnReport
where
    A: ElasticAlgorithm,
    F: Fn() -> A,
    App: FnMut(&mut A, &[Update]) -> BatchMetrics,
{
    run_chaos_stream_with(
        make,
        apply,
        |_: &mut A, _: &[Query]| (Vec::new(), QueryMetrics::default()),
        batches,
        plan,
        ChaosOptions {
            checkpoint_every,
            ..Default::default()
        },
    )
}

/// The full mid-flight harness behind [`run_chaos_stream`]: boundary events
/// as before, plus **epoch-fenced abort-and-retry** for events carrying a
/// round offset and **degraded-mode reads** during outages.
///
/// For a batch with armed mid-flight events the harness takes a pre-batch
/// *frontier snapshot* (the PR 6 checkpoint codec — taken only when this
/// batch is actually targeted, so the plain path stays snapshot-free). If a
/// kill fires inside the run, the epoch is aborted: the victim's state is
/// wiped and rebuilt from checkpoint+replay exactly as at a boundary (the
/// replay suffix excludes the aborted batch, so the replica stands at the
/// frontier), the survivors roll back to the frontier locally, degraded
/// reads are served while the victim rebuilds, and the batch re-executes
/// clean. Determinism makes the retry bit-identical to a never-failed run:
/// every machine re-enters the batch at the same frontier state with the
/// same injections.
///
/// `answer` drives a read-only query wave (used for `opts.outage_reads`);
/// it must not mutate logical state. Panics if `plan` fails
/// [`ChaosPlan::validate`] or the retry budget is exhausted.
pub fn run_chaos_stream_with<A, F, App, Ans>(
    make: F,
    mut apply: App,
    mut answer: Ans,
    batches: &[Vec<Update>],
    plan: &ChaosPlan,
    opts: ChaosOptions<'_>,
) -> ChurnReport
where
    A: ElasticAlgorithm,
    F: Fn() -> A,
    App: FnMut(&mut A, &[Update]) -> BatchMetrics,
    Ans: FnMut(&mut A, &[Query]) -> (Vec<QueryAnswer>, QueryMetrics),
{
    let mut a = make();
    let n_shards = a.n_shards();
    let n_killable = (0..n_shards as MachineId)
        .filter(|&m| a.killable(m))
        .count();
    if let Err(msg) = plan.validate(n_shards, n_killable, a.round_limit()) {
        panic!("invalid chaos plan: {msg}");
    }
    let checkpoint_every = opts.checkpoint_every;
    let restorable = a.supports_restore();
    let mut ckpt: Vec<String> = if restorable {
        a.checkpoint()
    } else {
        Vec::new()
    };
    // Batch indexes applied since the checkpoint (or since the start, for
    // full-log replay) — the replay suffix of the next recovery.
    let mut suffix: Vec<usize> = Vec::new();
    let mut deferred: Vec<usize> = Vec::new();
    let mut dead: Vec<MachineId> = Vec::new();
    let mut report = ChurnReport::default();

    // Rebuilds the dead machine's state on an off-cluster replica
    // (checkpoint + suffix replay; determinism => shard m is exactly what
    // the dead machine should hold), then ships it back via the metered
    // revive handoff.
    #[allow(clippy::too_many_arguments)]
    fn revive_one<A, F, App>(
        make: &F,
        apply: &mut App,
        batches: &[Vec<Update>],
        restorable: bool,
        a: &mut A,
        m: MachineId,
        at_batch: usize,
        ckpt: &[String],
        suffix: &[usize],
        report: &mut ChurnReport,
    ) where
        A: ElasticAlgorithm,
        F: Fn() -> A,
        App: FnMut(&mut A, &[Update]) -> BatchMetrics,
    {
        let mut replica = make();
        if restorable {
            replica.restore(ckpt);
        }
        let mut replay = BatchMetrics::default();
        for &bi in suffix {
            replay.merge(&apply(&mut replica, &batches[bi]));
        }
        let snap = replica.snapshot_machine(m);
        let um = a.revive(m, &snap);
        report.applied.push(AppliedEvent {
            at_batch,
            kind: format!("revive {m}"),
            rounds: um.rounds,
            words: um.total_words,
            machines_touched: um.machines_touched,
            replay_updates: replay.updates,
        });
        report.recovery.absorb_event(&um);
        report.recovery.absorb_replay(&replay);
    }

    for bi in 0..=batches.len() {
        // Mid-flight events fire *inside* this batch's run; boundary events
        // fire here, before it.
        let mut mid: Vec<(u32, ChaosKind)> = Vec::new();
        for ev in plan.events_at(bi) {
            if let Some(r) = ev.at_round {
                mid.push((r, ev.kind));
                continue;
            }
            match ev.kind {
                ChaosKind::Kill(m) => {
                    if a.killable(m) && a.is_alive(m) {
                        a.kill(m);
                        dead.push(m);
                        report.applied.push(AppliedEvent {
                            at_batch: bi,
                            kind: format!("kill {m}"),
                            rounds: 0,
                            words: 0,
                            machines_touched: 0,
                            replay_updates: 0,
                        });
                        report.recovery.events += 1;
                    } else {
                        report.skipped += 1;
                    }
                }
                ChaosKind::Revive(m) => {
                    if let Some(pos) = dead.iter().position(|&d| d == m) {
                        dead.remove(pos);
                        revive_one(
                            &make,
                            &mut apply,
                            batches,
                            restorable,
                            &mut a,
                            m,
                            bi,
                            &ckpt,
                            &suffix,
                            &mut report,
                        );
                        if dead.is_empty() {
                            // Full health restored: drain the deferred
                            // backlog (it extends the replay suffix), one
                            // drain record per batch so no deferral is
                            // invisible in the report.
                            for di in deferred.drain(..) {
                                report.workload.merge(&apply(&mut a, &batches[di]));
                                report.batches += 1;
                                suffix.push(di);
                                report.drained.push(DrainRecord {
                                    batch: di,
                                    drained_at: bi,
                                    latency_batches: bi - di,
                                });
                            }
                        }
                    } else {
                        report.skipped += 1;
                    }
                }
                ChaosKind::Split(m) | ChaosKind::Merge(m) => {
                    let is_split = matches!(ev.kind, ChaosKind::Split(_));
                    // Reshapes only fire at full health: a migration must
                    // not race a dead neighbour.
                    let um = if dead.is_empty() && a.killable(m) {
                        if is_split {
                            a.split(m)
                        } else {
                            a.merge(m)
                        }
                    } else {
                        None
                    };
                    match um {
                        Some(um) => {
                            report.applied.push(AppliedEvent {
                                at_batch: bi,
                                kind: format!("{} {m}", if is_split { "split" } else { "merge" }),
                                rounds: um.rounds,
                                words: um.total_words,
                                machines_touched: um.machines_touched,
                                replay_updates: 0,
                            });
                            report.recovery.absorb_event(&um);
                            // Checkpoint immediately: replay suffixes must
                            // never straddle a repartition.
                            if restorable {
                                ckpt = a.checkpoint();
                                suffix.clear();
                            }
                        }
                        None => report.skipped += 1,
                    }
                }
            }
        }
        if bi == batches.len() {
            break;
        }
        if !dead.is_empty() {
            // Writes pause: the batch is deferred until full health. Reads
            // degrade: the query plane stays up over the partial cluster.
            deferred.push(bi);
            report.skipped += mid.len();
            if !opts.outage_reads.is_empty() {
                let (answers, qm) = answer(&mut a, opts.outage_reads);
                report.reads_answered += answers.len();
                report.degraded_answers += answers.iter().filter(|an| an.is_degraded()).count();
                report.outage_reads.merge(&qm);
            }
            continue;
        }
        if mid.is_empty() {
            // Plain path: no frontier snapshot, no arming — zero chaos-plane
            // overhead when the batch is not targeted.
            report.workload.merge(&apply(&mut a, &batches[bi]));
            report.batches += 1;
            suffix.push(bi);
            if restorable && checkpoint_every > 0 && suffix.len() >= checkpoint_every {
                ckpt = a.checkpoint();
                suffix.clear();
            }
            continue;
        }
        // Epoch-fenced path: snapshot the pre-batch frontier, arm the events,
        // and re-execute on abort until the batch lands clean.
        let frontier = a.checkpoint();
        let kill_round = mid
            .iter()
            .filter_map(|&(r, k)| matches!(k, ChaosKind::Kill(_)).then_some(r))
            .min()
            .unwrap_or(0);
        let mut attempt = 0usize;
        loop {
            if attempt == 0 {
                // Arm only the first execution: the events fired (and were
                // fenced to that epoch), so every retry runs clean.
                for &(r, kind) in &mid {
                    match kind {
                        ChaosKind::Kill(m) if !(a.killable(m) && a.is_alive(m)) => {
                            report.skipped += 1;
                        }
                        _ => a.arm_in_round(r, kind),
                    }
                }
            }
            let bm = apply(&mut a, &batches[bi]);
            let victims: Vec<MachineId> = (0..n_shards as MachineId)
                .filter(|&m| !a.is_alive(m))
                .collect();
            if victims.is_empty() && bm.lost_words == 0 && bm.lost_messages == 0 {
                report.workload.merge(&bm);
                report.batches += 1;
                suffix.push(bi);
                if restorable && checkpoint_every > 0 && suffix.len() >= checkpoint_every {
                    ckpt = a.checkpoint();
                    suffix.clear();
                }
                break;
            }
            // Abort the epoch. The aborted attempt's metrics are *not*
            // merged into the workload — its cost is recorded in the
            // mid-flight trajectory instead.
            assert!(
                attempt < opts.retry_budget,
                "mid-flight retry budget ({}) exhausted at batch {bi}",
                opts.retry_budget
            );
            report.retries += 1;
            report.aborted_rounds += bm.rounds;
            for &m in &victims {
                a.kill(m);
            }
            // Survivors roll back to the frontier locally (unmetered: the
            // frontier snapshot is machine-resident).
            for m in 0..n_shards as MachineId {
                if a.is_alive(m) {
                    a.restore_machine(m, &frontier[m as usize]);
                }
            }
            // Reads degrade while the victims rebuild.
            let (reads_answered, degraded_answers) = if opts.outage_reads.is_empty() {
                (0, 0)
            } else {
                let (answers, qm) = answer(&mut a, opts.outage_reads);
                let d = answers.iter().filter(|an| an.is_degraded()).count();
                report.reads_answered += answers.len();
                report.degraded_answers += d;
                report.outage_reads.merge(&qm);
                (answers.len(), d)
            };
            // Rebuild each victim via checkpoint + suffix replay. The suffix
            // excludes the aborted batch, so the replica stands exactly at
            // the frontier the survivors rolled back to.
            let rec0 = (
                report.recovery.rounds,
                report.recovery.total_words,
                report.recovery.replay_updates,
            );
            for &m in &victims {
                revive_one(
                    &make,
                    &mut apply,
                    batches,
                    restorable,
                    &mut a,
                    m,
                    bi,
                    &ckpt,
                    &suffix,
                    &mut report,
                );
            }
            let recovery_rounds = report.recovery.rounds - rec0.0;
            let recovery_words = report.recovery.total_words - rec0.1;
            let replay_updates = report.recovery.replay_updates - rec0.2;
            let backoff_rounds = opts.backoff_base_rounds << attempt.min(16);
            report.mid_flight.push(MidFlightRecovery {
                at_batch: bi,
                kill_round,
                victims,
                attempt: attempt + 1,
                aborted_rounds: bm.rounds,
                lost_words: bm.lost_words,
                lost_messages: bm.lost_messages,
                backoff_rounds,
                recovery_rounds,
                recovery_words,
                replay_updates,
                reads_answered,
                degraded_answers,
                latency_rounds: bm
                    .rounds
                    .saturating_sub(kill_round.saturating_sub(1) as usize)
                    + backoff_rounds
                    + recovery_rounds,
            });
            attempt += 1;
        }
    }
    // A well-formed plan revives everything; recover stragglers anyway so
    // the final state always covers the whole stream.
    while let Some(m) = dead.pop() {
        revive_one(
            &make,
            &mut apply,
            batches,
            restorable,
            &mut a,
            m,
            batches.len(),
            &ckpt,
            &suffix,
            &mut report,
        );
    }
    for di in deferred.drain(..) {
        report.workload.merge(&apply(&mut a, &batches[di]));
        report.batches += 1;
        suffix.push(di);
        report.drained.push(DrainRecord {
            batch: di,
            drained_at: batches.len(),
            latency_batches: batches.len() - di,
        });
    }
    report.updates = report.workload.updates;
    report.final_digest = a.state_digest();
    report
}

/// The failure-free counterpart of [`run_chaos_stream`]: applies every
/// batch in order and digests the final state (the bit-identical baseline).
pub fn run_plain_stream<A, F, App>(make: F, mut apply: App, batches: &[Vec<Update>]) -> ChurnReport
where
    A: ElasticAlgorithm,
    F: Fn() -> A,
    App: FnMut(&mut A, &[Update]) -> BatchMetrics,
{
    let mut a = make();
    let mut report = ChurnReport::default();
    for b in batches {
        report.workload.merge(&apply(&mut a, b));
        report.batches += 1;
    }
    report.updates = report.workload.updates;
    report.final_digest = a.state_digest();
    report
}

/// Digest helper for drivers: folds machine snapshots (in machine order)
/// into one FNV-1a digest.
pub fn digest_snapshots<'a, I: IntoIterator<Item = &'a str>>(snaps: I) -> u64 {
    let mut h: u64 = 0;
    for s in snaps {
        h = h.rotate_left(1) ^ fnv1a(s.as_bytes());
    }
    h
}

/// Convenience apply-closure for unweighted [`DynamicGraphAlgorithm`]s.
pub fn apply_unweighted<A: DynamicGraphAlgorithm>(a: &mut A, batch: &[Update]) -> BatchMetrics {
    a.apply_batch(batch)
}
