//! Elasticity and recovery: the trait surface drivers expose to the chaos
//! plane, and the harness that interleaves chaos events with a workload
//! stream.
//!
//! # The recovery model
//!
//! Machines fail by *fail-stop*: a killed machine loses its state and
//! silently drops inbound messages (the simulator records each drop as a
//! `DeadMachine` violation, so a correct harness shows zero). Recovery is
//! checkpoint + replay:
//!
//! 1. The harness keeps a **checkpoint** — per-machine plain-text snapshots
//!    taken every `checkpoint_every` batches (only at full-cluster health) —
//!    plus the **op suffix**: the logical batches applied since.
//! 2. To revive machine `m`, the harness rebuilds its state on an
//!    off-cluster *replica*: a fresh instance restored from the checkpoint
//!    with the suffix replayed (algorithms without snapshot support replay
//!    the full log instead). Determinism makes the replica's shard `m`
//!    bit-identical to what the dead machine should hold, because the live
//!    cluster processed exactly the same ops before the kill and none since
//!    (batches arriving during an outage are deferred).
//! 3. The replica's shard-`m` snapshot is staged at a live peer and shipped
//!    to the revived machine through the metered message plane in
//!    capacity-budgeted chunks, so recovery cost appears in the same
//!    rounds/words/machines-touched units as updates.
//!
//! Split/merge shard migrations go through [`ElasticAlgorithm::split`] /
//! [`ElasticAlgorithm::merge`]; the harness checkpoints right after each
//! migration so replay suffixes never straddle a repartition.

use crate::algorithm::DynamicGraphAlgorithm;
use dmpc_graph::Update;
use dmpc_mpc::chaos::{fnv1a, ChaosKind, ChaosPlan};
use dmpc_mpc::{BatchMetrics, MachineId, RecoveryMetrics, UpdateMetrics};

/// The chaos-plane surface of a distributed dynamic algorithm: per-machine
/// snapshot/restore plus metered kill/revive/split/merge transitions.
///
/// Implementations must keep [`ElasticAlgorithm::state_digest`] a pure
/// function of the logical machine states, so a chaos run and a
/// failure-free run over the same stream can be compared bit-for-bit.
pub trait ElasticAlgorithm {
    /// Number of machines in the cluster.
    fn n_shards(&self) -> usize;

    /// True if machine `m` may be killed (coordinator-based algorithms
    /// exempt their distinguished reliable machine, as the paper assumes).
    fn killable(&self, m: MachineId) -> bool;

    /// True if machine `m` currently accepts messages.
    fn is_alive(&self, m: MachineId) -> bool;

    /// True when full-cluster checkpoints and per-machine restores are
    /// supported. When false the harness recovers by full-log replay and
    /// never calls [`ElasticAlgorithm::checkpoint`] /
    /// [`ElasticAlgorithm::restore`].
    fn supports_restore(&self) -> bool {
        true
    }

    /// Plain-text snapshot of machine `m`'s program state.
    fn snapshot_machine(&self, m: MachineId) -> String;

    /// Full-cluster checkpoint: one snapshot per machine.
    fn checkpoint(&self) -> Vec<String> {
        (0..self.n_shards() as MachineId)
            .map(|m| self.snapshot_machine(m))
            .collect()
    }

    /// Restores every machine from a full-cluster checkpoint.
    fn restore(&mut self, snaps: &[String]);

    /// Fail-stops machine `m`: wipes its state and drops its messages.
    fn kill(&mut self, m: MachineId);

    /// Revives machine `m` from `snap` (its recovered plain-text state):
    /// the snapshot is staged at a live peer and shipped through the
    /// metered message plane. Returns the handoff's metrics.
    fn revive(&mut self, m: MachineId, snap: &str) -> UpdateMetrics;

    /// Splits machine `m`'s shard, migrating half its range to a
    /// neighbour. `None` when unsupported or invalid (range too small).
    fn split(&mut self, m: MachineId) -> Option<UpdateMetrics> {
        let _ = m;
        None
    }

    /// Merges machine `m`'s shard into a neighbour, emptying `m`'s range.
    /// `None` when unsupported or invalid (already empty).
    fn merge(&mut self, m: MachineId) -> Option<UpdateMetrics> {
        let _ = m;
        None
    }

    /// Digest of the full logical state (machine states in machine order).
    fn state_digest(&self) -> u64;
}

/// One applied chaos event with its metered cost (the bench trajectory).
#[derive(Clone, Debug)]
pub struct AppliedEvent {
    /// Batch index the event fired before.
    pub at_batch: usize,
    /// Human-readable event, e.g. `"kill 3"`.
    pub kind: String,
    /// Rounds of metered recovery/migration traffic (0 for kills).
    pub rounds: usize,
    /// Words of metered recovery/migration traffic.
    pub words: usize,
    /// Distinct machines the recovery run touched.
    pub machines_touched: usize,
    /// Logical updates replayed on the off-cluster replica.
    pub replay_updates: usize,
}

/// Outcome of a chaos run: workload cost, recovery cost, the per-event
/// trajectory, and the final state digest for bit-identical comparisons.
#[derive(Clone, Debug, Default)]
pub struct ChurnReport {
    /// Batches applied (every batch in the stream, deferred or not).
    pub batches: usize,
    /// Logical updates applied.
    pub updates: usize,
    /// Events applied, in order, with costs.
    pub applied: Vec<AppliedEvent>,
    /// Events skipped as invalid (e.g. split of a 1-vertex shard, revive of
    /// an alive machine).
    pub skipped: usize,
    /// Recovery-cost totals.
    pub recovery: RecoveryMetrics,
    /// Workload-cost totals (the batches themselves).
    pub workload: BatchMetrics,
    /// Digest of the final cluster state.
    pub final_digest: u64,
}

/// Drives `batches` through an algorithm while applying `plan`'s chaos
/// events between batches, recovering every failure via checkpoint+replay
/// (or full-log replay when snapshots are unsupported).
///
/// `make` builds a fresh instance (used for the recovery replicas — it must
/// be deterministic); `apply` applies one batch (the indirection lets
/// weighted algorithms map `Update`s to weighted updates). Batches arriving
/// while any machine is dead are deferred and drained right after the
/// revive that restores full health; every machine still dead after the
/// last batch is revived, so the final state covers the whole stream.
pub fn run_chaos_stream<A, F, App>(
    make: F,
    mut apply: App,
    batches: &[Vec<Update>],
    plan: &ChaosPlan,
    checkpoint_every: usize,
) -> ChurnReport
where
    A: ElasticAlgorithm,
    F: Fn() -> A,
    App: FnMut(&mut A, &[Update]) -> BatchMetrics,
{
    let mut a = make();
    let restorable = a.supports_restore();
    let mut ckpt: Vec<String> = if restorable {
        a.checkpoint()
    } else {
        Vec::new()
    };
    // Batch indexes applied since the checkpoint (or since the start, for
    // full-log replay) — the replay suffix of the next recovery.
    let mut suffix: Vec<usize> = Vec::new();
    let mut deferred: Vec<usize> = Vec::new();
    let mut dead: Vec<MachineId> = Vec::new();
    let mut report = ChurnReport::default();

    // Rebuilds the dead machine's state on an off-cluster replica
    // (checkpoint + suffix replay; determinism => shard m is exactly what
    // the dead machine should hold), then ships it back via the metered
    // revive handoff.
    #[allow(clippy::too_many_arguments)]
    fn revive_one<A, F, App>(
        make: &F,
        apply: &mut App,
        batches: &[Vec<Update>],
        restorable: bool,
        a: &mut A,
        m: MachineId,
        at_batch: usize,
        ckpt: &[String],
        suffix: &[usize],
        report: &mut ChurnReport,
    ) where
        A: ElasticAlgorithm,
        F: Fn() -> A,
        App: FnMut(&mut A, &[Update]) -> BatchMetrics,
    {
        let mut replica = make();
        if restorable {
            replica.restore(ckpt);
        }
        let mut replay = BatchMetrics::default();
        for &bi in suffix {
            replay.merge(&apply(&mut replica, &batches[bi]));
        }
        let snap = replica.snapshot_machine(m);
        let um = a.revive(m, &snap);
        report.applied.push(AppliedEvent {
            at_batch,
            kind: format!("revive {m}"),
            rounds: um.rounds,
            words: um.total_words,
            machines_touched: um.machines_touched,
            replay_updates: replay.updates,
        });
        report.recovery.absorb_event(&um);
        report.recovery.absorb_replay(&replay);
    }

    for bi in 0..=batches.len() {
        for ev in plan.events_at(bi) {
            match ev.kind {
                ChaosKind::Kill(m) => {
                    if a.killable(m) && a.is_alive(m) {
                        a.kill(m);
                        dead.push(m);
                        report.applied.push(AppliedEvent {
                            at_batch: bi,
                            kind: format!("kill {m}"),
                            rounds: 0,
                            words: 0,
                            machines_touched: 0,
                            replay_updates: 0,
                        });
                        report.recovery.events += 1;
                    } else {
                        report.skipped += 1;
                    }
                }
                ChaosKind::Revive(m) => {
                    if let Some(pos) = dead.iter().position(|&d| d == m) {
                        dead.remove(pos);
                        revive_one(
                            &make,
                            &mut apply,
                            batches,
                            restorable,
                            &mut a,
                            m,
                            bi,
                            &ckpt,
                            &suffix,
                            &mut report,
                        );
                        if dead.is_empty() {
                            // Full health restored: drain the deferred
                            // backlog (it extends the replay suffix).
                            for di in deferred.drain(..) {
                                report.workload.merge(&apply(&mut a, &batches[di]));
                                report.batches += 1;
                                suffix.push(di);
                            }
                        }
                    } else {
                        report.skipped += 1;
                    }
                }
                ChaosKind::Split(m) | ChaosKind::Merge(m) => {
                    let is_split = matches!(ev.kind, ChaosKind::Split(_));
                    // Reshapes only fire at full health: a migration must
                    // not race a dead neighbour.
                    let um = if dead.is_empty() && a.killable(m) {
                        if is_split {
                            a.split(m)
                        } else {
                            a.merge(m)
                        }
                    } else {
                        None
                    };
                    match um {
                        Some(um) => {
                            report.applied.push(AppliedEvent {
                                at_batch: bi,
                                kind: format!("{} {m}", if is_split { "split" } else { "merge" }),
                                rounds: um.rounds,
                                words: um.total_words,
                                machines_touched: um.machines_touched,
                                replay_updates: 0,
                            });
                            report.recovery.absorb_event(&um);
                            // Checkpoint immediately: replay suffixes must
                            // never straddle a repartition.
                            if restorable {
                                ckpt = a.checkpoint();
                                suffix.clear();
                            }
                        }
                        None => report.skipped += 1,
                    }
                }
            }
        }
        if bi == batches.len() {
            break;
        }
        if dead.is_empty() {
            report.workload.merge(&apply(&mut a, &batches[bi]));
            report.batches += 1;
            suffix.push(bi);
            if restorable && checkpoint_every > 0 && suffix.len() >= checkpoint_every {
                ckpt = a.checkpoint();
                suffix.clear();
            }
        } else {
            deferred.push(bi);
        }
    }
    // A well-formed plan revives everything; recover stragglers anyway so
    // the final state always covers the whole stream.
    while let Some(m) = dead.pop() {
        revive_one(
            &make,
            &mut apply,
            batches,
            restorable,
            &mut a,
            m,
            batches.len(),
            &ckpt,
            &suffix,
            &mut report,
        );
    }
    for di in deferred.drain(..) {
        report.workload.merge(&apply(&mut a, &batches[di]));
        report.batches += 1;
    }
    report.updates = report.workload.updates;
    report.final_digest = a.state_digest();
    report
}

/// The failure-free counterpart of [`run_chaos_stream`]: applies every
/// batch in order and digests the final state (the bit-identical baseline).
pub fn run_plain_stream<A, F, App>(make: F, mut apply: App, batches: &[Vec<Update>]) -> ChurnReport
where
    A: ElasticAlgorithm,
    F: Fn() -> A,
    App: FnMut(&mut A, &[Update]) -> BatchMetrics,
{
    let mut a = make();
    let mut report = ChurnReport::default();
    for b in batches {
        report.workload.merge(&apply(&mut a, b));
        report.batches += 1;
    }
    report.updates = report.workload.updates;
    report.final_digest = a.state_digest();
    report
}

/// Digest helper for drivers: folds machine snapshots (in machine order)
/// into one FNV-1a digest.
pub fn digest_snapshots<'a, I: IntoIterator<Item = &'a str>>(snaps: I) -> u64 {
    let mut h: u64 = 0;
    for s in snaps {
        h = h.rotate_left(1) ^ fnv1a(s.as_bytes());
    }
    h
}

/// Convenience apply-closure for unweighted [`DynamicGraphAlgorithm`]s.
pub fn apply_unweighted<A: DynamicGraphAlgorithm>(a: &mut A, batch: &[Update]) -> BatchMetrics {
    a.apply_batch(batch)
}
