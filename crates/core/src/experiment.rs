//! Experiment drivers: replay update streams through an algorithm — singly
//! or in `k`-update batches — verify the maintained solution, aggregate
//! worst-case and amortized costs, and fit growth exponents across input
//! sizes.

use crate::algorithm::DynamicGraphAlgorithm;
use dmpc_graph::{DynamicGraph, Update};
use dmpc_mpc::{loglog_slope, AggregateMetrics, BatchMetrics, UpdateMetrics};

/// Replays `updates` through `alg`, aggregating per-update worst cases.
pub fn run_stream<A: DynamicGraphAlgorithm>(alg: &mut A, updates: &[Update]) -> AggregateMetrics {
    let mut agg = AggregateMetrics::default();
    for &u in updates {
        let m = alg.apply(u);
        agg.absorb(&m);
    }
    agg
}

/// Replays `updates`, maintaining the ground-truth graph alongside and
/// calling `verify(graph, last_metrics)` after every update. The verifier
/// panics (with context) on any divergence, making failures easy to bisect.
pub fn run_stream_verified<A, F>(
    n: usize,
    alg: &mut A,
    updates: &[Update],
    mut verify: F,
) -> AggregateMetrics
where
    A: DynamicGraphAlgorithm,
    F: FnMut(&DynamicGraph, &UpdateMetrics),
{
    let mut g = DynamicGraph::new(n);
    let mut agg = AggregateMetrics::default();
    for (step, &u) in updates.iter().enumerate() {
        match u {
            Update::Insert(e) => g.insert(e).unwrap_or_else(|err| {
                panic!("invalid stream at step {step}: {err}");
            }),
            Update::Delete(e) => g.delete(e).unwrap_or_else(|err| {
                panic!("invalid stream at step {step}: {err}");
            }),
        }
        let m = alg.apply(u);
        assert!(
            m.clean(),
            "model violation at step {step} ({u:?}): {:?}",
            m.violations
        );
        verify(&g, &m);
        agg.absorb(&m);
    }
    agg
}

/// Replays `updates` in batches of `k` through the algorithm's
/// [`DynamicGraphAlgorithm::apply_batch`], merging the per-batch costs into
/// one amortizable total.
pub fn run_stream_batched<A: DynamicGraphAlgorithm + ?Sized>(
    alg: &mut A,
    updates: &[Update],
    k: usize,
) -> BatchMetrics {
    let mut total = BatchMetrics::default();
    for batch in updates.chunks(k.max(1)) {
        total.merge(&alg.apply_batch(batch));
    }
    total
}

/// Batched replay with verification: maintains the ground-truth graph
/// alongside and calls `verify(graph, batch_metrics)` after every batch.
/// The stream must be valid; invalid batches panic with the batch index.
pub fn run_stream_batched_verified<A, F>(
    n: usize,
    alg: &mut A,
    updates: &[Update],
    k: usize,
    mut verify: F,
) -> BatchMetrics
where
    A: DynamicGraphAlgorithm,
    F: FnMut(&DynamicGraph, &BatchMetrics),
{
    let mut g = DynamicGraph::new(n);
    let mut total = BatchMetrics::default();
    for (i, batch) in updates.chunks(k.max(1)).enumerate() {
        for &u in batch {
            match u {
                Update::Insert(e) => g.insert(e).unwrap_or_else(|err| {
                    panic!("invalid stream in batch {i}: {err}");
                }),
                Update::Delete(e) => g.delete(e).unwrap_or_else(|err| {
                    panic!("invalid stream in batch {i}: {err}");
                }),
            }
        }
        let b = alg.apply_batch(batch);
        assert!(
            b.clean(),
            "model violations in batch {i}: {} recorded",
            b.violations
        );
        verify(&g, &b);
        total.merge(&b);
    }
    total
}

/// One measured point of a scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Input size `N = n + m_max`.
    pub input_size: usize,
    /// Aggregated metrics at this size.
    pub agg: AggregateMetrics,
}

/// A scaling sweep over input sizes, with log-log slope fits against `N` for
/// the three Table-1 quantities.
#[derive(Clone, Debug, Default)]
pub struct ScalingSweep {
    /// The measured points, in increasing `N`.
    pub points: Vec<ScalingPoint>,
}

impl ScalingSweep {
    /// Adds a measured point.
    pub fn push(&mut self, input_size: usize, agg: AggregateMetrics) {
        self.points.push(ScalingPoint { input_size, agg });
    }

    fn slope_of<F: Fn(&AggregateMetrics) -> f64>(&self, f: F) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.input_size as f64, f(&p.agg).max(1.0)))
            .collect();
        loglog_slope(&pts)
    }

    /// Growth exponent of worst-case rounds per update vs `N`
    /// (≈ 0 means O(1) rounds — the paper's headline).
    pub fn rounds_slope(&self) -> f64 {
        self.slope_of(|a| a.max_rounds as f64)
    }

    /// Growth exponent of worst-case active machines vs `N`.
    pub fn machines_slope(&self) -> f64 {
        self.slope_of(|a| a.max_active_machines as f64)
    }

    /// Growth exponent of worst-case communication per round vs `N`
    /// (≈ 0.5 corresponds to the paper's `O(sqrt N)` rows).
    pub fn words_slope(&self) -> f64 {
        self.slope_of(|a| a.max_words_per_round as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::Edge;

    struct Counter;
    impl crate::QueryableAlgorithm for Counter {}
    impl DynamicGraphAlgorithm for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn insert(&mut self, _e: Edge) -> UpdateMetrics {
            UpdateMetrics {
                rounds: 2,
                max_active_machines: 3,
                max_words_per_round: 10,
                ..Default::default()
            }
        }
        fn delete(&mut self, _e: Edge) -> UpdateMetrics {
            UpdateMetrics {
                rounds: 4,
                ..Default::default()
            }
        }
    }

    #[test]
    fn run_stream_aggregates() {
        let e = Edge::new(0, 1);
        let ups = vec![Update::Insert(e), Update::Delete(e), Update::Insert(e)];
        let agg = run_stream(&mut Counter, &ups);
        assert_eq!(agg.updates, 3);
        assert_eq!(agg.max_rounds, 4);
        assert_eq!(agg.max_active_machines, 3);
    }

    #[test]
    fn verified_run_tracks_graph() {
        let e = Edge::new(0, 1);
        let ups = vec![Update::Insert(e), Update::Delete(e)];
        let mut sizes = Vec::new();
        run_stream_verified(3, &mut Counter, &ups, |g, _| sizes.push(g.m()));
        assert_eq!(sizes, vec![1, 0]);
    }

    #[test]
    fn batched_run_chunks_and_merges() {
        let e = Edge::new(0, 1);
        let f = Edge::new(1, 2);
        let ups = vec![
            Update::Insert(e),
            Update::Insert(f),
            Update::Delete(e),
            Update::Delete(f),
            Update::Insert(e),
        ];
        let b = run_stream_batched(&mut Counter, &ups, 2);
        assert_eq!(b.updates, 5);
        // 3 inserts x 2 rounds + 2 deletes x 4 rounds, looped default.
        assert_eq!(b.rounds, 14);
        assert!((b.amortized_rounds() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn batched_verified_tracks_graph_per_batch() {
        let e = Edge::new(0, 1);
        let f = Edge::new(1, 2);
        let ups = vec![Update::Insert(e), Update::Insert(f), Update::Delete(e)];
        let mut sizes = Vec::new();
        let total = run_stream_batched_verified(3, &mut Counter, &ups, 2, |g, b| {
            sizes.push((g.m(), b.updates));
        });
        assert_eq!(sizes, vec![(2, 2), (1, 1)]);
        assert_eq!(total.updates, 3);
    }

    #[test]
    fn sweep_slopes() {
        let mut sweep = ScalingSweep::default();
        for k in 6..12 {
            let n = 1usize << k;
            let mut agg = AggregateMetrics::default();
            let m = UpdateMetrics {
                rounds: 5,                                       // flat
                max_active_machines: (n as f64).sqrt() as usize, // sqrt growth
                max_words_per_round: n,                          // linear growth
                ..Default::default()
            };
            agg.absorb(&m);
            sweep.push(n, agg);
        }
        assert!(sweep.rounds_slope().abs() < 0.05);
        assert!((sweep.machines_slope() - 0.5).abs() < 0.05);
        assert!((sweep.words_slope() - 1.0).abs() < 0.05);
    }
}
