//! DMPC model parameters.

/// Parameters of a DMPC deployment for a graph with `n` vertices and at most
/// `m_max` live edges (the paper's "m is the maximum number of edges
/// throughout the update sequence").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmpcParams {
    /// Number of vertices.
    pub n: usize,
    /// Maximum number of live edges at any time.
    pub m_max: usize,
    /// Memory multiplier: machine capacity is `s_multiplier * ceil(sqrt(N))`
    /// words. The paper's algorithms need a constant-factor headroom over
    /// `sqrt(N)`: a structural broadcast is ~16 words to each of ~sqrt(N)
    /// machines, and the coordinator's update-history is ~2 sqrt(N) entries.
    /// 32 covers every algorithm here and is the default.
    pub s_multiplier: usize,
}

impl DmpcParams {
    /// Parameters with the default memory multiplier.
    pub fn new(n: usize, m_max: usize) -> Self {
        DmpcParams {
            n,
            m_max,
            s_multiplier: 32,
        }
    }

    /// Overrides the memory multiplier (used by the memory-ablation bench).
    pub fn with_multiplier(mut self, s_multiplier: usize) -> Self {
        assert!(s_multiplier >= 1);
        self.s_multiplier = s_multiplier;
        self
    }

    /// Input size `N = n + m_max`.
    pub fn input_size(&self) -> usize {
        self.n + self.m_max
    }

    /// `ceil(sqrt(N))` — the model's base memory unit.
    pub fn sqrt_n(&self) -> usize {
        (self.input_size() as f64).sqrt().ceil() as usize
    }

    /// Machine memory / per-round send & receive cap `S`, in words.
    pub fn capacity_words(&self) -> usize {
        self.s_multiplier * self.sqrt_n()
    }

    /// Number of storage machines so that total memory is `Theta(N)`:
    /// `ceil(N / sqrt(N)) = O(sqrt(N))` machines.
    pub fn storage_machines(&self) -> usize {
        self.input_size().div_ceil(self.sqrt_n()).max(1)
    }

    /// Number of machines needed to hold one record per vertex
    /// (`O(n / sqrt(N))`, the paper's statistics machines).
    pub fn stats_machines(&self) -> usize {
        self.n.div_ceil(self.sqrt_n()).max(1)
    }

    /// The heavy/light degree threshold `tau = ceil(sqrt(2 * m_max))` from
    /// Section 3 (a vertex is *heavy* iff its degree exceeds `tau`).
    pub fn heavy_threshold(&self) -> usize {
        ((2.0 * self.m_max.max(1) as f64).sqrt()).ceil() as usize
    }

    /// Capacity of the coordinator's update-history ring buffer: it must
    /// cover at least one full round-robin refresh cycle over all machines.
    pub fn history_capacity(&self, total_machines: usize) -> usize {
        (2 * total_machines).max(2 * self.sqrt_n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let p = DmpcParams::new(100, 300);
        assert_eq!(p.input_size(), 400);
        assert_eq!(p.sqrt_n(), 20);
        assert_eq!(p.capacity_words(), 640);
        assert_eq!(p.storage_machines(), 20);
        assert_eq!(p.stats_machines(), 5);
        // tau = ceil(sqrt(600)) = 25
        assert_eq!(p.heavy_threshold(), 25);
    }

    #[test]
    fn multiplier_scales_capacity() {
        let p = DmpcParams::new(64, 192).with_multiplier(2);
        assert_eq!(p.capacity_words(), 2 * p.sqrt_n());
    }

    #[test]
    fn machine_count_is_theta_sqrt_n() {
        for k in [6, 8, 10, 12, 14] {
            let n = 1usize << k;
            let p = DmpcParams::new(n, 3 * n);
            let mu = p.storage_machines();
            let sq = p.sqrt_n();
            assert!(mu <= sq + 1, "mu={mu} sqrt={sq}");
            assert!(mu + 1 >= sq / 2);
        }
    }

    #[test]
    fn history_covers_machines() {
        let p = DmpcParams::new(100, 300);
        assert!(p.history_capacity(50) >= 50);
        assert!(p.history_capacity(10) >= 2 * p.sqrt_n());
    }
}
