//! Online == offline: the service loop over any seeded arrival trace must
//! produce state digests, query answers, and audits bit-identical to an
//! offline replay of the same coalesced windows — for connectivity, MST,
//! and matching, and with a chaos plan armed.
//!
//! This is the PR 3/4/9 digest-differential pattern pointed at the service
//! plane: the clock and the admission policy may only decide *where*
//! windows close, never what a closed window computes.

use dmpc_connectivity::{DmpcConnectivity, DmpcMst};
use dmpc_core::DmpcParams;
use dmpc_graph::arrivals::{arrival_trace, ArrivalProcess};
use dmpc_graph::streams::{self, QueryMix, TargetDist};
use dmpc_graph::{Op, Update};
use dmpc_matching::DmpcMaximalMatching;
use dmpc_mpc::{ChaosKind, ChaosPlan};
use dmpc_service::{
    replay_windows, run_service, run_service_chaos, BackpressurePolicy, ServiceConfig,
    UnweightedService, WeightedEdgeService, WindowPolicy,
};
use proptest::prelude::*;

/// The three arrival shapes, picked by the proptest case.
fn process_for(pick: u64) -> ArrivalProcess {
    match pick % 3 {
        0 => ArrivalProcess::Steady { ops_per_tick: 2.0 },
        1 => ArrivalProcess::Bursty {
            base: 0.5,
            burst: 6.0,
            period: 12,
            burst_len: 3,
        },
        _ => ArrivalProcess::Diurnal {
            low: 0.5,
            high: 5.0,
            period: 24,
        },
    }
}

/// Equivalence runs use a buffer big enough that nothing sheds: the claim
/// covers every op of the trace.
fn cfg(max_ops: usize, deadline: u64) -> ServiceConfig {
    ServiceConfig {
        window: WindowPolicy::windowed(max_ops, deadline),
        buffer_cap: 4096,
        backpressure: BackpressurePolicy::Shed,
        ..ServiceConfig::default()
    }
}

fn writes_of(ops: &[Op]) -> Vec<Update> {
    ops.iter()
        .filter_map(|o| match o {
            Op::Write(u) => Some(*u),
            Op::Read(_) => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Connectivity: digests, answers, and per-plane metrics all match the
    /// offline replay; the replayed state passes the deep audits.
    #[test]
    fn connectivity_online_equals_offline(seed in 0u64..1u64 << 48, pick in 0u64..3) {
        let n = 40;
        let params = DmpcParams::new(n, 4 * n);
        let ops = streams::mixed_stream(
            n, 120, 40, TargetDist::Uniform, QueryMix::Connectivity, seed,
        );
        let trace = arrival_trace(&ops, process_for(pick), seed);
        let make = || UnweightedService::new(DmpcConnectivity::new(params));
        let rep = run_service(make, &trace, &cfg(8, 3));
        prop_assert_eq!(rep.violations(), 0);
        prop_assert_eq!(rep.arrived, ops.len());
        prop_assert_eq!(rep.admitted, ops.len(), "nothing may shed in equivalence runs");
        let mut fresh = make();
        let off = replay_windows(&mut fresh, &rep.windows);
        prop_assert_eq!(off.final_digest, rep.final_digest, "online digest != offline replay");
        prop_assert_eq!(&off.answers, &rep.answers, "answers diverged");
        prop_assert_eq!(off.writes.updates, rep.writes.updates);
        prop_assert_eq!(off.writes.rounds, rep.writes.rounds);
        prop_assert_eq!(off.reads.rounds, rep.reads.rounds);
        fresh.inner.driver().audit().map_err(TestCaseError::fail)?;
        fresh.inner.driver().audit_directory().map_err(TestCaseError::fail)?;
    }

    /// MST through the weighted adapter: derived edge weights are a pure
    /// function of the edge, so online and offline see identical weighted
    /// updates and the replayed forest passes the invariant audit.
    #[test]
    fn mst_online_equals_offline(seed in 0u64..1u64 << 48, pick in 0u64..3) {
        let n = 32;
        let params = DmpcParams::new(n, 4 * n);
        let ops = streams::mixed_stream(n, 100, 40, TargetDist::Uniform, QueryMix::Mst, seed);
        let trace = arrival_trace(&ops, process_for(pick), seed);
        let make = || WeightedEdgeService::new(DmpcMst::new(params, 0.1), 64, 7);
        let rep = run_service(make, &trace, &cfg(6, 4));
        prop_assert_eq!(rep.violations(), 0);
        let mut fresh = make();
        let off = replay_windows(&mut fresh, &rep.windows);
        prop_assert_eq!(off.final_digest, rep.final_digest, "MST online digest != offline");
        prop_assert_eq!(&off.answers, &rep.answers);
        prop_assert_eq!(off.writes.rounds, rep.writes.rounds);
        fresh.inner.driver().audit().map_err(TestCaseError::fail)?;
    }

    /// Matching: the replayed state audits clean against the ground-truth
    /// graph of the admitted writes.
    #[test]
    fn matching_online_equals_offline(seed in 0u64..1u64 << 48, pick in 0u64..3) {
        let n = 32;
        let params = DmpcParams::new(n, 4 * n);
        let ops = streams::mixed_stream(
            n, 100, 40, TargetDist::Uniform, QueryMix::Matching, seed,
        );
        let trace = arrival_trace(&ops, process_for(pick), seed);
        let make = || UnweightedService::new(DmpcMaximalMatching::new(params));
        let rep = run_service(make, &trace, &cfg(8, 3));
        prop_assert_eq!(rep.violations(), 0);
        let mut fresh = make();
        let off = replay_windows(&mut fresh, &rep.windows);
        prop_assert_eq!(off.final_digest, rep.final_digest, "matching online digest != offline");
        prop_assert_eq!(&off.answers, &rep.answers);
        let g = streams::replay(n, &writes_of(&ops));
        fresh.inner.audit(&g).map_err(TestCaseError::fail)?;
    }

    /// Chaos-armed service: a mid-flight kill inside a window's write epoch
    /// aborts and retries; digests/answers equal the failure-free run and
    /// the offline replay, and aborted rounds never leak into workload
    /// metrics (only into latency).
    #[test]
    fn chaos_armed_connectivity_matches_failure_free(
        seed in 0u64..200u64, r in 1u32..6, target in 0usize..4,
    ) {
        let n = 48;
        let params = DmpcParams::new(n, 4 * n);
        let ops = streams::mixed_stream(
            n, 96, 30, TargetDist::Uniform, QueryMix::Connectivity, seed,
        );
        let trace = arrival_trace(&ops, ArrivalProcess::Steady { ops_per_tick: 3.0 }, seed);
        let make = || UnweightedService::new(DmpcConnectivity::new(params));
        let c = cfg(8, 3);
        let plain = run_service(make, &trace, &c);
        let plan = ChaosPlan::new(seed).with_event_in_round(target, r, ChaosKind::Kill(1));
        let chaos = run_service_chaos(make, &trace, &c, &plan);
        prop_assert_eq!(chaos.final_digest, plain.final_digest,
            "chaos service diverged (window {}, round {})", target, r);
        prop_assert_eq!(&chaos.answers, &plain.answers);
        prop_assert_eq!(chaos.violations(), 0);
        prop_assert_eq!(chaos.writes.rounds, plain.writes.rounds,
            "aborted epochs must not leak into workload metrics");
        prop_assert!(chaos.retries == 0 || chaos.aborted_rounds > 0);
        let mut fresh = make();
        let off = replay_windows(&mut fresh, &chaos.windows);
        prop_assert_eq!(off.final_digest, chaos.final_digest);
    }

    /// Same chaos claim for the coordinator-protected matching driver.
    #[test]
    fn chaos_armed_matching_matches_failure_free(
        seed in 0u64..200u64, r in 1u32..5, target in 0usize..3,
    ) {
        let n = 32;
        let params = DmpcParams::new(n, 4 * n);
        let ops = streams::mixed_stream(
            n, 80, 30, TargetDist::Uniform, QueryMix::Matching, seed,
        );
        let trace = arrival_trace(&ops, ArrivalProcess::Steady { ops_per_tick: 4.0 }, seed);
        let make = || UnweightedService::new(DmpcMaximalMatching::new(params));
        let c = cfg(6, 3);
        let plain = run_service(make, &trace, &c);
        let plan = ChaosPlan::new(seed).with_event_in_round(target, r, ChaosKind::Kill(2));
        let chaos = run_service_chaos(make, &trace, &c, &plan);
        prop_assert_eq!(chaos.final_digest, plain.final_digest,
            "matching chaos diverged (window {}, round {})", target, r);
        prop_assert_eq!(&chaos.answers, &plain.answers);
        prop_assert_eq!(chaos.violations(), 0);
        let g = streams::replay(n, &writes_of(&ops));
        let mut fresh = make();
        let off = replay_windows(&mut fresh, &chaos.windows);
        prop_assert_eq!(off.final_digest, chaos.final_digest);
        fresh.inner.audit(&g).map_err(TestCaseError::fail)?;
    }
}

/// Deterministic end-to-end shape check: one seed, every policy knob — the
/// windowed run beats per-op admission on amortized rounds/op while both
/// replay to identical digests.
#[test]
fn windowed_amortization_beats_per_op_at_equal_state() {
    let n = 64;
    let params = DmpcParams::new(n, 4 * n);
    let ops = streams::mixed_stream(n, 160, 50, TargetDist::Uniform, QueryMix::Connectivity, 42);
    let trace = arrival_trace(&ops, ArrivalProcess::Steady { ops_per_tick: 4.0 }, 42);
    let make = || UnweightedService::new(DmpcConnectivity::new(params));
    let windowed = run_service(make, &trace, &cfg(16, 4));
    let per_op = run_service(
        make,
        &trace,
        &ServiceConfig {
            window: WindowPolicy::per_op(),
            buffer_cap: 4096,
            backpressure: BackpressurePolicy::Shed,
            ..ServiceConfig::default()
        },
    );
    assert_eq!(windowed.final_digest, per_op.final_digest);
    assert_eq!(windowed.answers, per_op.answers);
    assert!(
        windowed.amortized_rounds_per_op() < per_op.amortized_rounds_per_op(),
        "windowed admission must amortize rounds: {} vs {}",
        windowed.amortized_rounds_per_op(),
        per_op.amortized_rounds_per_op()
    );
    assert!(windowed.write_latency.rounds.p99() > 0.0);
    assert!(windowed.read_latency.rounds.p99() > 0.0);
}
