//! The bounded admission buffer and its backpressure policies.
//!
//! Arrivals are *offered* to the buffer. While it has room they are
//! admitted FIFO; when it is full the configured [`BackpressurePolicy`]
//! decides what happens — and in both cases the outcome is explicit and
//! observable, never silent loss.

use dmpc_graph::Op;
use std::collections::VecDeque;

/// What happens when an arrival finds the admission buffer full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Drop the op and record it in the report's shed log — the service
    /// sheds load visibly (`arrived == admitted + shed` always holds).
    Shed,
    /// Park the op in an unbounded ingress queue; parked ops move into the
    /// buffer in arrival order as windows drain. Models clients blocking
    /// on a full socket: nothing is lost, latency absorbs the pressure.
    Block,
}

/// One shed op, recorded so load shedding is auditable (the CI gate
/// checks `arrived == admitted + shed.len()`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShedRecord {
    /// Tick the op arrived (and was shed).
    pub tick: u64,
    /// The dropped op.
    pub op: Op,
}

/// Outcome of offering one arrival to the buffer.
#[derive(Debug, PartialEq)]
pub enum Offer<T> {
    /// The op entered the bounded buffer.
    Admitted,
    /// Buffer full under [`BackpressurePolicy::Block`]: parked in the
    /// ingress queue.
    Blocked,
    /// Buffer full under [`BackpressurePolicy::Shed`]: the op is handed
    /// back for the caller to record.
    Shed(T),
}

/// A bounded FIFO admission buffer with an optional blocked-ingress queue.
#[derive(Clone, Debug)]
pub struct AdmissionBuffer<T> {
    cap: usize,
    policy: BackpressurePolicy,
    queue: VecDeque<T>,
    parked: VecDeque<T>,
}

impl<T> AdmissionBuffer<T> {
    /// An empty buffer holding at most `cap` ops (>= 1).
    pub fn new(cap: usize, policy: BackpressurePolicy) -> Self {
        assert!(cap >= 1, "the admission buffer must hold at least one op");
        AdmissionBuffer {
            cap,
            policy,
            queue: VecDeque::new(),
            parked: VecDeque::new(),
        }
    }

    /// Offers one arrival. Parked ops keep strict arrival order ahead of
    /// it: a new arrival is parked whenever the ingress queue is nonempty,
    /// even if the buffer itself has room.
    pub fn offer(&mut self, item: T) -> Offer<T> {
        if self.queue.len() < self.cap && self.parked.is_empty() {
            self.queue.push_back(item);
            return Offer::Admitted;
        }
        match self.policy {
            BackpressurePolicy::Shed => Offer::Shed(item),
            BackpressurePolicy::Block => {
                self.parked.push_back(item);
                Offer::Blocked
            }
        }
    }

    /// Moves parked ops into the buffer while there is room (called after
    /// a window drains).
    pub fn refill(&mut self) {
        while self.queue.len() < self.cap {
            match self.parked.pop_front() {
                Some(item) => self.queue.push_back(item),
                None => break,
            }
        }
    }

    /// Ops currently in the bounded buffer.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when the bounded buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Ops parked in the blocked-ingress queue.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// True when both the buffer and the ingress queue are empty — the
    /// service loop's termination condition.
    pub fn fully_drained(&self) -> bool {
        self.queue.is_empty() && self.parked.is_empty()
    }

    /// The oldest buffered op (deadline accounting).
    pub fn front(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Removes and returns the oldest `k` buffered ops (fewer if the
    /// buffer holds fewer).
    pub fn drain_front(&mut self, k: usize) -> Vec<T> {
        let k = k.min(self.queue.len());
        self.queue.drain(..k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_hands_the_overflow_back() {
        let mut b: AdmissionBuffer<u32> = AdmissionBuffer::new(2, BackpressurePolicy::Shed);
        assert_eq!(b.offer(1), Offer::Admitted);
        assert_eq!(b.offer(2), Offer::Admitted);
        assert_eq!(b.offer(3), Offer::Shed(3));
        assert_eq!(b.len(), 2);
        assert_eq!(b.parked_len(), 0);
    }

    #[test]
    fn block_parks_and_refills_in_order() {
        let mut b: AdmissionBuffer<u32> = AdmissionBuffer::new(2, BackpressurePolicy::Block);
        for v in 1..=5 {
            b.offer(v);
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.parked_len(), 3);
        assert_eq!(b.drain_front(2), vec![1, 2]);
        b.refill();
        assert_eq!(b.len(), 2);
        assert_eq!(b.parked_len(), 1);
        // Arrival order is preserved across the parked queue.
        assert_eq!(b.drain_front(2), vec![3, 4]);
        b.refill();
        assert_eq!(b.drain_front(2), vec![5]);
        assert!(b.fully_drained());
    }

    #[test]
    fn parked_ops_keep_priority_over_new_arrivals() {
        let mut b: AdmissionBuffer<u32> = AdmissionBuffer::new(1, BackpressurePolicy::Block);
        b.offer(1);
        b.offer(2); // parked
        b.drain_front(1);
        // Buffer has room but 2 is still parked: 3 must queue behind it.
        assert_eq!(b.offer(3), Offer::Blocked);
        b.refill();
        assert_eq!(b.drain_front(1), vec![2]);
    }

    #[test]
    fn drain_front_is_clamped() {
        let mut b: AdmissionBuffer<u32> = AdmissionBuffer::new(4, BackpressurePolicy::Shed);
        b.offer(7);
        assert_eq!(b.drain_front(10), vec![7]);
        assert!(b.fully_drained());
    }
}
