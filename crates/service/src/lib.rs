//! The continuous-service front-end of the DMPC reproduction.
//!
//! Every bench and harness before this crate replayed its workload offline
//! in one shot. This crate closes the loop on the paper's north-star shape —
//! a dynamic service "serving heavy traffic from millions of users" — by
//! putting an *online* admission path in front of the same algorithms:
//!
//! * A deterministic simulated clock (`dmpc_mpc::SimClock`) drives op
//!   arrivals from the seeded arrival processes of `dmpc_graph::arrivals`.
//! * Arrivals queue in a bounded [`AdmissionBuffer`]; when it fills, the
//!   service applies explicit backpressure ([`BackpressurePolicy`]) —
//!   shed-with-record or block — never silent loss.
//! * Buffered ops coalesce into batch/wave windows that close on **size or
//!   deadline** ([`WindowPolicy`]); closed windows execute through the
//!   existing batch plane and query waves, capped at the algorithm's
//!   `admission_budget` so a window never outruns the send-cap budget.
//! * Per-op latency is metered end to end — enqueue → admit → complete —
//!   in rounds, ticks, and wall-clock seconds, aggregated per op kind into
//!   [`ServiceReport`] histograms with exact p50/p90/p99.
//!
//! The clock only decides *where* windows close, never *how* a closed
//! window executes, so an online run is bit-identical (digests, answers,
//! audits) to an offline [`replay_windows`] of the same coalesced windows —
//! including through mid-flight failures, because chaos epochs abort and
//! retry to a clean run (see [`run_service_chaos`]).

pub mod buffer;
pub mod service;
pub mod window;

pub use buffer::{AdmissionBuffer, BackpressurePolicy, Offer, ShedRecord};
pub use service::{
    replay_windows, run_service, run_service_chaos, OfflineReplay, ServiceAlgorithm, ServiceConfig,
    ServiceReport, UnweightedService, WeightedEdgeService,
};
pub use window::{CloseReason, WindowPolicy, WindowRecord};
