//! The service loop: clocked ingestion → windowed admission → metered
//! execution, with offline-replay equivalence and chaos tolerance.
//!
//! # Determinism contract
//!
//! The simulated clock decides *where* windows close, never *how* a closed
//! window executes: a window runs as the maximal same-kind runs of its ops
//! (write bursts through `apply_batch`, read bursts through
//! `answer_queries`), exactly like an offline replay of the same window
//! sequence. So the online run's digests, answers, and audits are
//! bit-identical to [`replay_windows`] over its [`WindowRecord`] log — and
//! this holds with a chaos plan armed, because a failed window epoch aborts
//! (survivors roll back to the pre-window frontier, victims rebuild from an
//! off-cluster replica) and retries until it completes cleanly.

use crate::buffer::{AdmissionBuffer, BackpressurePolicy, Offer, ShedRecord};
use crate::window::{CloseReason, WindowPolicy, WindowRecord};
use dmpc_core::{DynamicGraphAlgorithm, ElasticAlgorithm, WeightedDynamicGraphAlgorithm};
use dmpc_graph::arrivals::Arrival;
use dmpc_graph::streams::with_weights;
use dmpc_graph::{Op, Query, QueryAnswer, Update, Weight};
use dmpc_mpc::{
    BatchMetrics, ChaosKind, ChaosPlan, LatencyStats, MachineId, QueryMetrics, RecoveryMetrics,
    SimClock, UpdateMetrics,
};
use std::time::Instant;

/// The uniform surface the service loop drives: apply a window of writes,
/// answer a wave of reads, expose the admission budget. Unweighted
/// algorithms join through [`UnweightedService`], weighted ones (MST)
/// through [`WeightedEdgeService`], so one loop serves both interfaces.
pub trait ServiceAlgorithm {
    /// Short name used in reports.
    fn service_name(&self) -> &'static str;

    /// Applies one window of writes as a single unit of work.
    fn apply_window(&mut self, updates: &[Update]) -> BatchMetrics;

    /// Answers one wave of reads, answers index-aligned with `queries`.
    fn answer_window(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics);

    /// Largest admissible window under the send-cap budget (see
    /// `DynamicGraphAlgorithm::admission_budget`).
    fn admission_budget(&self) -> Option<usize>;
}

/// Adapter: any unweighted dynamic algorithm serves as-is.
#[derive(Debug)]
pub struct UnweightedService<A> {
    /// The wrapped algorithm.
    pub inner: A,
}

impl<A> UnweightedService<A> {
    /// Wraps `inner` for service.
    pub fn new(inner: A) -> Self {
        UnweightedService { inner }
    }
}

impl<A: DynamicGraphAlgorithm> ServiceAlgorithm for UnweightedService<A> {
    fn service_name(&self) -> &'static str {
        self.inner.name()
    }

    fn apply_window(&mut self, updates: &[Update]) -> BatchMetrics {
        self.inner.apply_batch(updates)
    }

    fn answer_window(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
        self.inner.answer_queries(queries)
    }

    fn admission_budget(&self) -> Option<usize> {
        DynamicGraphAlgorithm::admission_budget(&self.inner)
    }
}

/// Adapter: a weighted algorithm (MST) serves an unweighted op stream by
/// deriving each inserted edge's weight from the edge itself
/// (`streams::edge_weight` under a fixed seed), so the online run and any
/// offline replay of the same windows see identical weighted updates.
#[derive(Debug)]
pub struct WeightedEdgeService<A> {
    /// The wrapped weighted algorithm.
    pub inner: A,
    max_w: Weight,
    weight_seed: u64,
}

impl<A> WeightedEdgeService<A> {
    /// Wraps `inner`; insert weights are drawn in `1..=max_w` keyed by
    /// `(edge, weight_seed)`.
    pub fn new(inner: A, max_w: Weight, weight_seed: u64) -> Self {
        WeightedEdgeService {
            inner,
            max_w,
            weight_seed,
        }
    }
}

impl<A: WeightedDynamicGraphAlgorithm> ServiceAlgorithm for WeightedEdgeService<A> {
    fn service_name(&self) -> &'static str {
        self.inner.name()
    }

    fn apply_window(&mut self, updates: &[Update]) -> BatchMetrics {
        let weighted = with_weights(updates, self.max_w, self.weight_seed);
        self.inner.apply_batch(&weighted)
    }

    fn answer_window(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
        self.inner.answer_queries(queries)
    }

    fn admission_budget(&self) -> Option<usize> {
        WeightedDynamicGraphAlgorithm::admission_budget(&self.inner)
    }
}

macro_rules! elastic_via_inner {
    ($ty:ident) => {
        impl<A: ElasticAlgorithm> ElasticAlgorithm for $ty<A> {
            fn n_shards(&self) -> usize {
                self.inner.n_shards()
            }
            fn killable(&self, m: MachineId) -> bool {
                self.inner.killable(m)
            }
            fn is_alive(&self, m: MachineId) -> bool {
                self.inner.is_alive(m)
            }
            fn round_limit(&self) -> usize {
                self.inner.round_limit()
            }
            fn arm_in_round(&mut self, at_round: u32, kind: ChaosKind) {
                self.inner.arm_in_round(at_round, kind)
            }
            fn restore_machine(&mut self, m: MachineId, snap: &str) {
                self.inner.restore_machine(m, snap)
            }
            fn supports_restore(&self) -> bool {
                self.inner.supports_restore()
            }
            fn snapshot_machine(&self, m: MachineId) -> String {
                self.inner.snapshot_machine(m)
            }
            fn restore(&mut self, snaps: &[String]) {
                self.inner.restore(snaps)
            }
            fn kill(&mut self, m: MachineId) {
                self.inner.kill(m)
            }
            fn revive(&mut self, m: MachineId, snap: &str) -> UpdateMetrics {
                self.inner.revive(m, snap)
            }
            fn split(&mut self, m: MachineId) -> Option<UpdateMetrics> {
                self.inner.split(m)
            }
            fn merge(&mut self, m: MachineId) -> Option<UpdateMetrics> {
                self.inner.merge(m)
            }
            fn state_digest(&self) -> u64 {
                self.inner.state_digest()
            }
        }
    };
}

elastic_via_inner!(UnweightedService);
elastic_via_inner!(WeightedEdgeService);

/// Configuration of one service run.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// When windows close.
    pub window: WindowPolicy,
    /// Admission-buffer capacity in ops (>= 1).
    pub buffer_cap: usize,
    /// What happens when the buffer fills.
    pub backpressure: BackpressurePolicy,
    /// Chaos: epoch retries allowed per window before giving up.
    pub retry_budget: usize,
    /// Chaos: exponential-backoff base charged per aborted epoch, in
    /// rounds (latency cost of the retry pause).
    pub backoff_base_rounds: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            window: WindowPolicy::windowed(32, 8),
            buffer_cap: 256,
            backpressure: BackpressurePolicy::Shed,
            retry_budget: 3,
            backoff_base_rounds: 1,
        }
    }
}

/// Latency histograms for one op kind, in the three metered units.
#[derive(Clone, Debug, Default)]
pub struct LatencyBreakdown {
    /// Simulator rounds elapsed between enqueue and window completion
    /// (includes aborted-epoch, backoff, and recovery rounds under chaos).
    pub rounds: LatencyStats,
    /// Clock ticks between arrival and window close (queueing delay).
    pub ticks: LatencyStats,
    /// Wall-clock seconds of execution between enqueue and completion.
    pub secs: LatencyStats,
}

/// Everything one service run produced: admission accounting, the window
/// log, workload metrics, answers, and per-op latency histograms.
#[derive(Clone, Debug, Default)]
pub struct ServiceReport {
    /// Ops that reached the service.
    pub arrived: usize,
    /// Ops admitted through a window (`arrived == admitted + shed.len()`).
    pub admitted: usize,
    /// Ops shed under backpressure, with arrival ticks — never silent.
    pub shed: Vec<ShedRecord>,
    /// Every closed window, in execution order (the offline-replay input).
    pub windows: Vec<WindowRecord>,
    /// Combined write-plane metrics (completed epochs only).
    pub writes: BatchMetrics,
    /// Combined read-plane metrics.
    pub reads: QueryMetrics,
    /// Answers to admitted reads, in admitted order.
    pub answers: Vec<QueryAnswer>,
    /// Write-op latency histograms.
    pub write_latency: LatencyBreakdown,
    /// Read-op latency histograms.
    pub read_latency: LatencyBreakdown,
    /// Peak ops in the bounded buffer.
    pub peak_buffered: usize,
    /// Peak ops parked in the blocked-ingress queue.
    pub peak_parked: usize,
    /// Ticks the run spanned.
    pub ticks: u64,
    /// Wall-clock seconds spent executing windows.
    pub wall_secs: f64,
    /// Chaos: aborted window epochs retried.
    pub retries: usize,
    /// Chaos: rounds burned in aborted epochs (latency, not workload).
    pub aborted_rounds: usize,
    /// Chaos: metered recovery traffic (revive handoffs + replica replay).
    pub recovery: RecoveryMetrics,
    /// State digest after the last window.
    pub final_digest: u64,
}

impl ServiceReport {
    /// Model violations across both planes and recovery (0 on a clean run:
    /// aborted chaos epochs are discarded, not merged).
    pub fn violations(&self) -> usize {
        self.writes.violations + self.reads.violations + self.recovery.violations
    }

    /// Completed workload rounds (writes + reads) per admitted op — the
    /// amortization the windowed policy buys over per-op admission.
    pub fn amortized_rounds_per_op(&self) -> f64 {
        if self.admitted == 0 {
            return 0.0;
        }
        (self.writes.rounds + self.reads.rounds) as f64 / self.admitted as f64
    }
}

/// What an offline replay of a window log produced, for equivalence checks
/// against the online [`ServiceReport`].
#[derive(Clone, Debug, Default)]
pub struct OfflineReplay {
    /// Combined write-plane metrics.
    pub writes: BatchMetrics,
    /// Combined read-plane metrics.
    pub reads: QueryMetrics,
    /// Answers in admitted order.
    pub answers: Vec<QueryAnswer>,
    /// State digest after the last window.
    pub final_digest: u64,
}

/// One buffered op with its latency basis.
struct Pending {
    tick: u64,
    op: Op,
    rounds0: usize,
    secs0: f64,
}

/// A window's ops split into maximal same-kind runs, in admitted order —
/// the execution shape shared by the online loop and the offline replay.
enum OpRun {
    Writes(Vec<Update>),
    Reads(Vec<Query>),
}

fn split_runs(ops: &[Op]) -> Vec<OpRun> {
    let mut runs: Vec<OpRun> = Vec::new();
    for op in ops {
        match (op, runs.last_mut()) {
            (Op::Write(u), Some(OpRun::Writes(v))) => v.push(*u),
            (Op::Write(u), _) => runs.push(OpRun::Writes(vec![*u])),
            (Op::Read(q), Some(OpRun::Reads(v))) => v.push(*q),
            (Op::Read(q), _) => runs.push(OpRun::Reads(vec![*q])),
        }
    }
    runs
}

/// Runs the full service loop without faults. `make` builds the (fresh)
/// algorithm instance; the report's window log and final digest feed the
/// offline-equivalence check ([`replay_windows`]).
pub fn run_service<A, F>(make: F, arrivals: &[Arrival], cfg: &ServiceConfig) -> ServiceReport
where
    A: ServiceAlgorithm + ElasticAlgorithm,
    F: Fn() -> A,
{
    run_service_chaos(make, arrivals, cfg, &ChaosPlan::new(0))
}

/// Runs the service loop with a chaos plan armed. Plan events must be
/// *mid-flight kills*, keyed by **window index** (`at_batch` = the index
/// of the targeted window in execution order); they arm before the
/// targeted window's first write run. A window whose epoch loses a machine
/// is aborted — survivors roll back to the pre-window frontier locally,
/// victims rebuild from an off-cluster replica replay of the completed
/// write log — and retried under `cfg.retry_budget` with exponential
/// backoff. Aborted rounds count toward the window's ops' *latency* but
/// never toward workload metrics, so SLOs are measured through failures
/// while digests stay bit-identical to the failure-free run.
pub fn run_service_chaos<A, F>(
    make: F,
    arrivals: &[Arrival],
    cfg: &ServiceConfig,
    plan: &ChaosPlan,
) -> ServiceReport
where
    A: ServiceAlgorithm + ElasticAlgorithm,
    F: Fn() -> A,
{
    assert!(
        arrivals.windows(2).all(|w| w[0].tick <= w[1].tick),
        "arrival ticks must be monotone (use arrivals::arrival_trace)"
    );
    for ev in &plan.events {
        assert!(
            ev.mid_flight() && matches!(ev.kind, ChaosKind::Kill(_)),
            "service chaos arms mid-flight kills only (window-indexed)"
        );
    }
    let a = make();
    let killable = (0..a.n_shards() as MachineId)
        .filter(|&m| a.killable(m))
        .count();
    plan.validate(a.n_shards(), killable, a.round_limit())
        .expect("invalid chaos plan");
    let window_cap = cfg
        .window
        .max_ops
        .min(a.admission_budget().unwrap_or(usize::MAX))
        .max(1);
    let mut lp = ServiceLoop {
        a,
        make: &make,
        plan,
        cfg,
        rep: ServiceReport::default(),
        cum_rounds: 0,
        cum_secs: 0.0,
        write_log: Vec::new(),
        window_index: 0,
    };
    let mut buf: AdmissionBuffer<Pending> = AdmissionBuffer::new(cfg.buffer_cap, cfg.backpressure);
    let mut clock = SimClock::new();
    let mut next = 0usize;
    loop {
        let t = clock.now();
        // 1. Enqueue this tick's arrivals under backpressure.
        while next < arrivals.len() && arrivals[next].tick == t {
            let op = arrivals[next].op;
            next += 1;
            lp.rep.arrived += 1;
            let p = Pending {
                tick: t,
                op,
                rounds0: lp.cum_rounds,
                secs0: lp.cum_secs,
            };
            match buf.offer(p) {
                Offer::Admitted | Offer::Blocked => {}
                Offer::Shed(p) => lp.rep.shed.push(ShedRecord { tick: t, op: p.op }),
            }
        }
        lp.rep.peak_buffered = lp.rep.peak_buffered.max(buf.len());
        lp.rep.peak_parked = lp.rep.peak_parked.max(buf.parked_len());
        // 2. Size rule first — it wins when size and deadline fire on the
        // same tick, keeping close reasons deterministic.
        while buf.len() >= window_cap {
            let pend = buf.drain_front(window_cap);
            lp.execute_window(pend, CloseReason::Size, t);
            buf.refill();
        }
        // 3. Deadline rule. Never fires on an empty buffer: an idle tick
        // is a no-op — no window record, no metrics row.
        if buf
            .front()
            .is_some_and(|p| t - p.tick >= cfg.window.deadline_ticks)
        {
            let len = buf.len();
            let pend = buf.drain_front(len);
            lp.execute_window(pend, CloseReason::Deadline, t);
            buf.refill();
        }
        // 4. Advance: stop once the trace is consumed and drained; jump
        // idle stretches in one step.
        if next >= arrivals.len() && buf.fully_drained() {
            break;
        }
        if buf.fully_drained() {
            clock.advance(arrivals[next].tick - t);
        } else {
            clock.tick();
        }
    }
    lp.rep.ticks = clock.now();
    lp.rep.wall_secs = lp.cum_secs;
    lp.rep.final_digest = lp.a.state_digest();
    lp.rep
}

/// Offline replay of a service run's coalesced windows on a fresh
/// instance: each window re-executes as the identical maximal same-kind
/// runs, so digests, answers, and metrics must match the online run
/// bit-for-bit.
pub fn replay_windows<A: ServiceAlgorithm + ElasticAlgorithm>(
    alg: &mut A,
    windows: &[WindowRecord],
) -> OfflineReplay {
    let mut out = OfflineReplay::default();
    for w in windows {
        for run in split_runs(&w.ops) {
            match run {
                OpRun::Writes(updates) => out.writes.merge(&alg.apply_window(&updates)),
                OpRun::Reads(queries) => {
                    let (answers, qm) = alg.answer_window(&queries);
                    out.answers.extend(answers);
                    out.reads.merge(&qm);
                }
            }
        }
    }
    out.final_digest = alg.state_digest();
    out
}

/// Mutable state threaded through window executions.
struct ServiceLoop<'p, A, F> {
    a: A,
    make: &'p F,
    plan: &'p ChaosPlan,
    cfg: &'p ServiceConfig,
    rep: ServiceReport,
    cum_rounds: usize,
    cum_secs: f64,
    write_log: Vec<Vec<Update>>,
    window_index: usize,
}

impl<A, F> ServiceLoop<'_, A, F>
where
    A: ServiceAlgorithm + ElasticAlgorithm,
    F: Fn() -> A,
{
    /// Executes one closed window and meters its ops' end-to-end latency.
    fn execute_window(&mut self, pend: Vec<Pending>, reason: CloseReason, now: u64) {
        debug_assert!(!pend.is_empty(), "windows never close empty");
        let ops: Vec<Op> = pend.iter().map(|p| p.op).collect();
        let opened_tick = pend[0].tick;
        let started = Instant::now();
        let mut rounds = 0usize;
        // Chaos arms on the window's *first* write run only: one epoch
        // fence per window, and a pure read window lets the events lapse.
        let mut first_write = true;
        for run in split_runs(&ops) {
            match run {
                OpRun::Writes(updates) => {
                    rounds += self.run_write_epoch(updates, first_write);
                    first_write = false;
                }
                OpRun::Reads(queries) => {
                    let (answers, qm) = self.a.answer_window(&queries);
                    rounds += qm.rounds;
                    self.rep.answers.extend(answers);
                    self.rep.reads.merge(&qm);
                }
            }
        }
        self.cum_rounds += rounds;
        self.cum_secs += started.elapsed().as_secs_f64();
        for p in &pend {
            let lat = match p.op {
                Op::Write(_) => &mut self.rep.write_latency,
                Op::Read(_) => &mut self.rep.read_latency,
            };
            lat.rounds.record((self.cum_rounds - p.rounds0) as f64);
            lat.ticks.record((now - p.tick) as f64);
            lat.secs.record(self.cum_secs - p.secs0);
        }
        self.rep.admitted += pend.len();
        self.rep.windows.push(WindowRecord {
            index: self.window_index,
            opened_tick,
            closed_tick: now,
            reason,
            ops,
        });
        self.window_index += 1;
    }

    /// Runs one write run under the epoch fence. Returns the rounds the
    /// run cost end to end — the completed epoch plus, under chaos, every
    /// aborted attempt, backoff pause, and recovery handoff (those extra
    /// rounds are latency only; workload metrics merge the clean epoch).
    fn run_write_epoch(&mut self, updates: Vec<Update>, arm_allowed: bool) -> usize {
        let armed: Vec<(u32, MachineId)> = if arm_allowed {
            self.plan
                .events_at(self.window_index)
                .filter_map(|e| match e.kind {
                    ChaosKind::Kill(m) => Some((e.at_round.unwrap_or(1), m)),
                    _ => None,
                })
                .collect()
        } else {
            Vec::new()
        };
        if armed.is_empty() {
            let bm = self.a.apply_window(&updates);
            let rounds = bm.rounds;
            self.rep.writes.merge(&bm);
            self.write_log.push(updates);
            return rounds;
        }
        // Epoch fence (the PR 8 pattern at window granularity): checkpoint
        // the pre-window frontier, arm the kills, and on any victim abort
        // the attempt — survivors roll back locally, victims rebuild from
        // an off-cluster replica — then retry the identical run.
        let frontier = self.a.checkpoint();
        let mut extra = 0usize;
        let mut attempt = 0usize;
        loop {
            if attempt == 0 {
                for &(at_round, m) in &armed {
                    if self.a.killable(m) && self.a.is_alive(m) {
                        self.a.arm_in_round(at_round, ChaosKind::Kill(m));
                    }
                }
            }
            let bm = self.a.apply_window(&updates);
            let victims: Vec<MachineId> = (0..self.a.n_shards() as MachineId)
                .filter(|&m| !self.a.is_alive(m))
                .collect();
            if victims.is_empty() && bm.lost_words == 0 && bm.lost_messages == 0 {
                let rounds = bm.rounds;
                self.rep.writes.merge(&bm);
                self.write_log.push(updates);
                return extra + rounds;
            }
            assert!(
                attempt < self.cfg.retry_budget,
                "window {} exhausted its retry budget",
                self.window_index
            );
            // Abort: the attempt's metrics are latency, never workload.
            self.rep.retries += 1;
            self.rep.aborted_rounds += bm.rounds;
            extra += bm.rounds;
            for &m in &victims {
                self.a.kill(m);
            }
            for m in 0..self.a.n_shards() as MachineId {
                if self.a.is_alive(m) {
                    self.a.restore_machine(m, &frontier[m as usize]);
                }
            }
            for &m in &victims {
                // Determinism makes the replica's shard `m` bit-identical
                // to the pre-window state: it replayed exactly the
                // completed write runs and nothing else.
                let mut replica = (self.make)();
                let mut replay = BatchMetrics::default();
                for past in &self.write_log {
                    replay.merge(&replica.apply_window(past));
                }
                let snap = replica.snapshot_machine(m);
                let um = self.a.revive(m, &snap);
                extra += um.rounds;
                self.rep.recovery.absorb_event(&um);
                self.rep.recovery.absorb_replay(&replay);
            }
            extra += self.cfg.backoff_base_rounds << attempt.min(16);
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::Edge;

    /// A deterministic in-memory stub: a write run costs 3 rounds, a read
    /// wave 2; the digest folds the applied update log.
    struct StubAlg {
        log: Vec<Update>,
        budget: Option<usize>,
    }

    impl StubAlg {
        fn maker(budget: Option<usize>) -> impl Fn() -> StubAlg {
            move || StubAlg {
                log: Vec::new(),
                budget,
            }
        }
    }

    impl ServiceAlgorithm for StubAlg {
        fn service_name(&self) -> &'static str {
            "stub"
        }
        fn apply_window(&mut self, updates: &[Update]) -> BatchMetrics {
            self.log.extend_from_slice(updates);
            BatchMetrics {
                updates: updates.len(),
                rounds: 3,
                ..BatchMetrics::default()
            }
        }
        fn answer_window(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
            let answers = vec![QueryAnswer::Bool(true); queries.len()];
            let qm = QueryMetrics {
                queries: queries.len(),
                rounds: 2,
                ..QueryMetrics::default()
            };
            (answers, qm)
        }
        fn admission_budget(&self) -> Option<usize> {
            self.budget
        }
    }

    impl ElasticAlgorithm for StubAlg {
        fn n_shards(&self) -> usize {
            1
        }
        fn killable(&self, _m: MachineId) -> bool {
            false
        }
        fn is_alive(&self, _m: MachineId) -> bool {
            true
        }
        fn round_limit(&self) -> usize {
            64
        }
        fn arm_in_round(&mut self, _at_round: u32, _kind: ChaosKind) {
            unreachable!("stub is never chaos-armed")
        }
        fn restore_machine(&mut self, _m: MachineId, _snap: &str) {}
        fn snapshot_machine(&self, _m: MachineId) -> String {
            format!("{:?}", self.log)
        }
        fn restore(&mut self, _snaps: &[String]) {}
        fn kill(&mut self, _m: MachineId) {
            unreachable!("stub machines are not killable")
        }
        fn revive(&mut self, _m: MachineId, _snap: &str) -> UpdateMetrics {
            unreachable!("stub machines are not killable")
        }
        fn state_digest(&self) -> u64 {
            self.log.iter().fold(0xcbf2_9ce4_8422_2325, |h, u| {
                let word = match *u {
                    Update::Insert(e) => 1u64 << 40 | (e.u as u64) << 20 | e.v as u64,
                    Update::Delete(e) => 2u64 << 40 | (e.u as u64) << 20 | e.v as u64,
                };
                (h ^ word).wrapping_mul(0x0000_0100_0000_01b3)
            })
        }
    }

    fn write_at(tick: u64, a: u32, b: u32) -> Arrival {
        Arrival {
            tick,
            op: Op::Write(Update::Insert(Edge::new(a, b))),
        }
    }

    fn read_at(tick: u64, a: u32, b: u32) -> Arrival {
        Arrival {
            tick,
            op: Op::Read(Query::Connected(a, b)),
        }
    }

    fn cfg(window: WindowPolicy, buffer_cap: usize, bp: BackpressurePolicy) -> ServiceConfig {
        ServiceConfig {
            window,
            buffer_cap,
            backpressure: bp,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn deadline_never_fires_on_an_empty_buffer() {
        // Two lonely ops separated by a long idle stretch: the idle ticks
        // between their windows must produce no window records at all.
        let arrivals = [write_at(0, 0, 1), write_at(50, 1, 2)];
        let c = cfg(WindowPolicy::windowed(8, 2), 16, BackpressurePolicy::Shed);
        let rep = run_service(StubAlg::maker(None), &arrivals, &c);
        assert_eq!(rep.windows.len(), 2, "idle ticks must not emit windows");
        assert!(rep.windows.iter().all(|w| !w.ops.is_empty()));
        assert_eq!(rep.windows[0].closed_tick, 2);
        assert_eq!(rep.windows[0].reason, CloseReason::Deadline);
        assert_eq!(rep.windows[1].closed_tick, 52);
        assert_eq!(rep.admitted, 2);
        assert_eq!(rep.shed.len(), 0);
    }

    #[test]
    fn size_beats_deadline_on_the_same_tick() {
        // One op per tick; at tick 3 the fourth op fills the window at the
        // exact moment the oldest op's 3-tick deadline expires. The size
        // rule is checked first, so the close reason is Size.
        let arrivals = [
            write_at(0, 0, 1),
            write_at(1, 1, 2),
            write_at(2, 2, 3),
            write_at(3, 3, 4),
        ];
        let c = cfg(WindowPolicy::windowed(4, 3), 16, BackpressurePolicy::Shed);
        let rep = run_service(StubAlg::maker(None), &arrivals, &c);
        assert_eq!(rep.windows.len(), 1);
        assert_eq!(rep.windows[0].reason, CloseReason::Size);
        assert_eq!(rep.windows[0].ops.len(), 4);
        assert_eq!(rep.windows[0].closed_tick, 3);
    }

    #[test]
    fn shed_backpressure_records_every_drop() {
        // Five simultaneous arrivals into a 2-op buffer: two admitted,
        // three shed — each with a record, never silently.
        let arrivals: Vec<Arrival> = (0..5).map(|i| write_at(0, i, i + 1)).collect();
        let c = cfg(WindowPolicy::windowed(2, 4), 2, BackpressurePolicy::Shed);
        let rep = run_service(StubAlg::maker(None), &arrivals, &c);
        assert_eq!(rep.arrived, 5);
        assert_eq!(rep.admitted, 2);
        assert_eq!(rep.shed.len(), 3);
        assert_eq!(rep.arrived, rep.admitted + rep.shed.len());
        assert!(rep.shed.iter().all(|s| s.tick == 0));
    }

    #[test]
    fn block_backpressure_parks_and_loses_nothing() {
        let arrivals: Vec<Arrival> = (0..5).map(|i| write_at(0, i, i + 1)).collect();
        let c = cfg(WindowPolicy::windowed(2, 4), 2, BackpressurePolicy::Block);
        let rep = run_service(StubAlg::maker(None), &arrivals, &c);
        assert_eq!(rep.arrived, 5);
        assert_eq!(rep.admitted, 5, "blocked ops must all be admitted");
        assert_eq!(rep.shed.len(), 0);
        assert_eq!(rep.peak_parked, 3);
        let total_ops: usize = rep.windows.iter().map(|w| w.ops.len()).sum();
        assert_eq!(total_ops, 5);
    }

    #[test]
    fn per_op_policy_closes_one_op_windows() {
        let arrivals = [write_at(0, 0, 1), read_at(0, 0, 1), write_at(2, 1, 2)];
        let c = cfg(WindowPolicy::per_op(), 16, BackpressurePolicy::Shed);
        let rep = run_service(StubAlg::maker(None), &arrivals, &c);
        assert_eq!(rep.windows.len(), 3);
        assert!(rep.windows.iter().all(|w| w.ops.len() == 1));
        assert!(rep.windows.iter().all(|w| w.reason == CloseReason::Size));
        assert_eq!(rep.answers, vec![QueryAnswer::Bool(true)]);
    }

    #[test]
    fn admission_budget_caps_the_window() {
        let arrivals: Vec<Arrival> = (0..6).map(|i| write_at(0, i, i + 1)).collect();
        let c = cfg(WindowPolicy::windowed(100, 4), 16, BackpressurePolicy::Shed);
        let rep = run_service(StubAlg::maker(Some(2)), &arrivals, &c);
        assert!(rep.windows.iter().all(|w| w.ops.len() <= 2));
        assert_eq!(rep.admitted, 6);
    }

    #[test]
    fn latency_counts_queueing_ticks_and_rounds() {
        // Two writes arrive at t0; deadline 3 closes them at t3 as one
        // 3-round window: both ops waited 3 ticks and 3 rounds.
        let arrivals = [write_at(0, 0, 1), write_at(0, 1, 2)];
        let c = cfg(WindowPolicy::windowed(8, 3), 16, BackpressurePolicy::Shed);
        let rep = run_service(StubAlg::maker(None), &arrivals, &c);
        assert_eq!(rep.write_latency.ticks.count(), 2);
        assert_eq!(rep.write_latency.ticks.p50(), 3.0);
        assert_eq!(rep.write_latency.rounds.p99(), 3.0);
        assert_eq!(rep.read_latency.rounds.count(), 0);
        assert_eq!(rep.violations(), 0);
    }

    #[test]
    fn offline_replay_matches_online_run() {
        let arrivals: Vec<Arrival> = (0..20)
            .map(|i| {
                if i % 3 == 2 {
                    read_at(i as u64 / 2, i % 7, i % 7 + 1)
                } else {
                    write_at(i as u64 / 2, i % 7, i % 7 + 1)
                }
            })
            .collect();
        let c = cfg(WindowPolicy::windowed(4, 2), 32, BackpressurePolicy::Shed);
        let rep = run_service(StubAlg::maker(None), &arrivals, &c);
        let mut fresh = StubAlg::maker(None)();
        let off = replay_windows(&mut fresh, &rep.windows);
        assert_eq!(off.final_digest, rep.final_digest);
        assert_eq!(off.answers, rep.answers);
        assert_eq!(off.writes.rounds, rep.writes.rounds);
        assert_eq!(off.reads.rounds, rep.reads.rounds);
    }

    #[test]
    #[should_panic(expected = "mid-flight kills only")]
    fn boundary_chaos_events_are_rejected() {
        let plan = ChaosPlan::new(1).with_event(0, ChaosKind::Kill(0));
        let arrivals = [write_at(0, 0, 1)];
        let c = ServiceConfig::default();
        run_service_chaos(StubAlg::maker(None), &arrivals, &c, &plan);
    }
}
