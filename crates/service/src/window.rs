//! The window-close policy: buffered ops coalesce into batch/wave windows
//! that close on **size or deadline**, whichever fires first.

use dmpc_graph::Op;

/// When an admission window closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowPolicy {
    /// Close as soon as this many ops are buffered (>= 1). The service loop
    /// additionally caps windows at the algorithm's `admission_budget`, so
    /// a closed window never outruns what one chunked batch round trip can
    /// carry under the send-cap budget.
    pub max_ops: usize,
    /// Close when the oldest buffered op has waited this many ticks
    /// (0: every tick with a nonempty buffer closes a window).
    pub deadline_ticks: u64,
}

impl WindowPolicy {
    /// The per-op baseline: every op is admitted alone, the moment it
    /// arrives — no batching, no amortization.
    pub fn per_op() -> Self {
        WindowPolicy {
            max_ops: 1,
            deadline_ticks: 0,
        }
    }

    /// A size-or-deadline window. Panics when `max_ops` is 0.
    pub fn windowed(max_ops: usize, deadline_ticks: u64) -> Self {
        assert!(max_ops >= 1, "a window must admit at least one op");
        WindowPolicy {
            max_ops,
            deadline_ticks,
        }
    }
}

/// Why a window closed. The service loop checks the size rule first, so
/// when size and deadline fire on the same tick the close reason is
/// deterministically [`CloseReason::Size`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// The buffer reached the window cap.
    Size,
    /// The oldest buffered op hit its deadline. A deadline never fires on
    /// an empty buffer: an idle tick is a no-op, not an empty window.
    Deadline,
}

/// One closed admission window: the coalesced unit of work the service
/// executed, recorded so an offline replay can re-run the identical
/// windows (`service::replay_windows`).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRecord {
    /// Zero-based window sequence number (chaos plans key on this).
    pub index: usize,
    /// Arrival tick of the window's oldest op.
    pub opened_tick: u64,
    /// Tick the window closed and executed.
    pub closed_tick: u64,
    /// Which rule closed it.
    pub reason: CloseReason,
    /// The admitted ops, in arrival order; never empty.
    pub ops: Vec<Op>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_policy_is_one_op_zero_wait() {
        let p = WindowPolicy::per_op();
        assert_eq!(p.max_ops, 1);
        assert_eq!(p.deadline_ticks, 0);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn zero_size_window_is_rejected() {
        let _ = WindowPolicy::windowed(0, 4);
    }
}
