//! The paper's Section 7 black-box reduction (Lemma 7.1): any sequential
//! dynamic algorithm with update time `u(N)` yields a DMPC algorithm with
//! `O(u(N))` rounds per update, O(1) active machines per round and O(1)
//! communication per round.
//!
//! The simulation dedicates one machine `M_MRA` to run the sequential
//! algorithm and treats the remaining machines as paged memory: every
//! memory probe is one request/reply round-trip between `M_MRA` and the
//! machine holding the page. The wrappers here run the (probe-counted)
//! sequential structures from `dmpc-seqdyn` and translate probe counts into
//! the metered quantities: `rounds = 2 * probes`, `active machines <= 2`,
//! `communication per round = O(1)` words. The amortized/worst-case and
//! deterministic/randomized character of the inner algorithm carries over
//! unchanged, exactly as the lemma states.
//!
//! # Example
//!
//! ```
//! use dmpc_core::DynamicGraphAlgorithm;
//! use dmpc_graph::Edge;
//! use dmpc_reduction::ReducedConnectivity;
//!
//! let mut alg = ReducedConnectivity::new(8);
//! let m = alg.insert(Edge::new(0, 1));
//! assert_eq!(m.max_active_machines, 2); // M_MRA plus one memory machine
//! assert!(m.rounds >= 2); // two rounds (one round-trip) per memory probe
//! assert!(alg.connected(0, 1));
//! ```

use dmpc_core::{DynamicGraphAlgorithm, QueryableAlgorithm, WeightedDynamicGraphAlgorithm};
use dmpc_graph::{Edge, Weight};
use dmpc_mpc::{RoundMetrics, UpdateMetrics};
use dmpc_seqdyn::{HdtConnectivity, NsMatching, ProbeCounted, SeqDynMst};

/// Words exchanged per memory probe (request + reply headers).
const WORDS_PER_PROBE: usize = 4;

/// Converts a probe count into the reduction's DMPC metrics.
///
/// Every probe is one request round followed by one reply round between
/// `M_MRA` and the memory machine, each carrying half of
/// `WORDS_PER_PROBE`, so `rounds = 2 * probes` and the per-round detail
/// sums exactly to the totals (`per_round.len() == rounds`, like every
/// simulator-produced metric). A zero-probe operation touched no memory
/// machine and reports an all-zero update.
pub fn metrics_from_probes(probes: u64) -> UpdateMetrics {
    let rounds = (2 * probes) as usize;
    let words_per_round = WORDS_PER_PROBE / 2;
    let mut m = UpdateMetrics {
        rounds,
        max_active_machines: if probes > 0 { 2 } else { 0 },
        machines_touched: if probes > 0 { 2 } else { 0 },
        max_words_per_round: if probes > 0 { words_per_round } else { 0 },
        total_words: rounds * words_per_round,
        total_messages: rounds,
        ..Default::default()
    };
    for r in 0..rounds {
        m.per_round.push(RoundMetrics {
            round: r as u32 + 1,
            active_machines: 2,
            messages: 1,
            words: words_per_round,
            max_recv_words: words_per_round,
            max_send_words: words_per_round,
        });
    }
    m
}

/// Reduction row "Connected comps": sequential HDT under the simulation.
pub struct ReducedConnectivity {
    inner: HdtConnectivity,
}

impl ReducedConnectivity {
    /// Creates the reduced algorithm on `n` vertices.
    pub fn new(n: usize) -> Self {
        ReducedConnectivity {
            inner: HdtConnectivity::new(n),
        }
    }

    /// Connectivity query (also a metered O(1)-probe operation).
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.inner.connected(a, b)
    }
}

impl QueryableAlgorithm for ReducedConnectivity {}

impl DynamicGraphAlgorithm for ReducedConnectivity {
    fn name(&self) -> &'static str {
        "reduction-hdt-connectivity"
    }

    fn insert(&mut self, e: Edge) -> UpdateMetrics {
        self.inner.insert(e);
        metrics_from_probes(self.inner.take_probes())
    }

    fn delete(&mut self, e: Edge) -> UpdateMetrics {
        self.inner.delete(e);
        metrics_from_probes(self.inner.take_probes())
    }
}

/// Reduction row "Maximal matching": sequential Neiman–Solomon matching.
pub struct ReducedMatching {
    inner: NsMatching,
}

impl ReducedMatching {
    /// Creates the reduced algorithm.
    pub fn new(n: usize, m_max: usize) -> Self {
        ReducedMatching {
            inner: NsMatching::new(n, m_max),
        }
    }

    /// The maintained matching.
    pub fn matching(&self) -> dmpc_graph::matching::Matching {
        self.inner.matching()
    }
}

impl QueryableAlgorithm for ReducedMatching {}

impl DynamicGraphAlgorithm for ReducedMatching {
    fn name(&self) -> &'static str {
        "reduction-ns-matching"
    }

    fn insert(&mut self, e: Edge) -> UpdateMetrics {
        self.inner.insert(e);
        metrics_from_probes(self.inner.take_probes())
    }

    fn delete(&mut self, e: Edge) -> UpdateMetrics {
        self.inner.delete(e);
        metrics_from_probes(self.inner.take_probes())
    }
}

/// Reduction row "MST": sequential exact dynamic MSF.
pub struct ReducedMst {
    inner: SeqDynMst,
}

impl ReducedMst {
    /// Creates the reduced algorithm on `n` vertices.
    pub fn new(n: usize) -> Self {
        ReducedMst {
            inner: SeqDynMst::new(n),
        }
    }

    /// Weight of the maintained forest.
    pub fn forest_weight(&self) -> Weight {
        self.inner.forest_weight()
    }
}

impl QueryableAlgorithm for ReducedMst {}

impl WeightedDynamicGraphAlgorithm for ReducedMst {
    fn name(&self) -> &'static str {
        "reduction-dynamic-mst"
    }

    fn insert(&mut self, e: Edge, w: Weight) -> UpdateMetrics {
        self.inner.insert(e, w);
        metrics_from_probes(self.inner.take_probes())
    }

    fn delete(&mut self, e: Edge) -> UpdateMetrics {
        self.inner.delete(e);
        metrics_from_probes(self.inner.take_probes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::streams::{self, Update};

    #[test]
    fn reduction_metrics_shape() {
        let m = metrics_from_probes(10);
        assert_eq!(m.rounds, 20);
        assert_eq!(m.max_active_machines, 2);
        assert_eq!(m.machines_touched, 2);
        assert_eq!(m.max_words_per_round, WORDS_PER_PROBE / 2);
    }

    /// Regression (PR 4): the per-round detail must agree with the totals —
    /// `per_round.len() == rounds` and the per-round words/messages sum to
    /// `total_words`/`total_messages` — and a zero-probe operation must not
    /// fabricate rounds.
    #[test]
    fn reduction_per_round_consistent_with_totals() {
        for probes in [0u64, 1, 7, 32] {
            let m = metrics_from_probes(probes);
            assert_eq!(m.rounds, 2 * probes as usize, "probes={probes}");
            assert_eq!(m.per_round.len(), m.rounds, "probes={probes}");
            let words: usize = m.per_round.iter().map(|r| r.words).sum();
            let msgs: usize = m.per_round.iter().map(|r| r.messages).sum();
            assert_eq!(words, m.total_words, "probes={probes}");
            assert_eq!(msgs, m.total_messages, "probes={probes}");
            let max_w = m.per_round.iter().map(|r| r.words).max().unwrap_or(0);
            assert_eq!(max_w, m.max_words_per_round, "probes={probes}");
            let max_a = m
                .per_round
                .iter()
                .map(|r| r.active_machines)
                .max()
                .unwrap_or(0);
            assert_eq!(max_a, m.max_active_machines, "probes={probes}");
        }
        let zero = metrics_from_probes(0);
        assert_eq!(zero.rounds, 0);
        assert!(zero.per_round.is_empty());
        assert_eq!(zero.total_words, 0);
        assert_eq!(zero.machines_touched, 0);
    }

    #[test]
    fn reduced_connectivity_rounds_grow_with_updates_not_machines() {
        let n = 64;
        let mut alg = ReducedConnectivity::new(n);
        let ups = streams::tree_churn_stream(n, 80, 3);
        let mut worst_machines = 0;
        for &u in &ups {
            let m = match u {
                Update::Insert(e) => alg.insert(e),
                Update::Delete(e) => alg.delete(e),
            };
            worst_machines = worst_machines.max(m.max_active_machines);
            assert!(m.rounds >= 1);
        }
        // The reduction's signature: O(1) machines regardless of rounds.
        assert_eq!(worst_machines, 2);
    }

    #[test]
    fn reduced_matching_is_maximal() {
        let n = 40;
        let mut alg = ReducedMatching::new(n, 300);
        let ups = streams::churn_stream(n, 80, 200, 0.5, 2);
        let mut g = dmpc_graph::DynamicGraph::new(n);
        for &u in &ups {
            match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                    alg.insert(e);
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                    alg.delete(e);
                }
            }
        }
        let m = alg.matching();
        assert!(dmpc_graph::matching::is_maximal_matching(&g, &m));
    }
}
