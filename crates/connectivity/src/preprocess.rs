//! Preprocessing: building the initial sharded tour state.
//!
//! The paper's preprocessing computes a spanning forest by contraction in
//! O(log n) rounds and assembles the Euler tours with distributed prefix
//! sums (the psi/phi bookkeeping of Section 5). Here the forest and the
//! canonical tours are computed centrally and installed directly into the
//! owner machines — a documented substitution: Table 1 measures *per-update*
//! costs, and the static O(log n)-round behaviour is exhibited separately by
//! the [`crate::static_cc`] baseline running on the same simulator.
//!
//! For the (1+eps)-MST (Section 5.1), [`bucketize`] rounds every weight down
//! to a power of (1+eps) before the forest is built, so the constructed
//! forest is a (1+eps)-approximate MSF; updates then preserve the invariant
//! exactly as the paper describes ("the approximation factor comes from the
//! preprocessing").

use crate::machine::{EntryKind, VertexState};
use dmpc_eulertour::ExplicitTour;
use dmpc_graph::{Edge, UnionFind, Weight, V};
use std::collections::{BTreeMap, HashMap};

/// Rounds each weight down to the nearest power of `(1+eps)` (keeping 0/1
/// weights intact). The resulting MSF weight is within `(1+eps)` of optimal.
pub fn bucketize(edges: &[(Edge, Weight)], eps: f64) -> Vec<(Edge, Weight)> {
    let base = 1.0 + eps;
    edges
        .iter()
        .map(|&(e, w)| {
            if w <= 1 {
                (e, w)
            } else {
                let k = (w as f64).ln() / base.ln();
                let bw = base.powf(k.floor()).round() as Weight;
                (e, bw.max(1))
            }
        })
        .collect()
}

/// Builds the full per-vertex sharded state for an initial weighted graph:
/// a minimum spanning forest (Kruskal), canonical tours per tree rooted at
/// each tree's minimum vertex, tree entries with their index pairs, and
/// non-tree entries with cached far indexes.
pub fn build_states(n: usize, edges: &[(Edge, Weight)]) -> Vec<(V, VertexState)> {
    // Kruskal for the forest (weight 1 everywhere = arbitrary forest).
    let mut sorted: Vec<(Weight, Edge)> = edges.iter().map(|&(e, w)| (w, e)).collect();
    sorted.sort_unstable();
    let mut uf = UnionFind::new(n);
    let mut tree_edges: Vec<Edge> = Vec::new();
    for &(_, e) in &sorted {
        if uf.union(e.u, e.v) {
            tree_edges.push(e);
        }
    }
    // Group tree edges per component; root = min vertex of the component.
    let mut comp_edges: HashMap<V, Vec<Edge>> = HashMap::new();
    let mut comp_root: HashMap<V, V> = HashMap::new();
    for v in 0..n as V {
        let r = uf.find(v);
        let e = comp_root.entry(r).or_insert(v);
        *e = (*e).min(v);
    }
    for &e in &tree_edges {
        let r = uf.find(e.u);
        comp_edges.entry(r).or_default().push(e);
    }
    // Canonical tours.
    let mut idx: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut fvals: Vec<u64> = vec![0; n];
    let mut lvals: Vec<u64> = vec![0; n];
    let mut size: Vec<u64> = vec![1; n];
    let mut comp: Vec<V> = (0..n as V).collect();
    let mut tours: HashMap<V, ExplicitTour> = HashMap::new();
    for (&r, es) in &comp_edges {
        let root = comp_root[&r];
        let tour = ExplicitTour::from_tree(es, root);
        let members: Vec<V> = {
            let mut m: Vec<V> = es.iter().flat_map(|e| [e.u, e.v]).collect();
            m.push(root);
            m.sort_unstable();
            m.dedup();
            m
        };
        for &v in &members {
            idx[v as usize] = tour.indexes(v);
            fvals[v as usize] = tour.f(v);
            lvals[v as usize] = tour.l(v);
            size[v as usize] = members.len() as u64;
            comp[v as usize] = root;
        }
        tours.insert(root, tour);
    }
    // Adjacency entries.
    let tree_set: std::collections::HashSet<Edge> = tree_edges.iter().copied().collect();
    let mut adj: Vec<BTreeMap<V, (EntryKind, Weight)>> = vec![BTreeMap::new(); n];
    for &(e, w) in edges {
        if tree_set.contains(&e) {
            // Child = endpoint whose span nests inside the other's.
            let (p, c) = if fvals[e.u as usize] <= fvals[e.v as usize]
                && lvals[e.u as usize] >= lvals[e.v as usize]
            {
                (e.u, e.v)
            } else {
                (e.v, e.u)
            };
            let (fc, lc) = (fvals[c as usize], lvals[c as usize]);
            adj[c as usize].insert(p, (EntryKind::Tree { lo: fc, hi: lc }, w));
            adj[p as usize].insert(
                c,
                (
                    EntryKind::Tree {
                        lo: fc - 1,
                        hi: lc + 1,
                    },
                    w,
                ),
            );
        } else {
            adj[e.u as usize].insert(
                e.v,
                (
                    EntryKind::NonTree {
                        cached: fvals[e.v as usize],
                        far_comp: comp[e.v as usize],
                    },
                    w,
                ),
            );
            adj[e.v as usize].insert(
                e.u,
                (
                    EntryKind::NonTree {
                        cached: fvals[e.u as usize],
                        far_comp: comp[e.u as usize],
                    },
                    w,
                ),
            );
        }
    }
    (0..n as V)
        .map(|v| {
            (
                v,
                VertexState {
                    comp: comp[v as usize],
                    size: size[v as usize],
                    idx: std::mem::take(&mut idx[v as usize]),
                    adj: std::mem::take(&mut adj[v as usize]),
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::generators;

    #[test]
    fn bucketize_within_factor() {
        let edges: Vec<(Edge, Weight)> = (1..50u64)
            .map(|i| (Edge::new(0, i as V + 1), i * 7 + 1))
            .collect();
        let b = bucketize(&edges, 0.25);
        for (&(_, w), &(_, bw)) in edges.iter().zip(b.iter()) {
            assert!(bw <= w, "bucketed weight must not exceed original");
            assert!(
                (w as f64) <= (bw as f64) * 1.25 * 1.0001,
                "w={w} bucketed={bw}"
            );
        }
    }

    #[test]
    fn build_states_partitions_tours() {
        let es = generators::random_tree_plus(20, 15, 4);
        let wedges: Vec<(Edge, Weight)> = es.iter().map(|&e| (e, 1)).collect();
        let states = build_states(20, &wedges);
        assert_eq!(states.len(), 20);
        // Index multiset over the (single) component partitions 1..=4(k-1).
        let mut all: Vec<u64> = states.iter().flat_map(|(_, st)| st.idx.clone()).collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=4 * 19).collect();
        assert_eq!(all, expect);
        // Every edge has symmetric entries.
        for (v, st) in &states {
            for &far in st.adj.keys() {
                let far_st = &states[far as usize].1;
                assert!(far_st.adj.contains_key(v));
            }
        }
    }

    #[test]
    fn build_states_handles_disconnected() {
        let edges = vec![(Edge::new(0, 1), 1), (Edge::new(2, 3), 1)];
        let states = build_states(6, &edges);
        assert_eq!(states[0].1.comp, states[1].1.comp);
        assert_ne!(states[0].1.comp, states[2].1.comp);
        assert_eq!(states[4].1.size, 1);
        assert!(states[4].1.idx.is_empty());
    }
}
