//! DMPC fully-dynamic connectivity and (1+eps)-approximate MST (paper
//! Section 5), plus the static MPC baselines they are compared against.
//!
//! The dynamic algorithms run as *distributed machine programs* on the
//! `dmpc-mpc` simulator:
//!
//! * Vertices are partitioned across `O(sqrt N)` owner machines; each owned
//!   vertex stores its component id, component size, Euler-tour index list,
//!   and adjacency entries (tree entries carry their two tour indexes, the
//!   paper's per-edge index annotation; non-tree entries carry a cached tour
//!   index of the far endpoint used for O(1) side classification under cuts).
//! * Every structural change is an O(1)-word [`dmpc_eulertour::indexed::TourOp`]
//!   payload **multicast to the affected components' owner machines** (the
//!   component-owner directory; see `machine`), which each recipient applies
//!   locally — O(1) rounds, O(sqrt N) active machines, O(sqrt N) total
//!   communication per update, exactly the paper's Table 1 rows 4 and 5.
//!   The legacy all-machine broadcast survives behind [`Routing::Broadcast`]
//!   for differential testing; states are bit-identical across routings.
//! * Tree-edge deletions trigger the paper's one-round replacement search:
//!   every owner reports at most one candidate crossing edge (plus its
//!   post-split side membership, which refines the directory) to a
//!   rendezvous machine named in the multicast, which reconnects (choosing
//!   the minimum-weight candidate in MST mode).
//!
//! Component ids equal the current *root vertex* of each tree, so machines
//! allocate fresh ids after splits without coordination (the detached side's
//! new root is the cut edge's child endpoint).
//!
//! # Example
//!
//! ```
//! use dmpc_connectivity::DmpcConnectivity;
//! use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
//! use dmpc_graph::Edge;
//!
//! let mut cc = DmpcConnectivity::new(DmpcParams::new(16, 64));
//! let m = cc.insert(Edge::new(0, 1));
//! assert!(m.clean() && m.rounds <= 4);
//! assert!(cc.connected(0, 1));
//! cc.delete(Edge::new(0, 1));
//! assert!(!cc.connected(0, 1));
//! ```

pub mod algorithm;
pub mod machine;
pub mod messages;
pub mod preprocess;
mod shard;
pub mod static_cc;
pub mod static_mst;

pub use algorithm::{DmpcConnectivity, DmpcMst};
pub use machine::{ConflictStats, Routing};
pub use static_cc::StaticCc;
pub use static_mst::StaticMst;
