//! Static MPC baseline: (1+eps)-approximate MST by weight-bucketed
//! label propagation — exactly the scheme the paper's Section 5.1 sketches
//! for preprocessing ("bucket the edges by weights and compute connected
//! components by considering the edges in buckets of increasing weights").
//!
//! Each bucket runs one connected-components pass over the edges of that
//! bucket (with the components formed so far contracted), so the total
//! round count is `O(#buckets * rounds(CC))` and the communication is
//! `Omega(N)` — the static costs the dynamic algorithm avoids.

use crate::static_cc::StaticCc;
use dmpc_graph::{Edge, UnionFind, Weight};
use dmpc_mpc::UpdateMetrics;

/// The bucketed static MST baseline.
pub struct StaticMst {
    n: usize,
    machines: usize,
    epsilon: f64,
}

impl StaticMst {
    /// Baseline over `n` vertices with the given machine count and bucket
    /// base `1 + epsilon`.
    pub fn new(n: usize, machines: usize, epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        StaticMst {
            n,
            machines,
            epsilon,
        }
    }

    /// Recomputes a (1+eps)-approximate MSF weight from scratch. Returns
    /// `(approx_weight, accumulated_metrics)` where the metrics sum the
    /// per-bucket CC passes (rounds add up; communication adds up).
    pub fn recompute(&self, edges: &[(Edge, Weight)]) -> (Weight, UpdateMetrics) {
        // Bucket by rounded-down powers of (1+eps).
        let base = 1.0 + self.epsilon;
        let bucket_of = |w: Weight| -> u32 {
            if w <= 1 {
                0
            } else {
                ((w as f64).ln() / base.ln()).floor() as u32
            }
        };
        let mut buckets: std::collections::BTreeMap<u32, Vec<Edge>> = Default::default();
        for &(e, w) in edges {
            buckets.entry(bucket_of(w)).or_default().push(e);
        }
        let mut total = UpdateMetrics::default();
        let mut uf = UnionFind::new(self.n);
        let mut weight: Weight = 0;
        // Contracted vertex labels so far: map each vertex to its current
        // representative before running the bucket's CC pass.
        for (b, es) in buckets {
            let bucket_w = base.powi(b as i32).round().max(1.0) as Weight;
            // Edges re-expressed over representatives (self-loops dropped).
            let contracted: Vec<Edge> = es
                .iter()
                .filter_map(|e| {
                    let (ru, rv) = (uf.find(e.u), uf.find(e.v));
                    (ru != rv).then(|| Edge::new(ru, rv))
                })
                .collect();
            let cc = StaticCc::new(self.n, self.machines);
            let (_, m) = cc.recompute(&contracted);
            total.rounds += m.rounds;
            total.max_active_machines = total.max_active_machines.max(m.max_active_machines);
            total.max_words_per_round = total.max_words_per_round.max(m.max_words_per_round);
            total.total_words += m.total_words;
            total.total_messages += m.total_messages;
            // Count the merges this bucket makes (Kruskal over contracted
            // multigraph): each merge contributes one bucketed weight.
            for e in &contracted {
                if uf.union(e.u, e.v) {
                    weight += bucket_w;
                }
            }
        }
        (weight, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::generators;
    use dmpc_graph::mst::msf_weight;
    use dmpc_graph::streams::edge_weight;

    fn weighted(n: usize, m: usize, seed: u64) -> Vec<(Edge, Weight)> {
        generators::gnm(n, m, seed)
            .into_iter()
            .map(|e| (e, edge_weight(e, 1000, seed)))
            .collect()
    }

    #[test]
    fn weight_within_factor_of_kruskal() {
        for seed in 0..4 {
            let es = weighted(48, 120, seed);
            let exact = msf_weight(48, &es);
            let eps = 0.2;
            let (approx, metrics) = StaticMst::new(48, 6, eps).recompute(&es);
            assert!(metrics.rounds >= 2);
            // Bucketing rounds weights *down*, so approx <= exact, and the
            // true weight of the chosen forest is within (1+eps) of optimal.
            assert!(approx as f64 <= exact as f64 + 1e-9, "{approx} vs {exact}");
            assert!(
                exact as f64 <= approx as f64 * (1.0 + eps) * 1.001 + 1.0,
                "{approx} vs {exact}"
            );
        }
    }

    #[test]
    fn rounds_grow_with_buckets() {
        let es = weighted(48, 120, 9);
        let (_, coarse) = StaticMst::new(48, 6, 2.0).recompute(&es);
        let (_, fine) = StaticMst::new(48, 6, 0.05).recompute(&es);
        assert!(fine.rounds > coarse.rounds);
    }
}
