//! Message vocabulary of the distributed connectivity/MST protocol.

use dmpc_eulertour::indexed::{CompId, TourOp};
use dmpc_eulertour::TourIx;
use dmpc_graph::{Edge, Update, Weight, V};
use dmpc_mpc::{MachineId, Payload};

/// One update inside a batch, tagged with its position in the batch so the
/// structural phase replays each conflict group's items in original order.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem {
    /// The update.
    pub upd: Update,
    /// Position within the batch.
    pub seq: u32,
}

/// A structural leftover reported back to the batch controller: the item
/// plus the pre-batch component ids it touches, the input of the conflict
/// partitioner. Classifiers read the components during phase 1, which never
/// changes them (non-structural work touches no tree), so the snapshot is
/// consistent across the whole batch.
#[derive(Clone, Copy, Debug)]
pub struct StructItem {
    /// The structural update.
    pub item: BatchItem,
    /// Component of one endpoint (for cuts: the edge's component, twice).
    pub ca: CompId,
    /// Component of the other endpoint.
    pub cb: CompId,
}

/// O(1)-word summary of one endpoint's tour state, shipped between the two
/// endpoint owners during an update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexInfo {
    /// The vertex.
    pub v: V,
    /// Component id (= root vertex of its tree).
    pub comp: CompId,
    /// Component size (vertices).
    pub size: u64,
    /// First tour appearance (0 if singleton).
    pub f: TourIx,
    /// Last tour appearance (0 if singleton).
    pub l: TourIx,
}

/// What happens to the cut edge's adjacency entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutMode {
    /// The edge is being deleted from the graph.
    Remove,
    /// The edge stays in the graph as a non-tree edge (MST swaps).
    Demote,
}

/// The O(1)-word structural-change payload. Under component-owner multicast
/// it is addressed only to the affected components' owner machines; the
/// legacy broadcast routing sends it to every machine (differential-testing
/// flag, see `machine.rs`).
#[derive(Clone, Copy, Debug)]
pub struct StructBroadcast {
    /// Optional reroot of the absorbed side (links only).
    pub reroot: Option<TourOp>,
    /// The main op: a link or a cut.
    pub main: TourOp,
    /// Merged component size (links) — the absorbed side cannot derive it.
    pub merged_size: u64,
    /// Valid tour index of the cut's parent endpoint after the cut
    /// (0 if it becomes a singleton); repairs cached far-endpoint indexes.
    pub x_after: TourIx,
    /// The graph edge being linked or cut.
    pub edge: Edge,
    /// Weight of a linked edge (1 in plain connectivity).
    pub weight: Weight,
    /// For cuts: what to do with the edge's adjacency entries.
    pub cut_mode: CutMode,
    /// For cuts in delete mode: the rendezvous machine for the replacement
    /// search; `None` disables the search (MST swap cuts reconnect
    /// immediately via the new edge).
    pub rendezvous: Option<MachineId>,
    /// Batch lane of the originating flow, echoed in the [`ConnMsg::CutReport`]s
    /// so replies from concurrently running conflict groups never cross-talk.
    pub lane: Option<u32>,
}

/// Protocol messages. The `lane` tags mark messages belonging to the
/// structural phase of a batch: the controller partitions leftover
/// structural items into conflict groups and runs each group as its own
/// protocol *lane*, so every in-flight message carries its lane id and
/// every terminal step of a lane's flow signals [`ConnMsg::BatchStructDone`]
/// (with the lane) to the controller, which then dispatches that lane's next
/// item. `lane: None` marks a flow outside any batch (single updates, MST
/// swaps), of which at most one is ever in flight. Lane ids pack into the
/// op word, so — like the old boolean flags they replace — they do not
/// change message sizes.
///
/// Owner-set payloads (`Vec<MachineId>`) are O(active machines) = O(sqrt N)
/// words and only ever travel in point-to-point messages (directory fetches
/// and stores, replacement hand-offs), never inside a multicast — the
/// multicast [`ConnMsg::Apply`] stays O(1) words, keeping the per-update
/// communication at O(sqrt N) total.
#[derive(Clone, Debug)]
pub enum ConnMsg {
    /// Injected: insert edge `e` with weight `w`.
    Insert {
        /// The new edge.
        e: Edge,
        /// Its weight (1 for plain connectivity).
        w: Weight,
        /// Batch lane when dispatched by the controller's structural phase.
        lane: Option<u32>,
    },
    /// Injected: delete edge `e`.
    Delete {
        /// The edge to remove.
        e: Edge,
        /// Batch lane when dispatched by the controller's structural phase.
        lane: Option<u32>,
    },
    /// owner(x) -> owner(y): continue an insertion with x's state.
    InsQuery {
        /// The new edge.
        e: Edge,
        /// Its weight.
        w: Weight,
        /// State of the endpoint owned by the sender.
        x: VertexInfo,
        /// Batch lane of this flow: signal completion with it.
        lane: Option<u32>,
        /// Pre-resolved owner set of the merged component, when the sender
        /// already knows it (replacement links after a cut, MST swap links).
        /// `None` makes the receiver resolve the union via the directory.
        known_owners: Option<Vec<MachineId>>,
    },
    /// owner(y) -> owner(x): the edge is intra-component; record it as a
    /// non-tree entry at vertex `at`.
    AddNonTree {
        /// The edge.
        e: Edge,
        /// Its weight.
        w: Weight,
        /// The endpoint whose owner should record the entry.
        at: V,
        /// A current tour index of the far endpoint, cached for cut
        /// side-classification.
        cached_far: TourIx,
    },
    /// Remove the non-tree entry of `e` at vertex `at`.
    DelNonTree {
        /// The edge.
        e: Edge,
        /// The endpoint whose owner should drop the entry.
        at: V,
    },
    /// child-owner -> parent-owner: a tree-edge cut where the receiver owns
    /// the parent endpoint; carries the child's span so the parent owner can
    /// compute its surviving index and multicast the cut.
    NeedParentCut {
        /// The tree edge being cut.
        e: Edge,
        /// The parent endpoint (owned by the receiver).
        parent: V,
        /// Child endpoint's first appearance.
        fy: TourIx,
        /// Child endpoint's last appearance.
        ly: TourIx,
        /// Remove (deletion) or demote (MST swap).
        mode: CutMode,
        /// Run the replacement search after the cut.
        search: bool,
        /// Link this edge right after the cut (MST swaps).
        then_link: Option<(Edge, Weight)>,
        /// Batch lane of this flow: signal completion with it.
        lane: Option<u32>,
        /// Owner set of the component being cut, when the sender already
        /// holds it (MST swap flows resolve it once for the whole swap).
        owners: Option<Vec<MachineId>>,
    },
    /// Multicast to the affected owner set: apply a structural change.
    Apply(StructBroadcast),
    /// machine -> rendezvous: reply to a searching cut — the local best
    /// replacement candidate plus which sides of the split this machine
    /// still owns vertices of (the directory refinement input).
    CutReport {
        /// Minimum-weight locally stored crossing edge, if any.
        best: Option<(Edge, Weight)>,
        /// This machine owns >= 1 vertex of the surviving (parent) side.
        owns_parent: bool,
        /// This machine owns >= 1 vertex of the detached (child) side.
        owns_child: bool,
        /// Batch lane of the cut (echoed from the Apply), so the rendezvous
        /// folds each lane's reports separately.
        lane: Option<u32>,
    },
    /// rendezvous -> owner(e.u): link edge `e` (already present as a
    /// non-tree entry at both owners, or about to be created by a swap).
    StartLink {
        /// The edge to link.
        e: Edge,
        /// Its weight.
        w: Weight,
        /// Batch lane of this flow: signal completion with it.
        lane: Option<u32>,
        /// Owner set of the component the link will re-merge (the sender —
        /// a cut rendezvous or swap initiator — always knows it).
        owners: Vec<MachineId>,
    },
    /// Multicast to the component's owner set: find the max-weight tree
    /// edge on the path between the two spans; every recipient replies to
    /// `rendezvous`.
    PathMaxQuery {
        /// Component being queried.
        comp: CompId,
        /// `f(x)` of one endpoint.
        fx: TourIx,
        /// `l(x)` of one endpoint.
        lx: TourIx,
        /// `f(y)` of the other endpoint.
        fy: TourIx,
        /// `l(y)` of the other endpoint.
        ly: TourIx,
        /// Candidate new edge.
        e: Edge,
        /// Candidate weight.
        w: Weight,
        /// Who aggregates the replies.
        rendezvous: MachineId,
    },
    /// machine -> rendezvous: local max-weight on-path tree edge.
    PathMaxReply {
        /// Local maximum (edge, weight) among owned on-path tree edges.
        best: Option<(Edge, Weight)>,
    },
    /// rendezvous -> owner(d.u): demote tree edge `d`, then link `e`
    /// (an MST swap). Carries the component's owner set so the whole swap
    /// resolves the directory once.
    StartSwap {
        /// Tree edge to demote.
        d: Edge,
        /// New edge to link.
        e: Edge,
        /// New edge's weight.
        w: Weight,
        /// Owner set of the component being swapped inside.
        owners: Vec<MachineId>,
    },
    /// No-op acknowledgement (kept for protocol symmetry in tests).
    Ack,

    // ---- owner directory (see `machine.rs` "The owner directory") --------
    /// any machine -> root owner of `comp`: request the component's owner
    /// set. The root owner (= `owner_of(comp)`, derivable locally because a
    /// component id is its root vertex) replies with [`ConnMsg::DirReply`].
    DirFetch {
        /// Component whose owner set is requested.
        comp: CompId,
        /// Batch lane of the fetching flow, echoed in the reply so the
        /// requester resumes the right lane's pending continuation.
        lane: Option<u32>,
    },
    /// root owner -> requester: the component's owner set.
    DirReply {
        /// The component.
        comp: CompId,
        /// Machines owning >= 1 vertex of it (sorted, deduplicated).
        owners: Vec<MachineId>,
        /// Batch lane of the fetching flow (echoed from the fetch).
        lane: Option<u32>,
    },
    /// any machine -> root owner of `comp`: install the component's owner
    /// set (sets of size < 2 are erased — the implicit singleton fallback
    /// `{owner_of(comp)}` covers them).
    DirStore {
        /// The component.
        comp: CompId,
        /// Its new owner set.
        owners: Vec<MachineId>,
    },
    /// any machine -> root owner of `comp`: the component id was absorbed
    /// by a link; drop its directory entry.
    DirDrop {
        /// The absorbed component.
        comp: CompId,
    },

    // ---- elasticity & recovery (see `machine.rs` "Shard migration") ------
    /// Driver-injected at a migration source: move the vertex range
    /// `lo..hi` to machine `to`, streaming state in `budget`-word chunks.
    MigrateBegin {
        /// The receiving machine (always a neighbour in machine order).
        to: MachineId,
        /// First vertex of the moving range.
        lo: V,
        /// One past the last vertex of the moving range.
        hi: V,
        /// Per-chunk payload budget (words).
        budget: usize,
    },
    /// migration source -> everyone: one partition-table boundary moved.
    /// O(1) words per machine — the *data* never travels with it.
    Boundary {
        /// Index into the bounds table.
        idx: u32,
        /// Its new value.
        val: V,
    },
    /// courier -> receiver: one budgeted chunk of packed snapshot text
    /// (stop-and-wait: the next chunk departs on the [`ConnMsg::SnapAck`]).
    SnapChunk {
        /// Packed text words (see `dmpc_mpc::chaos::pack_text`).
        words: Vec<u64>,
        /// Final chunk of this transfer.
        last: bool,
        /// On `last`: install as a full state restore (recovery) instead of
        /// merging migrated vertices (migration).
        install: bool,
    },
    /// receiver -> courier: chunk received, send the next.
    SnapAck,
    /// Courier self-kick: continue a budgeted transfer next round (sent to
    /// self across rounds — the one deliberate self-message, pacing the
    /// patch phase after the data phase).
    MigrateKick,
    /// migration source -> remote root owner: incrementally repair `comp`'s
    /// stored owner set after a shard migration (the component itself was
    /// untouched, only ownership of some members moved).
    DirPatch {
        /// The component whose owner set changed.
        comp: CompId,
        /// Machine that now owns >= 1 of its vertices.
        add: MachineId,
        /// Machine that no longer owns any (the source, when drained).
        remove: Option<MachineId>,
    },
    /// Driver-injected at a recovery staging peer: ship the staged snapshot
    /// to revived machine `to` in `budget`-word chunks.
    HandoffBegin {
        /// The revived machine.
        to: MachineId,
        /// Per-chunk payload budget (words).
        budget: usize,
    },

    // ---- query plane (see `machine.rs` "The query plane") ----------------
    /// Injected at `probe`'s owner: report `probe`'s component id to the
    /// query's rendezvous. `expect = 1` resolves a `ComponentOf` query,
    /// `expect = 2` one endpoint of a `Connected` query.
    QConnProbe {
        /// Query id within the wave (the rendezvous' fold key).
        qid: u32,
        /// The probed vertex (owned by the receiver).
        probe: V,
        /// Joins the rendezvous must fold for this query (1 or 2).
        expect: u8,
        /// The per-query rendezvous machine.
        rendezvous: MachineId,
    },
    /// owner -> rendezvous: one endpoint's component id.
    QConnJoin {
        /// Query id.
        qid: u32,
        /// The probed endpoint's component id.
        comp: CompId,
        /// Joins expected for this query (echoed from the probe).
        expect: u8,
    },
    /// Injected at `u`'s owner: start a `PathMax(u, v)` query.
    QPathStart {
        /// Query id.
        qid: u32,
        /// One endpoint (owned by the receiver).
        u: V,
        /// The other endpoint.
        v: V,
        /// The per-query rendezvous machine.
        rendezvous: MachineId,
    },
    /// owner(u) -> owner(v): u's tour span and component.
    QPathProbe {
        /// Query id.
        qid: u32,
        /// The far endpoint (owned by the receiver).
        v: V,
        /// u's component id.
        comp: CompId,
        /// u's first tour appearance.
        fx: TourIx,
        /// u's last tour appearance.
        lx: TourIx,
        /// The per-query rendezvous machine.
        rendezvous: MachineId,
    },
    /// owner(v) -> root owner of `comp`: resolve the component's owner set
    /// from the directory shard and fan the evaluation out.
    QPathResolve {
        /// Query id.
        qid: u32,
        /// The shared component.
        comp: CompId,
        /// u's span.
        fx: TourIx,
        /// u's span.
        lx: TourIx,
        /// v's span.
        fy: TourIx,
        /// v's span.
        ly: TourIx,
        /// The per-query rendezvous machine.
        rendezvous: MachineId,
    },
    /// root owner -> every owner of `comp`: evaluate the local on-path
    /// maximum and join at the rendezvous.
    QPathEval {
        /// Query id.
        qid: u32,
        /// The component.
        comp: CompId,
        /// u's span.
        fx: TourIx,
        /// u's span.
        lx: TourIx,
        /// v's span.
        fy: TourIx,
        /// v's span.
        ly: TourIx,
        /// The per-query rendezvous machine.
        rendezvous: MachineId,
        /// Joins the rendezvous must fold (= the owner-set size).
        expect: u16,
    },
    /// owner -> rendezvous: local on-path maximum, or the disconnected
    /// verdict (`expect = 1`, `connected = false`).
    QPathJoin {
        /// Query id.
        qid: u32,
        /// Local maximum-weight on-path tree edge, if any.
        best: Option<(Edge, Weight)>,
        /// Joins expected for this query.
        expect: u16,
        /// False iff the endpoints turned out disconnected.
        connected: bool,
    },

    // ---- batch protocol (see `machine.rs` "Batched updates") -------------
    /// Injected at the batch controller (machine 0): process these updates
    /// as one batch.
    BatchStart {
        /// The batch, pre-coalesced (at most one op per edge).
        items: Vec<BatchItem>,
    },
    /// controller -> owner(e.u): classify (and, where non-structural,
    /// immediately execute) these updates. The preprocessing fan-out.
    BatchClassify {
        /// The owner's share of the batch.
        items: Vec<BatchItem>,
    },
    /// owner(e.u) -> owner(e.v): classify an insert against the far
    /// endpoint's component; same-component inserts execute on the spot.
    BatchInsClassify {
        /// The new edge.
        e: Edge,
        /// Its weight.
        w: Weight,
        /// State of the endpoint owned by the sender.
        x: VertexInfo,
        /// Position within the batch.
        seq: u32,
    },
    /// classifier -> controller: how many updates completed non-structurally
    /// this round, and which turned out structural (links / tree cuts) —
    /// each tagged with the pre-batch components it touches, the conflict
    /// partitioner's input.
    BatchReport {
        /// Updates executed in the concurrent (non-structural) phase.
        done: u32,
        /// Updates requiring structural processing, with touched components.
        structural: Vec<StructItem>,
    },
    /// terminal step -> controller: the lane's in-flight structural item
    /// finished; dispatch the lane's next item (or retire the lane).
    BatchStructDone {
        /// The lane that finished its item.
        lane: u32,
    },
}

impl Payload for ConnMsg {
    fn size_words(&self) -> usize {
        match self {
            ConnMsg::Insert { .. } => 3,
            ConnMsg::Delete { .. } => 2,
            ConnMsg::InsQuery { known_owners, .. } => 8 + known_owners.as_ref().map_or(0, Vec::len),
            ConnMsg::AddNonTree { .. } => 5,
            ConnMsg::DelNonTree { .. } => 3,
            ConnMsg::NeedParentCut { owners, .. } => 9 + owners.as_ref().map_or(0, Vec::len),
            // reroot (4) + main (6) + size/x_after/edge/weight/mode/rdv.
            ConnMsg::Apply(_) => 16,
            ConnMsg::CutReport { .. } => 5,
            ConnMsg::StartLink { owners, .. } => 3 + owners.len(),
            ConnMsg::PathMaxQuery { .. } => 10,
            ConnMsg::PathMaxReply { .. } => 3,
            ConnMsg::StartSwap { owners, .. } => 5 + owners.len(),
            ConnMsg::Ack => 1,
            ConnMsg::MigrateBegin { .. } => 5,
            ConnMsg::Boundary { .. } => 3,
            ConnMsg::SnapChunk { words, .. } => 2 + words.len(),
            ConnMsg::SnapAck | ConnMsg::MigrateKick => 1,
            ConnMsg::DirPatch { .. } => 4,
            ConnMsg::HandoffBegin { .. } => 3,
            ConnMsg::DirFetch { .. } | ConnMsg::DirDrop { .. } => 2,
            ConnMsg::DirReply { owners, .. } | ConnMsg::DirStore { owners, .. } => 2 + owners.len(),
            ConnMsg::QConnProbe { .. } => 4,
            ConnMsg::QConnJoin { .. } => 4,
            ConnMsg::QPathStart { .. } => 5,
            ConnMsg::QPathProbe { .. } => 7,
            ConnMsg::QPathResolve { .. } => 8,
            ConnMsg::QPathEval { .. } => 9,
            ConnMsg::QPathJoin { .. } => 6,
            ConnMsg::BatchStart { items } | ConnMsg::BatchClassify { items } => 1 + 3 * items.len(),
            ConnMsg::BatchInsClassify { .. } => 9,
            // 3 per item + the two touched component ids.
            ConnMsg::BatchReport { structural, .. } => 2 + 5 * structural.len(),
            // The lane id packs into the op word.
            ConnMsg::BatchStructDone { .. } => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_constant_words() {
        let e = Edge::new(0, 1);
        assert!(
            ConnMsg::Insert {
                e,
                w: 1,
                lane: None
            }
            .size_words()
                <= 16
        );
        assert!(ConnMsg::Ack.size_words() >= 1);
        assert_eq!(ConnMsg::Delete { e, lane: None }.size_words(), 2);
        // Lane ids pack into the op word: a laned message costs the same.
        assert_eq!(
            ConnMsg::Delete { e, lane: Some(7) }.size_words(),
            ConnMsg::Delete { e, lane: None }.size_words()
        );
        // The multicast payload itself stays O(1) words: owner sets never
        // travel inside an Apply.
        let b = StructBroadcast {
            reroot: None,
            main: dmpc_eulertour::indexed::TourOp::Link {
                a: 0,
                b: 1,
                x: 0,
                y: 1,
                fx: 0,
                elen_b: 0,
            },
            merged_size: 2,
            x_after: 0,
            edge: e,
            weight: 1,
            cut_mode: CutMode::Remove,
            rendezvous: None,
            lane: None,
        };
        assert_eq!(ConnMsg::Apply(b).size_words(), 16);
    }

    #[test]
    fn owner_set_messages_scale_with_set_size() {
        let owners: Vec<MachineId> = (0..7).collect();
        assert_eq!(
            ConnMsg::DirFetch {
                comp: 3,
                lane: None
            }
            .size_words(),
            2
        );
        assert_eq!(
            ConnMsg::DirReply {
                comp: 3,
                owners: owners.clone(),
                lane: Some(2)
            }
            .size_words(),
            9
        );
        assert_eq!(
            ConnMsg::StartLink {
                e: Edge::new(0, 1),
                w: 1,
                lane: None,
                owners
            }
            .size_words(),
            10
        );
        assert_eq!(
            ConnMsg::InsQuery {
                e: Edge::new(0, 1),
                w: 1,
                x: VertexInfo {
                    v: 0,
                    comp: 0,
                    size: 1,
                    f: 0,
                    l: 0
                },
                lane: None,
                known_owners: None,
            }
            .size_words(),
            8
        );
    }

    #[test]
    fn query_messages_are_constant_words() {
        // Query-plane payloads carry no owner sets or item lists: every
        // message is O(1) words, so a q-query wave totals O(q).
        assert_eq!(
            ConnMsg::QConnProbe {
                qid: 0,
                probe: 1,
                expect: 2,
                rendezvous: 3
            }
            .size_words(),
            4
        );
        assert_eq!(
            ConnMsg::QConnJoin {
                qid: 0,
                comp: 5,
                expect: 2
            }
            .size_words(),
            4
        );
        assert!(
            ConnMsg::QPathJoin {
                qid: 0,
                best: Some((Edge::new(0, 1), 9)),
                expect: 4,
                connected: true
            }
            .size_words()
                <= 6
        );
        assert!(
            ConnMsg::QPathEval {
                qid: 0,
                comp: 1,
                fx: 2,
                lx: 3,
                fy: 4,
                ly: 5,
                rendezvous: 6,
                expect: 7
            }
            .size_words()
                <= 9
        );
    }

    #[test]
    fn batch_message_sizes_scale_with_items() {
        let item = BatchItem {
            upd: Update::Insert(Edge::new(0, 1)),
            seq: 0,
        };
        assert_eq!(
            ConnMsg::BatchStart {
                items: vec![item; 5]
            }
            .size_words(),
            16
        );
        // Each structural leftover ships its item plus the two touched
        // component ids (the conflict partitioner's input): 5 words.
        let s = StructItem { item, ca: 0, cb: 1 };
        assert_eq!(
            ConnMsg::BatchReport {
                done: 3,
                structural: vec![s; 2]
            }
            .size_words(),
            12
        );
        assert_eq!(ConnMsg::BatchStructDone { lane: 3 }.size_words(), 1);
    }
}
