//! Drivers binding the connectivity/MST machine programs to the simulator,
//! plus audits used by the test suite.

use crate::machine::{ConnMachine, EntryKind, Routing, VertexState, BATCH_CTRL};
use crate::messages::{BatchItem, ConnMsg};
use crate::preprocess;
use dmpc_core::{
    digest_snapshots, DmpcParams, DynamicGraphAlgorithm, ElasticAlgorithm, QueryableAlgorithm,
    WeightedDynamicGraphAlgorithm,
};
use dmpc_eulertour::indexed::CompId;
use dmpc_graph::streams::coalesce;
use dmpc_graph::{Edge, Query, QueryAnswer, Update, Weight, V};
use dmpc_mpc::chaos::ChaosKind;
use dmpc_mpc::{
    BatchMetrics, Cluster, ClusterConfig, ExecOptions, Layout, MachineId, QueryMetrics, Scheduler,
    UpdateMetrics,
};
use std::collections::{BTreeSet, HashMap};

/// Shared driver for plain connectivity and MST mode.
pub struct ConnDriver {
    cluster: Cluster<ConnMachine>,
    params: DmpcParams,
    /// Driver-side mirror of the machines' partition table (kept in sync
    /// with the `Boundary` broadcasts migrations emit).
    bounds: Vec<V>,
}

impl ConnDriver {
    fn new(params: DmpcParams, mst_mode: bool) -> Self {
        Self::with_exec(params, mst_mode, ExecOptions::default())
    }

    fn with_exec(params: DmpcParams, mst_mode: bool, exec: ExecOptions) -> Self {
        Self::with_opts(
            params,
            mst_mode,
            exec,
            Routing::default(),
            Layout::default(),
            None,
        )
    }

    /// Full-control constructor: executor tuning, multicast/broadcast
    /// routing, state layout, and an optional machine-count override (the
    /// `active_scaling` bench sweeps P at fixed n; `None` uses the model's
    /// O(sqrt N) count).
    fn with_opts(
        params: DmpcParams,
        mst_mode: bool,
        exec: ExecOptions,
        routing: Routing,
        layout: Layout,
        machines: Option<usize>,
    ) -> Self {
        let machines = machines.unwrap_or_else(|| params.storage_machines()).max(1);
        let block = params.n.div_ceil(machines).max(1);
        let machines = params.n.div_ceil(block); // machines actually used
        let scheduler = exec.scheduler;
        let progs = (0..machines as MachineId)
            .map(|id| {
                let mut m = ConnMachine::with_opts(
                    id, params.n, block, mst_mode, routing, layout, scheduler,
                );
                // Leave the shard headroom under S for the machine's
                // non-shard state (scalars, directory, transient buffers),
                // which is metered in the same budget.
                m.set_memory_budget(params.capacity_words().saturating_sub(32));
                // Cap concurrent lanes so the per-lane protocol state and
                // the controller's lane bookkeeping stay a small fraction
                // of the machine budget.
                m.set_lane_cap((params.capacity_words() / 64).max(1));
                m
            })
            .collect();
        // Flow tracking is on by default for drivers (the entropy bench
        // relies on it); `exec` can override it (e.g. `ExecOptions::lean()`
        // forces it off for timing runs).
        let mut cfg = ClusterConfig::with_capacity(params.capacity_words());
        cfg.track_flows = true;
        let cfg = cfg.with_exec(exec);
        ConnDriver {
            cluster: Cluster::new(progs, cfg),
            params,
            bounds: ConnMachine::uniform_bounds(params.n, block),
        }
    }

    fn owner(&self, v: V) -> MachineId {
        ConnMachine::owner_in(&self.bounds, v)
    }

    fn run(&mut self, to: MachineId, msg: ConnMsg) -> UpdateMetrics {
        self.clear_stale_batch_state();
        self.cluster.inject(to, msg);
        self.cluster.run_update()
    }

    /// Abort recovery between runs: a previous batch run aborted by the
    /// round-limit guard (its `Violation::RoundLimit` is the authoritative
    /// error signal) can leave batch bookkeeping behind — controller state
    /// on machine 0, and a pending-search flag on whichever machine was the
    /// cut rendezvous. Drop it everywhere so later runs neither meter
    /// phantom memory nor emit spurious batch completion signals.
    fn clear_stale_batch_state(&mut self) {
        for m in 0..self.cluster.n_machines() {
            self.cluster.machine_mut(m as MachineId).clear_stale_batch();
        }
    }

    /// Runs one pre-coalesced batch chunk through the two-phase batch
    /// protocol as a single metered quiescence run, folding the
    /// controller's conflict-partition statistics into the metrics.
    fn run_batch_chunk(&mut self, items: Vec<BatchItem>) -> BatchMetrics {
        self.clear_stale_batch_state();
        let k = items.len();
        let mut bm = self.cluster.run_batch(
            std::iter::once((BATCH_CTRL, ConnMsg::BatchStart { items })),
            k,
        );
        if let Some(st) = self.cluster.machine_mut(BATCH_CTRL).take_conflict_stats() {
            bm.conflict_groups += st.groups;
            bm.conflict_depth = bm.conflict_depth.max(st.depth);
            bm.max_lanes = bm.max_lanes.max(st.max_lanes);
        }
        bm
    }

    /// Chunk size for batched execution: the controller's transient batch
    /// state and its classification fan-out must fit the `O(sqrt N)`-word
    /// machine budget, so batches are processed `sqrt N` updates at a time.
    fn batch_chunk(&self) -> usize {
        self.params.sqrt_n().max(1)
    }

    /// Runs one chunk of queries as a single metered wave: every probe is
    /// injected in round 0, owners/rendezvous resolve them concurrently
    /// (see `machine.rs`, "The query plane"), and the stashed answers are
    /// drained after quiescence. Returns answers index-aligned with `chunk`
    /// plus the raw run metrics (including the per-pair flow map when flow
    /// tracking is on — the metering tests assert O(q) words per wave).
    /// Callers wanting capacity-safe chunking use [`Self::answer_query_batch`].
    pub fn query_wave(&mut self, chunk: &[Query]) -> (Vec<QueryAnswer>, UpdateMetrics) {
        self.clear_stale_batch_state();
        let n_machines = self.cluster.n_machines() as MachineId;
        // During an outage the wave routes around the dead machines: a query
        // whose owner set intersects a dead machine answers `Degraded`
        // locally ("writes pause, reads degrade"); the rest rendezvous on
        // live machines and stay exact, because component labels at live
        // owners are current (writes are paused while any machine is down).
        let alive: Vec<MachineId> = (0..n_machines)
            .filter(|&m| self.cluster.is_alive(m))
            .collect();
        let outage = alive.len() < n_machines as usize;
        let owner_dead = |d: &Self, v: V| !d.cluster.is_alive(d.owner(v));
        let mut wave: Vec<(MachineId, ConnMsg)> = Vec::with_capacity(2 * chunk.len());
        // Answers resolvable without any machine involvement (degenerate or
        // unsupported queries) are zero-round, zero-cost by definition.
        let mut got: Vec<(u32, QueryAnswer)> = Vec::new();
        for (i, &q) in chunk.iter().enumerate() {
            let qid = i as u32;
            let rendezvous = if outage {
                alive[qid as usize % alive.len()]
            } else {
                qid % n_machines
            };
            match q {
                Query::Connected(a, b) if a == b => got.push((qid, QueryAnswer::Bool(true))),
                Query::Connected(a, b)
                    if outage && (owner_dead(self, a) || owner_dead(self, b)) =>
                {
                    got.push((qid, QueryAnswer::Degraded));
                }
                Query::Connected(a, b) => {
                    for probe in [a, b] {
                        wave.push((
                            self.owner(probe),
                            ConnMsg::QConnProbe {
                                qid,
                                probe,
                                expect: 2,
                                rendezvous,
                            },
                        ));
                    }
                }
                Query::ComponentOf(v) if outage && owner_dead(self, v) => {
                    got.push((qid, QueryAnswer::Degraded));
                }
                Query::ComponentOf(v) => wave.push((
                    self.owner(v),
                    ConnMsg::QConnProbe {
                        qid,
                        probe: v,
                        expect: 1,
                        rendezvous,
                    },
                )),
                Query::PathMax(u, v) if u == v => {
                    got.push((qid, QueryAnswer::PathMax(None)));
                }
                // Path-max traversals fan out across a component's whole
                // owner set; any dead machine may hold on-path state, so the
                // answer is conservatively degraded during an outage.
                Query::PathMax(_, _) if outage => got.push((qid, QueryAnswer::Degraded)),
                Query::PathMax(u, v) => wave.push((
                    self.owner(u),
                    ConnMsg::QPathStart {
                        qid,
                        u,
                        v,
                        rendezvous,
                    },
                )),
                Query::IsMatched(_) | Query::MatchingSize => {
                    got.push((qid, QueryAnswer::Unsupported));
                }
            }
        }
        self.cluster.inject_batch(wave);
        let m = self.cluster.run_update();
        for mid in 0..self.cluster.n_machines() {
            got.extend(self.cluster.machine_mut(mid as MachineId).take_answers());
        }
        got.sort_unstable_by_key(|&(qid, _)| qid);
        assert_eq!(got.len(), chunk.len(), "query answers missing/duplicated");
        debug_assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        (got.into_iter().map(|(_, a)| a).collect(), m)
    }

    /// Answers a batch of queries, chunked so every wave fits the
    /// `O(sqrt N)`-word machine budget: at most `sqrt N` queries per wave
    /// (rendezvous fan-in, like update batches), and at most
    /// `S / (9 * P)` *path-max* queries per wave — a component's root owner
    /// multicasts one 9-word eval to up to `|owners| <= P` machines per
    /// path query, so its per-round send volume is the binding constraint
    /// when many concurrent path queries hit the same component.
    pub fn answer_query_batch(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
        let max_chunk = self.batch_chunk();
        let path_budget = match self.cluster.capacity_words() {
            Some(s) => (s / (9 * self.cluster.n_machines().max(1))).max(1),
            None => usize::MAX,
        };
        let mut answers = Vec::with_capacity(queries.len());
        let mut qm = QueryMetrics::default();
        let mut start = 0;
        while start < queries.len() {
            let mut end = start;
            let mut paths = 0usize;
            while end < queries.len() && end - start < max_chunk {
                if matches!(queries[end], Query::PathMax(u, v) if u != v) {
                    if paths == path_budget {
                        break;
                    }
                    paths += 1;
                }
                end += 1;
            }
            let chunk = &queries[start..end];
            let (a, m) = self.query_wave(chunk);
            answers.extend(a);
            qm.absorb_run(&m);
            qm.queries += chunk.len();
            start = end;
        }
        (answers, qm)
    }

    // ----- elasticity & recovery ------------------------------------------

    /// Driver-side partition table (machine `i` owns `bounds[i]..bounds[i+1]`).
    pub fn bounds(&self) -> &[V] {
        &self.bounds
    }

    /// Per-chunk word budget for migration/recovery couriers: a quarter of
    /// the machine capacity `S`, so transfer rounds stay well inside the
    /// per-machine communication cap alongside the protocol's own traffic.
    fn transfer_budget(&self) -> usize {
        self.cluster
            .capacity_words()
            .map_or(1 << 20, |s| (s / 4).max(1))
    }

    /// Splits machine `m`'s vertex range in half, migrating the upper half
    /// to its right neighbour (the last machine sheds its lower half to the
    /// left). `None` when the range has fewer than two vertices or the
    /// cluster has a single machine.
    pub fn split_shard(&mut self, m: MachineId) -> Option<UpdateMetrics> {
        let p = self.cluster.n_machines();
        let (lo0, hi0) = (self.bounds[m as usize], self.bounds[m as usize + 1]);
        if p < 2 || hi0 - lo0 < 2 {
            return None;
        }
        let mid = (lo0 + hi0) / 2;
        let (to, lo, hi) = if (m as usize) < p - 1 {
            (m + 1, mid, hi0)
        } else {
            (m - 1, lo0, mid)
        };
        Some(self.migrate(m, to, lo, hi))
    }

    /// Migrates machine `m`'s whole range into its right neighbour (the
    /// last machine merges left), leaving `m` with an empty range — it
    /// keeps its controller/rendezvous roles. `None` when already empty or
    /// the cluster has a single machine.
    pub fn merge_shard(&mut self, m: MachineId) -> Option<UpdateMetrics> {
        let p = self.cluster.n_machines();
        let (lo0, hi0) = (self.bounds[m as usize], self.bounds[m as usize + 1]);
        if p < 2 || lo0 == hi0 {
            return None;
        }
        let to = if (m as usize) < p - 1 { m + 1 } else { m - 1 };
        Some(self.migrate(m, to, lo0, hi0))
    }

    /// Injects one boundary-shift migration at the source and runs it to
    /// quiescence (data chunks, then directory patches — see `machine.rs`,
    /// "elasticity & recovery"). Mirrors the boundary shift locally.
    fn migrate(&mut self, from: MachineId, to: MachineId, lo: V, hi: V) -> UpdateMetrics {
        let (idx, val) = if to == from + 1 { (to, lo) } else { (from, hi) };
        self.bounds[idx as usize] = val;
        let budget = self.transfer_budget();
        self.run(from, ConnMsg::MigrateBegin { to, lo, hi, budget })
    }

    /// Fail-stop kill: the simulator drops all traffic addressed to `m`
    /// (each drop metered as a `DeadMachine` violation) and the machine's
    /// program state is wiped.
    pub fn kill_machine(&mut self, m: MachineId) {
        self.cluster.kill(m);
        self.cluster.machine_mut(m).wipe();
    }

    /// Revives `m` from `snapshot` (its recovered plain-text state,
    /// typically checkpoint + replay on an off-cluster replica): the packed
    /// text is staged at a live peer and shipped through the metered
    /// message plane in budgeted chunks; the final chunk installs it.
    pub fn revive_machine(&mut self, m: MachineId, snapshot: &str) -> UpdateMetrics {
        self.cluster.revive(m);
        let peer = (0..self.cluster.n_machines() as MachineId)
            .find(|&p| p != m && self.cluster.is_alive(p))
            .expect("a live peer to stage the handoff");
        let budget = self.transfer_budget();
        self.cluster
            .machine_mut(peer)
            .stage_handoff(dmpc_mpc::pack_text(snapshot));
        self.run(peer, ConnMsg::HandoffBegin { to: m, budget })
    }

    /// True if machine `m` currently accepts messages.
    pub fn is_alive(&self, m: MachineId) -> bool {
        self.cluster.is_alive(m)
    }

    /// Plain-text snapshot of machine `m` (checkpointing; driver-side state
    /// extraction, not metered).
    pub fn snapshot_machine(&self, m: MachineId) -> String {
        self.cluster.machine(m).snapshot_text()
    }

    /// Restores every machine from a full-cluster checkpoint and re-syncs
    /// the driver's partition-table mirror from the snapshots.
    pub fn restore(&mut self, snaps: &[String]) {
        for (m, s) in snaps.iter().enumerate() {
            self.cluster.machine_mut(m as MachineId).restore_text(s);
        }
        self.bounds = self.cluster.machine(0).bounds().to_vec();
    }

    /// The executor's quiescence cap (legal mid-flight round offsets).
    pub fn round_limit(&self) -> usize {
        self.cluster.round_limit()
    }

    /// Arms a mid-flight chaos event on the underlying cluster.
    pub fn arm_in_round(&mut self, at_round: u32, kind: ChaosKind) {
        self.cluster.arm_in_round(at_round, kind);
    }

    /// Machine-local restore of a single machine from its snapshot, without
    /// metered traffic (the epoch-abort rollback path). The partition-table
    /// mirror is re-synced from the restored snapshot — migrations never run
    /// mid-batch, so this is the same table every machine holds.
    pub fn restore_machine(&mut self, m: MachineId, snap: &str) {
        self.cluster.machine_mut(m).restore_text(snap);
        self.bounds = self.cluster.machine(m).bounds().to_vec();
    }

    /// Digest of the **logical** state: all `vert`/`adj` snapshot lines
    /// across the cluster, globally sorted. Placement (partition table,
    /// directory shards) is deliberately excluded so the digest is invariant
    /// under shard migration — a chaos run with splits/merges still compares
    /// bit-for-bit against a never-migrated baseline. Placement correctness
    /// is covered separately by `audit` / `audit_directory`.
    pub fn state_digest(&self) -> u64 {
        let mut lines: Vec<&str> = Vec::new();
        let snaps: Vec<String> = (0..self.cluster.n_machines() as MachineId)
            .map(|m| self.snapshot_machine(m))
            .collect();
        for snap in &snaps {
            lines.extend(
                snap.lines()
                    .filter(|l| l.starts_with("vert ") || l.starts_with("adj ")),
            );
        }
        lines.sort_unstable();
        let text = lines.join("\n");
        digest_snapshots([text.as_str()])
    }

    /// The model parameters.
    pub fn params(&self) -> &DmpcParams {
        &self.params
    }

    /// Number of machines in the cluster.
    pub fn n_machines(&self) -> usize {
        self.cluster.n_machines()
    }

    /// Iterate over the machine programs (state extraction and differential
    /// tests — not part of the model).
    pub fn machines(&self) -> impl Iterator<Item = &ConnMachine> {
        self.cluster.machines()
    }

    fn vertex_state(&self, v: V) -> VertexState {
        self.cluster
            .machine(self.owner(v))
            .vertex(v)
            .expect("vertex not found at its owner")
    }

    /// Component label of `v` (result extraction; not a metered query).
    pub fn comp_of(&self, v: V) -> CompId {
        self.vertex_state(v).comp
    }

    /// True if `a` and `b` are connected.
    pub fn connected(&self, a: V, b: V) -> bool {
        self.comp_of(a) == self.comp_of(b)
    }

    /// All component labels (index = vertex).
    pub fn component_labels(&self) -> Vec<CompId> {
        (0..self.params.n as V).map(|v| self.comp_of(v)).collect()
    }

    /// The current spanning forest (edge, weight), extracted from tree
    /// entries at child endpoints.
    pub fn tree_edges(&self) -> Vec<(Edge, Weight)> {
        let mut out = Vec::new();
        for m in self.cluster.machines() {
            for (v, st) in m.vertices() {
                for (&far, &(kind, w)) in &st.adj {
                    if let EntryKind::Tree { lo, .. } = kind {
                        if lo % 2 == 0 {
                            out.push((Edge::new(v, far), w));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Sum of spanning-forest edge weights (the maintained MSF weight).
    pub fn forest_weight(&self) -> Weight {
        self.tree_edges().iter().map(|&(_, w)| w).sum()
    }

    /// Bulk-loads an initial graph (the preprocessing step): computes a
    /// spanning forest and canonical tours centrally and installs the
    /// sharded state. See `preprocess` for the metered simulation of the
    /// paper's O(log n)-round distributed construction.
    pub fn bulk_load(&mut self, edges: &[(Edge, Weight)]) {
        let states = preprocess::build_states(self.params.n, edges);
        let mut owner_sets: HashMap<CompId, BTreeSet<MachineId>> = HashMap::new();
        for (v, st) in &states {
            owner_sets
                .entry(st.comp)
                .or_default()
                .insert(self.owner(*v));
        }
        for (v, st) in states {
            let owner = self.owner(v);
            self.cluster.machine_mut(owner).load_vertex(v, st);
        }
        // Install the owner directory at each component's root owner.
        for (comp, set) in owner_sets {
            let root = self.owner(comp as V);
            self.cluster
                .machine_mut(root)
                .load_dir_entry(comp, set.into_iter().collect());
        }
    }

    /// Ground-truth owner set of `v`'s component: every machine owning at
    /// least one of its vertices (state probe for audits/benches, O(n) —
    /// not part of the model).
    pub fn true_owner_set(&self, v: V) -> Vec<MachineId> {
        let comp = self.comp_of(v);
        let mut set = BTreeSet::new();
        for (mid, m) in self.cluster.machines().enumerate() {
            if m.vertices().iter().any(|(_, st)| st.comp == comp) {
                set.insert(mid as MachineId);
            }
        }
        set.into_iter().collect()
    }

    /// The machines owning either endpoint's component — the pre-update
    /// owner footprint a multicast-routed update is allowed to touch
    /// (state probe for audits/benches; O(n)).
    pub fn owner_footprint(&self, e: Edge) -> Vec<MachineId> {
        let mut union = self.true_owner_set(e.u);
        union.extend(self.true_owner_set(e.v));
        union.sort_unstable();
        union.dedup();
        union
    }

    /// True when `u` is structural in the current state: a cross-component
    /// insert (link) or a spanning-tree edge delete (cut). Non-structural
    /// updates never move tour indexes or component ids.
    pub fn is_structural(&self, u: Update) -> bool {
        let e = u.edge();
        match u {
            Update::Insert(_) => self.comp_of(e.u) != self.comp_of(e.v),
            Update::Delete(_) => self
                .cluster
                .machine(self.owner(e.u))
                .vertex(e.u)
                .and_then(|st| st.adj.get(&e.v).copied())
                .is_some_and(|(kind, _)| matches!(kind, EntryKind::Tree { .. })),
        }
    }

    /// Directory audit (tests): every stored owner set lives at its
    /// component's root owner and equals *exactly* the set of machines
    /// owning at least one live vertex of that component; every component
    /// spanning two or more machines has an entry; single-machine
    /// components rely on the implicit `{owner_of(comp)}` fallback, which
    /// must also be exact.
    pub fn audit_directory(&self) -> Result<(), String> {
        let mut truth: HashMap<CompId, BTreeSet<MachineId>> = HashMap::new();
        for (mid, m) in self.cluster.machines().enumerate() {
            for (_, st) in m.vertices() {
                truth.entry(st.comp).or_default().insert(mid as MachineId);
            }
        }
        for (mid, m) in self.cluster.machines().enumerate() {
            for (comp, owners) in m.directory() {
                let root = self.owner(*comp as V);
                if root != mid as MachineId {
                    return Err(format!(
                        "directory entry for comp {comp} stored at machine {mid}, \
                         but its root owner is {root}"
                    ));
                }
                if owners.len() < 2 {
                    return Err(format!(
                        "comp {comp}: stored owner set {owners:?} below the explicit-entry \
                         threshold (singletons use the implicit fallback)"
                    ));
                }
                let Some(expect) = truth.get(comp) else {
                    return Err(format!("directory entry for dead comp {comp}"));
                };
                let expect: Vec<MachineId> = expect.iter().copied().collect();
                if *owners != expect {
                    return Err(format!(
                        "comp {comp}: stored owner set {owners:?} != true set {expect:?}"
                    ));
                }
            }
        }
        for (comp, set) in &truth {
            let root = self.owner(*comp as V);
            if set.len() >= 2 {
                if !self.cluster.machine(root).directory().contains_key(comp) {
                    return Err(format!(
                        "comp {comp} spans machines {set:?} but its root owner {root} \
                         has no directory entry"
                    ));
                }
            } else if !set.contains(&root) {
                return Err(format!(
                    "comp {comp} lives only on {set:?} but the fallback names {root}"
                ));
            }
        }
        Ok(())
    }

    /// Structural audit (tests): component labelling is consistent, index
    /// lists partition each tour, adjacency entries are symmetric, tree
    /// entries pair up parent/child spans, and cached far indexes are live.
    pub fn audit(&self) -> Result<(), String> {
        let n = self.params.n;
        let mut comp: Vec<CompId> = Vec::with_capacity(n);
        let mut size: Vec<u64> = Vec::with_capacity(n);
        let mut idx: Vec<Vec<u64>> = Vec::with_capacity(n);
        let mut adj: Vec<HashMap<V, (EntryKind, Weight)>> = vec![HashMap::new(); n];
        for v in 0..n as V {
            let st = self.vertex_state(v);
            comp.push(st.comp);
            size.push(st.size);
            idx.push(st.idx.clone());
            adj[v as usize] = st.adj.iter().map(|(&k, &e)| (k, e)).collect();
        }
        // Group by comp.
        let mut members: HashMap<CompId, Vec<V>> = HashMap::new();
        for v in 0..n as V {
            members.entry(comp[v as usize]).or_default().push(v);
        }
        for (&c, vs) in &members {
            let k = vs.len() as u64;
            let elen = 4 * (k - 1);
            let mut seen = vec![false; elen as usize + 1];
            for &v in vs {
                if size[v as usize] != k {
                    return Err(format!(
                        "vertex {v}: stored size {} but component {c} has {k} members",
                        size[v as usize]
                    ));
                }
                for &i in &idx[v as usize] {
                    if i < 1 || i > elen {
                        return Err(format!("vertex {v}: index {i} out of 1..={elen}"));
                    }
                    if seen[i as usize] {
                        return Err(format!("component {c}: duplicate index {i}"));
                    }
                    seen[i as usize] = true;
                }
            }
            if seen[1..].iter().any(|&s| !s) {
                return Err(format!("component {c}: missing tour positions"));
            }
            // The component id equals the root vertex (f = 1) unless
            // singleton.
            if k > 1 {
                let root = c as V;
                if idx[root as usize].first() != Some(&1) {
                    return Err(format!("component {c}: id is not its root vertex"));
                }
            }
        }
        // Adjacency symmetry and annotations.
        for v in 0..n as V {
            for (&far, &(kind, w)) in &adj[v as usize] {
                let Some(&(rk, rw)) = adj[far as usize].get(&v) else {
                    return Err(format!("asymmetric edge ({v},{far})"));
                };
                if rw != w {
                    return Err(format!("weight mismatch on ({v},{far})"));
                }
                if comp[v as usize] != comp[far as usize] {
                    return Err(format!("edge ({v},{far}) spans components"));
                }
                match (kind, rk) {
                    (EntryKind::Tree { lo, hi }, EntryKind::Tree { lo: rlo, hi: rhi }) => {
                        // One side must be the inner (child) pair.
                        let child_here = lo % 2 == 0;
                        let (clo, chi, plo, phi) = if child_here {
                            (lo, hi, rlo, rhi)
                        } else {
                            (rlo, rhi, lo, hi)
                        };
                        if plo + 1 != clo || chi + 1 != phi {
                            return Err(format!(
                                "tree edge ({v},{far}) pairs mismatch: child ({clo},{chi}) parent ({plo},{phi})"
                            ));
                        }
                        let cv = if child_here { v } else { far };
                        if idx[cv as usize].first() != Some(&clo)
                            || idx[cv as usize].last() != Some(&chi)
                        {
                            return Err(format!(
                                "tree edge ({v},{far}): child span is not the child's f/l"
                            ));
                        }
                    }
                    (EntryKind::NonTree { cached, far_comp }, EntryKind::NonTree { .. }) => {
                        let cached_valid = idx[far as usize].contains(&cached)
                            || (cached == 0 && idx[far as usize].is_empty());
                        if !cached_valid {
                            return Err(format!(
                                "non-tree edge ({v},{far}): cached index {cached} is not an index of {far}"
                            ));
                        }
                        if far_comp != comp[far as usize] {
                            return Err(format!(
                                "non-tree edge ({v},{far}): far_comp {far_comp} but {far} is in {}",
                                comp[far as usize]
                            ));
                        }
                    }
                    _ => return Err(format!("edge ({v},{far}) tree/non-tree disagreement")),
                }
            }
        }
        Ok(())
    }
}

/// Fully dynamic connectivity in the DMPC model (paper Section 5):
/// O(1) rounds per update, O(sqrt N) active machines, O(sqrt N)
/// communication per round, worst case.
pub struct DmpcConnectivity {
    driver: ConnDriver,
}

impl DmpcConnectivity {
    /// New empty instance.
    pub fn new(params: DmpcParams) -> Self {
        DmpcConnectivity {
            driver: ConnDriver::new(params, false),
        }
    }

    /// New empty instance with explicit executor tuning (backend selection,
    /// per-round recording) — behaviour is bit-identical across backends.
    pub fn with_exec(params: DmpcParams, exec: ExecOptions) -> Self {
        DmpcConnectivity {
            driver: ConnDriver::with_exec(params, false, exec),
        }
    }

    /// New empty instance with explicit structural-op routing. States and
    /// query answers are bit-identical across routings; only the metered
    /// active machines/communication differ (the differential-testing knob,
    /// like the executor-backend trio).
    pub fn with_routing(params: DmpcParams, exec: ExecOptions, routing: Routing) -> Self {
        DmpcConnectivity {
            driver: ConnDriver::with_opts(params, false, exec, routing, Layout::default(), None),
        }
    }

    /// New empty instance with an explicit state layout (the map/SoA
    /// differential-testing knob; see [`Layout`]). States, digests and
    /// metrics are bit-identical across layouts.
    pub fn with_layout(params: DmpcParams, exec: ExecOptions, layout: Layout) -> Self {
        DmpcConnectivity {
            driver: ConnDriver::with_opts(params, false, exec, Routing::default(), layout, None),
        }
    }

    /// New empty instance with an explicit batch scheduler (the
    /// conflict/serialized differential-testing knob; see [`Scheduler`]).
    /// States, digests and query answers are bit-identical across
    /// schedulers; only the batch round counts differ.
    pub fn with_scheduler(params: DmpcParams, mut exec: ExecOptions, scheduler: Scheduler) -> Self {
        exec.scheduler = scheduler;
        DmpcConnectivity {
            driver: ConnDriver::with_exec(params, false, exec),
        }
    }

    /// New empty instance with an explicit machine count (the
    /// `active_scaling` bench sweeps P at fixed n; the model default is
    /// `params.storage_machines()`).
    pub fn with_cluster(
        params: DmpcParams,
        exec: ExecOptions,
        routing: Routing,
        machines: usize,
    ) -> Self {
        DmpcConnectivity {
            driver: ConnDriver::with_opts(
                params,
                false,
                exec,
                routing,
                Layout::default(),
                Some(machines),
            ),
        }
    }

    /// Preprocess an initial edge set.
    pub fn bulk_load(&mut self, edges: &[Edge]) {
        let w: Vec<(Edge, Weight)> = edges.iter().map(|&e| (e, 1)).collect();
        self.driver.bulk_load(&w);
    }

    /// The underlying driver (state extraction, audits).
    pub fn driver(&self) -> &ConnDriver {
        &self.driver
    }

    /// Mutable driver access (raw query waves in metering tests — not part
    /// of the model).
    pub fn driver_mut(&mut self) -> &mut ConnDriver {
        &mut self.driver
    }

    /// True if `a` and `b` are currently connected.
    pub fn connected(&self, a: V, b: V) -> bool {
        self.driver.connected(a, b)
    }

    /// Component labels for all vertices.
    pub fn component_labels(&self) -> Vec<CompId> {
        self.driver.component_labels()
    }
}

/// Batched query plane: `Connected`/`ComponentOf` resolve in two rounds per
/// wave, `PathMax` in five, all `q` queries of a wave concurrently (see
/// `machine.rs`, "The query plane").
impl QueryableAlgorithm for DmpcConnectivity {
    fn answer_query(&mut self, q: Query) -> (QueryAnswer, QueryMetrics) {
        let (mut answers, m) = self.driver.answer_query_batch(&[q]);
        (answers.pop().expect("one answer per query"), m)
    }

    fn answer_queries(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
        self.driver.answer_query_batch(queries)
    }
}

impl DynamicGraphAlgorithm for DmpcConnectivity {
    fn name(&self) -> &'static str {
        "dmpc-connectivity"
    }

    fn resident_words(&self) -> usize {
        self.driver.cluster.resident_words()
    }

    fn admission_budget(&self) -> Option<usize> {
        Some(self.driver.batch_chunk())
    }

    fn insert(&mut self, e: Edge) -> UpdateMetrics {
        let to = self.driver.owner(e.u);
        self.driver.run(
            to,
            ConnMsg::Insert {
                e,
                w: 1,
                lane: None,
            },
        )
    }

    fn delete(&mut self, e: Edge) -> UpdateMetrics {
        let to = self.driver.owner(e.u);
        self.driver.run(to, ConnMsg::Delete { e, lane: None })
    }

    /// Genuinely batched execution (machine program, not a loop): the batch
    /// is coalesced to its net updates, then driven through one
    /// classification fan-out per chunk — non-structural updates execute
    /// concurrently in O(1) rounds total, structural ones serialize. The
    /// cost is metered as one run per chunk under the combined load.
    fn apply_batch(&mut self, updates: &[Update]) -> BatchMetrics {
        let net = coalesce(updates);
        let mut bm = BatchMetrics::default();
        for part in net.chunks(self.driver.batch_chunk()) {
            let items = part
                .iter()
                .enumerate()
                .map(|(i, &upd)| BatchItem { upd, seq: i as u32 })
                .collect();
            bm.merge(&self.driver.run_batch_chunk(items));
        }
        // Amortize over the caller's batch: cancelled pairs count as free
        // work the batch absorbed.
        bm.updates = updates.len();
        bm
    }
}

/// Fully dynamic (1+eps)-approximate MST in the DMPC model (paper
/// Section 5.1). Per-update bounds match connectivity; the approximation
/// factor comes only from bucketed preprocessing.
pub struct DmpcMst {
    driver: ConnDriver,
    epsilon: f64,
}

impl DmpcMst {
    /// New empty instance; `epsilon` controls preprocessing bucketing.
    pub fn new(params: DmpcParams, epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        DmpcMst {
            driver: ConnDriver::new(params, true),
            epsilon,
        }
    }

    /// New empty instance with explicit structural-op routing (see
    /// [`DmpcConnectivity::with_routing`]).
    pub fn with_routing(params: DmpcParams, epsilon: f64, routing: Routing) -> Self {
        assert!(epsilon > 0.0);
        DmpcMst {
            driver: ConnDriver::with_opts(
                params,
                true,
                ExecOptions::default(),
                routing,
                Layout::default(),
                None,
            ),
            epsilon,
        }
    }

    /// New empty instance with an explicit state layout (see
    /// [`DmpcConnectivity::with_layout`]).
    pub fn with_layout(params: DmpcParams, epsilon: f64, layout: Layout) -> Self {
        assert!(epsilon > 0.0);
        DmpcMst {
            driver: ConnDriver::with_opts(
                params,
                true,
                ExecOptions::default(),
                Routing::default(),
                layout,
                None,
            ),
            epsilon,
        }
    }

    /// Preprocess an initial weighted edge set with (1+eps) weight
    /// bucketing (Section 5.1).
    pub fn bulk_load(&mut self, edges: &[(Edge, Weight)]) {
        let bucketed = preprocess::bucketize(edges, self.epsilon);
        self.driver.bulk_load(&bucketed);
    }

    /// The underlying driver (state extraction, audits).
    pub fn driver(&self) -> &ConnDriver {
        &self.driver
    }

    /// Mutable driver access (raw query waves in metering tests — not part
    /// of the model).
    pub fn driver_mut(&mut self) -> &mut ConnDriver {
        &mut self.driver
    }

    /// Weight of the maintained spanning forest.
    pub fn forest_weight(&self) -> Weight {
        self.driver.forest_weight()
    }

    /// True if `a` and `b` are currently connected.
    pub fn connected(&self, a: V, b: V) -> bool {
        self.driver.connected(a, b)
    }
}

/// MST mode shares the connectivity query plane; `PathMax` answers come
/// from the maintained (1+eps)-approximate spanning forest, with weights
/// reflecting the preprocessing's bucketing for bulk-loaded edges.
impl QueryableAlgorithm for DmpcMst {
    fn answer_query(&mut self, q: Query) -> (QueryAnswer, QueryMetrics) {
        let (mut answers, m) = self.driver.answer_query_batch(&[q]);
        (answers.pop().expect("one answer per query"), m)
    }

    fn answer_queries(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
        self.driver.answer_query_batch(queries)
    }
}

impl WeightedDynamicGraphAlgorithm for DmpcMst {
    fn name(&self) -> &'static str {
        "dmpc-mst"
    }

    fn admission_budget(&self) -> Option<usize> {
        Some(self.driver.batch_chunk())
    }

    fn insert(&mut self, e: Edge, w: Weight) -> UpdateMetrics {
        let to = self.driver.owner(e.u);
        self.driver.run(to, ConnMsg::Insert { e, w, lane: None })
    }

    fn delete(&mut self, e: Edge) -> UpdateMetrics {
        let to = self.driver.owner(e.u);
        self.driver.run(to, ConnMsg::Delete { e, lane: None })
    }
}

/// Both drivers expose the same chaos-plane surface: any machine may fail
/// (the protocol has no distinguished reliable machine — controller and
/// rendezvous roles are recoverable state), snapshots are per-machine
/// plain text, and split/merge are the boundary-shift migrations.
macro_rules! elastic_via_driver {
    ($ty:ty) => {
        impl ElasticAlgorithm for $ty {
            fn n_shards(&self) -> usize {
                self.driver.n_machines()
            }

            fn killable(&self, _m: MachineId) -> bool {
                true
            }

            fn is_alive(&self, m: MachineId) -> bool {
                self.driver.is_alive(m)
            }

            fn round_limit(&self) -> usize {
                self.driver.round_limit()
            }

            fn arm_in_round(&mut self, at_round: u32, kind: ChaosKind) {
                self.driver.arm_in_round(at_round, kind)
            }

            fn restore_machine(&mut self, m: MachineId, snap: &str) {
                self.driver.restore_machine(m, snap)
            }

            fn snapshot_machine(&self, m: MachineId) -> String {
                self.driver.snapshot_machine(m)
            }

            fn restore(&mut self, snaps: &[String]) {
                self.driver.restore(snaps)
            }

            fn kill(&mut self, m: MachineId) {
                self.driver.kill_machine(m)
            }

            fn revive(&mut self, m: MachineId, snap: &str) -> UpdateMetrics {
                self.driver.revive_machine(m, snap)
            }

            fn split(&mut self, m: MachineId) -> Option<UpdateMetrics> {
                self.driver.split_shard(m)
            }

            fn merge(&mut self, m: MachineId) -> Option<UpdateMetrics> {
                self.driver.merge_shard(m)
            }

            fn state_digest(&self) -> u64 {
                self.driver.state_digest()
            }
        }
    };
}

elastic_via_driver!(DmpcConnectivity);
elastic_via_driver!(DmpcMst);
