//! Per-machine vertex-shard storage: one protocol, two layouts.
//!
//! [`ConnMachine`](crate::machine::ConnMachine) keeps its owned vertex block
//! behind the [`Shard`] enum, selected by [`dmpc_mpc::Layout`]:
//!
//! * [`MapShard`] — the clarity-first original: a `BTreeMap` of per-vertex
//!   [`VertexState`]s, each with a `BTreeMap` adjacency. Kept for
//!   layout-differential testing (like PR 3's backend trio and PR 4's
//!   routing pair).
//! * [`SoaShard`] — the default compact layout: flat structure-of-arrays
//!   slices keyed by dense local slot ids (the `pvector` + property-array
//!   idiom), with per-vertex tour-index lists and adjacency entries stored
//!   as segments of two shared arenas. Deletes punch free holes (segment
//!   `len < cap`, or whole segments abandoned on relocation); arenas
//!   compact when holes outgrow live data, so the resident footprint stays
//!   linear in the shard.
//!
//! Both layouts run the *identical* structural-op mathematics: the
//! per-vertex core update ([`update_core`]) and the per-entry annotation
//! rewrite ([`rewrite_entry`]) are single shared functions, so the layouts
//! can only differ in iteration order — and every fold over entries
//! (replacement candidates, path maxima) uses an explicit total-order
//! tie-break, making the results order-independent. Snapshot emission sorts
//! by vertex and far endpoint, so `snapshot_text` (and therefore every
//! `state_digest`) is bit-identical across layouts; property tests pin this
//! on mixed update streams, including across kill/revive and split/merge
//! migrations.
//!
//! The global-id ↔ slot interner is direct-mapped: a shard owns a
//! contiguous vertex range, so `slot = v - base` with an absence sentinel.
//! Migrations shift the range; the interner rebases (rare, O(block) work)
//! rather than paying a hash per access on the hot path.

use crate::messages::{CutMode, StructBroadcast, VertexInfo};
use dmpc_eulertour::indexed::{apply_op_to_vertex, map_reroot, CompId, TourOp};
use dmpc_eulertour::TourIx;
use dmpc_graph::{Edge, Weight, V};
use dmpc_mpc::Layout;
use std::collections::BTreeMap;

/// An adjacency entry at one endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// Spanning-tree edge; `lo`/`hi` are its two tour indexes on this side.
    /// This endpoint is the child iff `lo` is even (arrival parity).
    Tree {
        /// Lower tour index on this side.
        lo: TourIx,
        /// Higher tour index on this side.
        hi: TourIx,
    },
    /// Non-tree edge; `cached` is some current tour index of the far
    /// endpoint (0 iff the far endpoint is a singleton) and `far_comp` is
    /// the far endpoint's component id. Between a cut and its replacement
    /// link, a non-tree edge can *cross* the two sides, so all cached-index
    /// maps are keyed by `far_comp`, not the owner's component.
    NonTree {
        /// Cached far-endpoint tour index.
        cached: TourIx,
        /// Far endpoint's component id.
        far_comp: CompId,
    },
}

/// Per-owned-vertex state (the materialized, layout-independent view; the
/// SoA layout only assembles it for audits, bulk loads and result
/// extraction, never on the update path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexState {
    /// Component id (= current root vertex of its tree).
    pub comp: CompId,
    /// Component size in vertices.
    pub size: u64,
    /// Sorted tour indexes of this vertex.
    pub idx: Vec<TourIx>,
    /// neighbor -> (kind, weight).
    pub adj: BTreeMap<V, (EntryKind, Weight)>,
}

impl VertexState {
    pub(crate) fn singleton(v: V) -> Self {
        VertexState {
            comp: v,
            size: 1,
            idx: Vec::new(),
            adj: BTreeMap::new(),
        }
    }

    pub(crate) fn f(&self) -> TourIx {
        self.idx.first().copied().unwrap_or(0)
    }

    pub(crate) fn l(&self) -> TourIx {
        self.idx.last().copied().unwrap_or(0)
    }

    pub(crate) fn info(&self, v: V) -> VertexInfo {
        VertexInfo {
            v,
            comp: self.comp,
            size: self.size,
            f: self.f(),
            l: self.l(),
        }
    }
}

/// What a structural-op sweep learned while applying to the local shard.
#[derive(Debug, Default)]
pub(crate) struct ApplyOutcome {
    /// Local best replacement candidate (searching cuts only).
    pub best: Option<(Edge, Weight)>,
    /// This machine still owns >= 1 vertex of the cut's surviving side.
    pub owns_parent: bool,
    /// This machine owns >= 1 vertex of the cut's detached side.
    pub owns_child: bool,
}

// ----- shared structural-op mathematics ---------------------------------
//
// The subtle index arithmetic lives exactly once, as pure functions over a
// vertex's core fields and one adjacency entry; each layout supplies only
// the iteration around them.

/// Per-vertex membership flags computed by [`update_core`], consumed by
/// [`rewrite_entry`] for every adjacency entry of that vertex.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct VertFlags {
    /// The vertex belonged to the rerooted (absorbed) component.
    reroot_member: bool,
    /// The vertex belongs to one of the two linked components.
    link_member: bool,
    /// ... specifically to the absorbed side `b`.
    link_from_b: bool,
    /// The vertex belonged to the cut component.
    was_member: bool,
    /// ... and ended up on the detached (child) side.
    my_detached: bool,
}

/// True iff `update_core` would touch a vertex with component id `c` at
/// all — lets the SoA sweep skip the tour-index copy for bystanders.
#[inline]
pub(crate) fn core_member(b: &StructBroadcast, c: CompId) -> bool {
    let rerooted = matches!(b.reroot, Some(TourOp::Reroot { comp, .. }) if comp == c);
    let main = match b.main {
        TourOp::Link { a, b: bc, .. } => c == a || c == bc,
        TourOp::Cut { comp, .. } => c == comp,
        TourOp::Reroot { .. } => false,
    };
    rerooted || main
}

/// Applies the broadcast's reroot + main op to one vertex's component id,
/// size and tour-index list (the per-vertex "core"). Returns the membership
/// flags the per-entry rewrite needs.
pub(crate) fn update_core(
    b: &StructBroadcast,
    v: V,
    comp: &mut CompId,
    size: &mut u64,
    idx: &mut Vec<TourIx>,
) -> VertFlags {
    let mut fl = VertFlags::default();
    // 1. Reroot (links only): a bijection on the absorbed component's
    // index space. Never changes the component id.
    if let Some(r @ TourOp::Reroot { comp: rc, .. }) = b.reroot {
        if *comp == rc {
            fl.reroot_member = true;
            apply_op_to_vertex(&r, v, *comp, idx);
        }
    }
    // 2. Main op.
    match b.main {
        TourOp::Link { a, b: bc, .. } => {
            let old = *comp;
            if old == a || old == bc {
                fl.link_member = true;
                fl.link_from_b = old == bc;
                *comp = apply_op_to_vertex(&b.main, v, old, idx);
                *size = b.merged_size;
            }
        }
        TourOp::Cut {
            comp: c,
            fy,
            ly,
            new_comp,
            ..
        } => {
            if *comp == c {
                fl.was_member = true;
                let k_sub = (ly - fy).div_ceil(4);
                let old_size = *size;
                *comp = apply_op_to_vertex(&b.main, v, *comp, idx);
                fl.my_detached = *comp == new_comp;
                *size = if fl.my_detached {
                    k_sub
                } else {
                    old_size - k_sub
                };
            }
        }
        TourOp::Reroot { .. } => unreachable!("reroot is never a main op"),
    }
    fl
}

/// Rewrites one adjacency entry's annotations under the broadcast ops and
/// folds crossing-edge replacement candidates (searching cuts).
///
/// Tree entries always live in the owner's component's index space;
/// non-tree cached indexes live in `far_comp`'s index space (the two can
/// differ transiently between a cut and its reconnecting link). Must be
/// called after [`update_core`] updated the vertex's core.
#[inline]
pub(crate) fn rewrite_entry(
    b: &StructBroadcast,
    fl: &VertFlags,
    v: V,
    far: V,
    kind: &mut EntryKind,
    w: Weight,
    best: &mut Option<(Weight, Edge)>,
) {
    // 1. Reroot phase.
    if let Some(TourOp::Reroot {
        comp: rc,
        elen,
        l_y,
        ..
    }) = b.reroot
    {
        match kind {
            EntryKind::Tree { lo, hi } if fl.reroot_member => {
                let (a, c) = (map_reroot(*lo, elen, l_y), map_reroot(*hi, elen, l_y));
                *lo = a.min(c);
                *hi = a.max(c);
            }
            EntryKind::NonTree { cached, far_comp } if *far_comp == rc => {
                *cached = map_reroot(*cached, elen, l_y);
            }
            _ => {}
        }
    }
    // 2. Main op.
    match b.main {
        TourOp::Link {
            a,
            b: bc,
            fx,
            elen_b,
            ..
        } => {
            let shift_b = fx + 2;
            let shift_a = elen_b + 4;
            match kind {
                EntryKind::Tree { lo, hi } if fl.link_member => {
                    let map = |i: TourIx| {
                        if fl.link_from_b {
                            i + shift_b
                        } else if i > fx {
                            i + shift_a
                        } else {
                            i
                        }
                    };
                    *lo = map(*lo);
                    *hi = map(*hi);
                }
                EntryKind::NonTree { cached, far_comp } => {
                    if *far_comp == bc {
                        // cached == 0 means the far endpoint was a
                        // singleton, i.e. it is the link's y, whose
                        // first new index is fx+2 (== 0 + shift_b).
                        *cached += shift_b;
                        *far_comp = a;
                    } else if *far_comp == a {
                        if *cached == 0 {
                            // Far endpoint was a singleton = the link's
                            // x; its first new index is fx+1 (fx = 0).
                            *cached = fx + 1;
                        } else if *cached > fx {
                            *cached += shift_a;
                        }
                    }
                }
                _ => {}
            }
        }
        TourOp::Cut {
            comp,
            x,
            y,
            fy,
            ly,
            new_comp,
        } => {
            // The cut edge's own entries are rewritten afterwards (by the
            // materialization step).
            if (v == x && far == y) || (v == y && far == x) {
                return;
            }
            let span = (ly - fy + 1) + 2;
            let child_singleton = ly == fy + 1;
            match kind {
                EntryKind::Tree { lo, hi } => {
                    if !fl.was_member {
                        return;
                    }
                    // A surviving tree edge lies on one side.
                    let map = |i: TourIx| {
                        if i > fy && i < ly {
                            i - fy
                        } else if i > ly {
                            i - span
                        } else {
                            i
                        }
                    };
                    *lo = map(*lo);
                    *hi = map(*hi);
                }
                EntryKind::NonTree { cached, far_comp } => {
                    if *far_comp != comp {
                        return;
                    }
                    // Classify the far side, repairing the dying
                    // indexes of the cut edge's endpoints.
                    if far == y {
                        *far_comp = new_comp;
                        *cached = if child_singleton { 0 } else { 1 };
                    } else if far == x {
                        *cached = b.x_after;
                    } else if *cached > fy && *cached < ly {
                        *far_comp = new_comp;
                        *cached -= fy;
                    } else if *cached > ly {
                        *cached -= span;
                    }
                    if b.rendezvous.is_some()
                        && fl.was_member
                        && (*far_comp == new_comp) != fl.my_detached
                    {
                        // Crossing edge: replacement candidate.
                        let cand = (w, Edge::new(v, far));
                        if best.is_none_or(|cur| cand < cur) {
                            *best = Some(cand);
                        }
                    }
                }
            }
        }
        TourOp::Reroot { .. } => unreachable!(),
    }
}

// ----- the map layout ---------------------------------------------------

/// The clarity-first layout: `BTreeMap` of [`VertexState`]s.
#[derive(Debug, Default)]
pub(crate) struct MapShard {
    verts: BTreeMap<V, VertexState>,
}

impl MapShard {
    fn new_range(lo: V, hi: V) -> Self {
        MapShard {
            verts: (lo..hi).map(|v| (v, VertexState::singleton(v))).collect(),
        }
    }

    fn st(&self, v: V) -> &VertexState {
        self.verts
            .get(&v)
            .expect("vertex not owned by this machine")
    }

    fn st_mut(&mut self, v: V) -> &mut VertexState {
        self.verts
            .get_mut(&v)
            .expect("vertex not owned by this machine")
    }

    fn apply_sweep(&mut self, b: &StructBroadcast) -> ApplyOutcome {
        let mut best: Option<(Weight, Edge)> = None;
        let mut outcome = ApplyOutcome::default();
        for (&v, st) in self.verts.iter_mut() {
            let fl = if core_member(b, st.comp) {
                update_core(b, v, &mut st.comp, &mut st.size, &mut st.idx)
            } else {
                VertFlags::default()
            };
            for (&far, (kind, w)) in st.adj.iter_mut() {
                rewrite_entry(b, &fl, v, far, kind, *w, &mut best);
            }
            // Collect cut-side membership inline (`st.comp` is final here;
            // the entry materialization never changes comp ids).
            if let TourOp::Cut { comp, new_comp, .. } = b.main {
                if st.comp == comp {
                    outcome.owns_parent = true;
                } else if st.comp == new_comp {
                    outcome.owns_child = true;
                }
            }
        }
        outcome.best = best.map(|(w, e)| (e, w));
        outcome
    }
}

// ----- the SoA layout ---------------------------------------------------

/// One segment of an arena: a vertex's entries live in
/// `arena[start..start+len]`, with `cap - len` free words of headroom
/// before the segment must relocate to the arena tail (leaving a hole).
#[derive(Clone, Copy, Debug, Default)]
struct Seg {
    start: u32,
    len: u32,
    cap: u32,
}

/// Absence sentinel in the `comp` property array (component ids are vertex
/// ids, which stay far below `u32::MAX`).
const COMP_NONE: CompId = CompId::MAX;
/// Tag bit packed into the adjacency `far` array: set = tree entry.
const TREE_BIT: u32 = 1 << 31;
/// Headroom granted when an adjacency segment relocates.
const ADJ_HEADROOM: u32 = 2;
/// Headroom granted when a tour segment relocates (links grow a vertex's
/// index list by up to 2).
const TOUR_HEADROOM: u32 = 4;

/// The compact layout: property arrays indexed by `slot = v - base`, plus
/// two arenas (tour indexes, adjacency entries) addressed by per-slot
/// segments.
#[derive(Debug, Default)]
pub(crate) struct SoaShard {
    /// Direct-mapped interner base: global vertex `v` lives in slot
    /// `v - base`.
    base: V,
    /// Component id per slot; [`COMP_NONE`] marks an absent slot.
    comp: Vec<CompId>,
    /// Component size per slot (component sizes are at most `n`, which
    /// fits `u32` since vertex ids do).
    size: Vec<u32>,
    /// Tour-index segment per slot (into `tour`).
    tpos: Vec<Seg>,
    /// Tour-index arena.
    tour: Vec<TourIx>,
    /// Live words in `tour` (sum of segment lens; the rest are holes).
    tour_live: usize,
    /// Adjacency segment per slot (into the four entry arrays).
    apos: Vec<Seg>,
    /// Far endpoint | [`TREE_BIT`], per entry.
    afar: Vec<u32>,
    /// Edge weight, per entry.
    aw: Vec<Weight>,
    /// `lo` (tree) or `cached` (non-tree), per entry.
    aa: Vec<u64>,
    /// `hi` (tree) or `far_comp` (non-tree), per entry.
    ab: Vec<u64>,
    /// Live entries in the adjacency arena.
    adj_live: usize,
    /// Soft resident budget in words (0 = unlimited): a mutation that
    /// leaves the shard above it forces a full arena compaction, so slack
    /// never turns a shard that *would* fit compactly into a capacity
    /// violation.
    soft_cap: usize,
    /// Reusable copy-out buffer for the tour kernel.
    scratch: Vec<TourIx>,
}

#[inline]
fn decode_kind(tagged: u32, a: u64, b: u64) -> EntryKind {
    if tagged & TREE_BIT != 0 {
        EntryKind::Tree { lo: a, hi: b }
    } else {
        EntryKind::NonTree {
            cached: a,
            far_comp: b as CompId,
        }
    }
}

#[inline]
fn encode_kind(kind: &EntryKind) -> (bool, u64, u64) {
    match *kind {
        EntryKind::Tree { lo, hi } => (true, lo, hi),
        EntryKind::NonTree { cached, far_comp } => (false, cached, far_comp as u64),
    }
}

impl SoaShard {
    fn new_range(lo: V, hi: V) -> Self {
        let n = (hi - lo) as usize;
        SoaShard {
            base: lo,
            comp: (lo..hi).collect(),
            size: vec![1; n],
            tpos: vec![Seg::default(); n],
            apos: vec![Seg::default(); n],
            ..Default::default()
        }
    }

    #[inline]
    fn slot_of(&self, v: V) -> Option<usize> {
        let i = v.checked_sub(self.base)? as usize;
        (i < self.comp.len() && self.comp[i] != COMP_NONE).then_some(i)
    }

    #[inline]
    fn slot(&self, v: V) -> usize {
        self.slot_of(v).expect("vertex not owned by this machine")
    }

    /// Grows the slot range to cover `v` (installs an absent slot).
    fn ensure_slot(&mut self, v: V) -> usize {
        debug_assert!(v < TREE_BIT, "vertex id collides with the tree tag bit");
        if self.comp.is_empty() {
            self.base = v;
        }
        if v < self.base {
            let k = (self.base - v) as usize;
            self.comp.splice(0..0, std::iter::repeat_n(COMP_NONE, k));
            self.size.splice(0..0, std::iter::repeat_n(0u32, k));
            self.tpos
                .splice(0..0, std::iter::repeat_n(Seg::default(), k));
            self.apos
                .splice(0..0, std::iter::repeat_n(Seg::default(), k));
            self.base = v;
        }
        let i = (v - self.base) as usize;
        while self.comp.len() <= i {
            self.comp.push(COMP_NONE);
            self.size.push(0);
            self.tpos.push(Seg::default());
            self.apos.push(Seg::default());
        }
        i
    }

    /// Drops absent slots at both ends of the range (after migrations move
    /// a prefix/suffix away) so the resident footprint tracks the shard.
    fn trim_slots(&mut self) {
        let last = match self.comp.iter().rposition(|&c| c != COMP_NONE) {
            Some(p) => p,
            None => {
                self.base = 0;
                self.comp.clear();
                self.size.clear();
                self.tpos.clear();
                self.apos.clear();
                return;
            }
        };
        self.comp.truncate(last + 1);
        self.size.truncate(last + 1);
        self.tpos.truncate(last + 1);
        self.apos.truncate(last + 1);
        let first = self.comp.iter().position(|&c| c != COMP_NONE).unwrap();
        if first > 0 {
            self.comp.drain(..first);
            self.size.drain(..first);
            self.tpos.drain(..first);
            self.apos.drain(..first);
            self.base += first as V;
        }
    }

    #[inline]
    fn tour_slice(&self, slot: usize) -> &[TourIx] {
        let s = self.tpos[slot];
        &self.tour[s.start as usize..(s.start + s.len) as usize]
    }

    /// Overwrites a slot's tour segment, relocating to the arena tail (with
    /// headroom) when it outgrows its capacity.
    fn tour_store(&mut self, slot: usize, vals: &[TourIx], headroom: u32) {
        let s = self.tpos[slot];
        self.tour_live = self.tour_live - s.len as usize + vals.len();
        if vals.len() as u32 <= s.cap {
            self.tour[s.start as usize..s.start as usize + vals.len()].copy_from_slice(vals);
            self.tpos[slot].len = vals.len() as u32;
        } else {
            let start = self.tour.len() as u32;
            let cap = vals.len() as u32 + headroom;
            self.tour.extend_from_slice(vals);
            self.tour.resize(self.tour.len() + headroom as usize, 0);
            self.tpos[slot] = Seg {
                start,
                len: vals.len() as u32,
                cap,
            };
        }
        self.maybe_compact_tour();
    }

    fn maybe_compact_tour(&mut self) {
        // Slack is a fraction of the live size (amortized O(1) per op), kept
        // small in absolute terms too: resident memory is metered against
        // the machine capacity S, so holes are not free.
        if self.tour.len() <= self.tour_live + self.tour_live / 8 + 16 {
            return;
        }
        self.compact_tour();
    }

    fn compact_tour(&mut self) {
        let mut tour = Vec::with_capacity(self.tour_live);
        for s in self.tpos.iter_mut() {
            let start = tour.len() as u32;
            tour.extend_from_slice(&self.tour[s.start as usize..(s.start + s.len) as usize]);
            *s = Seg {
                start,
                len: s.len,
                cap: s.len,
            };
        }
        self.tour = tour;
    }

    #[inline]
    fn adj_find(&self, slot: usize, far: V) -> Option<usize> {
        let s = self.apos[slot];
        (s.start as usize..(s.start + s.len) as usize).find(|&i| self.afar[i] & !TREE_BIT == far)
    }

    /// Appends one entry to a slot's adjacency segment, relocating (with
    /// headroom) on overflow.
    fn adj_push(&mut self, slot: usize, far: V, kind: &EntryKind, w: Weight, headroom: u32) {
        let (tree, a, b) = encode_kind(kind);
        let tagged = far | if tree { TREE_BIT } else { 0 };
        let s = self.apos[slot];
        if s.len < s.cap {
            let i = (s.start + s.len) as usize;
            self.afar[i] = tagged;
            self.aw[i] = w;
            self.aa[i] = a;
            self.ab[i] = b;
            self.apos[slot].len += 1;
        } else if (s.start + s.cap) as usize == self.afar.len() {
            // The segment ends at the arena tail: grow in place, no hole.
            // This is the common case during snapshot restores, where a
            // vertex's entries stream in back-to-back.
            self.afar.push(tagged);
            self.aw.push(w);
            self.aa.push(a);
            self.ab.push(b);
            self.apos[slot].len += 1;
            self.apos[slot].cap += 1;
        } else {
            let start = self.afar.len() as u32;
            let cap = s.len + 1 + headroom;
            for k in s.start as usize..(s.start + s.len) as usize {
                let (f, ww, va, vb) = (self.afar[k], self.aw[k], self.aa[k], self.ab[k]);
                self.afar.push(f);
                self.aw.push(ww);
                self.aa.push(va);
                self.ab.push(vb);
            }
            self.afar.push(tagged);
            self.aw.push(w);
            self.aa.push(a);
            self.ab.push(b);
            let pad = (cap - s.len - 1) as usize;
            self.afar.resize(self.afar.len() + pad, 0);
            self.aw.resize(self.aw.len() + pad, 0);
            self.aa.resize(self.aa.len() + pad, 0);
            self.ab.resize(self.ab.len() + pad, 0);
            self.apos[slot] = Seg {
                start,
                len: s.len + 1,
                cap,
            };
            self.maybe_compact_adj();
        }
        self.adj_live += 1;
    }

    /// Writes a whole (empty) adjacency segment at once with an exact cap —
    /// bulk loading, where per-entry pushes would leave relocation holes.
    fn adj_store(&mut self, slot: usize, entries: &BTreeMap<V, (EntryKind, Weight)>) {
        let s = self.apos[slot];
        debug_assert_eq!(s.len, 0, "adj_store over a non-empty segment");
        let n = entries.len() as u32;
        let base = if n <= s.cap {
            self.apos[slot].len = n;
            s.start as usize
        } else {
            let start = self.afar.len();
            self.afar.resize(start + n as usize, 0);
            self.aw.resize(start + n as usize, 0);
            self.aa.resize(start + n as usize, 0);
            self.ab.resize(start + n as usize, 0);
            self.apos[slot] = Seg {
                start: start as u32,
                len: n,
                cap: n,
            };
            start
        };
        for (j, (&far, (kind, w))) in entries.iter().enumerate() {
            let (tree, a, b) = encode_kind(kind);
            let i = base + j;
            self.afar[i] = far | if tree { TREE_BIT } else { 0 };
            self.aw[i] = *w;
            self.aa[i] = a;
            self.ab[i] = b;
        }
        self.adj_live += n as usize;
        self.maybe_compact_adj();
    }

    fn maybe_compact_adj(&mut self) {
        if self.afar.len() <= self.adj_live + self.adj_live / 8 + 16 {
            return;
        }
        self.compact_adj();
    }

    /// Exact resident footprint in words (8 bytes), counting the backing
    /// stores as allocated — slot property arrays, both arenas including
    /// holes and segment headroom, rounded up to whole words.
    fn words(&self) -> usize {
        let slot_bytes = self.comp.len() * 4    // comp: u32
            + self.size.len() * 4               // size: u32
            + self.tpos.len() * 12              // Seg: 3 x u32
            + self.apos.len() * 12;
        let tour_bytes = self.tour.len() * 8;
        let adj_bytes = self.afar.len() * 4     // far|tag: u32
            + self.aw.len() * 8                 // weight: u64
            + self.aa.len() * 8
            + self.ab.len() * 8;
        (slot_bytes + tour_bytes + adj_bytes).div_ceil(8)
    }

    /// Compacts both arenas if the shard sits above its soft budget while
    /// holding any slack. Steady-state mutations never pay this; it only
    /// fires when a shard is near the machine capacity `S`, where the
    /// metered footprint must match the compact one.
    fn enforce_soft_cap(&mut self) {
        if self.soft_cap == 0 {
            return;
        }
        if self.tour.len() == self.tour_live && self.afar.len() == self.adj_live {
            return;
        }
        if self.words() <= self.soft_cap {
            return;
        }
        self.compact_tour();
        self.compact_adj();
    }

    fn compact_adj(&mut self) {
        let mut afar = Vec::with_capacity(self.adj_live);
        let mut aw = Vec::with_capacity(self.adj_live);
        let mut aa = Vec::with_capacity(self.adj_live);
        let mut ab = Vec::with_capacity(self.adj_live);
        for s in self.apos.iter_mut() {
            let start = afar.len() as u32;
            for i in s.start as usize..(s.start + s.len) as usize {
                afar.push(self.afar[i]);
                aw.push(self.aw[i]);
                aa.push(self.aa[i]);
                ab.push(self.ab[i]);
            }
            *s = Seg {
                start,
                len: s.len,
                cap: s.len,
            };
        }
        self.afar = afar;
        self.aw = aw;
        self.aa = aa;
        self.ab = ab;
    }

    /// Removes a slot entirely (migration), freeing its segments as holes.
    fn remove_slot(&mut self, slot: usize) {
        self.comp[slot] = COMP_NONE;
        self.size[slot] = 0;
        self.tour_live -= self.tpos[slot].len as usize;
        self.adj_live -= self.apos[slot].len as usize;
        self.tpos[slot] = Seg::default();
        self.apos[slot] = Seg::default();
    }

    /// Sorted `(far, kind, weight)` entries of one slot (snapshots).
    fn sorted_entries(&self, slot: usize) -> Vec<(V, EntryKind, Weight)> {
        let s = self.apos[slot];
        let mut es: Vec<(V, EntryKind, Weight)> = (s.start as usize..(s.start + s.len) as usize)
            .map(|i| {
                (
                    self.afar[i] & !TREE_BIT,
                    decode_kind(self.afar[i], self.aa[i], self.ab[i]),
                    self.aw[i],
                )
            })
            .collect();
        es.sort_unstable_by_key(|e| e.0);
        es
    }

    fn materialize(&self, slot: usize) -> VertexState {
        VertexState {
            comp: self.comp[slot],
            size: self.size[slot] as u64,
            idx: self.tour_slice(slot).to_vec(),
            adj: self
                .sorted_entries(slot)
                .into_iter()
                .map(|(far, kind, w)| (far, (kind, w)))
                .collect(),
        }
    }

    fn apply_sweep(&mut self, b: &StructBroadcast) -> ApplyOutcome {
        let mut best: Option<(Weight, Edge)> = None;
        let mut outcome = ApplyOutcome::default();
        let mut scratch = std::mem::take(&mut self.scratch);
        let (cut_comp, cut_new) = match b.main {
            TourOp::Cut { comp, new_comp, .. } => (comp, new_comp),
            _ => (COMP_NONE, COMP_NONE),
        };
        // For a bystander vertex (default flags), `rewrite_entry` only ever
        // touches non-tree entries whose `far_comp` is one of the broadcast's
        // named components: the tree arms and the candidate fold are all
        // gated on membership flags. Precompute that id set so the bystander
        // loop can skip the decode/encode round-trip for everything else.
        let mut affected = [COMP_NONE; 3];
        if let Some(TourOp::Reroot { comp, .. }) = b.reroot {
            affected[0] = comp;
        }
        match b.main {
            TourOp::Link { a, b: bc, .. } => {
                affected[1] = a;
                affected[2] = bc;
            }
            TourOp::Cut { comp, .. } => affected[1] = comp,
            TourOp::Reroot { .. } => {}
        }
        for slot in 0..self.comp.len() {
            let c = self.comp[slot];
            if c == COMP_NONE {
                continue;
            }
            let v = self.base + slot as V;
            let s = self.apos[slot];
            let seg = s.start as usize..(s.start + s.len) as usize;
            if !core_member(b, c) {
                if c == cut_comp {
                    outcome.owns_parent = true;
                } else if c == cut_new {
                    outcome.owns_child = true;
                }
                let fl = VertFlags::default();
                for i in seg {
                    let tagged = self.afar[i];
                    if tagged & TREE_BIT != 0 {
                        continue;
                    }
                    let fc = self.ab[i] as CompId;
                    if fc != affected[0] && fc != affected[1] && fc != affected[2] {
                        continue;
                    }
                    let mut kind = decode_kind(tagged, self.aa[i], self.ab[i]);
                    rewrite_entry(
                        b,
                        &fl,
                        v,
                        tagged & !TREE_BIT,
                        &mut kind,
                        self.aw[i],
                        &mut best,
                    );
                    let (_, a, bb) = encode_kind(&kind);
                    self.aa[i] = a;
                    self.ab[i] = bb;
                }
                continue;
            }
            scratch.clear();
            scratch.extend_from_slice(self.tour_slice(slot));
            let mut comp = c;
            let mut size = self.size[slot] as u64;
            let fl = update_core(b, v, &mut comp, &mut size, &mut scratch);
            self.comp[slot] = comp;
            self.size[slot] = size as u32;
            self.tour_store(slot, &scratch, TOUR_HEADROOM);
            if comp == cut_comp {
                outcome.owns_parent = true;
            } else if comp == cut_new {
                outcome.owns_child = true;
            }
            // tour_store may relocate segments, but never the adjacency
            // arena; `seg` stays valid.
            for i in seg {
                let mut kind = decode_kind(self.afar[i], self.aa[i], self.ab[i]);
                rewrite_entry(
                    b,
                    &fl,
                    v,
                    self.afar[i] & !TREE_BIT,
                    &mut kind,
                    self.aw[i],
                    &mut best,
                );
                let (_, a, bb) = encode_kind(&kind);
                self.aa[i] = a;
                self.ab[i] = bb;
            }
        }
        self.scratch = scratch;
        outcome.best = best.map(|(w, e)| (e, w));
        outcome
    }
}

// ----- the layout-dispatched shard --------------------------------------

/// A machine's owned vertex shard, in one of the two storage layouts.
// One Shard per machine, heap-allocated in the machine struct; the size
// gap between the arena-backed variant and the map variant is the point
// of the refactor, not accidental bloat worth boxing away.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum Shard {
    /// Per-vertex map containers (legacy, differential testing).
    Map(MapShard),
    /// Arena-backed structure-of-arrays (default).
    Soa(SoaShard),
}

impl Shard {
    /// A fresh shard of singleton vertices `lo..hi`.
    pub fn new_range(layout: Layout, lo: V, hi: V) -> Self {
        match layout {
            Layout::Map => Shard::Map(MapShard::new_range(lo, hi)),
            Layout::Soa => Shard::Soa(SoaShard::new_range(lo, hi)),
        }
    }

    /// This shard's storage layout.
    pub fn layout(&self) -> Layout {
        match self {
            Shard::Map(_) => Layout::Map,
            Shard::Soa(_) => Layout::Soa,
        }
    }

    /// Drops all vertex state (the layout is retained).
    pub fn clear(&mut self) {
        match self {
            Shard::Map(m) => m.verts.clear(),
            Shard::Soa(s) => {
                *s = SoaShard {
                    soft_cap: s.soft_cap,
                    ..SoaShard::default()
                }
            }
        }
    }

    /// Sets the soft resident budget in words. SoA mutations that leave
    /// the shard above it force a full arena compaction; the map layout
    /// carries no slack and ignores it.
    pub fn set_soft_cap(&mut self, words: usize) {
        if let Shard::Soa(s) = self {
            s.soft_cap = words;
        }
    }

    pub fn contains(&self, v: V) -> bool {
        match self {
            Shard::Map(m) => m.verts.contains_key(&v),
            Shard::Soa(s) => s.slot_of(v).is_some(),
        }
    }

    pub fn comp_of(&self, v: V) -> CompId {
        match self {
            Shard::Map(m) => m.st(v).comp,
            Shard::Soa(s) => s.comp[s.slot(v)],
        }
    }

    pub fn size_of(&self, v: V) -> u64 {
        match self {
            Shard::Map(m) => m.st(v).size,
            Shard::Soa(s) => s.size[s.slot(v)] as u64,
        }
    }

    pub fn f_of(&self, v: V) -> TourIx {
        match self {
            Shard::Map(m) => m.st(v).f(),
            Shard::Soa(s) => s.tour_slice(s.slot(v)).first().copied().unwrap_or(0),
        }
    }

    #[cfg(test)]
    pub fn l_of(&self, v: V) -> TourIx {
        match self {
            Shard::Map(m) => m.st(v).l(),
            Shard::Soa(s) => s.tour_slice(s.slot(v)).last().copied().unwrap_or(0),
        }
    }

    /// The vertex's tour-index list (the cut flow derives the surviving
    /// parent index from it).
    pub fn idx_of(&self, v: V) -> &[TourIx] {
        match self {
            Shard::Map(m) => &m.st(v).idx,
            Shard::Soa(s) => s.tour_slice(s.slot(v)),
        }
    }

    /// O(1)-word wire summary of one vertex.
    pub fn info(&self, v: V) -> VertexInfo {
        match self {
            Shard::Map(m) => m.st(v).info(v),
            Shard::Soa(s) => {
                let slot = s.slot(v);
                let t = s.tour_slice(slot);
                VertexInfo {
                    v,
                    comp: s.comp[slot],
                    size: s.size[slot] as u64,
                    f: t.first().copied().unwrap_or(0),
                    l: t.last().copied().unwrap_or(0),
                }
            }
        }
    }

    /// One adjacency entry, if present (panics when `v` is not owned).
    pub fn adj_get(&self, v: V, far: V) -> Option<(EntryKind, Weight)> {
        match self {
            Shard::Map(m) => m.st(v).adj.get(&far).copied(),
            Shard::Soa(s) => {
                let slot = s.slot(v);
                s.adj_find(slot, far)
                    .map(|i| (decode_kind(s.afar[i], s.aa[i], s.ab[i]), s.aw[i]))
            }
        }
    }

    /// Inserts or overwrites one adjacency entry.
    pub fn adj_set(&mut self, v: V, far: V, kind: EntryKind, w: Weight) {
        match self {
            Shard::Map(m) => {
                m.st_mut(v).adj.insert(far, (kind, w));
            }
            Shard::Soa(s) => {
                let slot = s.slot(v);
                match s.adj_find(slot, far) {
                    Some(i) => {
                        let (tree, a, b) = encode_kind(&kind);
                        s.afar[i] = far | if tree { TREE_BIT } else { 0 };
                        s.aw[i] = w;
                        s.aa[i] = a;
                        s.ab[i] = b;
                    }
                    None => s.adj_push(slot, far, &kind, w, ADJ_HEADROOM),
                }
                s.enforce_soft_cap();
            }
        }
    }

    /// Removes one adjacency entry (no-op when absent).
    pub fn adj_remove(&mut self, v: V, far: V) {
        match self {
            Shard::Map(m) => {
                m.st_mut(v).adj.remove(&far);
            }
            Shard::Soa(s) => {
                let slot = s.slot(v);
                if let Some(i) = s.adj_find(slot, far) {
                    let sg = s.apos[slot];
                    let last = (sg.start + sg.len - 1) as usize;
                    s.afar[i] = s.afar[last];
                    s.aw[i] = s.aw[last];
                    s.aa[i] = s.aa[last];
                    s.ab[i] = s.ab[last];
                    s.apos[slot].len -= 1;
                    s.adj_live -= 1;
                    s.maybe_compact_adj();
                }
                s.enforce_soft_cap();
            }
        }
    }

    /// Applies a structural op to all owned state; returns the local
    /// replacement candidate and split-side membership (cuts). The sweep is
    /// layout-specific; the cut/link entry materialization below it is the
    /// shared protocol step.
    pub fn apply_struct(&mut self, b: &StructBroadcast) -> ApplyOutcome {
        let outcome = match self {
            Shard::Map(m) => m.apply_sweep(b),
            Shard::Soa(s) => s.apply_sweep(b),
        };
        // Materialize the new/updated edge entries at owned endpoints.
        match b.main {
            TourOp::Link {
                x, y, fx, elen_b, ..
            } => {
                if self.contains(x) {
                    self.adj_set(
                        x,
                        y,
                        EntryKind::Tree {
                            lo: fx + 1,
                            hi: fx + elen_b + 4,
                        },
                        b.weight,
                    );
                }
                if self.contains(y) {
                    self.adj_set(
                        y,
                        x,
                        EntryKind::Tree {
                            lo: fx + 2,
                            hi: fx + elen_b + 3,
                        },
                        b.weight,
                    );
                }
            }
            TourOp::Cut {
                comp,
                x,
                y,
                fy,
                ly,
                new_comp,
            } => match b.cut_mode {
                CutMode::Remove => {
                    if self.contains(x) {
                        self.adj_remove(x, y);
                    }
                    if self.contains(y) {
                        self.adj_remove(y, x);
                    }
                }
                CutMode::Demote => {
                    // The edge stays in the graph as a (crossing, until the
                    // follow-up link) non-tree edge.
                    let child_singleton = ly == fy + 1;
                    if self.contains(x) {
                        let w = self.adj_get(x, y).map(|(_, w)| w).unwrap_or(0);
                        self.adj_set(
                            x,
                            y,
                            EntryKind::NonTree {
                                cached: if child_singleton { 0 } else { 1 },
                                far_comp: new_comp,
                            },
                            w,
                        );
                    }
                    if self.contains(y) {
                        let w = self.adj_get(y, x).map(|(_, w)| w).unwrap_or(0);
                        self.adj_set(
                            y,
                            x,
                            EntryKind::NonTree {
                                cached: b.x_after,
                                far_comp: comp,
                            },
                            w,
                        );
                    }
                }
            },
            TourOp::Reroot { .. } => unreachable!("reroot is never a main op"),
        }
        if let Shard::Soa(s) = self {
            s.enforce_soft_cap();
        }
        outcome
    }

    /// The max-weight locally-owned tree edge on the path between the two
    /// spans (ties broken toward the smaller edge for determinism; the fold
    /// is a strict total order, so iteration order cannot matter).
    pub fn path_max(
        &self,
        comp: CompId,
        fx: TourIx,
        lx: TourIx,
        fy: TourIx,
        ly: TourIx,
    ) -> Option<(Edge, Weight)> {
        let mut best: Option<(Weight, Edge)> = None;
        let mut fold = |v: V, far: V, lo: TourIx, hi: TourIx, w: Weight| {
            // Process each tree edge once: at its child endpoint.
            if !lo.is_multiple_of(2) {
                return;
            }
            // Child's subtree span is [lo, hi]; the edge is on the
            // x..y path iff the span contains exactly one endpoint.
            let contains_x = lo <= fx && lx <= hi;
            let contains_y = lo <= fy && ly <= hi;
            if contains_x ^ contains_y {
                let better = match best {
                    None => true,
                    Some((bw, be)) => w > bw || (w == bw && Edge::new(v, far) < be),
                };
                if better {
                    best = Some((w, Edge::new(v, far)));
                }
            }
        };
        match self {
            Shard::Map(m) => {
                for (&v, st) in &m.verts {
                    if st.comp != comp {
                        continue;
                    }
                    for (&far, &(kind, w)) in &st.adj {
                        if let EntryKind::Tree { lo, hi } = kind {
                            fold(v, far, lo, hi, w);
                        }
                    }
                }
            }
            Shard::Soa(s) => {
                for slot in 0..s.comp.len() {
                    if s.comp[slot] != comp {
                        continue;
                    }
                    let v = s.base + slot as V;
                    let sg = s.apos[slot];
                    for i in sg.start as usize..(sg.start + sg.len) as usize {
                        if s.afar[i] & TREE_BIT != 0 {
                            fold(v, s.afar[i] & !TREE_BIT, s.aa[i], s.ab[i], s.aw[i]);
                        }
                    }
                }
            }
        }
        best.map(|(w, e)| (e, w))
    }

    /// True iff any owned vertex belongs to `comp` (migration directory
    /// repair).
    pub fn any_in_comp(&self, comp: CompId) -> bool {
        match self {
            Shard::Map(m) => m.verts.values().any(|st| st.comp == comp),
            Shard::Soa(s) => s.comp.contains(&comp),
        }
    }

    /// Number of owned vertices.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        match self {
            Shard::Map(m) => m.verts.len(),
            Shard::Soa(s) => s.comp.iter().filter(|&&c| c != COMP_NONE).count(),
        }
    }

    /// Materialized state of one vertex (audits/result extraction — not the
    /// update path).
    pub fn vertex(&self, v: V) -> Option<VertexState> {
        match self {
            Shard::Map(m) => m.verts.get(&v).cloned(),
            Shard::Soa(s) => s.slot_of(v).map(|slot| s.materialize(slot)),
        }
    }

    /// All owned vertices, materialized in id order.
    pub fn vertices(&self) -> Vec<(V, VertexState)> {
        match self {
            Shard::Map(m) => m.verts.iter().map(|(&v, st)| (v, st.clone())).collect(),
            Shard::Soa(s) => (0..s.comp.len())
                .filter(|&slot| s.comp[slot] != COMP_NONE)
                .map(|slot| (s.base + slot as V, s.materialize(slot)))
                .collect(),
        }
    }

    /// Direct state injection (bulk loading / snapshot restore).
    pub fn load_vertex(&mut self, v: V, st: VertexState) {
        match self {
            Shard::Map(m) => {
                m.verts.insert(v, st);
            }
            Shard::Soa(s) => {
                let slot = s.ensure_slot(v);
                if s.comp[slot] != COMP_NONE {
                    // Replacing: free the old segments' live words first.
                    s.tour_live -= s.tpos[slot].len as usize;
                    s.adj_live -= s.apos[slot].len as usize;
                    s.tpos[slot].len = 0;
                    s.apos[slot].len = 0;
                }
                s.comp[slot] = st.comp;
                s.size[slot] = st.size as u32;
                s.tour_store(slot, &st.idx, 0);
                s.adj_store(slot, &st.adj);
                s.enforce_soft_cap();
            }
        }
    }

    /// Serializes every owned vertex as `vert`/`adj` snapshot lines, sorted
    /// by vertex then far endpoint — bit-identical across layouts.
    pub fn write_all(&self, s: &mut String) {
        match self {
            Shard::Map(m) => {
                for (&v, st) in &m.verts {
                    write_vert(s, v, st);
                }
            }
            Shard::Soa(sh) => {
                for slot in 0..sh.comp.len() {
                    if sh.comp[slot] != COMP_NONE {
                        sh.write_slot(s, slot);
                    }
                }
            }
        }
    }

    /// Extracts vertices `lo..hi` as snapshot text, removing them from the
    /// shard (shard migration).
    pub fn extract_range(&mut self, lo: V, hi: V) -> String {
        let mut text = String::new();
        match self {
            Shard::Map(m) => {
                let keys: Vec<V> = m.verts.range(lo..hi).map(|(&v, _)| v).collect();
                for v in keys {
                    let st = m.verts.remove(&v).expect("listed vertex");
                    write_vert(&mut text, v, &st);
                }
            }
            Shard::Soa(s) => {
                for v in lo..hi {
                    if let Some(slot) = s.slot_of(v) {
                        s.write_slot(&mut text, slot);
                        s.remove_slot(slot);
                    }
                }
                // Migrations are rare and already pay O(shard) for the
                // extraction, so compact exactly: the remaining shard must
                // not keep charging for the moved segments' holes.
                s.trim_slots();
                s.compact_tour();
                s.compact_adj();
            }
        }
        text
    }

    /// Parses one `vert`/`adj` snapshot line (an `adj` line requires its
    /// `vert` line to have been parsed first).
    pub fn parse_line(&mut self, line: &str) {
        let mut it = line.split_ascii_whitespace();
        match it.next().expect("non-empty snapshot line") {
            "vert" => {
                let v: V = it.next().unwrap().parse().unwrap();
                let comp: CompId = it.next().unwrap().parse().unwrap();
                let size: u64 = it.next().unwrap().parse().unwrap();
                let idx: Vec<TourIx> = it.map(|t| t.parse().unwrap()).collect();
                self.load_vertex(
                    v,
                    VertexState {
                        comp,
                        size,
                        idx,
                        adj: BTreeMap::new(),
                    },
                );
            }
            "adj" => {
                let v: V = it.next().unwrap().parse().unwrap();
                let u: V = it.next().unwrap().parse().unwrap();
                let kind = match it.next().unwrap() {
                    "t" => EntryKind::Tree {
                        lo: it.next().unwrap().parse().unwrap(),
                        hi: it.next().unwrap().parse().unwrap(),
                    },
                    "n" => EntryKind::NonTree {
                        cached: it.next().unwrap().parse().unwrap(),
                        far_comp: it.next().unwrap().parse().unwrap(),
                    },
                    k => panic!("unknown adj kind {k:?}"),
                };
                let w: Weight = it.next().unwrap().parse().unwrap();
                assert!(self.contains(v), "adj line before its vert line");
                self.adj_set(v, u, kind, w);
            }
            k => panic!("unknown snapshot line {k:?}"),
        }
    }

    /// Resident footprint in 64-bit words.
    ///
    /// * Map layout: the PR 1 container approximation (4 words of core per
    ///   vertex + index list + 4 words per adjacency entry), unchanged so
    ///   the legacy layout meters exactly as before.
    /// * SoA layout: the exact backing stores — every property array, both
    ///   arenas *including their free holes and segment headroom* (that
    ///   memory is resident), and the segment tables, converted from bytes
    ///   at 8 bytes/word. Transient scratch buffers are excluded (they are
    ///   executor-style reusable workspace, not shard state).
    pub fn memory_words(&self) -> usize {
        match self {
            Shard::Map(m) => m
                .verts
                .values()
                .map(|st| 4 + st.idx.len() + 4 * st.adj.len())
                .sum(),
            Shard::Soa(s) => s.words(),
        }
    }
}

/// Serializes one vertex's full state as `vert`/`adj` snapshot lines.
pub(crate) fn write_vert(s: &mut String, v: V, st: &VertexState) {
    use std::fmt::Write as _;
    write!(s, "vert {v} {} {}", st.comp, st.size).unwrap();
    for i in &st.idx {
        write!(s, " {i}").unwrap();
    }
    s.push('\n');
    for (&u, (kind, w)) in &st.adj {
        write_adj_line(s, v, u, kind, *w);
    }
}

fn write_adj_line(s: &mut String, v: V, u: V, kind: &EntryKind, w: Weight) {
    use std::fmt::Write as _;
    match kind {
        EntryKind::Tree { lo, hi } => writeln!(s, "adj {v} {u} t {lo} {hi} {w}").unwrap(),
        EntryKind::NonTree { cached, far_comp } => {
            writeln!(s, "adj {v} {u} n {cached} {far_comp} {w}").unwrap()
        }
    }
}

impl SoaShard {
    /// Emits one slot's `vert`/`adj` lines (sorted by far endpoint).
    fn write_slot(&self, s: &mut String, slot: usize) {
        use std::fmt::Write as _;
        let v = self.base + slot as V;
        write!(s, "vert {v} {} {}", self.comp[slot], self.size[slot]).unwrap();
        for i in self.tour_slice(slot) {
            write!(s, " {i}").unwrap();
        }
        s.push('\n');
        for (far, kind, w) in self.sorted_entries(slot) {
            write_adj_line(s, v, far, &kind, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_state(
        comp: CompId,
        size: u64,
        idx: &[TourIx],
        adj: &[(V, EntryKind, Weight)],
    ) -> VertexState {
        VertexState {
            comp,
            size,
            idx: idx.to_vec(),
            adj: adj.iter().map(|&(u, k, w)| (u, (k, w))).collect(),
        }
    }

    fn tree(lo: TourIx, hi: TourIx) -> EntryKind {
        EntryKind::Tree { lo, hi }
    }

    fn non_tree(cached: TourIx, far_comp: CompId) -> EntryKind {
        EntryKind::NonTree { cached, far_comp }
    }

    /// Loads the same 3-vertex path (0-1-2, plus a non-tree 0-2) into both
    /// layouts and checks every accessor and the snapshot text agree.
    fn loaded_pair() -> (Shard, Shard) {
        let states = [
            (
                0,
                demo_state(0, 3, &[1, 8], &[(1, tree(1, 8), 5), (2, non_tree(3, 0), 9)]),
            ),
            (
                1,
                demo_state(
                    0,
                    3,
                    &[2, 3, 6, 7],
                    &[(0, tree(2, 7), 5), (2, tree(3, 6), 4)],
                ),
            ),
            (
                2,
                demo_state(0, 3, &[4, 5], &[(1, tree(4, 5), 4), (0, non_tree(1, 0), 9)]),
            ),
        ];
        let mut map = Shard::new_range(Layout::Map, 0, 3);
        let mut soa = Shard::new_range(Layout::Soa, 0, 3);
        for (v, st) in &states {
            map.load_vertex(*v, st.clone());
            soa.load_vertex(*v, st.clone());
        }
        (map, soa)
    }

    #[test]
    fn layouts_agree_on_accessors_and_snapshots() {
        let (map, soa) = loaded_pair();
        for v in 0..3 {
            assert_eq!(map.comp_of(v), soa.comp_of(v));
            assert_eq!(map.size_of(v), soa.size_of(v));
            assert_eq!(map.f_of(v), soa.f_of(v));
            assert_eq!(map.l_of(v), soa.l_of(v));
            assert_eq!(map.idx_of(v), soa.idx_of(v));
            assert_eq!(map.info(v), soa.info(v));
            assert_eq!(map.vertex(v), soa.vertex(v));
            for far in 0..3 {
                assert_eq!(map.adj_get(v, far), soa.adj_get(v, far), "adj {v} {far}");
            }
        }
        let (mut ms, mut ss) = (String::new(), String::new());
        map.write_all(&mut ms);
        soa.write_all(&mut ss);
        assert_eq!(ms, ss, "snapshot text must be layout-independent");
        assert_eq!(
            map.path_max(0, 1, 8, 4, 5),
            soa.path_max(0, 1, 8, 4, 5),
            "path-max fold must be layout-independent"
        );
    }

    #[test]
    fn soa_mutation_round_trips_through_snapshot() {
        let (mut map, mut soa) = loaded_pair();
        for sh in [&mut map, &mut soa] {
            sh.adj_set(0, 1, tree(1, 10), 7); // overwrite
            sh.adj_remove(2, 0);
            sh.adj_set(1, 2, non_tree(4, 0), 6); // kind change
        }
        let (mut ms, mut ss) = (String::new(), String::new());
        map.write_all(&mut ms);
        soa.write_all(&mut ss);
        assert_eq!(ms, ss);
        // Restore both texts into fresh shards of the opposite layout.
        let mut back = Shard::new_range(Layout::Soa, 0, 0);
        for line in ms.lines() {
            back.parse_line(line);
        }
        let mut round = String::new();
        back.write_all(&mut round);
        assert_eq!(round, ms);
    }

    #[test]
    fn soa_extract_range_matches_map_and_trims() {
        let (mut map, mut soa) = loaded_pair();
        let tm = map.extract_range(0, 2);
        let ts = soa.extract_range(0, 2);
        assert_eq!(tm, ts, "extracted migration payload must match");
        assert_eq!(map.len(), 1);
        assert_eq!(soa.len(), 1);
        assert!(!soa.contains(0) && !soa.contains(1) && soa.contains(2));
        // The trimmed SoA shard must not keep charging for the moved slots.
        let words_after = soa.memory_words();
        assert!(
            words_after < 20,
            "trimmed shard footprint too large: {words_after}"
        );
    }

    /// Satellite: the SoA resident accounting matches a hand-computed
    /// figure for a known shard within 10%.
    ///
    /// Hand computation for `loaded_pair`'s SoA shard (bulk loads use zero
    /// headroom, so caps == lens and the arenas are hole-free):
    ///
    /// * slot arrays, 3 slots: comp 3x4 + size 3x4 + tpos 3x12 + apos 3x12
    ///   = 96 bytes
    /// * tour arena: 2 + 4 + 2 = 8 indexes x 8 bytes = 64 bytes
    /// * adjacency arena: 6 entries x (4 + 8 + 8 + 8) = 168 bytes
    ///
    /// total = 328 bytes = ceil(328 / 8) = 41 words.
    #[test]
    fn soa_resident_words_within_10pct_of_hand_count() {
        let (_, soa) = loaded_pair();
        let hand = 41.0_f64;
        let got = soa.memory_words() as f64;
        assert!(
            (got - hand).abs() <= hand * 0.10,
            "resident {got} vs hand-computed {hand}"
        );
        // For this exactly-sized shard the two should in fact be equal.
        assert_eq!(got as usize, 41);
    }

    #[test]
    fn soa_arena_compaction_bounds_holes() {
        let mut soa = Shard::new_range(Layout::Soa, 0, 64);
        // Repeatedly grow and clear adjacency on every vertex; the arena
        // must stay within 2x live + slack despite all the relocations.
        for round in 0..6u64 {
            for v in 0..64u32 {
                for far in 0..8u32 {
                    soa.adj_set(v, 100 + far, non_tree(round, 7), round);
                }
            }
            for v in 0..64u32 {
                for far in 0..4u32 {
                    soa.adj_remove(v, 100 + far);
                }
            }
        }
        let Shard::Soa(s) = &soa else { unreachable!() };
        assert_eq!(s.adj_live, 64 * 4);
        assert!(
            s.afar.len() <= 2 * s.adj_live + 64,
            "adjacency arena not compacted: {} live {}",
            s.afar.len(),
            s.adj_live
        );
    }
}
