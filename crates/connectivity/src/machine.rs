//! The owner-machine program for distributed connectivity/MST.
//!
//! Each machine owns a contiguous block of vertices. For every owned vertex
//! it stores: component id (= root vertex of its tree), component size, the
//! vertex's Euler-tour index list, and its adjacency entries. Tree entries
//! carry the edge's two tour indexes on this endpoint's side (the paper's
//! per-edge annotation); non-tree entries carry one cached tour index of the
//! far endpoint, kept valid under every broadcast op, so that cut-side
//! classification is local.
//!
//! # Batched updates
//!
//! A batch of `k` pre-coalesced updates (at most one op per edge; see
//! `dmpc_graph::streams::coalesce`) is injected as [`ConnMsg::BatchStart`]
//! at the *batch controller* — machine 0, which plays this role in addition
//! to owning its vertex block. The batch runs in two phases:
//!
//! 1. **Classification fan-out (concurrent).** The controller ships each
//!    owner its share of the batch. Owners classify deletes locally (tree /
//!    non-tree) and forward inserts to the far endpoint's owner for a
//!    component comparison. Every *non-structural* update — a non-tree
//!    delete, or an intra-component insert — executes immediately; these
//!    commute because they never touch tour indexes, component ids, or
//!    sizes, and coalescing guarantees edge-disjointness. Classifiers
//!    report counts (and the leftover structural items) to the controller.
//! 2. **Structural serialization.** Links and tree cuts change the tour
//!    index space cluster-wide, so they cannot overlap. The controller
//!    replays them one at a time, in batch order, through the normal
//!    insert/delete flow with the `batched` flag set; every terminal step
//!    of a batched flow signals [`ConnMsg::BatchStructDone`] back, which
//!    releases the next item.
//!
//! Classifications stay valid across phase 1 because only structural ops
//! (phase 2, strictly later) can change components; phase 2 re-classifies
//! each item on dispatch, so items demoted to non-structural by an earlier
//! structural op (e.g. a cross-component insert whose components were
//! merged by a previous link) still execute correctly.

use crate::messages::{BatchItem, ConnMsg, CutMode, StructBroadcast, VertexInfo};
use dmpc_eulertour::indexed::{apply_op_to_vertex, map_reroot, CompId, TourOp};
use dmpc_eulertour::TourIx;
use dmpc_graph::{Edge, Update, Weight, V};
use dmpc_mpc::{Envelope, Machine, MachineId, Outbox, RoundCtx};
use std::collections::{BTreeMap, VecDeque};

/// The machine doubling as batch controller (id 0).
pub const BATCH_CTRL: MachineId = 0;

/// Controller-side state of one in-flight batch.
#[derive(Debug, Default)]
struct BatchCtl {
    /// Updates whose classification report is still outstanding.
    expect: usize,
    /// Classified-as-structural items, collected during phase 1.
    structural: Vec<BatchItem>,
    /// Phase 2 queue (sorted by batch position).
    queue: VecDeque<BatchItem>,
    /// Phase 2 has begun (the queue is authoritative).
    serving: bool,
}

/// An adjacency entry at one endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// Spanning-tree edge; `lo`/`hi` are its two tour indexes on this side.
    /// This endpoint is the child iff `lo` is even (arrival parity).
    Tree {
        /// Lower tour index on this side.
        lo: TourIx,
        /// Higher tour index on this side.
        hi: TourIx,
    },
    /// Non-tree edge; `cached` is some current tour index of the far
    /// endpoint (0 iff the far endpoint is a singleton) and `far_comp` is
    /// the far endpoint's component id. Between a cut and its replacement
    /// link, a non-tree edge can *cross* the two sides, so all cached-index
    /// maps are keyed by `far_comp`, not the owner's component.
    NonTree {
        /// Cached far-endpoint tour index.
        cached: TourIx,
        /// Far endpoint's component id.
        far_comp: CompId,
    },
}

/// Per-owned-vertex state.
#[derive(Clone, Debug)]
pub struct VertexState {
    /// Component id (= current root vertex of the tree).
    pub comp: CompId,
    /// Component size in vertices.
    pub size: u64,
    /// Sorted tour indexes of this vertex.
    pub idx: Vec<TourIx>,
    /// neighbor -> (kind, weight).
    pub adj: BTreeMap<V, (EntryKind, Weight)>,
}

impl VertexState {
    fn singleton(v: V) -> Self {
        VertexState {
            comp: v,
            size: 1,
            idx: Vec::new(),
            adj: BTreeMap::new(),
        }
    }

    fn f(&self) -> TourIx {
        self.idx.first().copied().unwrap_or(0)
    }

    fn l(&self) -> TourIx {
        self.idx.last().copied().unwrap_or(0)
    }

    fn info(&self, v: V) -> VertexInfo {
        VertexInfo {
            v,
            comp: self.comp,
            size: self.size,
            f: self.f(),
            l: self.l(),
        }
    }
}

/// The connectivity/MST owner machine.
pub struct ConnMachine {
    id: MachineId,
    block: usize,
    mst_mode: bool,
    verts: BTreeMap<V, VertexState>,
    /// Pending MST path-max aggregation at the rendezvous:
    /// (e, w, f(x), x's vertex id).
    pending_mst: Option<(Edge, Weight, TourIx, V)>,
    /// Controller state of the in-flight batch (machine 0 only).
    batch: Option<BatchCtl>,
    /// This machine initiated a batched cut and owes the controller a
    /// completion signal if the replacement search comes up empty.
    batch_cut_pending: bool,
}

impl ConnMachine {
    /// Creates the machine with its owned vertex block.
    pub fn new(id: MachineId, n_vertices: usize, block: usize, mst_mode: bool) -> Self {
        let lo = id as usize * block;
        let hi = ((id as usize + 1) * block).min(n_vertices);
        let verts = (lo..hi)
            .map(|v| (v as V, VertexState::singleton(v as V)))
            .collect();
        ConnMachine {
            id,
            block,
            mst_mode,
            verts,
            pending_mst: None,
            batch: None,
            batch_cut_pending: false,
        }
    }

    /// Owner machine of vertex `v` under this partitioning.
    pub fn owner_of(v: V, block: usize) -> MachineId {
        (v as usize / block) as MachineId
    }

    /// Abort recovery: drops controller/rendezvous batch state left behind
    /// by a round-limit-aborted run, so later runs are not charged phantom
    /// memory for it. Called by the driver between runs (the in-machine
    /// reset in `handle_batch_start` covers the batch-after-batch case).
    pub fn clear_stale_batch(&mut self) {
        self.batch = None;
        self.batch_cut_pending = false;
    }

    fn owner(&self, v: V) -> MachineId {
        Self::owner_of(v, self.block)
    }

    /// Read access for result extraction and audits (not part of the model).
    pub fn vertex(&self, v: V) -> Option<&VertexState> {
        self.verts.get(&v)
    }

    /// All owned vertex states.
    pub fn vertices(&self) -> impl Iterator<Item = (&V, &VertexState)> {
        self.verts.iter()
    }

    /// Direct state injection for bulk loading during preprocessing.
    pub fn load_vertex(&mut self, v: V, st: VertexState) {
        self.verts.insert(v, st);
    }

    fn st(&self, v: V) -> &VertexState {
        self.verts
            .get(&v)
            .expect("vertex not owned by this machine")
    }

    fn st_mut(&mut self, v: V) -> &mut VertexState {
        self.verts
            .get_mut(&v)
            .expect("vertex not owned by this machine")
    }

    // ----- protocol steps -------------------------------------------------

    fn handle_insert(&mut self, e: Edge, w: Weight, batched: bool, out: &mut Outbox<ConnMsg>) {
        let u = e.u;
        debug_assert!(!self.st(u).adj.contains_key(&e.v), "duplicate insert {e}");
        let x = self.st(u).info(u);
        out.send(self.owner(e.v), ConnMsg::InsQuery { e, w, x, batched });
    }

    /// Records the intra-component edge `e` as a non-tree entry at the
    /// locally-owned endpoint `y` and ships the matching entry to the far
    /// owner. Shared by the single-update flow and the batch classifier.
    fn add_non_tree_pair(&mut self, e: Edge, w: Weight, x: &VertexInfo, out: &mut Outbox<ConnMsg>) {
        let y = e.other(x.v);
        let y_f = self.st(y).f();
        let owner_x = self.owner(x.v);
        let ys = self.st_mut(y);
        ys.adj.insert(
            x.v,
            (
                EntryKind::NonTree {
                    cached: x.f,
                    far_comp: x.comp,
                },
                w,
            ),
        );
        out.send(
            owner_x,
            ConnMsg::AddNonTree {
                e,
                w,
                at: x.v,
                cached_far: y_f,
            },
        );
    }

    fn handle_ins_query(
        &mut self,
        e: Edge,
        w: Weight,
        x: VertexInfo,
        batched: bool,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let y = e.other(x.v);
        let ys = self.st(y);
        let (y_comp, y_size, y_f, y_l) = (ys.comp, ys.size, ys.f(), ys.l());
        if y_comp == x.comp {
            // Intra-component edge.
            if self.mst_mode {
                debug_assert!(!batched, "MST mode has no batched path");
                // Find the max-weight tree edge on the x..y path first.
                self.pending_mst = Some((e, w, x.f, x.v));
                let q = ConnMsg::PathMaxQuery {
                    comp: y_comp,
                    fx: x.f,
                    lx: x.l,
                    fy: y_f,
                    ly: y_l,
                    e,
                    w,
                    rendezvous: self.id,
                };
                for m in 0..ctx.n_machines as MachineId {
                    out.send(m, q.clone());
                }
            } else {
                self.add_non_tree_pair(e, w, &x, out);
                if batched {
                    out.send(BATCH_CTRL, ConnMsg::BatchStructDone);
                }
            }
        } else {
            // Cross-component: reroot y's tree at y, then link after f(x).
            let reroot = if y_size > 1 && y_f != 1 {
                Some(TourOp::Reroot {
                    comp: y_comp,
                    elen: 4 * (y_size - 1),
                    l_y: y_l,
                    y,
                })
            } else {
                None
            };
            // Erratum fix: splice position 0 when x is the root of its tree.
            let fx = if x.f <= 1 { 0 } else { x.f };
            let main = TourOp::Link {
                a: x.comp,
                b: y_comp,
                x: x.v,
                y,
                fx,
                elen_b: 4 * (y_size - 1),
            };
            let b = StructBroadcast {
                reroot,
                main,
                merged_size: x.size + y_size,
                x_after: 0,
                edge: e,
                weight: w,
                cut_mode: CutMode::Remove,
                rendezvous: None,
            };
            for m in 0..ctx.n_machines as MachineId {
                out.send(m, ConnMsg::Apply(b));
            }
            if batched {
                out.send(BATCH_CTRL, ConnMsg::BatchStructDone);
            }
        }
    }

    fn handle_delete(&mut self, e: Edge, batched: bool, ctx: &RoundCtx, out: &mut Outbox<ConnMsg>) {
        let u = e.u;
        let (kind, _w) = *self
            .st(u)
            .adj
            .get(&e.v)
            .unwrap_or_else(|| panic!("delete of absent edge {e}"));
        match kind {
            EntryKind::NonTree { .. } => {
                self.st_mut(u).adj.remove(&e.v);
                out.send(self.owner(e.v), ConnMsg::DelNonTree { e, at: e.v });
                if batched {
                    out.send(BATCH_CTRL, ConnMsg::BatchStructDone);
                }
            }
            EntryKind::Tree { lo, hi } => {
                if lo % 2 == 0 {
                    // u is the child: the parent's owner must compute the
                    // surviving parent index, then broadcast.
                    out.send(
                        self.owner(e.v),
                        ConnMsg::NeedParentCut {
                            e,
                            parent: e.v,
                            fy: lo,
                            ly: hi,
                            mode: CutMode::Remove,
                            search: true,
                            then_link: None,
                            batched,
                        },
                    );
                } else {
                    // u is the parent: broadcast directly.
                    self.broadcast_cut(
                        e,
                        u,
                        lo + 1,
                        hi - 1,
                        CutMode::Remove,
                        true,
                        None,
                        batched,
                        ctx,
                        out,
                    );
                }
            }
        }
    }

    /// Builds and broadcasts a cut of tree edge `e` whose parent endpoint is
    /// `parent` (owned by this machine) and whose child spans `fy..=ly`.
    #[allow(clippy::too_many_arguments)]
    fn broadcast_cut(
        &mut self,
        e: Edge,
        parent: V,
        fy: TourIx,
        ly: TourIx,
        mode: CutMode,
        search: bool,
        then_link: Option<(Edge, Weight)>,
        batched: bool,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        if search && batched {
            // The candidate aggregation (at this machine, the rendezvous)
            // must tell the controller when no replacement link follows.
            self.batch_cut_pending = true;
        }
        let child = e.other(parent);
        let ps = self.st(parent);
        let span = (ly - fy + 1) + 2;
        let x_after = ps
            .idx
            .iter()
            .filter(|&&s| s != fy - 1 && s != ly + 1)
            .map(|&s| if s > ly { s - span } else { s })
            .min()
            .unwrap_or(0);
        let main = TourOp::Cut {
            comp: ps.comp,
            x: parent,
            y: child,
            fy,
            ly,
            new_comp: child,
        };
        let b = StructBroadcast {
            reroot: None,
            main,
            merged_size: 0,
            x_after,
            edge: e,
            weight: 0,
            cut_mode: mode,
            rendezvous: if search { Some(self.id) } else { None },
        };
        for m in 0..ctx.n_machines as MachineId {
            out.send(m, ConnMsg::Apply(b));
        }
        if let Some((le, lw)) = then_link {
            // The link's InsQuery is processed after the Apply broadcast in
            // the same round (Apply messages are handled first).
            out.send(
                self.owner(le.u),
                ConnMsg::StartLink {
                    e: le,
                    w: lw,
                    batched,
                },
            );
        }
    }

    /// Applies a broadcast to all owned state; returns the local best
    /// replacement candidate when the broadcast requests a search.
    fn apply_broadcast(&mut self, b: &StructBroadcast) -> Option<(Edge, Weight)> {
        let mut best: Option<(Weight, Edge)> = None;
        let verts: Vec<V> = self.verts.keys().copied().collect();
        for v in verts {
            let mut st = self.verts.remove(&v).unwrap();
            self.apply_to_vertex(v, &mut st, b, &mut best);
            self.verts.insert(v, st);
        }
        // Materialize the new/updated edge entries at owned endpoints.
        match b.main {
            TourOp::Link {
                x, y, fx, elen_b, ..
            } => {
                if let Some(st) = self.verts.get_mut(&x) {
                    st.adj.insert(
                        y,
                        (
                            EntryKind::Tree {
                                lo: fx + 1,
                                hi: fx + elen_b + 4,
                            },
                            b.weight,
                        ),
                    );
                }
                if let Some(st) = self.verts.get_mut(&y) {
                    st.adj.insert(
                        x,
                        (
                            EntryKind::Tree {
                                lo: fx + 2,
                                hi: fx + elen_b + 3,
                            },
                            b.weight,
                        ),
                    );
                }
            }
            TourOp::Cut { x, y, fy, ly, .. } => match b.cut_mode {
                CutMode::Remove => {
                    if let Some(st) = self.verts.get_mut(&x) {
                        st.adj.remove(&y);
                    }
                    if let Some(st) = self.verts.get_mut(&y) {
                        st.adj.remove(&x);
                    }
                }
                CutMode::Demote => {
                    // The edge stays in the graph as a (crossing, until the
                    // follow-up link) non-tree edge.
                    let child_singleton = ly == fy + 1;
                    let (comp, new_comp) = match b.main {
                        TourOp::Cut { comp, new_comp, .. } => (comp, new_comp),
                        _ => unreachable!(),
                    };
                    if let Some(st) = self.verts.get_mut(&x) {
                        let w = st.adj.get(&y).map(|&(_, w)| w).unwrap_or(0);
                        st.adj.insert(
                            y,
                            (
                                EntryKind::NonTree {
                                    cached: if child_singleton { 0 } else { 1 },
                                    far_comp: new_comp,
                                },
                                w,
                            ),
                        );
                    }
                    if let Some(st) = self.verts.get_mut(&y) {
                        let w = st.adj.get(&x).map(|&(_, w)| w).unwrap_or(0);
                        st.adj.insert(
                            x,
                            (
                                EntryKind::NonTree {
                                    cached: b.x_after,
                                    far_comp: comp,
                                },
                                w,
                            ),
                        );
                    }
                }
            },
            TourOp::Reroot { .. } => unreachable!("reroot is never a main op"),
        }
        best.map(|(w, e)| (e, w))
    }

    /// Applies the broadcast ops to one vertex's indexes, size, component id
    /// and adjacency annotations; collects crossing candidates during cuts.
    ///
    /// Tree entries always live in the owner's component's index space;
    /// non-tree cached indexes live in `far_comp`'s index space (the two can
    /// differ transiently between a cut and its reconnecting link).
    fn apply_to_vertex(
        &self,
        v: V,
        st: &mut VertexState,
        b: &StructBroadcast,
        best: &mut Option<(Weight, Edge)>,
    ) {
        // 1. Reroot (links only): a bijection on the absorbed component's
        // index space.
        if let Some(
            r @ TourOp::Reroot {
                comp, elen, l_y, ..
            },
        ) = b.reroot
        {
            if st.comp == comp {
                apply_op_to_vertex(&r, v, st.comp, &mut st.idx);
                for (_, (kind, _)) in st.adj.iter_mut() {
                    if let EntryKind::Tree { lo, hi } = kind {
                        let (a, c) = (map_reroot(*lo, elen, l_y), map_reroot(*hi, elen, l_y));
                        *lo = a.min(c);
                        *hi = a.max(c);
                    }
                }
            }
            for (_, (kind, _)) in st.adj.iter_mut() {
                if let EntryKind::NonTree { cached, far_comp } = kind {
                    if *far_comp == comp {
                        *cached = map_reroot(*cached, elen, l_y);
                    }
                }
            }
        }
        // 2. Main op.
        match b.main {
            TourOp::Link {
                a,
                b: bc,
                fx,
                elen_b,
                ..
            } => {
                let old = st.comp;
                let shift_b = fx + 2;
                let shift_a = elen_b + 4;
                if old == a || old == bc {
                    st.comp = apply_op_to_vertex(&b.main, v, old, &mut st.idx);
                    st.size = b.merged_size;
                    for (_, (kind, _)) in st.adj.iter_mut() {
                        if let EntryKind::Tree { lo, hi } = kind {
                            let map = |i: TourIx| {
                                if old == bc {
                                    i + shift_b
                                } else if i > fx {
                                    i + shift_a
                                } else {
                                    i
                                }
                            };
                            *lo = map(*lo);
                            *hi = map(*hi);
                        }
                    }
                }
                for (_, (kind, _)) in st.adj.iter_mut() {
                    if let EntryKind::NonTree { cached, far_comp } = kind {
                        if *far_comp == bc {
                            // cached == 0 means the far endpoint was a
                            // singleton, i.e. it is the link's y, whose
                            // first new index is fx+2 (== 0 + shift_b).
                            *cached += shift_b;
                            *far_comp = a;
                        } else if *far_comp == a {
                            if *cached == 0 {
                                // Far endpoint was a singleton = the link's
                                // x; its first new index is fx+1 (fx = 0).
                                *cached = fx + 1;
                            } else if *cached > fx {
                                *cached += shift_a;
                            }
                        }
                    }
                }
            }
            TourOp::Cut {
                comp,
                x,
                y,
                fy,
                ly,
                new_comp,
            } => {
                let was_member = st.comp == comp;
                let span = (ly - fy + 1) + 2;
                let k_sub = (ly - fy).div_ceil(4);
                let child_singleton = ly == fy + 1;
                let mut my_detached = false;
                if was_member {
                    let old_size = st.size;
                    st.comp = apply_op_to_vertex(&b.main, v, st.comp, &mut st.idx);
                    my_detached = st.comp == new_comp;
                    st.size = if my_detached { k_sub } else { old_size - k_sub };
                }
                for (&far, (kind, w)) in st.adj.iter_mut() {
                    // The cut edge's own entries are rewritten afterwards.
                    if (v == x && far == y) || (v == y && far == x) {
                        continue;
                    }
                    match kind {
                        EntryKind::Tree { lo, hi } => {
                            if !was_member {
                                continue;
                            }
                            // A surviving tree edge lies on one side.
                            let map = |i: TourIx| {
                                if i > fy && i < ly {
                                    i - fy
                                } else if i > ly {
                                    i - span
                                } else {
                                    i
                                }
                            };
                            *lo = map(*lo);
                            *hi = map(*hi);
                        }
                        EntryKind::NonTree { cached, far_comp } => {
                            if *far_comp != comp {
                                continue;
                            }
                            // Classify the far side, repairing the dying
                            // indexes of the cut edge's endpoints.
                            if far == y {
                                *far_comp = new_comp;
                                *cached = if child_singleton { 0 } else { 1 };
                            } else if far == x {
                                *cached = b.x_after;
                            } else if *cached > fy && *cached < ly {
                                *far_comp = new_comp;
                                *cached -= fy;
                            } else if *cached > ly {
                                *cached -= span;
                            }
                            if b.rendezvous.is_some()
                                && was_member
                                && (*far_comp == new_comp) != my_detached
                            {
                                // Crossing edge: replacement candidate.
                                let e = Edge::new(v, far);
                                let cand = (*w, e);
                                if best.is_none_or(|cur| cand < cur) {
                                    *best = Some(cand);
                                }
                            }
                        }
                    }
                }
            }
            TourOp::Reroot { .. } => unreachable!(),
        }
    }

    // The parameters mirror the PathMaxQuery wire-message fields one-to-one;
    // bundling them into a struct here would just duplicate that message type.
    #[allow(clippy::too_many_arguments)]
    fn handle_path_max_query(
        &mut self,
        comp: CompId,
        fx: TourIx,
        lx: TourIx,
        fy: TourIx,
        ly: TourIx,
        rendezvous: MachineId,
        out: &mut Outbox<ConnMsg>,
    ) {
        let mut best: Option<(Weight, Edge)> = None;
        for (&v, st) in &self.verts {
            if st.comp != comp {
                continue;
            }
            for (&far, &(kind, w)) in &st.adj {
                if let EntryKind::Tree { lo, hi } = kind {
                    // Process each tree edge once: at its child endpoint.
                    if lo % 2 != 0 {
                        continue;
                    }
                    // Child's subtree span is [lo, hi]; the edge is on the
                    // x..y path iff the span contains exactly one endpoint.
                    let contains_x = lo <= fx && lx <= hi;
                    let contains_y = lo <= fy && ly <= hi;
                    if contains_x ^ contains_y {
                        let cand = (w, Edge::new(v, far));
                        // Max weight; tie-break toward the smaller edge for
                        // determinism.
                        let better = match best {
                            None => true,
                            Some((bw, be)) => w > bw || (w == bw && Edge::new(v, far) < be),
                        };
                        if better {
                            best = Some(cand);
                        }
                    }
                }
            }
        }
        out.send(
            rendezvous,
            ConnMsg::PathMaxReply {
                best: best.map(|(w, e)| (e, w)),
            },
        );
    }

    fn finish_path_max(&mut self, replies: Vec<Option<(Edge, Weight)>>, out: &mut Outbox<ConnMsg>) {
        let (e, w, fx, x_v) = self.pending_mst.take().expect("no pending MST insert");
        let mut best: Option<(Weight, Edge)> = None;
        for r in replies.into_iter().flatten() {
            let cand = (r.1, r.0);
            let better = match best {
                None => true,
                Some((bw, be)) => cand.0 > bw || (cand.0 == bw && cand.1 < be),
            };
            if better {
                best = Some(cand);
            }
        }
        let y = e.other(x_v);
        match best {
            Some((dw, d)) if dw > w => {
                // Swap: demote d, then link e. The demote must be initiated
                // at d's parent endpoint owner.
                out.send(self.owner(d.u), ConnMsg::StartSwap { d, e, w });
            }
            _ => {
                // Keep the tree; e becomes a non-tree edge.
                let cached_far = self.st(y).f();
                let comp = self.st(y).comp;
                self.st_mut(y).adj.insert(
                    x_v,
                    (
                        EntryKind::NonTree {
                            cached: fx,
                            far_comp: comp,
                        },
                        w,
                    ),
                );
                out.send(
                    self.owner(x_v),
                    ConnMsg::AddNonTree {
                        e,
                        w,
                        at: x_v,
                        cached_far,
                    },
                );
            }
        }
    }

    fn handle_start_swap(
        &mut self,
        d: Edge,
        e: Edge,
        w: Weight,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let u = d.u;
        let (kind, _) = *self.st(u).adj.get(&d.v).expect("swap edge missing");
        let EntryKind::Tree { lo, hi } = kind else {
            panic!("swap target {d} is not a tree edge");
        };
        if lo % 2 == 0 {
            // u is the child; hand off to the parent's owner.
            out.send(
                self.owner(d.v),
                ConnMsg::NeedParentCut {
                    e: d,
                    parent: d.v,
                    fy: lo,
                    ly: hi,
                    mode: CutMode::Demote,
                    search: false,
                    then_link: Some((e, w)),
                    batched: false,
                },
            );
        } else {
            self.broadcast_cut(
                d,
                u,
                lo + 1,
                hi - 1,
                CutMode::Demote,
                false,
                Some((e, w)),
                false,
                ctx,
                out,
            );
        }
    }

    // ----- batch protocol -------------------------------------------------

    /// Controller: fan the batch out to the owners for classification.
    fn handle_batch_start(&mut self, items: Vec<BatchItem>, out: &mut Outbox<ConnMsg>) {
        assert_eq!(self.id, BATCH_CTRL, "batches start at the controller");
        // External injections only arrive between runs, so leftover state
        // here means the previous run was aborted by the round-limit guard
        // (its violation is already metered); drop it and start fresh.
        self.batch = None;
        self.batch_cut_pending = false;
        if items.is_empty() {
            return;
        }
        let mut by_owner: BTreeMap<MachineId, Vec<BatchItem>> = BTreeMap::new();
        let expect = items.len();
        for item in items {
            by_owner
                .entry(self.owner(item.upd.edge().u))
                .or_default()
                .push(item);
        }
        for (m, items) in by_owner {
            out.send(m, ConnMsg::BatchClassify { items });
        }
        self.batch = Some(BatchCtl {
            expect,
            ..Default::default()
        });
    }

    /// Owner: classify this machine's share of the batch. Non-tree deletes
    /// execute on the spot; inserts are forwarded to the far owner for the
    /// component comparison; tree deletes are reported structural.
    fn handle_batch_classify(
        &mut self,
        items: Vec<BatchItem>,
        report: &mut BatchReportAcc,
        out: &mut Outbox<ConnMsg>,
    ) {
        for item in items {
            match item.upd {
                Update::Insert(e) => {
                    debug_assert!(
                        !self.st(e.u).adj.contains_key(&e.v),
                        "duplicate insert {e} in batch"
                    );
                    let x = self.st(e.u).info(e.u);
                    out.send(
                        self.owner(e.v),
                        ConnMsg::BatchInsClassify {
                            e,
                            w: 1,
                            x,
                            seq: item.seq,
                        },
                    );
                }
                Update::Delete(e) => {
                    let (kind, _w) = *self
                        .st(e.u)
                        .adj
                        .get(&e.v)
                        .unwrap_or_else(|| panic!("delete of absent edge {e} in batch"));
                    match kind {
                        EntryKind::NonTree { .. } => {
                            self.st_mut(e.u).adj.remove(&e.v);
                            out.send(self.owner(e.v), ConnMsg::DelNonTree { e, at: e.v });
                            report.done += 1;
                        }
                        EntryKind::Tree { .. } => report.structural.push(item),
                    }
                }
            }
        }
    }

    /// Far owner: classify one insert. Intra-component inserts execute
    /// immediately (they only add non-tree entries); cross-component
    /// inserts are structural links.
    fn handle_batch_ins_classify(
        &mut self,
        e: Edge,
        w: Weight,
        x: VertexInfo,
        seq: u32,
        report: &mut BatchReportAcc,
        out: &mut Outbox<ConnMsg>,
    ) {
        let y = e.other(x.v);
        if self.st(y).comp == x.comp {
            self.add_non_tree_pair(e, w, &x, out);
            report.done += 1;
        } else {
            report.structural.push(BatchItem {
                upd: Update::Insert(e),
                seq,
            });
        }
    }

    /// Controller: fold one classification report; start phase 2 once every
    /// update is accounted for.
    fn handle_batch_report(
        &mut self,
        done: u32,
        structural: Vec<BatchItem>,
        out: &mut Outbox<ConnMsg>,
    ) {
        let ctl = self.batch.as_mut().expect("report without a batch");
        ctl.expect -= done as usize + structural.len();
        ctl.structural.extend(structural);
        if ctl.expect == 0 {
            ctl.structural.sort_unstable_by_key(|i| i.seq);
            ctl.queue = std::mem::take(&mut ctl.structural).into();
            ctl.serving = true;
            self.batch_dispatch_next(out);
        }
    }

    /// Controller: dispatch the next structural item through the normal
    /// (re-classifying) update flow, or finish the batch.
    fn batch_dispatch_next(&mut self, out: &mut Outbox<ConnMsg>) {
        let ctl = self.batch.as_mut().expect("dispatch without a batch");
        debug_assert!(ctl.serving);
        match ctl.queue.pop_front() {
            Some(item) => {
                let e = item.upd.edge();
                let to = self.owner(e.u);
                let msg = match item.upd {
                    Update::Insert(_) => ConnMsg::Insert {
                        e,
                        w: 1,
                        batched: true,
                    },
                    Update::Delete(_) => ConnMsg::Delete { e, batched: true },
                };
                out.send(to, msg);
            }
            None => self.batch = None,
        }
    }
}

/// Per-round accumulator for one classifier's report to the controller
/// (aggregating all of this round's classifications into one message).
#[derive(Default)]
struct BatchReportAcc {
    done: u32,
    structural: Vec<BatchItem>,
}

impl BatchReportAcc {
    fn is_empty(&self) -> bool {
        self.done == 0 && self.structural.is_empty()
    }
}

impl Machine for ConnMachine {
    type Msg = ConnMsg;

    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<ConnMsg>>,
        out: &mut Outbox<ConnMsg>,
    ) {
        // Structural broadcasts apply before any other message in the same
        // round, so follow-up protocol steps see post-op state.
        let (applies, rest): (Vec<_>, Vec<_>) = inbox
            .drain(..)
            .partition(|env| matches!(env.msg, ConnMsg::Apply(_)));
        let mut candidates: Vec<Option<(Edge, Weight)>> = Vec::new();
        let mut path_replies: Vec<Option<(Edge, Weight)>> = Vec::new();
        let mut rendezvous_for_candidates: Option<MachineId> = None;
        for env in applies {
            let ConnMsg::Apply(b) = env.msg else {
                unreachable!()
            };
            let cand = self.apply_broadcast(&b);
            if let Some(r) = b.rendezvous {
                rendezvous_for_candidates = Some(r);
                candidates.push(cand);
            }
        }
        if let Some(r) = rendezvous_for_candidates {
            for c in candidates {
                out.send(r, ConnMsg::Candidate { best: c });
            }
        }
        let mut replacement_candidates: Vec<Option<(Edge, Weight)>> = Vec::new();
        let mut report = BatchReportAcc::default();
        for env in rest {
            match env.msg {
                ConnMsg::Insert { e, w, batched } => self.handle_insert(e, w, batched, out),
                ConnMsg::Delete { e, batched } => self.handle_delete(e, batched, ctx, out),
                ConnMsg::InsQuery { e, w, x, batched } => {
                    self.handle_ins_query(e, w, x, batched, ctx, out)
                }
                ConnMsg::AddNonTree {
                    e,
                    w,
                    at,
                    cached_far,
                } => {
                    let far = e.other(at);
                    let comp = self.st(at).comp;
                    self.st_mut(at).adj.insert(
                        far,
                        (
                            EntryKind::NonTree {
                                cached: cached_far,
                                far_comp: comp,
                            },
                            w,
                        ),
                    );
                }
                ConnMsg::DelNonTree { e, at } => {
                    let far = e.other(at);
                    self.st_mut(at).adj.remove(&far);
                }
                ConnMsg::NeedParentCut {
                    e,
                    parent,
                    fy,
                    ly,
                    mode,
                    search,
                    then_link,
                    batched,
                } => {
                    self.broadcast_cut(
                        e, parent, fy, ly, mode, search, then_link, batched, ctx, out,
                    );
                }
                ConnMsg::Candidate { best } => replacement_candidates.push(best),
                ConnMsg::StartLink { e, w, batched } => {
                    self.handle_insert_replacement(e, w, batched, out)
                }
                ConnMsg::PathMaxQuery {
                    comp,
                    fx,
                    lx,
                    fy,
                    ly,
                    rendezvous,
                    ..
                } => self.handle_path_max_query(comp, fx, lx, fy, ly, rendezvous, out),
                ConnMsg::PathMaxReply { best } => path_replies.push(best),
                ConnMsg::StartSwap { d, e, w } => self.handle_start_swap(d, e, w, ctx, out),
                ConnMsg::Apply(_) => unreachable!(),
                ConnMsg::Ack => {}
                ConnMsg::BatchStart { items } => self.handle_batch_start(items, out),
                ConnMsg::BatchClassify { items } => {
                    self.handle_batch_classify(items, &mut report, out)
                }
                ConnMsg::BatchInsClassify { e, w, x, seq } => {
                    self.handle_batch_ins_classify(e, w, x, seq, &mut report, out)
                }
                ConnMsg::BatchReport { done, structural } => {
                    self.handle_batch_report(done, structural, out)
                }
                ConnMsg::BatchStructDone => self.batch_dispatch_next(out),
            }
        }
        if !report.is_empty() {
            out.send(
                BATCH_CTRL,
                ConnMsg::BatchReport {
                    done: report.done,
                    structural: report.structural,
                },
            );
        }
        if !replacement_candidates.is_empty() {
            // All candidates arrive in one round; pick the global minimum.
            let best = replacement_candidates
                .into_iter()
                .flatten()
                .map(|(e, w)| (w, e))
                .min();
            let batched = std::mem::take(&mut self.batch_cut_pending);
            match best {
                Some((w, e)) => {
                    out.send(self.owner(e.u), ConnMsg::StartLink { e, w, batched });
                }
                None => {
                    // No replacement: the batched delete flow ends here.
                    if batched {
                        out.send(BATCH_CTRL, ConnMsg::BatchStructDone);
                    }
                }
            }
        }
        if !path_replies.is_empty() {
            self.finish_path_max(path_replies, out);
        }
    }

    fn memory_words(&self) -> usize {
        let mut words = 4;
        for st in self.verts.values() {
            words += 4 + st.idx.len() + 4 * st.adj.len();
        }
        if let Some(ctl) = &self.batch {
            words += 2 + 3 * (ctl.structural.len() + ctl.queue.len());
        }
        words
    }
}

impl ConnMachine {
    /// A replacement/StartLink insertion: the edge already exists as a
    /// non-tree entry at both owners; re-run the insert query path (the
    /// Apply handler converts the entries to tree entries).
    fn handle_insert_replacement(
        &mut self,
        e: Edge,
        w: Weight,
        batched: bool,
        out: &mut Outbox<ConnMsg>,
    ) {
        let u = e.u;
        let x = self.st(u).info(u);
        out.send(self.owner(e.v), ConnMsg::InsQuery { e, w, x, batched });
    }
}
