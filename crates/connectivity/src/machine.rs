//! The owner-machine program for distributed connectivity/MST.
//!
//! Each machine owns a contiguous block of vertices. For every owned vertex
//! it stores: component id (= root vertex of its tree), component size, the
//! vertex's Euler-tour index list, and its adjacency entries. Tree entries
//! carry the edge's two tour indexes on this endpoint's side (the paper's
//! per-edge annotation); non-tree entries carry one cached tour index of the
//! far endpoint, kept valid under every structural op, so that cut-side
//! classification is local.
//!
//! # The owner directory
//!
//! Structural ops (links, tree cuts) and replacement-edge searches only
//! concern machines owning at least one vertex of the affected components,
//! so the paper's Table 1 charges them O(sqrt N) *active* machines — not
//! all P. To address them, the cluster maintains a **component-owner
//! directory**: for every component, the machine owning its *root vertex*
//! (derivable locally, because a component id is its root vertex id) holds
//! the sorted set of machines owning >= 1 of its vertices. Components whose
//! owner set is a single machine store nothing — the implicit fallback
//! `{owner_of(comp)}` is exact, because a component confined to one machine
//! is confined to its root's owner.
//!
//! Maintenance mirrors the structural flow that is already running:
//!
//! * **Links** merge: the initiator resolves both sides' sets (locally for
//!   singletons and self-rooted components, otherwise via an O(1)-round
//!   [`ConnMsg::DirFetch`] round-trip to the root owner), multicasts the
//!   O(1)-word [`ConnMsg::Apply`] to the union, and installs the union at
//!   the merged root owner ([`ConnMsg::DirStore`]) while dropping the
//!   absorbed id ([`ConnMsg::DirDrop`]).
//! * **Deleting cuts** refine: every owner's [`ConnMsg::CutReport`] to the
//!   rendezvous carries which sides of the tour-interval split it still
//!   owns, so when no replacement exists the rendezvous installs the two
//!   refined sets. When a replacement *is* found, the re-link restores the
//!   pre-cut component exactly, so the rendezvous hands the old set to the
//!   link flow instead ([`ConnMsg::StartLink`] carries it) and no
//!   refinement round is needed.
//! * **MST swap cuts** (demote + immediate re-link) leave the owner set
//!   unchanged, so the set resolved once for the path-max query rides along
//!   the whole swap ([`ConnMsg::StartSwap`] / [`ConnMsg::NeedParentCut`]).
//!
//! Owner sets are O(sqrt N) words but only ever travel point-to-point; the
//! multicast payloads stay O(1) words, keeping per-update communication at
//! O(sqrt N) total. The legacy all-machine broadcast survives behind
//! [`Routing::Broadcast`] for differential testing (like PR 3's backend
//! trio): both routings run the identical protocol — broadcast merely
//! over-addresses the multicasts, and the extra recipients no-op — so
//! machine states are bit-identical while active-machine metrics differ.
//!
//! Machines never send messages to themselves: self-addressed protocol
//! steps execute locally in the same round (local computation is free in
//! the MPC model), which the metering test pins via the flow map.
//!
//! # The query plane
//!
//! Reads never enter the structural-op machinery: a wave of `q` queries is
//! injected in one round and resolved by stateless probes joining at
//! per-query *rendezvous* machines (`rendezvous = qid mod P`), whose partial
//! folds are keyed by query id so the whole wave aggregates concurrently —
//! unlike the update path's single-slot pending state, which serializes
//! structural ops.
//!
//! * `Connected(u, v)` / `ComponentOf(u)`: one [`ConnMsg::QConnProbe`] per
//!   endpoint is injected at the endpoint's owner, which sends the
//!   component id to the rendezvous ([`ConnMsg::QConnJoin`]); the
//!   rendezvous compares (or reports) the ids. Two rounds for the whole
//!   wave, O(1) words per query.
//! * `PathMax(u, v)`: u's owner ships u's tour span to v's owner
//!   ([`ConnMsg::QPathProbe`]); on a component match the root owner
//!   resolves the owner set from its directory shard
//!   ([`ConnMsg::QPathResolve`], reusing PR 4's component-owner directory)
//!   and multicasts the evaluation ([`ConnMsg::QPathEval`]); every owner
//!   joins its local on-path maximum at the rendezvous
//!   ([`ConnMsg::QPathJoin`]). Five rounds for the whole wave.
//!
//! Answers are stashed at the rendezvous and drained by the driver after
//! quiescence (result extraction, like `comp_of`). Handlers only read
//! vertex/directory state, so a query wave is invisible to later updates;
//! the driver chunks waves to `O(sqrt N)` queries so rendezvous fan-in
//! respects the machine capacity `S`. All query traffic flows through the
//! same `Outbox` counters as updates, so send/receive caps and flow maps
//! meter reads exactly like writes.
//!
//! # Batched updates
//!
//! A batch of `k` pre-coalesced updates (at most one op per edge; see
//! `dmpc_graph::streams::coalesce`) is injected as [`ConnMsg::BatchStart`]
//! at the *batch controller* — machine 0, which plays this role in addition
//! to owning its vertex block. The batch runs in two phases:
//!
//! 1. **Classification fan-out (concurrent).** The controller ships each
//!    owner its share of the batch. Owners classify deletes locally (tree /
//!    non-tree) and forward inserts to the far endpoint's owner for a
//!    component comparison. Every *non-structural* update — a non-tree
//!    delete, or an intra-component insert — executes immediately; these
//!    commute because they never touch tour indexes, component ids, or
//!    sizes, and coalescing guarantees edge-disjointness. Classifiers
//!    report counts (and the leftover structural items) to the controller.
//! 2. **Conflict-group scheduling.** Links and tree cuts change tour
//!    indexes, component ids and sizes — but only of the components they
//!    touch. The classifiers report each structural leftover with the
//!    pre-batch component pair it touches, and the controller partitions
//!    the items into *conflict groups* (union-find over those pairs, see
//!    `dmpc_graph::conflict`). Items of one group run serialized, in batch
//!    order, as one protocol *lane*; disjoint groups run concurrently, each
//!    lane's rendezvous/fetch/pending state keyed by its lane id (the same
//!    map-keyed idiom the query plane uses for `pending_queries`). Every
//!    terminal step of a lane's flow signals [`ConnMsg::BatchStructDone`]
//!    (with the lane id) back to the controller, which dispatches that
//!    lane's next item. Under [`dmpc_mpc::Scheduler::Serialized`] the
//!    controller still computes the partition (the stats are reported
//!    either way) but runs everything as a single lane — the differential-
//!    testing baseline, bit-identical in outcomes.
//!
//! Classifications stay valid across phase 1 because only structural ops
//! (phase 2, strictly later) can change components; phase 2 re-classifies
//! each item on dispatch, so items demoted to non-structural by an earlier
//! structural op (e.g. a cross-component insert whose components were
//! merged by a previous link) still execute correctly.
//!
//! Concurrent lanes are sound because conflict groups are component-
//! disjoint over a consistent pre-batch snapshot (phase 1 never changes
//! components): flows in different lanes touch disjoint vertex sets, owner
//! sets and directory entries, so their Applies commute and their
//! DirFetch/DirStore traffic never races — a component id created mid-lane
//! (a cut's detached child) is a vertex of that lane's own group, so even
//! new directory entries stay inside the lane. True conflicts (items whose
//! component pairs connect) share a lane and serialize exactly as before,
//! which keeps fetched owner sets coherent: within a lane at most one
//! structural op is in flight, so a fetched set cannot go stale before its
//! flow finishes.

use crate::messages::{BatchItem, ConnMsg, CutMode, StructBroadcast, StructItem, VertexInfo};
use crate::shard::{ApplyOutcome, Shard};
use dmpc_eulertour::indexed::{CompId, TourOp};
use dmpc_eulertour::TourIx;
use dmpc_graph::{partition_conflicts, Edge, QueryAnswer, Update, Weight, V};
use dmpc_mpc::{
    pack_text, unpack_text, Envelope, Layout, Machine, MachineId, Outbox, RoundCtx, Scheduler,
};
use std::collections::{BTreeMap, VecDeque};

pub use crate::shard::{EntryKind, VertexState};

/// The machine doubling as batch controller (id 0).
pub const BATCH_CTRL: MachineId = 0;

/// Pending-state map key for flows outside any batch lane (single updates,
/// MST swaps) — exactly one such flow is ever in flight cluster-wide, so
/// one reserved key suffices. Lane ids are dense batch-group indexes and
/// never reach this value.
const SOLO_LANE: u32 = u32::MAX;

/// Map key of a flow's pending state: its lane id, or [`SOLO_LANE`].
fn lane_key(lane: Option<u32>) -> u32 {
    lane.unwrap_or(SOLO_LANE)
}

/// Controller-side statistics of one batch's structural phase, harvested by
/// the driver after the run and folded into
/// [`dmpc_mpc::BatchMetrics`]' conflict fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictStats {
    /// Conflict groups in the partition. Reported under both schedulers —
    /// `Serialized` computes the partition it declines to exploit.
    pub groups: usize,
    /// Items in the largest group (the serialization floor).
    pub depth: usize,
    /// Maximum lanes concurrently in flight (1 under `Serialized` whenever
    /// any structural item ran).
    pub max_lanes: usize,
}

/// How structural multicasts are addressed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Routing {
    /// Address structural ops, replacement searches and path-max queries
    /// only to the affected components' owner machines (the directory).
    #[default]
    Multicast,
    /// Legacy routing: send them to every machine. Kept behind this flag
    /// for differential testing — states are bit-identical to multicast,
    /// only the metered active machines/communication differ.
    Broadcast,
}

/// Controller-side state of one in-flight batch.
#[derive(Debug, Default)]
struct BatchCtl {
    /// Updates whose classification report is still outstanding.
    expect: usize,
    /// Classified-as-structural items, collected during phase 1.
    structural: Vec<StructItem>,
    /// Phase 2 per-lane queues (each sorted by batch position); index =
    /// lane id. Under `Scheduler::Serialized` there is at most one lane.
    lanes: Vec<VecDeque<BatchItem>>,
    /// First lane not yet started (lanes start in id order as slots free).
    next_lane: usize,
    /// Lanes currently in flight.
    live: usize,
    /// Phase 2 has begun (the lanes are authoritative).
    serving: bool,
    /// Partition statistics of this batch, published on completion.
    stats: ConflictStats,
}

/// Rendezvous-side state of an in-flight searching cut: the local apply
/// outcome stashed until the remote [`ConnMsg::CutReport`]s arrive (they all
/// arrive in the round after the multicast). Keyed by lane in
/// `pending_cuts` so concurrently searching lanes fold separately.
#[derive(Debug)]
struct PendingCut {
    /// Surviving (parent) side component id.
    comp: CompId,
    /// Detached (child) side component id.
    new_comp: CompId,
    /// Pre-cut owner set (the multicast audience; also the merged set a
    /// replacement link restores).
    old_owners: Vec<MachineId>,
    /// Remote Apply recipients; 0 finalizes immediately.
    remote: usize,
    /// The rendezvous' own apply outcome.
    local: ApplyOutcome,
    /// Batch lane of this cut's flow (`None` outside a batch).
    lane: Option<u32>,
}

/// Rendezvous-side state of an in-flight MST path-max query.
#[derive(Debug)]
struct PendingMst {
    /// Candidate new edge.
    e: Edge,
    /// Its weight.
    w: Weight,
    /// `f(x)` of the initiating endpoint (the non-tree cached index if the
    /// tree is kept).
    fx: TourIx,
    /// The initiating endpoint.
    x_v: V,
    /// The component's owner set, resolved once and reused by the swap.
    owners: Vec<MachineId>,
    /// The rendezvous' own on-path maximum.
    local_best: Option<(Edge, Weight)>,
}

/// A structural flow suspended on a directory fetch; resumed by the
/// [`ConnMsg::DirReply`]. Keyed by lane in `pending_fetches`: within one
/// lane at most one structural op is in flight, so one slot per lane
/// suffices, and concurrently fetching lanes never collide.
#[derive(Debug)]
enum FetchCont {
    /// A cross-component insert waiting for one or both owner sets.
    Link {
        e: Edge,
        w: Weight,
        x: VertexInfo,
        lane: Option<u32>,
        /// Union of the sets resolved so far.
        acc: Vec<MachineId>,
        /// Outstanding DirReply count (1 or 2).
        waiting: usize,
    },
    /// A tree cut waiting for the component's owner set.
    Cut {
        e: Edge,
        parent: V,
        fy: TourIx,
        ly: TourIx,
        mode: CutMode,
        search: bool,
        then_link: Option<(Edge, Weight)>,
        lane: Option<u32>,
    },
    /// An MST intra-component insert waiting for the owner set before
    /// multicasting the path-max query.
    PathMax { e: Edge, w: Weight, x: VertexInfo },
}

/// One received [`ConnMsg::CutReport`]: (sender, best candidate,
/// owns_parent, owns_child).
type CutReportIn = (MachineId, Option<(Edge, Weight)>, bool, bool);

/// Rendezvous-side partial fold of one in-flight query. Like the
/// lane-keyed update state (`pending_cuts` etc.), query folds are keyed by
/// query id so a whole wave of queries aggregates concurrently; an entry is
/// removed (and the answer stashed) the moment its last join arrives.
#[derive(Debug)]
enum QueryFold {
    /// A `Connected`/`ComponentOf` fold over component-id joins.
    Conn {
        /// Joins expected.
        expect: u8,
        /// Joins folded so far.
        got: u8,
        /// The first join's component id.
        first: CompId,
        /// All joins so far agree with `first`.
        all_eq: bool,
    },
    /// A `PathMax` fold over per-owner local maxima.
    Path {
        /// Joins expected.
        expect: u16,
        /// Joins folded so far.
        got: u16,
        /// Running maximum, `(weight, edge)` ordered like the update-path
        /// aggregation in `finish_path_max`.
        best: Option<(Weight, Edge)>,
        /// No join reported the endpoints disconnected.
        connected: bool,
    },
}

/// Round-local accumulators threaded through message dispatch (the
/// aggregation messages of one round fold into a single action).
#[derive(Default)]
struct RoundAcc {
    /// This classifier's report to the controller.
    report: BatchReportAcc,
    /// Remote cut reports, folded per lane so concurrently searching lanes
    /// finalize independently (all of one lane's reports arrive in one
    /// round; reports of different lanes may share a round).
    cut_reports: BTreeMap<u32, Vec<CutReportIn>>,
    /// Remote path-max replies.
    path_replies: Vec<Option<(Edge, Weight)>>,
}

/// Source-side state of one in-flight shard migration or recovery handoff:
/// the budgeted snapshot courier plus (migrations only) the directory
/// patches that follow the data phase.
#[derive(Debug)]
struct Transfer {
    /// The stop-and-wait chunk courier.
    courier: dmpc_mpc::SnapCourier,
    /// Directory repair messages, sent budget-chunked after the data phase.
    patches: VecDeque<(MachineId, ConnMsg)>,
    /// Per-round payload budget (words).
    budget: usize,
}

/// The connectivity/MST owner machine.
pub struct ConnMachine {
    id: MachineId,
    /// Partition table: machine `i` owns vertices `bounds[i]..bounds[i+1]`
    /// (monotone, possibly empty ranges; shared by every machine and kept
    /// in sync by O(1)-word [`ConnMsg::Boundary`] broadcasts on migration).
    bounds: Vec<V>,
    mst_mode: bool,
    routing: Routing,
    verts: Shard,
    /// Owner directory shard: authoritative sets for components rooted in
    /// this machine's block (entries only for sets of size >= 2; the
    /// implicit fallback is `{owner_of(comp)}`).
    dir: BTreeMap<CompId, Vec<MachineId>>,
    /// Self-addressed messages executed locally within the same round.
    local: VecDeque<ConnMsg>,
    /// Structural flows suspended on directory fetches, keyed by lane
    /// ([`SOLO_LANE`] for unbatched flows).
    pending_fetches: BTreeMap<u32, FetchCont>,
    /// In-flight searching cuts at the rendezvous (this machine), keyed by
    /// lane.
    pending_cuts: BTreeMap<u32, PendingCut>,
    /// In-flight MST path-max aggregation at the rendezvous (MST mode has
    /// no batched path, so a single slot still suffices).
    pending_mst: Option<PendingMst>,
    /// Controller state of the in-flight batch (machine 0 only).
    batch: Option<BatchCtl>,
    /// How the controller schedules a batch's structural leftovers.
    scheduler: Scheduler,
    /// Maximum lanes the controller keeps in flight at once (bounds the
    /// transient per-lane state and concurrent multicast fan-in; set by the
    /// driver from the machine capacity).
    lane_cap: usize,
    /// Statistics of the last completed batch (controller only), harvested
    /// by the driver after the run.
    last_conflict: Option<ConflictStats>,
    /// Rendezvous-side partial folds of in-flight queries, keyed by query id
    /// (the whole wave aggregates concurrently).
    pending_queries: BTreeMap<u32, QueryFold>,
    /// Completed query answers stashed at this rendezvous, drained by the
    /// driver after the wave quiesces.
    answers: Vec<(u32, QueryAnswer)>,
    /// Outbound migration/handoff in flight (source side).
    transfer: Option<Transfer>,
    /// Inbound snapshot chunks accumulated so far (receiver side).
    snap_buf: Vec<u64>,
    /// Packed snapshot staged by the driver for a recovery handoff
    /// (consumed by [`ConnMsg::HandoffBegin`]).
    staged: Option<Vec<u64>>,
}

impl ConnMachine {
    /// Creates the machine with its owned vertex block.
    pub fn new(id: MachineId, n_vertices: usize, block: usize, mst_mode: bool) -> Self {
        Self::with_opts(
            id,
            n_vertices,
            block,
            mst_mode,
            Routing::default(),
            Layout::default(),
            Scheduler::default(),
        )
    }

    /// Creates the machine with an explicit multicast/broadcast routing.
    pub fn with_routing(
        id: MachineId,
        n_vertices: usize,
        block: usize,
        mst_mode: bool,
        routing: Routing,
    ) -> Self {
        Self::with_opts(
            id,
            n_vertices,
            block,
            mst_mode,
            routing,
            Layout::default(),
            Scheduler::default(),
        )
    }

    /// Creates the machine with explicit routing, state-layout and batch
    /// scheduler choices.
    #[allow(clippy::too_many_arguments)]
    pub fn with_opts(
        id: MachineId,
        n_vertices: usize,
        block: usize,
        mst_mode: bool,
        routing: Routing,
        layout: Layout,
        scheduler: Scheduler,
    ) -> Self {
        let bounds = Self::uniform_bounds(n_vertices, block);
        let lo = bounds[id as usize];
        let hi = bounds[id as usize + 1];
        let verts = Shard::new_range(layout, lo, hi);
        ConnMachine {
            id,
            bounds,
            mst_mode,
            routing,
            verts,
            dir: BTreeMap::new(),
            local: VecDeque::new(),
            pending_fetches: BTreeMap::new(),
            pending_cuts: BTreeMap::new(),
            pending_mst: None,
            batch: None,
            scheduler,
            lane_cap: usize::MAX,
            last_conflict: None,
            pending_queries: BTreeMap::new(),
            answers: Vec::new(),
            transfer: None,
            snap_buf: Vec::new(),
            staged: None,
        }
    }

    /// Bounds the lanes the batch controller keeps in flight at once. The
    /// driver derives this from the machine capacity `S` so per-lane
    /// transient state and concurrent multicast fan-in stay within the
    /// model's memory budget.
    pub fn set_lane_cap(&mut self, cap: usize) {
        self.lane_cap = cap.max(1);
    }

    /// Takes the statistics of the last completed batch (controller only;
    /// driver-side harvesting after a run, not part of the model).
    pub fn take_conflict_stats(&mut self) -> Option<ConflictStats> {
        self.last_conflict.take()
    }

    /// The initial (uniform `block`-sized) partition table: machine `i`
    /// owns `bounds[i]..bounds[i+1]`. Migrations later move individual
    /// boundaries, so ownership is always a `bounds` lookup, never block
    /// arithmetic.
    pub fn uniform_bounds(n_vertices: usize, block: usize) -> Vec<V> {
        let machines = n_vertices.div_ceil(block).max(1);
        (0..=machines)
            .map(|i| ((i * block).min(n_vertices)) as V)
            .collect()
    }

    /// Owner machine of vertex `v` under a partition table (shared with the
    /// driver's mirror): the unique `i` with
    /// `bounds[i] <= v < bounds[i+1]`, skipping emptied ranges.
    pub fn owner_in(bounds: &[V], v: V) -> MachineId {
        debug_assert!(v < *bounds.last().expect("non-empty bounds"));
        (bounds.partition_point(|&b| b <= v) - 1) as MachineId
    }

    /// This machine's view of the partition table (audits/tests).
    pub fn bounds(&self) -> &[V] {
        &self.bounds
    }

    /// Abort recovery: drops controller/rendezvous/fetch state left behind
    /// by a round-limit-aborted run, so later runs are not charged phantom
    /// memory for it. Called by the driver between runs (the in-machine
    /// reset in `handle_batch_start` covers the batch-after-batch case).
    pub fn clear_stale_batch(&mut self) {
        self.batch = None;
        self.pending_cuts.clear();
        self.pending_fetches.clear();
        self.pending_mst = None;
        self.pending_queries.clear();
        self.answers.clear();
        self.last_conflict = None;
    }

    /// Drains the query answers stashed at this rendezvous (driver-side
    /// result extraction after a wave quiesces — not part of the model).
    pub fn take_answers(&mut self) -> Vec<(u32, QueryAnswer)> {
        std::mem::take(&mut self.answers)
    }

    fn owner(&self, v: V) -> MachineId {
        Self::owner_in(&self.bounds, v)
    }

    /// The machine holding `comp`'s directory entry: the owner of its root
    /// vertex (a component id *is* its root vertex id).
    fn root_owner(&self, comp: CompId) -> MachineId {
        Self::owner_in(&self.bounds, comp as V)
    }

    /// Read access for result extraction and audits (not part of the model).
    pub fn vertex(&self, v: V) -> Option<VertexState> {
        self.verts.vertex(v)
    }

    /// All owned vertex states (materialized; audits/tests only).
    pub fn vertices(&self) -> Vec<(V, VertexState)> {
        self.verts.vertices()
    }

    /// The state layout this machine runs with.
    pub fn layout(&self) -> Layout {
        self.verts.layout()
    }

    /// Sets the machine's resident budget (the model capacity `S`, in
    /// words). The SoA shard compacts its arenas whenever a mutation would
    /// leave it above this while slack remains, so arena holes never turn a
    /// compactly-fitting shard into a memory violation.
    pub fn set_memory_budget(&mut self, words: usize) {
        self.verts.set_soft_cap(words);
    }

    /// This machine's directory shard (audits/tests; not part of the model).
    pub fn directory(&self) -> &BTreeMap<CompId, Vec<MachineId>> {
        &self.dir
    }

    /// Direct state injection for bulk loading during preprocessing.
    pub fn load_vertex(&mut self, v: V, st: VertexState) {
        self.verts.load_vertex(v, st);
    }

    /// Direct directory injection for bulk loading during preprocessing.
    /// Sets of size < 2 are dropped (implicit fallback).
    pub fn load_dir_entry(&mut self, comp: CompId, owners: Vec<MachineId>) {
        debug_assert_eq!(self.root_owner(comp), self.id, "entry at non-root owner");
        if owners.len() >= 2 {
            self.dir.insert(comp, owners);
        } else {
            self.dir.remove(&comp);
        }
    }

    // ----- elasticity & recovery ------------------------------------------
    //
    // # Shard migration
    //
    // The driver injects [`ConnMsg::MigrateBegin`] at the source at
    // quiescence. In one round the source (1) moves the partition boundary
    // locally and broadcasts the O(1)-word [`ConnMsg::Boundary`] so every
    // machine routes by the new table from the next round on, (2) extracts
    // the moving vertex states into a plain-text payload, and (3) starts a
    // budgeted stop-and-wait courier of [`ConnMsg::SnapChunk`]s to the
    // receiver. After the data phase the courier drains the *patch phase*:
    // directory repair messages, O(1) words per affected component —
    // complete [`ConnMsg::DirStore`]/[`ConnMsg::DirDrop`] replacements for
    // components rooted in the source's old range (it held their exact
    // sets), incremental [`ConnMsg::DirPatch`]es to remote root owners for
    // the rest. No global re-broadcast of data ever happens.
    //
    // # Recovery handoff
    //
    // A revive ships a full snapshot the same way: the driver stages the
    // packed text at a live peer and injects [`ConnMsg::HandoffBegin`]; the
    // final chunk carries `install = true` so the receiver replaces its
    // (wiped) state wholesale via [`ConnMachine::restore_text`].

    /// Fail-stop wipe: drops all program state (the partition table keeps
    /// its last value; a revive handoff overwrites it anyway).
    pub fn wipe(&mut self) {
        self.verts.clear();
        self.dir.clear();
        self.local.clear();
        self.pending_fetches.clear();
        self.pending_cuts.clear();
        self.pending_mst = None;
        self.batch = None;
        self.last_conflict = None;
        self.pending_queries.clear();
        self.answers.clear();
        self.transfer = None;
        self.snap_buf = Vec::new();
        self.staged = None;
    }

    /// Driver-side staging of a packed snapshot for a recovery handoff
    /// (consumed by the next [`ConnMsg::HandoffBegin`]).
    pub fn stage_handoff(&mut self, words: Vec<u64>) {
        self.staged = Some(words);
    }

    /// Plain-text snapshot of the full program state at quiescence
    /// (transient protocol state is empty by definition). Deterministic:
    /// all maps iterate in key order.
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "connmachine v1").unwrap();
        writeln!(s, "id {}", self.id).unwrap();
        writeln!(s, "mst {}", self.mst_mode as u8).unwrap();
        let routing = match self.routing {
            Routing::Multicast => "m",
            Routing::Broadcast => "b",
        };
        writeln!(s, "routing {routing}").unwrap();
        s.push_str("bounds");
        for b in &self.bounds {
            write!(s, " {b}").unwrap();
        }
        s.push('\n');
        self.verts.write_all(&mut s);
        for (comp, owners) in &self.dir {
            write!(s, "dir {comp}").unwrap();
            for m in owners {
                write!(s, " {m}").unwrap();
            }
            s.push('\n');
        }
        s
    }

    /// Full state restore from [`ConnMachine::snapshot_text`] output
    /// (recovery). Panics on malformed text — snapshots are produced by
    /// this code, so damage is a transfer-layer bug, not data-dependent.
    pub fn restore_text(&mut self, text: &str) {
        self.wipe();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("connmachine v1"), "snapshot header");
        for line in lines {
            let mut it = line.split_ascii_whitespace();
            match it.next().expect("non-empty snapshot line") {
                "id" => {
                    let id: MachineId = it.next().unwrap().parse().unwrap();
                    debug_assert_eq!(id, self.id, "snapshot restored on wrong machine");
                }
                "mst" => {
                    let mst = it.next().unwrap() == "1";
                    debug_assert_eq!(mst, self.mst_mode);
                }
                "routing" => {}
                "bounds" => self.bounds = it.map(|t| t.parse().unwrap()).collect(),
                "dir" => {
                    let comp: CompId = it.next().unwrap().parse().unwrap();
                    let owners: Vec<MachineId> = it.map(|t| t.parse().unwrap()).collect();
                    self.dir.insert(comp, owners);
                }
                _ => self.verts.parse_line(line),
            }
        }
    }

    /// Installs migrated vertex state (vert/adj lines only — directory
    /// repair travels separately in the patch phase).
    fn install_vert_lines(&mut self, text: &str) {
        for line in text.lines() {
            self.verts.parse_line(line);
        }
    }

    /// Source side of [`ConnMsg::MigrateBegin`]: shift the boundary,
    /// broadcast it, extract the moving range, compute directory repairs,
    /// and start the budgeted courier.
    fn handle_migrate_begin(
        &mut self,
        to: MachineId,
        lo: V,
        hi: V,
        budget: usize,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let old_lo = self.bounds[self.id as usize];
        let old_hi = self.bounds[self.id as usize + 1];
        debug_assert!(old_lo <= lo && lo < hi && hi <= old_hi, "range not owned");
        debug_assert!(
            to == self.id + 1 || to + 1 == self.id,
            "non-neighbour migration"
        );
        // Moving a suffix right raises the right neighbour's start; moving
        // a prefix left raises our own.
        let (idx, val) = if to == self.id + 1 {
            (to, lo)
        } else {
            (self.id, hi)
        };
        debug_assert!(
            lo == old_lo || hi == old_hi,
            "moved range must touch a boundary"
        );
        self.bounds[idx as usize] = val;
        out.broadcast(ctx.n_machines, ConnMsg::Boundary { idx, val });
        // Extract the moving vertices and serialize them.
        let text = self.verts.extract_range(lo, hi);
        // Directory repair, one O(1)-word patch per affected component.
        let moved_comps: std::collections::BTreeSet<CompId> = text
            .lines()
            .filter(|l| l.starts_with("vert "))
            .map(|l| l.split_ascii_whitespace().nth(2).unwrap().parse().unwrap())
            .collect();
        let mut patches: VecDeque<(MachineId, ConnMsg)> = VecDeque::new();
        for comp in moved_comps {
            let src_retains = self.verts.any_in_comp(comp);
            let root = comp as V;
            if old_lo <= root && root < old_hi {
                // Rooted in our old range: we held the exact owner set, so
                // we emit a complete replacement.
                let mut set = self.dir.remove(&comp).unwrap_or_else(|| vec![self.id]);
                if !src_retains {
                    set.retain(|&m| m != self.id);
                }
                set.push(to);
                set.sort_unstable();
                set.dedup();
                if lo <= root && root < hi {
                    // The root vertex moved too: the entry follows it.
                    let msg = if set.len() >= 2 {
                        ConnMsg::DirStore { comp, owners: set }
                    } else {
                        ConnMsg::DirDrop { comp }
                    };
                    patches.push_back((to, msg));
                } else if set.len() >= 2 {
                    self.dir.insert(comp, set);
                }
            } else {
                // Rooted remotely: the entry provably exists there (root
                // owner + this machine both owned members), so an
                // incremental add/remove patch suffices.
                let r = self.root_owner(comp);
                debug_assert_ne!(r, self.id);
                patches.push_back((
                    r,
                    ConnMsg::DirPatch {
                        comp,
                        add: to,
                        remove: (!src_retains).then_some(self.id),
                    },
                ));
            }
        }
        self.transfer = Some(Transfer {
            courier: dmpc_mpc::SnapCourier::new(to, false, pack_text(&text), budget),
            patches,
            budget,
        });
        self.transfer_step(out);
    }

    /// Advances an in-flight transfer by one round: the next data chunk,
    /// or (data done) up to one budget's worth of directory patches. When
    /// patches remain, pacing stays stop-and-wait: a [`ConnMsg::MigrateKick`]
    /// goes to the migration destination, which bounces a
    /// [`ConnMsg::SnapAck`] that re-enters this function next round (a
    /// self-message would execute same-round and defeat the budget — and no
    /// machine ever messages itself).
    fn transfer_step(&mut self, out: &mut Outbox<ConnMsg>) {
        let Some(tr) = &mut self.transfer else {
            return;
        };
        if let Some((words, last)) = tr.courier.next_chunk() {
            let install = tr.courier.install;
            out.send(
                tr.courier.dst,
                ConnMsg::SnapChunk {
                    words,
                    last,
                    install,
                },
            );
            return;
        }
        let mut sent = 0usize;
        while let Some((to, msg)) = tr.patches.pop_front() {
            debug_assert_ne!(to, self.id, "patches never target the source");
            sent += dmpc_mpc::Payload::size_words(&msg);
            out.send(to, msg);
            if sent >= tr.budget {
                break;
            }
        }
        if tr.patches.is_empty() {
            self.transfer = None;
        } else {
            out.send(tr.courier.dst, ConnMsg::MigrateKick);
        }
    }

    /// Receiver side of one snapshot chunk.
    fn handle_snap_chunk(
        &mut self,
        from: MachineId,
        words: &[u64],
        last: bool,
        install: bool,
        out: &mut Outbox<ConnMsg>,
    ) {
        self.snap_buf.extend_from_slice(words);
        out.send(from, ConnMsg::SnapAck);
        if last {
            let buf = std::mem::take(&mut self.snap_buf);
            let text = unpack_text(&buf);
            if install {
                self.restore_text(&text);
            } else {
                self.install_vert_lines(&text);
            }
        }
    }

    // ----- routing helpers ------------------------------------------------

    /// Sends `msg` to `to`, executing locally (same round, free in the MPC
    /// model) when `to` is this machine — no machine ever messages itself.
    fn route(&mut self, to: MachineId, msg: ConnMsg, out: &mut Outbox<ConnMsg>) {
        if to == self.id {
            self.local.push_back(msg);
        } else {
            out.send(to, msg);
        }
    }

    /// Remote multicast audience for an owner set: the set minus this
    /// machine under [`Routing::Multicast`], every other machine under
    /// [`Routing::Broadcast`].
    fn audience(&self, owners: &[MachineId], ctx: &RoundCtx) -> Vec<MachineId> {
        match self.routing {
            Routing::Multicast => owners.iter().copied().filter(|&m| m != self.id).collect(),
            Routing::Broadcast => (0..ctx.n_machines as MachineId)
                .filter(|&m| m != self.id)
                .collect(),
        }
    }

    /// The directory's answer for `comp` at its root owner: the stored set,
    /// or the implicit singleton-machine fallback.
    fn dir_owners(&self, comp: CompId) -> Vec<MachineId> {
        debug_assert_eq!(self.root_owner(comp), self.id, "lookup at non-root owner");
        self.dir
            .get(&comp)
            .cloned()
            .unwrap_or_else(|| vec![self.root_owner(comp)])
    }

    /// Resolves a component's owner set without communication when
    /// possible: singleton components own exactly their root's owner, and
    /// self-rooted components are answered from the local directory shard.
    fn set_if_local(&self, comp: CompId, size: u64) -> Option<Vec<MachineId>> {
        if size == 1 {
            Some(vec![self.root_owner(comp)])
        } else if self.root_owner(comp) == self.id {
            Some(self.dir_owners(comp))
        } else {
            None
        }
    }

    // ----- protocol steps -------------------------------------------------

    /// Signals the controller that this lane's structural item finished
    /// (no-op for unbatched flows).
    fn signal_struct_done(&mut self, lane: Option<u32>, out: &mut Outbox<ConnMsg>) {
        if let Some(l) = lane {
            self.route(BATCH_CTRL, ConnMsg::BatchStructDone { lane: l }, out);
        }
    }

    fn handle_insert(&mut self, e: Edge, w: Weight, lane: Option<u32>, out: &mut Outbox<ConnMsg>) {
        let u = e.u;
        debug_assert!(self.verts.adj_get(u, e.v).is_none(), "duplicate insert {e}");
        let x = self.verts.info(u);
        self.route(
            self.owner(e.v),
            ConnMsg::InsQuery {
                e,
                w,
                x,
                lane,
                known_owners: None,
            },
            out,
        );
    }

    /// Records the intra-component edge `e` as a non-tree entry at the
    /// locally-owned endpoint `y` and ships the matching entry to the far
    /// owner. Shared by the single-update flow and the batch classifier.
    fn add_non_tree_pair(&mut self, e: Edge, w: Weight, x: &VertexInfo, out: &mut Outbox<ConnMsg>) {
        let y = e.other(x.v);
        let y_f = self.verts.f_of(y);
        let owner_x = self.owner(x.v);
        self.verts.adj_set(
            y,
            x.v,
            EntryKind::NonTree {
                cached: x.f,
                far_comp: x.comp,
            },
            w,
        );
        self.route(
            owner_x,
            ConnMsg::AddNonTree {
                e,
                w,
                at: x.v,
                cached_far: y_f,
            },
            out,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_ins_query(
        &mut self,
        e: Edge,
        w: Weight,
        x: VertexInfo,
        lane: Option<u32>,
        known_owners: Option<Vec<MachineId>>,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let y = e.other(x.v);
        let (y_comp, y_size) = (self.verts.comp_of(y), self.verts.size_of(y));
        if y_comp == x.comp {
            // Intra-component edge.
            if self.mst_mode {
                debug_assert!(lane.is_none(), "MST mode has no batched path");
                // Find the max-weight tree edge on the x..y path first; the
                // query multicast needs the component's owner set.
                match self.set_if_local(y_comp, y_size) {
                    Some(owners) => self.launch_path_max(e, w, x, owners, ctx, out),
                    None => {
                        let prev = self
                            .pending_fetches
                            .insert(lane_key(lane), FetchCont::PathMax { e, w, x });
                        debug_assert!(prev.is_none(), "fetch slot already occupied");
                        out.send(
                            self.root_owner(y_comp),
                            ConnMsg::DirFetch { comp: y_comp, lane },
                        );
                    }
                }
            } else {
                self.add_non_tree_pair(e, w, &x, out);
                self.signal_struct_done(lane, out);
            }
        } else {
            // Cross-component: resolve the union of both owner sets, then
            // link. Replacement/swap links arrive with the union attached.
            let union = match known_owners {
                Some(u) => Some(u),
                None => {
                    let sx = self.set_if_local(x.comp, x.size);
                    let sy = self.set_if_local(y_comp, y_size);
                    match (sx, sy) {
                        (Some(a), Some(b)) => Some(merge_sets(a, &b)),
                        (sx, sy) => {
                            let mut acc = Vec::new();
                            let mut waiting = 0usize;
                            match sx {
                                Some(a) => acc = merge_sets(acc, &a),
                                None => {
                                    out.send(
                                        self.root_owner(x.comp),
                                        ConnMsg::DirFetch { comp: x.comp, lane },
                                    );
                                    waiting += 1;
                                }
                            }
                            match sy {
                                Some(b) => acc = merge_sets(acc, &b),
                                None => {
                                    out.send(
                                        self.root_owner(y_comp),
                                        ConnMsg::DirFetch { comp: y_comp, lane },
                                    );
                                    waiting += 1;
                                }
                            }
                            let prev = self.pending_fetches.insert(
                                lane_key(lane),
                                FetchCont::Link {
                                    e,
                                    w,
                                    x,
                                    lane,
                                    acc,
                                    waiting,
                                },
                            );
                            debug_assert!(prev.is_none(), "fetch slot already occupied");
                            None
                        }
                    }
                }
            };
            if let Some(u) = union {
                self.do_link(e, w, &x, u, lane, ctx, out);
            }
        }
    }

    /// Executes a cross-component link with the merged owner set resolved:
    /// multicasts the Apply, applies locally, and installs the directory
    /// update at the merged root owner.
    // The parameters mirror the link flow's wire state one-to-one; a struct
    // here would duplicate the InsQuery message shape.
    #[allow(clippy::too_many_arguments)]
    fn do_link(
        &mut self,
        e: Edge,
        w: Weight,
        x: &VertexInfo,
        union: Vec<MachineId>,
        lane: Option<u32>,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let y = e.other(x.v);
        let yi = self.verts.info(y);
        let (y_comp, y_size, y_f, y_l) = (yi.comp, yi.size, yi.f, yi.l);
        // Reroot y's tree at y, then link after f(x).
        let reroot = if y_size > 1 && y_f != 1 {
            Some(TourOp::Reroot {
                comp: y_comp,
                elen: 4 * (y_size - 1),
                l_y: y_l,
                y,
            })
        } else {
            None
        };
        // Erratum fix: splice position 0 when x is the root of its tree.
        let fx = if x.f <= 1 { 0 } else { x.f };
        let main = TourOp::Link {
            a: x.comp,
            b: y_comp,
            x: x.v,
            y,
            fx,
            elen_b: 4 * (y_size - 1),
        };
        let b = StructBroadcast {
            reroot,
            main,
            merged_size: x.size + y_size,
            x_after: 0,
            edge: e,
            weight: w,
            cut_mode: CutMode::Remove,
            rendezvous: None,
            lane,
        };
        for m in self.audience(&union, ctx) {
            out.send(m, ConnMsg::Apply(b));
        }
        self.verts.apply_struct(&b);
        // Directory: the merged component keeps x's id; y's id is absorbed.
        self.route(
            self.root_owner(x.comp),
            ConnMsg::DirStore {
                comp: x.comp,
                owners: union,
            },
            out,
        );
        self.route(
            self.root_owner(y_comp),
            ConnMsg::DirDrop { comp: y_comp },
            out,
        );
        self.signal_struct_done(lane, out);
    }

    fn handle_delete(
        &mut self,
        e: Edge,
        lane: Option<u32>,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let u = e.u;
        let (kind, _w) = self
            .verts
            .adj_get(u, e.v)
            .unwrap_or_else(|| panic!("delete of absent edge {e}"));
        match kind {
            EntryKind::NonTree { .. } => {
                self.verts.adj_remove(u, e.v);
                self.route(self.owner(e.v), ConnMsg::DelNonTree { e, at: e.v }, out);
                self.signal_struct_done(lane, out);
            }
            EntryKind::Tree { lo, hi } => {
                if lo % 2 == 0 {
                    // u is the child: the parent's owner must compute the
                    // surviving parent index, then multicast.
                    self.route(
                        self.owner(e.v),
                        ConnMsg::NeedParentCut {
                            e,
                            parent: e.v,
                            fy: lo,
                            ly: hi,
                            mode: CutMode::Remove,
                            search: true,
                            then_link: None,
                            lane,
                            owners: None,
                        },
                        out,
                    );
                } else {
                    // u is the parent: cut directly.
                    self.start_cut(
                        e,
                        u,
                        lo + 1,
                        hi - 1,
                        CutMode::Remove,
                        true,
                        None,
                        lane,
                        None,
                        ctx,
                        out,
                    );
                }
            }
        }
    }

    /// Begins a cut of tree edge `e` whose parent endpoint is `parent`
    /// (owned by this machine) and whose child spans `fy..=ly`: resolves
    /// the component's owner set (given, local, or fetched), then executes.
    #[allow(clippy::too_many_arguments)]
    fn start_cut(
        &mut self,
        e: Edge,
        parent: V,
        fy: TourIx,
        ly: TourIx,
        mode: CutMode,
        search: bool,
        then_link: Option<(Edge, Weight)>,
        lane: Option<u32>,
        owners: Option<Vec<MachineId>>,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let owners = match owners {
            Some(o) => o,
            None => {
                let comp = self.verts.comp_of(parent);
                if self.root_owner(comp) == self.id {
                    self.dir_owners(comp)
                } else {
                    let prev = self.pending_fetches.insert(
                        lane_key(lane),
                        FetchCont::Cut {
                            e,
                            parent,
                            fy,
                            ly,
                            mode,
                            search,
                            then_link,
                            lane,
                        },
                    );
                    debug_assert!(prev.is_none(), "fetch slot already occupied");
                    out.send(self.root_owner(comp), ConnMsg::DirFetch { comp, lane });
                    return;
                }
            }
        };
        self.do_cut(
            e, parent, fy, ly, mode, search, then_link, lane, owners, ctx, out,
        );
    }

    /// Executes a cut with the owner set resolved: multicasts the Apply,
    /// applies locally, and arms the rendezvous aggregation (searching
    /// cuts) or the follow-up link (MST swaps).
    #[allow(clippy::too_many_arguments)]
    fn do_cut(
        &mut self,
        e: Edge,
        parent: V,
        fy: TourIx,
        ly: TourIx,
        mode: CutMode,
        search: bool,
        then_link: Option<(Edge, Weight)>,
        lane: Option<u32>,
        owners: Vec<MachineId>,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let child = e.other(parent);
        let comp = self.verts.comp_of(parent);
        let span = (ly - fy + 1) + 2;
        let x_after = self
            .verts
            .idx_of(parent)
            .iter()
            .filter(|&&s| s != fy - 1 && s != ly + 1)
            .map(|&s| if s > ly { s - span } else { s })
            .min()
            .unwrap_or(0);
        let main = TourOp::Cut {
            comp,
            x: parent,
            y: child,
            fy,
            ly,
            new_comp: child,
        };
        let b = StructBroadcast {
            reroot: None,
            main,
            merged_size: 0,
            x_after,
            edge: e,
            weight: 0,
            cut_mode: mode,
            rendezvous: if search { Some(self.id) } else { None },
            lane,
        };
        let remote = self.audience(&owners, ctx);
        for &m in &remote {
            out.send(m, ConnMsg::Apply(b));
        }
        if let Some((le, lw)) = then_link {
            // An MST swap's re-link restores the pre-cut component, so the
            // owner set rides along unchanged. The link's InsQuery is
            // processed after the Apply in the same round at its owner
            // (Apply messages are handled first).
            self.route(
                self.owner(le.u),
                ConnMsg::StartLink {
                    e: le,
                    w: lw,
                    lane,
                    owners: owners.clone(),
                },
                out,
            );
        }
        let outcome = self.verts.apply_struct(&b);
        if search {
            let remote_n = remote.len();
            let prev = self.pending_cuts.insert(
                lane_key(lane),
                PendingCut {
                    comp,
                    new_comp: child,
                    old_owners: owners,
                    remote: remote_n,
                    local: outcome,
                    lane,
                },
            );
            debug_assert!(prev.is_none(), "cut rendezvous slot already occupied");
            if remote_n == 0 {
                self.finalize_cut(lane_key(lane), Vec::new(), out);
            }
        }
    }

    /// Rendezvous: folds one lane's remote [`ConnMsg::CutReport`]s with the
    /// stashed local outcome — either launching the replacement link (which
    /// restores the old owner set) or installing the refined split sets.
    fn finalize_cut(&mut self, key: u32, reports: Vec<CutReportIn>, out: &mut Outbox<ConnMsg>) {
        let pc = self
            .pending_cuts
            .remove(&key)
            .expect("cut reports without a cut");
        debug_assert!(reports.len() == pc.remote, "cut reports missing");
        let best = reports
            .iter()
            .filter_map(|&(_, b, _, _)| b)
            .chain(pc.local.best)
            .map(|(e, w)| (w, e))
            .min();
        match best {
            Some((w, e)) => {
                self.route(
                    self.owner(e.u),
                    ConnMsg::StartLink {
                        e,
                        w,
                        lane: pc.lane,
                        owners: pc.old_owners,
                    },
                    out,
                );
            }
            None => {
                // No replacement: the component stays split. Refine the
                // directory from the membership the reports carried.
                let mut parent_owners = Vec::new();
                let mut child_owners = Vec::new();
                if pc.local.owns_parent {
                    parent_owners.push(self.id);
                }
                if pc.local.owns_child {
                    child_owners.push(self.id);
                }
                for &(m, _, op, oc) in &reports {
                    if op {
                        parent_owners.push(m);
                    }
                    if oc {
                        child_owners.push(m);
                    }
                }
                parent_owners.sort_unstable();
                child_owners.sort_unstable();
                self.route(
                    self.root_owner(pc.comp),
                    ConnMsg::DirStore {
                        comp: pc.comp,
                        owners: parent_owners,
                    },
                    out,
                );
                self.route(
                    self.root_owner(pc.new_comp),
                    ConnMsg::DirStore {
                        comp: pc.new_comp,
                        owners: child_owners,
                    },
                    out,
                );
                self.signal_struct_done(pc.lane, out);
            }
        }
    }

    /// Multicasts the path-max query to the component's owner set, stashes
    /// the local on-path maximum, and finishes immediately when this machine
    /// is the only owner.
    fn launch_path_max(
        &mut self,
        e: Edge,
        w: Weight,
        x: VertexInfo,
        owners: Vec<MachineId>,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let y = e.other(x.v);
        let yi = self.verts.info(y);
        let (y_comp, y_f, y_l) = (yi.comp, yi.f, yi.l);
        let q = ConnMsg::PathMaxQuery {
            comp: y_comp,
            fx: x.f,
            lx: x.l,
            fy: y_f,
            ly: y_l,
            e,
            w,
            rendezvous: self.id,
        };
        let remote = self.audience(&owners, ctx);
        for &m in &remote {
            out.send(m, q.clone());
        }
        let local_best = self.verts.path_max(y_comp, x.f, x.l, y_f, y_l);
        self.pending_mst = Some(PendingMst {
            e,
            w,
            fx: x.f,
            x_v: x.v,
            owners,
            local_best,
        });
        if remote.is_empty() {
            self.finish_path_max(Vec::new(), out);
        }
    }

    // The parameters mirror the PathMaxQuery wire-message fields one-to-one;
    // bundling them into a struct here would just duplicate that message type.
    #[allow(clippy::too_many_arguments)]
    fn handle_path_max_query(
        &mut self,
        comp: CompId,
        fx: TourIx,
        lx: TourIx,
        fy: TourIx,
        ly: TourIx,
        rendezvous: MachineId,
        out: &mut Outbox<ConnMsg>,
    ) {
        debug_assert_ne!(rendezvous, self.id, "the rendezvous answers locally");
        let best = self.verts.path_max(comp, fx, lx, fy, ly);
        out.send(rendezvous, ConnMsg::PathMaxReply { best });
    }

    fn finish_path_max(&mut self, replies: Vec<Option<(Edge, Weight)>>, out: &mut Outbox<ConnMsg>) {
        let p = self.pending_mst.take().expect("no pending MST insert");
        let mut best: Option<(Weight, Edge)> = None;
        for r in replies.into_iter().chain([p.local_best]).flatten() {
            let cand = (r.1, r.0);
            let better = match best {
                None => true,
                Some((bw, be)) => cand.0 > bw || (cand.0 == bw && cand.1 < be),
            };
            if better {
                best = Some(cand);
            }
        }
        let (e, w, fx, x_v) = (p.e, p.w, p.fx, p.x_v);
        let y = e.other(x_v);
        match best {
            Some((dw, d)) if dw > w => {
                // Swap: demote d, then link e. The demote must be initiated
                // at d's parent endpoint owner; the owner set rides along.
                self.route(
                    self.owner(d.u),
                    ConnMsg::StartSwap {
                        d,
                        e,
                        w,
                        owners: p.owners,
                    },
                    out,
                );
            }
            _ => {
                // Keep the tree; e becomes a non-tree edge.
                let cached_far = self.verts.f_of(y);
                let comp = self.verts.comp_of(y);
                self.verts.adj_set(
                    y,
                    x_v,
                    EntryKind::NonTree {
                        cached: fx,
                        far_comp: comp,
                    },
                    w,
                );
                self.route(
                    self.owner(x_v),
                    ConnMsg::AddNonTree {
                        e,
                        w,
                        at: x_v,
                        cached_far,
                    },
                    out,
                );
            }
        }
    }

    fn handle_start_swap(
        &mut self,
        d: Edge,
        e: Edge,
        w: Weight,
        owners: Vec<MachineId>,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let u = d.u;
        let (kind, _) = self.verts.adj_get(u, d.v).expect("swap edge missing");
        let EntryKind::Tree { lo, hi } = kind else {
            panic!("swap target {d} is not a tree edge");
        };
        if lo % 2 == 0 {
            // u is the child; hand off to the parent's owner.
            self.route(
                self.owner(d.v),
                ConnMsg::NeedParentCut {
                    e: d,
                    parent: d.v,
                    fy: lo,
                    ly: hi,
                    mode: CutMode::Demote,
                    search: false,
                    then_link: Some((e, w)),
                    lane: None,
                    owners: Some(owners),
                },
                out,
            );
        } else {
            self.start_cut(
                d,
                u,
                lo + 1,
                hi - 1,
                CutMode::Demote,
                false,
                Some((e, w)),
                None,
                Some(owners),
                ctx,
                out,
            );
        }
    }

    /// A replacement/StartLink insertion: the edge already exists as a
    /// non-tree entry at both owners; re-run the insert query path with the
    /// known owner set (the Apply handler converts the entries to tree
    /// entries).
    fn handle_insert_replacement(
        &mut self,
        e: Edge,
        w: Weight,
        lane: Option<u32>,
        owners: Vec<MachineId>,
        out: &mut Outbox<ConnMsg>,
    ) {
        let u = e.u;
        let x = self.verts.info(u);
        self.route(
            self.owner(e.v),
            ConnMsg::InsQuery {
                e,
                w,
                x,
                lane,
                known_owners: Some(owners),
            },
            out,
        );
    }

    /// Resumes the structural flow suspended on a directory fetch. The
    /// reply carries the lane id of the flow that issued the fetch, so
    /// concurrent lanes resume the right continuation.
    fn handle_dir_reply(
        &mut self,
        comp: CompId,
        owners: Vec<MachineId>,
        reply_lane: Option<u32>,
        ctx: &RoundCtx,
        out: &mut Outbox<ConnMsg>,
    ) {
        let cont = self
            .pending_fetches
            .remove(&lane_key(reply_lane))
            .expect("DirReply without a fetch");
        match cont {
            FetchCont::Link {
                e,
                w,
                x,
                lane,
                acc,
                waiting,
            } => {
                let acc = merge_sets(acc, &owners);
                if waiting == 1 {
                    self.do_link(e, w, &x, acc, lane, ctx, out);
                } else {
                    self.pending_fetches.insert(
                        lane_key(lane),
                        FetchCont::Link {
                            e,
                            w,
                            x,
                            lane,
                            acc,
                            waiting: waiting - 1,
                        },
                    );
                }
            }
            FetchCont::Cut {
                e,
                parent,
                fy,
                ly,
                mode,
                search,
                then_link,
                lane,
            } => {
                debug_assert_eq!(self.verts.comp_of(parent), comp);
                self.do_cut(
                    e, parent, fy, ly, mode, search, then_link, lane, owners, ctx, out,
                );
            }
            FetchCont::PathMax { e, w, x } => {
                self.launch_path_max(e, w, x, owners, ctx, out);
            }
        }
    }

    // ----- query plane ----------------------------------------------------
    //
    // Read-only by contract: every handler below reads vertex/directory
    // state, folds at a rendezvous keyed by query id, and stashes the
    // answer — no handler writes `verts` or `dir`, so interleaving query
    // waves anywhere in an update stream is invisible to later updates
    // (pinned by the query-plane property tests).

    /// Reports `probe`'s component id to the query's rendezvous.
    fn handle_q_conn_probe(
        &mut self,
        qid: u32,
        probe: V,
        expect: u8,
        rendezvous: MachineId,
        out: &mut Outbox<ConnMsg>,
    ) {
        let comp = self.verts.comp_of(probe);
        self.route(rendezvous, ConnMsg::QConnJoin { qid, comp, expect }, out);
    }

    /// Rendezvous: folds one component-id join; completes the query once
    /// `expect` joins arrived (they can span rounds when one endpoint's
    /// owner is the rendezvous itself and answers in-round).
    fn handle_q_conn_join(&mut self, qid: u32, comp: CompId, expect: u8) {
        let fold = self.pending_queries.entry(qid).or_insert(QueryFold::Conn {
            expect,
            got: 0,
            first: comp,
            all_eq: true,
        });
        let QueryFold::Conn {
            expect,
            got,
            first,
            all_eq,
        } = fold
        else {
            panic!("query id {qid} folded as both Conn and Path");
        };
        *got += 1;
        *all_eq &= *first == comp;
        if *got == *expect {
            let answer = if *expect == 1 {
                QueryAnswer::Component(*first)
            } else {
                QueryAnswer::Bool(*all_eq)
            };
            self.pending_queries.remove(&qid);
            self.answers.push((qid, answer));
        }
    }

    /// Starts a `PathMax(u, v)` query at `u`'s owner: ship u's span to v's
    /// owner for the component comparison.
    fn handle_q_path_start(
        &mut self,
        qid: u32,
        u: V,
        v: V,
        rendezvous: MachineId,
        out: &mut Outbox<ConnMsg>,
    ) {
        let ui = self.verts.info(u);
        let (comp, fx, lx) = (ui.comp, ui.f, ui.l);
        self.route(
            self.owner(v),
            ConnMsg::QPathProbe {
                qid,
                v,
                comp,
                fx,
                lx,
                rendezvous,
            },
            out,
        );
    }

    /// v's owner: either the endpoints are disconnected (answer now) or the
    /// component's root owner must fan the evaluation out to the owner set.
    #[allow(clippy::too_many_arguments)]
    fn handle_q_path_probe(
        &mut self,
        qid: u32,
        v: V,
        comp: CompId,
        fx: TourIx,
        lx: TourIx,
        rendezvous: MachineId,
        out: &mut Outbox<ConnMsg>,
    ) {
        let vi = self.verts.info(v);
        if vi.comp != comp {
            self.route(
                rendezvous,
                ConnMsg::QPathJoin {
                    qid,
                    best: None,
                    expect: 1,
                    connected: false,
                },
                out,
            );
            return;
        }
        let (fy, ly) = (vi.f, vi.l);
        self.route(
            self.root_owner(comp),
            ConnMsg::QPathResolve {
                qid,
                comp,
                fx,
                lx,
                fy,
                ly,
                rendezvous,
            },
            out,
        );
    }

    /// Root owner: resolve the owner set from the local directory shard and
    /// multicast the evaluation (the root owner is always a member of the
    /// set — it owns the component's root vertex — so its own evaluation
    /// routes locally in the same round).
    #[allow(clippy::too_many_arguments)]
    fn handle_q_path_resolve(
        &mut self,
        qid: u32,
        comp: CompId,
        fx: TourIx,
        lx: TourIx,
        fy: TourIx,
        ly: TourIx,
        rendezvous: MachineId,
        out: &mut Outbox<ConnMsg>,
    ) {
        debug_assert_eq!(self.root_owner(comp), self.id);
        let owners = self.dir_owners(comp);
        let expect = owners.len() as u16;
        for m in owners {
            self.route(
                m,
                ConnMsg::QPathEval {
                    qid,
                    comp,
                    fx,
                    lx,
                    fy,
                    ly,
                    rendezvous,
                    expect,
                },
                out,
            );
        }
    }

    /// One owner's evaluation: the local on-path maximum, joined at the
    /// rendezvous (shares `local_path_max` with the update-path MST swap).
    #[allow(clippy::too_many_arguments)]
    fn handle_q_path_eval(
        &mut self,
        qid: u32,
        comp: CompId,
        fx: TourIx,
        lx: TourIx,
        fy: TourIx,
        ly: TourIx,
        rendezvous: MachineId,
        expect: u16,
        out: &mut Outbox<ConnMsg>,
    ) {
        let best = self.verts.path_max(comp, fx, lx, fy, ly);
        self.route(
            rendezvous,
            ConnMsg::QPathJoin {
                qid,
                best,
                expect,
                connected: true,
            },
            out,
        );
    }

    /// Rendezvous: folds one path-max join with the same (weight desc, edge
    /// asc) tie-break as the update path's `finish_path_max`.
    fn handle_q_path_join(
        &mut self,
        qid: u32,
        best: Option<(Edge, Weight)>,
        expect: u16,
        connected: bool,
    ) {
        let fold = self.pending_queries.entry(qid).or_insert(QueryFold::Path {
            expect,
            got: 0,
            best: None,
            connected: true,
        });
        let QueryFold::Path {
            expect,
            got,
            best: acc,
            connected: conn,
        } = fold
        else {
            panic!("query id {qid} folded as both Conn and Path");
        };
        *got += 1;
        *conn &= connected;
        if let Some((e, w)) = best {
            let better = match *acc {
                None => true,
                Some((bw, be)) => w > bw || (w == bw && e < be),
            };
            if better {
                *acc = Some((w, e));
            }
        }
        if *got == *expect {
            let answer = if *conn {
                QueryAnswer::PathMax(acc.map(|(w, e)| (e, w)))
            } else {
                QueryAnswer::PathMax(None)
            };
            self.pending_queries.remove(&qid);
            self.answers.push((qid, answer));
        }
    }

    // ----- batch protocol -------------------------------------------------

    /// Controller: fan the batch out to the owners for classification.
    fn handle_batch_start(&mut self, items: Vec<BatchItem>, out: &mut Outbox<ConnMsg>) {
        assert_eq!(self.id, BATCH_CTRL, "batches start at the controller");
        // External injections only arrive between runs, so leftover state
        // here means the previous run was aborted by the round-limit guard
        // (its violation is already metered); drop it and start fresh.
        self.batch = None;
        self.pending_cuts.clear();
        self.pending_fetches.clear();
        if items.is_empty() {
            return;
        }
        let mut by_owner: BTreeMap<MachineId, Vec<BatchItem>> = BTreeMap::new();
        let expect = items.len();
        for item in items {
            by_owner
                .entry(self.owner(item.upd.edge().u))
                .or_default()
                .push(item);
        }
        for (m, items) in by_owner {
            self.route(m, ConnMsg::BatchClassify { items }, out);
        }
        self.batch = Some(BatchCtl {
            expect,
            ..Default::default()
        });
    }

    /// Owner: classify this machine's share of the batch. Non-tree deletes
    /// execute on the spot; inserts are forwarded to the far endpoint's
    /// owner for the component comparison; tree deletes are reported
    /// structural.
    fn handle_batch_classify(
        &mut self,
        items: Vec<BatchItem>,
        report: &mut BatchReportAcc,
        out: &mut Outbox<ConnMsg>,
    ) {
        for item in items {
            match item.upd {
                Update::Insert(e) => {
                    debug_assert!(
                        self.verts.adj_get(e.u, e.v).is_none(),
                        "duplicate insert {e} in batch"
                    );
                    let x = self.verts.info(e.u);
                    self.route(
                        self.owner(e.v),
                        ConnMsg::BatchInsClassify {
                            e,
                            w: 1,
                            x,
                            seq: item.seq,
                        },
                        out,
                    );
                }
                Update::Delete(e) => {
                    let (kind, _w) = self
                        .verts
                        .adj_get(e.u, e.v)
                        .unwrap_or_else(|| panic!("delete of absent edge {e} in batch"));
                    match kind {
                        EntryKind::NonTree { .. } => {
                            self.verts.adj_remove(e.u, e.v);
                            self.route(self.owner(e.v), ConnMsg::DelNonTree { e, at: e.v }, out);
                            report.done += 1;
                        }
                        EntryKind::Tree { .. } => {
                            // A cut touches one component (twice).
                            let c = self.verts.comp_of(e.u);
                            report.structural.push(StructItem { item, ca: c, cb: c });
                        }
                    }
                }
            }
        }
    }

    /// Far owner: classify one insert. Intra-component inserts execute
    /// immediately (they only add non-tree entries); cross-component
    /// inserts are structural links.
    fn handle_batch_ins_classify(
        &mut self,
        e: Edge,
        w: Weight,
        x: VertexInfo,
        seq: u32,
        report: &mut BatchReportAcc,
        out: &mut Outbox<ConnMsg>,
    ) {
        let y = e.other(x.v);
        let cb = self.verts.comp_of(y);
        if cb == x.comp {
            self.add_non_tree_pair(e, w, &x, out);
            report.done += 1;
        } else {
            report.structural.push(StructItem {
                item: BatchItem {
                    upd: Update::Insert(e),
                    seq,
                },
                ca: x.comp,
                cb,
            });
        }
    }

    /// Controller: fold one classification report; start phase 2 once every
    /// update is accounted for.
    fn handle_batch_report(
        &mut self,
        done: u32,
        structural: Vec<StructItem>,
        out: &mut Outbox<ConnMsg>,
    ) {
        let ctl = self.batch.as_mut().expect("report without a batch");
        ctl.expect -= done as usize + structural.len();
        ctl.structural.extend(structural);
        if ctl.expect == 0 {
            self.batch_begin_structural(out);
        }
    }

    /// Controller: partition the structural leftovers into conflict groups
    /// and start phase 2. The partition is computed under *both* schedulers
    /// (the stats always report the batch's true conflict structure);
    /// `Scheduler::Serialized` then collapses everything into one lane.
    fn batch_begin_structural(&mut self, out: &mut Outbox<ConnMsg>) {
        let scheduler = self.scheduler;
        let ctl = self.batch.as_mut().expect("phase 2 without a batch");
        let mut items = std::mem::take(&mut ctl.structural);
        items.sort_unstable_by_key(|s| s.item.seq);
        let touches: Vec<(u64, u64)> = items
            .iter()
            .map(|s| (u64::from(s.ca), u64::from(s.cb)))
            .collect();
        let part = partition_conflicts(&touches);
        let n_lanes = match scheduler {
            Scheduler::Conflict => part.groups,
            Scheduler::Serialized => items.len().min(1),
        };
        let mut lanes: Vec<VecDeque<BatchItem>> = vec![VecDeque::new(); n_lanes];
        for (i, s) in items.into_iter().enumerate() {
            let lane = match scheduler {
                Scheduler::Conflict => part.group_of[i] as usize,
                Scheduler::Serialized => 0,
            };
            lanes[lane].push_back(s.item);
        }
        ctl.stats = ConflictStats {
            groups: part.groups,
            depth: part.depth,
            max_lanes: 0,
        };
        ctl.lanes = lanes;
        ctl.serving = true;
        self.batch_fill_lanes(out);
    }

    /// Controller: start lanes (in id order) until the concurrency cap is
    /// reached or all lanes have started; finish the batch once every lane
    /// has drained.
    fn batch_fill_lanes(&mut self, out: &mut Outbox<ConnMsg>) {
        let cap = self.lane_cap;
        let ctl = self.batch.as_mut().expect("lane fill without a batch");
        debug_assert!(ctl.serving);
        let mut to_start = Vec::new();
        while ctl.next_lane < ctl.lanes.len() && ctl.live < cap {
            to_start.push(ctl.next_lane as u32);
            ctl.next_lane += 1;
            ctl.live += 1;
            ctl.stats.max_lanes = ctl.stats.max_lanes.max(ctl.live);
        }
        let finished = ctl.live == 0 && ctl.next_lane >= ctl.lanes.len();
        let stats = ctl.stats;
        for lane in to_start {
            self.batch_dispatch(lane, out);
        }
        if finished {
            self.last_conflict = Some(stats);
            self.batch = None;
        }
    }

    /// Controller: dispatch `lane`'s next structural item through the
    /// normal (re-classifying) update flow, tagged with the lane id.
    fn batch_dispatch(&mut self, lane: u32, out: &mut Outbox<ConnMsg>) {
        let ctl = self.batch.as_mut().expect("dispatch without a batch");
        let item = ctl.lanes[lane as usize]
            .pop_front()
            .expect("dispatch on a drained lane");
        let e = item.upd.edge();
        let to = self.owner(e.u);
        let msg = match item.upd {
            Update::Insert(_) => ConnMsg::Insert {
                e,
                w: 1,
                lane: Some(lane),
            },
            Update::Delete(_) => ConnMsg::Delete {
                e,
                lane: Some(lane),
            },
        };
        self.route(to, msg, out);
    }

    /// Controller: one lane's in-flight structural op completed — advance
    /// that lane, or retire it and pull the next waiting lane in.
    fn batch_lane_done(&mut self, lane: u32, out: &mut Outbox<ConnMsg>) {
        let ctl = self.batch.as_mut().expect("lane done without a batch");
        debug_assert!(ctl.serving);
        if !ctl.lanes[lane as usize].is_empty() {
            self.batch_dispatch(lane, out);
        } else {
            ctl.live -= 1;
            self.batch_fill_lanes(out);
        }
    }

    /// Dispatches one protocol message (from the inbox or the local queue).
    fn dispatch(
        &mut self,
        msg: ConnMsg,
        ctx: &RoundCtx,
        acc: &mut RoundAcc,
        out: &mut Outbox<ConnMsg>,
    ) {
        match msg {
            ConnMsg::Insert { e, w, lane } => self.handle_insert(e, w, lane, out),
            ConnMsg::Delete { e, lane } => self.handle_delete(e, lane, ctx, out),
            ConnMsg::InsQuery {
                e,
                w,
                x,
                lane,
                known_owners,
            } => self.handle_ins_query(e, w, x, lane, known_owners, ctx, out),
            ConnMsg::AddNonTree {
                e,
                w,
                at,
                cached_far,
            } => {
                let far = e.other(at);
                let comp = self.verts.comp_of(at);
                self.verts.adj_set(
                    at,
                    far,
                    EntryKind::NonTree {
                        cached: cached_far,
                        far_comp: comp,
                    },
                    w,
                );
            }
            ConnMsg::DelNonTree { e, at } => {
                let far = e.other(at);
                self.verts.adj_remove(at, far);
            }
            ConnMsg::NeedParentCut {
                e,
                parent,
                fy,
                ly,
                mode,
                search,
                then_link,
                lane,
                owners,
            } => {
                self.start_cut(
                    e, parent, fy, ly, mode, search, then_link, lane, owners, ctx, out,
                );
            }
            ConnMsg::StartLink { e, w, lane, owners } => {
                self.handle_insert_replacement(e, w, lane, owners, out)
            }
            ConnMsg::PathMaxQuery {
                comp,
                fx,
                lx,
                fy,
                ly,
                rendezvous,
                ..
            } => self.handle_path_max_query(comp, fx, lx, fy, ly, rendezvous, out),
            ConnMsg::PathMaxReply { best } => acc.path_replies.push(best),
            ConnMsg::StartSwap { d, e, w, owners } => {
                self.handle_start_swap(d, e, w, owners, ctx, out)
            }
            ConnMsg::DirFetch { .. } | ConnMsg::CutReport { .. } | ConnMsg::Apply(_) => {
                unreachable!("handled before dispatch")
            }
            ConnMsg::DirReply { comp, owners, lane } => {
                self.handle_dir_reply(comp, owners, lane, ctx, out)
            }
            ConnMsg::DirStore { comp, owners } => {
                debug_assert_eq!(self.root_owner(comp), self.id);
                if owners.len() >= 2 {
                    self.dir.insert(comp, owners);
                } else {
                    self.dir.remove(&comp);
                }
            }
            ConnMsg::DirDrop { comp } => {
                self.dir.remove(&comp);
            }
            ConnMsg::Ack => {}
            ConnMsg::QConnProbe {
                qid,
                probe,
                expect,
                rendezvous,
            } => self.handle_q_conn_probe(qid, probe, expect, rendezvous, out),
            ConnMsg::QConnJoin { qid, comp, expect } => self.handle_q_conn_join(qid, comp, expect),
            ConnMsg::QPathStart {
                qid,
                u,
                v,
                rendezvous,
            } => self.handle_q_path_start(qid, u, v, rendezvous, out),
            ConnMsg::QPathProbe {
                qid,
                v,
                comp,
                fx,
                lx,
                rendezvous,
            } => self.handle_q_path_probe(qid, v, comp, fx, lx, rendezvous, out),
            ConnMsg::QPathResolve {
                qid,
                comp,
                fx,
                lx,
                fy,
                ly,
                rendezvous,
            } => self.handle_q_path_resolve(qid, comp, fx, lx, fy, ly, rendezvous, out),
            ConnMsg::QPathEval {
                qid,
                comp,
                fx,
                lx,
                fy,
                ly,
                rendezvous,
                expect,
            } => self.handle_q_path_eval(qid, comp, fx, lx, fy, ly, rendezvous, expect, out),
            ConnMsg::QPathJoin {
                qid,
                best,
                expect,
                connected,
            } => self.handle_q_path_join(qid, best, expect, connected),
            ConnMsg::BatchStart { items } => self.handle_batch_start(items, out),
            ConnMsg::BatchClassify { items } => {
                self.handle_batch_classify(items, &mut acc.report, out)
            }
            ConnMsg::BatchInsClassify { e, w, x, seq } => {
                self.handle_batch_ins_classify(e, w, x, seq, &mut acc.report, out)
            }
            ConnMsg::BatchReport { done, structural } => {
                self.handle_batch_report(done, structural, out)
            }
            ConnMsg::BatchStructDone { lane } => self.batch_lane_done(lane, out),
            ConnMsg::MigrateBegin { to, lo, hi, budget } => {
                self.handle_migrate_begin(to, lo, hi, budget, ctx, out)
            }
            ConnMsg::HandoffBegin { to, budget } => {
                let words = self
                    .staged
                    .take()
                    .expect("handoff without a staged snapshot");
                self.transfer = Some(Transfer {
                    courier: dmpc_mpc::SnapCourier::new(to, true, words, budget),
                    patches: VecDeque::new(),
                    budget,
                });
                self.transfer_step(out);
            }
            ConnMsg::SnapAck => self.transfer_step(out),
            ConnMsg::DirPatch { comp, add, remove } => {
                debug_assert_eq!(self.root_owner(comp), self.id);
                let mut set = self.dir.remove(&comp).unwrap_or_else(|| vec![self.id]);
                if let Some(r) = remove {
                    set.retain(|&m| m != r);
                }
                set.push(add);
                set.sort_unstable();
                set.dedup();
                if set.len() >= 2 {
                    self.dir.insert(comp, set);
                }
            }
            ConnMsg::Boundary { .. } | ConnMsg::SnapChunk { .. } | ConnMsg::MigrateKick => {
                unreachable!("handled before dispatch")
            }
        }
    }
}

/// Merges two sorted-or-not owner sets into a sorted, deduplicated union.
fn merge_sets(mut a: Vec<MachineId>, b: &[MachineId]) -> Vec<MachineId> {
    a.extend_from_slice(b);
    a.sort_unstable();
    a.dedup();
    a
}

/// Per-round accumulator for one classifier's report to the controller
/// (aggregating all of this round's classifications into one message).
#[derive(Default)]
struct BatchReportAcc {
    done: u32,
    structural: Vec<StructItem>,
}

impl BatchReportAcc {
    fn is_empty(&self) -> bool {
        self.done == 0 && self.structural.is_empty()
    }
}

impl Machine for ConnMachine {
    type Msg = ConnMsg;

    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<ConnMsg>>,
        out: &mut Outbox<ConnMsg>,
    ) {
        debug_assert!(self.local.is_empty(), "local queue drains every round");
        let mut acc = RoundAcc::default();
        // Structural Applies first, so follow-up protocol steps delivered in
        // the same round see post-op state; then directory fetches (served
        // from pre-dispatch state), then everything else.
        let mut rest: Vec<Envelope<ConnMsg>> = Vec::with_capacity(inbox.len());
        for env in inbox.drain(..) {
            match env.msg {
                ConnMsg::Apply(b) => {
                    let outcome = self.verts.apply_struct(&b);
                    if let Some(r) = b.rendezvous {
                        debug_assert_ne!(r, self.id, "the rendezvous applies locally");
                        out.send(
                            r,
                            ConnMsg::CutReport {
                                best: outcome.best,
                                owns_parent: outcome.owns_parent,
                                owns_child: outcome.owns_child,
                                lane: b.lane,
                            },
                        );
                    }
                }
                // Partition-table shifts apply before anything else this
                // round (in particular before the migration chunk that may
                // arrive alongside), so routing is consistent immediately.
                ConnMsg::Boundary { idx, val } => self.bounds[idx as usize] = val,
                _ => rest.push(env),
            }
        }
        for env in rest {
            match env.msg {
                ConnMsg::SnapChunk {
                    words,
                    last,
                    install,
                } => self.handle_snap_chunk(env.from, &words, last, install, out),
                // Patch-phase pacing bounce: ack so the source's next
                // budgeted patch round fires (see `transfer_step`).
                ConnMsg::MigrateKick => out.send(env.from, ConnMsg::SnapAck),
                ConnMsg::DirFetch { comp, lane } => {
                    debug_assert_eq!(self.root_owner(comp), self.id);
                    out.send(
                        env.from,
                        ConnMsg::DirReply {
                            comp,
                            owners: self.dir_owners(comp),
                            lane,
                        },
                    );
                }
                ConnMsg::CutReport {
                    best,
                    owns_parent,
                    owns_child,
                    lane,
                } => acc.cut_reports.entry(lane_key(lane)).or_default().push((
                    env.from,
                    best,
                    owns_parent,
                    owns_child,
                )),
                msg => self.dispatch(msg, ctx, &mut acc, out),
            }
        }
        // Fixpoint: locally-routed steps, rendezvous aggregations and the
        // classification report can each enqueue more local work; everything
        // here is same-round local computation (free in the MPC model).
        loop {
            if let Some(msg) = self.local.pop_front() {
                self.dispatch(msg, ctx, &mut acc, out);
                continue;
            }
            if let Some((&key, _)) = acc.cut_reports.iter().next() {
                let reports = acc.cut_reports.remove(&key).unwrap();
                self.finalize_cut(key, reports, out);
                continue;
            }
            if !acc.path_replies.is_empty() {
                let replies = std::mem::take(&mut acc.path_replies);
                self.finish_path_max(replies, out);
                continue;
            }
            if !acc.report.is_empty() {
                let report = std::mem::take(&mut acc.report);
                if self.id == BATCH_CTRL {
                    self.handle_batch_report(report.done, report.structural, out);
                } else {
                    out.send(
                        BATCH_CTRL,
                        ConnMsg::BatchReport {
                            done: report.done,
                            structural: report.structural,
                        },
                    );
                }
                continue;
            }
            break;
        }
    }

    fn memory_words(&self) -> usize {
        let mut words = 4 + self.verts.memory_words();
        for owners in self.dir.values() {
            words += 2 + owners.len();
        }
        if let Some(ctl) = &self.batch {
            words += 2 + 5 * ctl.structural.len();
            for lane in &ctl.lanes {
                words += 2 + 3 * lane.len();
            }
        }
        for pc in self.pending_cuts.values() {
            words += 4 + pc.old_owners.len();
        }
        if let Some(p) = &self.pending_mst {
            words += 6 + p.owners.len();
        }
        for f in self.pending_fetches.values() {
            words += 4 + match f {
                FetchCont::Link { acc, .. } => acc.len(),
                FetchCont::Cut { .. } | FetchCont::PathMax { .. } => 0,
            };
        }
        // Transient query-plane state at this rendezvous: folds and stashed
        // answers, both bounded by the driver's wave chunking.
        words += 6 * self.pending_queries.len() + 4 * self.answers.len();
        // Recovery plane: unsent transfer payload + queued directory
        // patches, inbound chunk buffer, and any driver-staged snapshot.
        if let Some(tr) = &self.transfer {
            words += 2 + tr.courier.words_left();
            for (_, msg) in &tr.patches {
                words += 1 + dmpc_mpc::Payload::size_words(msg);
            }
        }
        words += self.snap_buf.len();
        if let Some(s) = &self.staged {
            words += s.len();
        }
        words
    }
}
