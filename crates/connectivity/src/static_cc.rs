//! Static MPC baseline: connected components by min-label propagation.
//!
//! This is the classic O(log n)-ish-round, all-machines-active,
//! Omega(N)-communication static recomputation (in the spirit of
//! Chitnis et al. \[14\] and the O(log n)-round algorithms the paper cites).
//! It exists to quantify the dynamic algorithm's advantage: rerunning this
//! after every update costs rounds that grow with the graph and
//! communication proportional to the number of edges, while the dynamic
//! algorithm pays O(1) rounds and O(sqrt N) words.

use dmpc_graph::{Edge, V};
use dmpc_mpc::{
    Cluster, ClusterConfig, Envelope, Machine, MachineId, Outbox, Payload, RoundCtx, UpdateMetrics,
};
use std::collections::BTreeMap;

/// Messages of the label-propagation program.
#[derive(Clone, Debug)]
pub enum LpMsg {
    /// Injected: start propagating (each machine seeds its own vertices).
    Start,
    /// New candidate label for vertex `v`.
    Label {
        /// Target vertex.
        v: V,
        /// Proposed (smaller) label.
        label: V,
    },
}

impl Payload for LpMsg {
    fn size_words(&self) -> usize {
        match self {
            LpMsg::Start => 1,
            LpMsg::Label { .. } => 2,
        }
    }
}

/// Owner machine: holds a block of vertices with adjacency and labels.
pub struct LpMachine {
    block: usize,
    verts: BTreeMap<V, (V, Vec<V>)>, // v -> (label, neighbors)
}

impl LpMachine {
    fn owner(&self, v: V) -> MachineId {
        (v as usize / self.block) as MachineId
    }

    fn propose(&mut self, v: V, label: V, out: &mut Outbox<LpMsg>) {
        let (cur, nbrs) = self.verts.get_mut(&v).expect("vertex not owned");
        if label < *cur {
            *cur = label;
            let nbrs = nbrs.clone();
            let l = *cur;
            for u in nbrs {
                out.send(self.owner(u), LpMsg::Label { v: u, label: l });
            }
        }
    }
}

impl Machine for LpMachine {
    type Msg = LpMsg;

    fn on_messages(
        &mut self,
        _ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<LpMsg>>,
        out: &mut Outbox<LpMsg>,
    ) {
        for env in inbox.drain(..) {
            match env.msg {
                LpMsg::Start => {
                    let seeds: Vec<(V, V)> = self.verts.iter().map(|(&v, _)| (v, v)).collect();
                    for (v, l) in seeds {
                        // Seed by announcing the own label to neighbors.
                        let nbrs = self.verts[&v].1.clone();
                        for u in nbrs {
                            out.send(self.owner(u), LpMsg::Label { v: u, label: l });
                        }
                    }
                }
                LpMsg::Label { v, label } => self.propose(v, label, out),
            }
        }
    }

    fn memory_words(&self) -> usize {
        self.verts.values().map(|(_, n)| 2 + n.len()).sum()
    }
}

/// The static CC recomputation baseline.
pub struct StaticCc {
    n: usize,
    machines: usize,
    block: usize,
}

impl StaticCc {
    /// Baseline over `n` vertices with `machines` owner machines.
    pub fn new(n: usize, machines: usize) -> Self {
        let machines = machines.max(1);
        let block = n.div_ceil(machines).max(1);
        StaticCc {
            n,
            machines: n.div_ceil(block),
            block,
        }
    }

    /// Recomputes components from scratch, returning per-vertex labels
    /// (min vertex id in each component) and the full run's metrics.
    pub fn recompute(&self, edges: &[Edge]) -> (Vec<V>, UpdateMetrics) {
        let mut progs: Vec<LpMachine> = (0..self.machines)
            .map(|i| {
                let lo = i * self.block;
                let hi = ((i + 1) * self.block).min(self.n);
                LpMachine {
                    block: self.block,
                    verts: (lo..hi).map(|v| (v as V, (v as V, Vec::new()))).collect(),
                }
            })
            .collect();
        for e in edges {
            let ou = e.u as usize / self.block;
            let ov = e.v as usize / self.block;
            progs[ou].verts.get_mut(&e.u).unwrap().1.push(e.v);
            progs[ov].verts.get_mut(&e.v).unwrap().1.push(e.u);
        }
        // The static algorithm needs Omega(N) communication; caps are
        // intentionally unenforced — the point is to measure raw volume.
        let mut cluster = Cluster::new(progs, ClusterConfig::default());
        for m in 0..self.machines as MachineId {
            cluster.inject(m, LpMsg::Start);
        }
        let metrics = cluster.run_update();
        let mut labels = vec![0 as V; self.n];
        for m in 0..self.machines as MachineId {
            for (&v, (label, _)) in &cluster.machine(m).verts {
                labels[v as usize] = *label;
            }
        }
        (labels, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::{generators, DynamicGraph};

    fn partitions_equal(a: &[V], b: &[V]) -> bool {
        let norm = |labels: &[V]| {
            let mut map = std::collections::HashMap::new();
            labels
                .iter()
                .map(|&l| {
                    let next = map.len() as V;
                    *map.entry(l).or_insert(next)
                })
                .collect::<Vec<V>>()
        };
        norm(a) == norm(b)
    }

    #[test]
    fn labels_match_bfs() {
        for seed in 0..5 {
            let es = generators::gnm(60, 80, seed);
            let g = DynamicGraph::from_edges(60, &es);
            let cc = StaticCc::new(60, 8);
            let (labels, metrics) = cc.recompute(&es);
            assert!(partitions_equal(&labels, &g.components()));
            assert!(metrics.rounds >= 2);
        }
    }

    #[test]
    fn communication_scales_with_edges() {
        let es_small = generators::gnm(128, 128, 1);
        let es_big = generators::gnm(128, 1024, 1);
        let cc = StaticCc::new(128, 12);
        let (_, m_small) = cc.recompute(&es_small);
        let (_, m_big) = cc.recompute(&es_big);
        assert!(
            m_big.total_words > 2 * m_small.total_words,
            "{} vs {}",
            m_big.total_words,
            m_small.total_words
        );
    }

    #[test]
    fn path_graph_needs_many_rounds() {
        // Min-label propagation on a path takes Theta(n) rounds — the
        // worst case that motivates contraction-based algorithms; random
        // graphs finish in O(log n).
        let es = generators::path(64);
        let cc = StaticCc::new(64, 8);
        let (labels, metrics) = cc.recompute(&es);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(metrics.rounds >= 32);
    }

    #[test]
    fn empty_graph_single_round() {
        let cc = StaticCc::new(10, 2);
        let (labels, metrics) = cc.recompute(&[]);
        assert_eq!(labels, (0..10).collect::<Vec<V>>());
        // Seeding round only; no labels to propagate.
        assert!(metrics.rounds <= 1);
    }
}
