//! Property tests: arbitrary valid update sequences through the distributed
//! connectivity algorithm — full audits, components vs ground truth, and
//! constant-rounds bounds, for every generated case — plus batch-vs-
//! sequential equivalence of `apply_batch`.

use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::{DynamicGraph, Edge, Update};
use proptest::prelude::*;

fn partitions_equal(a: &[u32], b: &[u32]) -> bool {
    let norm = |labels: &[u32]| {
        let mut map = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect::<Vec<u32>>()
    };
    norm(a) == norm(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn connectivity_matches_ground_truth(
        ops in proptest::collection::vec((0u32..20, 0u32..20, any::<bool>()), 1..120)
    ) {
        let n = 20usize;
        let params = DmpcParams::new(n, 120);
        let mut alg = DmpcConnectivity::new(params);
        let mut g = DynamicGraph::new(n);
        for (a, b, ins) in ops {
            if a == b { continue; }
            let e = Edge::new(a, b);
            let m = if ins && !g.has_edge(e) {
                g.insert(e).unwrap();
                alg.insert(e)
            } else if !ins && g.has_edge(e) {
                g.delete(e).unwrap();
                alg.delete(e)
            } else {
                continue;
            };
            prop_assert!(m.clean(), "violations: {:?}", m.violations);
            prop_assert!(m.rounds <= 10, "rounds {}", m.rounds);
            alg.driver().audit().map_err(TestCaseError::fail)?;
            prop_assert!(partitions_equal(&alg.component_labels(), &g.components()));
        }
    }

    /// Batched execution is equivalent to one-by-one execution: after every
    /// batch the components match the ground truth (and a sequential twin),
    /// the structural audit holds, and the batch respects the model. The
    /// generated batches routinely contain an insert and a delete of the
    /// same edge (ops are validity-filtered against the evolving graph, so
    /// in-batch reinsertion/cancellation arises naturally).
    #[test]
    fn batched_connectivity_matches_sequential(
        ops in proptest::collection::vec((0u32..20, 0u32..20, any::<bool>()), 1..140),
        k in 1usize..24
    ) {
        let n = 20usize;
        let params = DmpcParams::new(n, 140);
        let mut batched = DmpcConnectivity::new(params);
        let mut sequential = DmpcConnectivity::new(params);
        let mut g = DynamicGraph::new(n);
        // Turn raw ops into a valid stream (insert absent / delete present).
        let mut stream: Vec<Update> = Vec::new();
        for (a, b, ins) in ops {
            if a == b { continue; }
            let e = Edge::new(a, b);
            if ins && !g.has_edge(e) {
                g.insert(e).unwrap();
                stream.push(Update::Insert(e));
            } else if !ins && g.has_edge(e) {
                g.delete(e).unwrap();
                stream.push(Update::Delete(e));
            }
        }
        let mut truth = DynamicGraph::new(n);
        for batch in stream.chunks(k) {
            for &u in batch {
                match u {
                    Update::Insert(e) => truth.insert(e).unwrap(),
                    Update::Delete(e) => truth.delete(e).unwrap(),
                }
                sequential.apply(u);
            }
            let bm = batched.apply_batch(batch);
            prop_assert!(bm.clean(), "batch violations: {}", bm.violations);
            batched.driver().audit().map_err(TestCaseError::fail)?;
            prop_assert!(
                partitions_equal(&batched.component_labels(), &truth.components()),
                "batched components diverged from ground truth"
            );
            prop_assert!(
                partitions_equal(&batched.component_labels(), &sequential.component_labels()),
                "batched components diverged from sequential twin"
            );
        }
    }
}
