//! Property tests: arbitrary valid update sequences through the distributed
//! connectivity algorithm — full audits, components vs ground truth, and
//! constant-rounds bounds, for every generated case.

use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::{DynamicGraph, Edge};
use proptest::prelude::*;

fn partitions_equal(a: &[u32], b: &[u32]) -> bool {
    let norm = |labels: &[u32]| {
        let mut map = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect::<Vec<u32>>()
    };
    norm(a) == norm(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn connectivity_matches_ground_truth(
        ops in proptest::collection::vec((0u32..20, 0u32..20, any::<bool>()), 1..120)
    ) {
        let n = 20usize;
        let params = DmpcParams::new(n, 120);
        let mut alg = DmpcConnectivity::new(params);
        let mut g = DynamicGraph::new(n);
        for (a, b, ins) in ops {
            if a == b { continue; }
            let e = Edge::new(a, b);
            let m = if ins && !g.has_edge(e) {
                g.insert(e).unwrap();
                alg.insert(e)
            } else if !ins && g.has_edge(e) {
                g.delete(e).unwrap();
                alg.delete(e)
            } else {
                continue;
            };
            prop_assert!(m.clean(), "violations: {:?}", m.violations);
            prop_assert!(m.rounds <= 10, "rounds {}", m.rounds);
            alg.driver().audit().map_err(TestCaseError::fail)?;
            prop_assert!(partitions_equal(&alg.component_labels(), &g.components()));
        }
    }
}
