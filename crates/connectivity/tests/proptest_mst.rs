//! Property tests: the distributed MST under arbitrary weighted update
//! sequences must track Kruskal exactly (no preprocessing, so no
//! approximation slack), with audits at every step.

use dmpc_connectivity::DmpcMst;
use dmpc_core::{DmpcParams, WeightedDynamicGraphAlgorithm};
use dmpc_graph::mst::msf_weight;
use dmpc_graph::{Edge, Weight};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn mst_tracks_kruskal(
        ops in proptest::collection::vec((0u32..14, 0u32..14, 1u64..50, any::<bool>()), 1..90)
    ) {
        let n = 14usize;
        let params = DmpcParams::new(n, 100);
        let mut alg = DmpcMst::new(params, 0.1);
        let mut live: Vec<(Edge, Weight)> = Vec::new();
        for (a, b, w, ins) in ops {
            if a == b { continue; }
            let e = Edge::new(a, b);
            let present = live.iter().any(|&(x, _)| x == e);
            let m = if ins && !present {
                live.push((e, w));
                alg.insert(e, w)
            } else if !ins && present {
                live.retain(|&(x, _)| x != e);
                alg.delete(e)
            } else {
                continue;
            };
            prop_assert!(m.clean(), "violations {:?}", m.violations);
            alg.driver().audit().map_err(TestCaseError::fail)?;
            prop_assert_eq!(alg.forest_weight(), msf_weight(n, &live));
        }
    }
}
