//! Mid-flight fault tolerance: epoch-fenced batches that abort and retry
//! when a machine dies *inside* a quiescence run, degraded-mode reads
//! during outages, and deferral-drain accounting.
//!
//! The tentpole claim under test: a kill firing at **any** round of a
//! structural batch recovers bit-identically — the chaos run's final digest
//! equals the failure-free run's digest and the `DynamicGraph` ground
//! truth. Word-level conservation (sent == delivered + lost) is asserted at
//! the simulator layer (`dmpc-mpc`); here the harness-level retry/backoff/
//! recovery trajectory is checked.

use dmpc_connectivity::{DmpcConnectivity, DmpcMst, Routing};
use dmpc_core::{
    apply_unweighted, run_chaos_stream, run_chaos_stream_with, run_plain_stream, ChaosOptions,
    DmpcParams, DynamicGraphAlgorithm, ElasticAlgorithm, QueryableAlgorithm,
};
use dmpc_graph::{streams, Query, QueryAnswer, Update};
use dmpc_mpc::{BatchMetrics, ChaosKind, ChaosPlan, ExecOptions};
use proptest::prelude::*;

fn conn_with(n: usize, p: usize) -> DmpcConnectivity {
    let params = DmpcParams::new(n, 4 * n);
    DmpcConnectivity::with_cluster(params, ExecOptions::default(), Routing::Multicast, p)
}

fn partitions_equal(a: &[u32], b: &[u32]) -> bool {
    let norm = |labels: &[u32]| {
        let mut map = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect::<Vec<u32>>()
    };
    norm(a) == norm(b)
}

/// Applies one weighted batch to an MST instance (weights derived
/// deterministically per edge, so replicas see identical ops).
fn apply_mst(a: &mut DmpcMst, batch: &[Update]) -> BatchMetrics {
    let mut bm = BatchMetrics::default();
    for wu in streams::with_weights(batch, 64, 77) {
        match wu {
            dmpc_graph::WeightedUpdate::Insert(e, w) => {
                bm.absorb_update(&dmpc_core::WeightedDynamicGraphAlgorithm::insert(a, e, w))
            }
            dmpc_graph::WeightedUpdate::Delete(e) => {
                bm.absorb_update(&dmpc_core::WeightedDynamicGraphAlgorithm::delete(a, e))
            }
        }
    }
    bm
}

// ----- the round sweep ------------------------------------------------------

/// Kill machine 2 at every round offset of one structural batch. Offsets
/// inside the run abort the epoch and retry; offsets past quiescence are
/// fenced and never fire. Either way the final state is bit-identical to
/// the failure-free run and the ground-truth graph.
#[test]
fn kill_at_every_round_recovers_bit_identical() {
    let n = 48;
    let p = 6;
    let batches = streams::chaos_churn_batches(n, 6, 4, 120, 10, 21);
    let make = || conn_with(n, p);
    let plain = run_plain_stream(make, apply_unweighted, &batches);
    let target = batches.len() / 2;
    let mut fired = 0usize;
    for r in 1..=10u32 {
        let plan =
            ChaosPlan::new(100 + r as u64).with_event_in_round(target, r, ChaosKind::Kill(2));
        let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 3);
        assert_eq!(
            chaos.final_digest, plain.final_digest,
            "kill at round {r} diverged from the failure-free run"
        );
        assert_eq!(chaos.batches, batches.len());
        assert_eq!(chaos.workload.violations, 0);
        // Only clean executions are merged into the workload; aborted
        // epochs carry their losses in the mid-flight trajectory.
        assert_eq!(chaos.workload.lost_words, 0);
        assert_eq!(chaos.workload.lost_messages, 0);
        assert_eq!(chaos.mid_flight.len(), chaos.retries);
        if chaos.retries > 0 {
            fired += 1;
            let rec = &chaos.mid_flight[0];
            assert_eq!(rec.at_batch, target);
            assert_eq!(rec.kill_round, r);
            assert_eq!(rec.victims, vec![2]);
            assert_eq!(rec.attempt, 1, "one clean retry must suffice");
            assert!(
                rec.aborted_rounds >= r as usize,
                "the epoch ran to round {r}"
            );
            assert!(rec.recovery_words > 0, "the rebuild handoff is metered");
            assert_eq!(
                rec.latency_rounds,
                (rec.aborted_rounds - (r as usize - 1)) + rec.backoff_rounds + rec.recovery_rounds,
                "latency decomposes into abort remainder + backoff + rebuild"
            );
        }
    }
    assert!(
        fired >= 2,
        "the sweep should abort at several live rounds (fired={fired})"
    );

    // Ground truth: the failure-free digest is the digest of an instance
    // driven directly, and its components match the replayed graph.
    let mut alg = make();
    for b in &batches {
        alg.apply_batch(b);
    }
    let flat: Vec<Update> = batches.iter().flatten().copied().collect();
    let g = streams::replay(n, &flat);
    assert!(partitions_equal(&alg.component_labels(), &g.components()));
    assert_eq!(alg.state_digest(), plain.final_digest);
}

/// The MST driver recovers from mid-round kills through the same
/// epoch-fenced path (weighted apply, per-update runs).
#[test]
fn mst_mid_round_kill_recovers_bit_identical() {
    let n = 32;
    let batches = streams::chaos_churn_batches(n, 4, 4, 60, 8, 5);
    let params = DmpcParams::new(n, 3 * n);
    let make = || DmpcMst::new(params, 0.1);
    let plain = run_plain_stream(make, apply_mst, &batches);
    let mut fired = 0usize;
    for r in [1u32, 2, 4] {
        let plan = ChaosPlan::new(9).with_event_in_round(1, r, ChaosKind::Kill(1));
        let chaos = run_chaos_stream(make, apply_mst, &batches, &plan, 3);
        assert_eq!(
            chaos.final_digest, plain.final_digest,
            "MST kill at round {r} diverged"
        );
        assert_eq!(chaos.workload.lost_words, 0);
        fired += chaos.retries;
    }
    assert!(fired >= 1, "at least the round-1 kill must fire");
}

// ----- degraded-mode service ------------------------------------------------

/// While a mid-flight victim rebuilds, the query plane stays up: reads whose
/// owner set intersects the dead machine come back `Degraded`, reads wholly
/// on live machines stay exact, and path queries degrade conservatively.
/// ("Writes pause, reads degrade.")
#[test]
fn reads_degrade_during_midflight_rebuild() {
    let n = 40;
    let p = 5; // machine 2 owns vertices 16..24
    let batches = streams::chaos_churn_batches(n, 5, 4, 100, 8, 31);
    let target = 2.min(batches.len() - 1);
    let plan = ChaosPlan::new(3).with_event_in_round(target, 1, ChaosKind::Kill(2));
    let make = || conn_with(n, p);
    let reads = [
        Query::Connected(17, 1), // one endpoint owned by the victim
        Query::ComponentOf(18),  // owned by the victim
        Query::Connected(1, 2),  // both owners alive: exact
        Query::PathMax(1, 2),    // conservative during any outage
    ];
    let opts = ChaosOptions {
        outage_reads: &reads,
        ..Default::default()
    };
    let chaos = run_chaos_stream_with(
        make,
        apply_unweighted,
        |a: &mut DmpcConnectivity, qs: &[Query]| a.answer_queries(qs),
        &batches,
        &plan,
        opts,
    );
    let plain = run_plain_stream(make, apply_unweighted, &batches);
    assert_eq!(chaos.final_digest, plain.final_digest);
    assert_eq!(chaos.retries, 1, "the round-1 kill must fire exactly once");
    assert_eq!(chaos.reads_answered, reads.len());
    assert_eq!(
        chaos.degraded_answers, 3,
        "two owner-dead reads + the conservative path query degrade"
    );
    assert_eq!(chaos.outage_reads.queries, reads.len());
    let rec = &chaos.mid_flight[0];
    assert_eq!(rec.reads_answered, reads.len());
    assert_eq!(rec.degraded_answers, 3);
}

/// Direct unit check of the degraded wave against a boundary-killed
/// machine: exact answers match a healthy twin, degraded answers are
/// exactly the dead-owner set, and recovery restores exactness.
#[test]
fn degraded_answers_match_owner_liveness() {
    let n = 40;
    let p = 5;
    let mut alg = conn_with(n, p);
    let mut twin = conn_with(n, p);
    let ups = streams::clustered_churn_stream(n, 8, 5, 60, 0.6, 9);
    alg.apply_batch(&ups);
    twin.apply_batch(&ups);
    let snap = alg.driver().snapshot_machine(2);
    alg.driver_mut().kill_machine(2);

    let queries = [
        Query::Connected(17, 23), // both owned by the dead machine
        Query::Connected(0, 39),  // owners 0 and 4: alive, exact
        Query::ComponentOf(20),   // dead owner
        Query::ComponentOf(5),    // alive owner
        Query::PathMax(0, 5),     // conservative: degraded during outage
    ];
    let (answers, _) = alg.answer_queries(&queries);
    let (expect, _) = twin.answer_queries(&queries);
    assert_eq!(answers[0], QueryAnswer::Degraded);
    assert_eq!(answers[1], expect[1]);
    assert_eq!(answers[2], QueryAnswer::Degraded);
    assert_eq!(answers[3], expect[3]);
    assert_eq!(answers[4], QueryAnswer::Degraded);

    // Recovery restores exact service.
    let um = alg.driver_mut().revive_machine(2, &snap);
    assert!(um.clean());
    let (healed, _) = alg.answer_queries(&queries);
    assert_eq!(healed, expect);
}

// ----- deferral-drain accounting --------------------------------------------

/// Every deferred batch leaves a drain record: the mid-stream drain lands at
/// the health-restoring revive, the final drain at the end of the stream,
/// each with its deferral latency.
#[test]
fn deferral_drain_records_latency() {
    let n = 40;
    let p = 5;
    let batches = streams::chaos_churn_batches(n, 5, 4, 80, 8, 17);
    assert!(batches.len() >= 5);
    let make = || conn_with(n, p);
    let plain = run_plain_stream(make, apply_unweighted, &batches);

    // Boundary kill before batch 1, revive before batch 3: batches 1 and 2
    // are deferred and drained at the revive boundary.
    let plan = ChaosPlan::new(1)
        .with_event(1, ChaosKind::Kill(3))
        .with_event(3, ChaosKind::Revive(3));
    let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 2);
    let drained: Vec<_> = chaos
        .drained
        .iter()
        .map(|d| (d.batch, d.drained_at, d.latency_batches))
        .collect();
    assert_eq!(drained, vec![(1, 3, 2), (2, 3, 1)]);
    assert_eq!(chaos.batches, batches.len());
    assert_eq!(chaos.final_digest, plain.final_digest);

    // A kill never revived by the plan: the straggler revive and the final
    // drain both land at the end of the stream, and the drained batches
    // extend the replay suffix.
    let last = batches.len();
    let plan_tail = ChaosPlan::new(2).with_event(last - 2, ChaosKind::Kill(3));
    let chaos_tail = run_chaos_stream(make, apply_unweighted, &batches, &plan_tail, 2);
    let drained_tail: Vec<_> = chaos_tail
        .drained
        .iter()
        .map(|d| (d.batch, d.drained_at, d.latency_batches))
        .collect();
    assert_eq!(drained_tail, vec![(last - 2, last, 2), (last - 1, last, 1)]);
    assert_eq!(chaos_tail.batches, batches.len());
    assert_eq!(chaos_tail.final_digest, plain.final_digest);
}

// ----- property tests -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary seeds, victims, batch targets and round offsets: the
    /// mid-flight kill always recovers bit-identically, and clean workload
    /// accounting carries zero lost words.
    #[test]
    fn prop_mid_kill_any_round(
        seed in 0u64..500,
        r in 1u32..14,
        victim in 0u32..5,
        target_frac in 0usize..4,
    ) {
        let n = 40;
        let p = 5;
        let batches = streams::chaos_churn_batches(n, 5, 4, 80, 8, seed);
        let target = (batches.len() * target_frac / 4).min(batches.len() - 1);
        let plan = ChaosPlan::new(seed).with_event_in_round(target, r, ChaosKind::Kill(victim));
        let make = || conn_with(n, p);
        let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 3);
        let plain = run_plain_stream(make, apply_unweighted, &batches);
        prop_assert_eq!(chaos.final_digest, plain.final_digest);
        prop_assert_eq!(chaos.workload.violations, 0);
        prop_assert_eq!(chaos.workload.lost_words, 0);
        prop_assert_eq!(chaos.workload.lost_messages, 0);
        prop_assert_eq!(chaos.mid_flight.len(), chaos.retries);
        for rec in &chaos.mid_flight {
            prop_assert_eq!(rec.at_batch, target);
            prop_assert_eq!(rec.kill_round, r);
            prop_assert!(rec.recovery_words > 0);
        }
    }
}
