//! Layout differential: the compact SoA shard layout against the legacy
//! map layout — one protocol, two storages, bit-identical everything.
//!
//! The two layouts exchange the identical messages (the structural-op
//! mathematics is shared code), so not just the final states but every
//! per-update [`UpdateMetrics`] must be *equal* — rounds, words, flows,
//! violations. Snapshots sort by vertex and far endpoint, so
//! `state_digest` is layout-independent too, including across a PR 6
//! kill/revive recovery and a split/merge shard migration.

use dmpc_connectivity::{DmpcConnectivity, DmpcMst};
use dmpc_core::{
    apply_unweighted, run_chaos_stream, DmpcParams, DynamicGraphAlgorithm, ElasticAlgorithm,
    WeightedDynamicGraphAlgorithm,
};
use dmpc_graph::streams::{self, Update, WeightedUpdate};
use dmpc_mpc::{ChaosCaps, ChaosPlan, ExecOptions, Layout};
use proptest::prelude::*;

fn pair(n: usize, m_max: usize) -> (DmpcConnectivity, DmpcConnectivity) {
    let params = DmpcParams::new(n, m_max);
    (
        DmpcConnectivity::with_layout(params, ExecOptions::default(), Layout::Map),
        DmpcConnectivity::with_layout(params, ExecOptions::default(), Layout::Soa),
    )
}

fn apply(alg: &mut DmpcConnectivity, u: Update) -> dmpc_mpc::UpdateMetrics {
    match u {
        Update::Insert(e) => alg.insert(e),
        Update::Delete(e) => alg.delete(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On mixed churn streams (the shared `stream_rng`-salted generators),
    /// map and SoA layouts yield equal per-update metrics, equal query
    /// answers, and equal state digests at every step.
    #[test]
    fn soa_equals_map_on_churn_streams(seed in 0u64..1u64 << 48) {
        let n = 48;
        let (mut map, mut soa) = pair(n, 4 * n);
        for (step, &u) in streams::churn_stream(n, 80, 160, 0.55, seed).iter().enumerate() {
            let mm = apply(&mut map, u);
            let ms = apply(&mut soa, u);
            prop_assert!(ms.clean(), "SoA violations at step {step}: {:?}", ms.violations);
            prop_assert_eq!(&mm, &ms, "metrics diverged at step {step} ({u:?})");
            prop_assert_eq!(map.component_labels(), soa.component_labels());
            if step % 16 == 0 {
                prop_assert_eq!(
                    map.state_digest(),
                    soa.state_digest(),
                    "digest diverged at step {}", step
                );
            }
        }
        prop_assert_eq!(map.state_digest(), soa.state_digest());
        soa.driver().audit().map_err(TestCaseError::fail)?;
    }

    /// Digest identity survives a split/merge migration mid-stream: migrate
    /// both instances identically, keep updating, digests never diverge.
    #[test]
    fn soa_equals_map_across_split_merge(seed in 0u64..1u64 << 48) {
        let n = 64;
        let (mut map, mut soa) = pair(n, 4 * n);
        let ups = streams::clustered_churn_stream(n, 8, 10, 120, 0.6, seed);
        let (pre, post) = ups.split_at(ups.len() / 2);
        for &u in pre {
            apply(&mut map, u);
            apply(&mut soa, u);
        }
        for victim in [0u32, 3] {
            let mm = map.driver_mut().split_shard(victim).expect("splittable");
            let ms = soa.driver_mut().split_shard(victim).expect("splittable");
            prop_assert!(mm.clean() && ms.clean());
            prop_assert_eq!(map.state_digest(), soa.state_digest(), "after split");
        }
        let mm = map.driver_mut().merge_shard(0).expect("mergeable");
        let ms = soa.driver_mut().merge_shard(0).expect("mergeable");
        prop_assert!(mm.clean() && ms.clean());
        prop_assert_eq!(map.state_digest(), soa.state_digest(), "after merge");
        for &u in post {
            let mm = apply(&mut map, u);
            let ms = apply(&mut soa, u);
            prop_assert_eq!(&mm, &ms);
        }
        prop_assert_eq!(map.state_digest(), soa.state_digest());
        soa.driver().audit().map_err(TestCaseError::fail)?;
        soa.driver().audit_directory().map_err(TestCaseError::fail)?;
    }

    /// Chaos runs (kill + checkpoint/replay revive, split/merge events) land
    /// on the same digest in both layouts, with zero violations each.
    #[test]
    fn soa_equals_map_under_chaos(seed in 0u64..1u64 << 48) {
        let n = 40;
        let p = 5;
        let batches = streams::chaos_churn_batches(n, 5, 4, 90, 9, seed);
        let plan = ChaosPlan::generate(seed, batches.len(), p, 6, ChaosCaps::default());
        let mk = |layout: Layout| move || {
            let params = DmpcParams::new(n, 4 * n);
            DmpcConnectivity::with_layout(params, ExecOptions::default(), layout)
        };
        let rm = run_chaos_stream(mk(Layout::Map), apply_unweighted, &batches, &plan, 3);
        let rs = run_chaos_stream(mk(Layout::Soa), apply_unweighted, &batches, &plan, 3);
        prop_assert_eq!(rm.recovery.violations, 0);
        prop_assert_eq!(rs.recovery.violations, 0);
        prop_assert_eq!(rm.workload.violations, 0);
        prop_assert_eq!(rs.workload.violations, 0);
        prop_assert_eq!(rm.final_digest, rs.final_digest, "chaos digests diverged");
    }
}

/// MST mode (weights, path-max swap cuts) is also layout-independent.
#[test]
fn mst_soa_equals_map() {
    let n = 32;
    let params = DmpcParams::new(n, 160);
    for seed in 0..3 {
        let mut map = DmpcMst::with_layout(params, 0.1, Layout::Map);
        let mut soa = DmpcMst::with_layout(params, 0.1, Layout::Soa);
        let ups = streams::with_weights(&streams::churn_stream(n, 50, 120, 0.5, seed), 100, seed);
        for (step, &u) in ups.iter().enumerate() {
            let (mm, ms) = match u {
                WeightedUpdate::Insert(e, w) => (map.insert(e, w), soa.insert(e, w)),
                WeightedUpdate::Delete(e) => (map.delete(e), soa.delete(e)),
            };
            assert_eq!(mm, ms, "seed {seed} step {step}: metrics diverged");
            assert_eq!(map.forest_weight(), soa.forest_weight());
        }
        assert_eq!(
            ElasticAlgorithm::state_digest(&map),
            ElasticAlgorithm::state_digest(&soa),
            "seed {seed}: MST digests diverged"
        );
        soa.driver().audit().unwrap();
    }
}

/// SoA resident memory stays within a small constant factor of the map
/// model on a loaded shard: compact SoA is strictly cheaper per entry
/// (3.5 vs 4 words per adjacency record), and arena slack between
/// compactions is bounded by the `live/8 + 16` threshold plus growth
/// headroom — well under 25%.
#[test]
fn soa_resident_within_slack_of_map() {
    let n = 256;
    let (mut map, mut soa) = pair(n, 3 * n);
    for &u in &streams::churn_stream(n, 2 * n, 512, 0.5, 42) {
        apply(&mut map, u);
        apply(&mut soa, u);
    }
    assert_eq!(map.state_digest(), soa.state_digest());
    let (rm, rs) = (map.resident_words(), soa.resident_words());
    assert!(
        rs <= rm + rm / 4,
        "SoA resident {rs} words exceeds map resident {rm} words by more than 25%"
    );
}
