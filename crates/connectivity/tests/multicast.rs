//! Component-owner multicast: differential tests against the legacy
//! broadcast routing, the owner-directory invariant, and the no-self-message
//! metering guarantee.
//!
//! The two routings run the identical protocol; broadcast merely
//! over-addresses the structural multicasts. So machine states, directory
//! shards and query answers must be **bit-identical**, while the multicast
//! path's active-machine metrics must never exceed broadcast's and must drop
//! to the affected components' owner-set size on structural updates.

use dmpc_connectivity::algorithm::ConnDriver;
use dmpc_connectivity::machine::VertexState;
use dmpc_connectivity::{DmpcConnectivity, DmpcMst, Routing};
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm, WeightedDynamicGraphAlgorithm};
use dmpc_eulertour::indexed::CompId;
use dmpc_graph::streams::{self, Update, WeightedUpdate};
use dmpc_graph::{DynamicGraph, Edge, V};
use dmpc_mpc::{ExecOptions, MachineId, UpdateMetrics};
use proptest::prelude::*;

/// Full sharded state: every machine's vertex states plus directory shard.
type Snapshot = Vec<(Vec<(V, VertexState)>, Vec<(CompId, Vec<MachineId>)>)>;

fn snapshot(d: &ConnDriver) -> Snapshot {
    d.machines()
        .map(|m| {
            (
                m.vertices(),
                m.directory().iter().map(|(&c, o)| (c, o.clone())).collect(),
            )
        })
        .collect()
}

fn apply(alg: &mut DmpcConnectivity, u: Update) -> UpdateMetrics {
    match u {
        Update::Insert(e) => alg.insert(e),
        Update::Delete(e) => alg.delete(e),
    }
}

/// Turns raw proptest ops into a valid update stream.
fn valid_stream(n: usize, ops: Vec<(u32, u32, bool)>) -> Vec<Update> {
    let mut g = DynamicGraph::new(n);
    let mut stream = Vec::new();
    for (a, b, ins) in ops {
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if ins && !g.has_edge(e) {
            g.insert(e).unwrap();
            stream.push(Update::Insert(e));
        } else if !ins && g.has_edge(e) {
            g.delete(e).unwrap();
            stream.push(Update::Delete(e));
        }
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Multicast and broadcast routing are bit-identical in states, owner
    /// directory, and query answers after every update; multicast never
    /// activates more machines than broadcast.
    #[test]
    fn multicast_equals_broadcast(
        ops in proptest::collection::vec((0u32..24, 0u32..24, any::<bool>()), 1..120)
    ) {
        let n = 24usize;
        let params = DmpcParams::new(n, 140);
        let mut mc = DmpcConnectivity::with_routing(params, ExecOptions::default(), Routing::Multicast);
        let mut bc = DmpcConnectivity::with_routing(params, ExecOptions::default(), Routing::Broadcast);
        for u in valid_stream(n, ops) {
            let mm = apply(&mut mc, u);
            let mb = apply(&mut bc, u);
            prop_assert!(mm.clean(), "multicast violations: {:?}", mm.violations);
            prop_assert!(mb.clean(), "broadcast violations: {:?}", mb.violations);
            // A flow whose whole audience is local quiesces earlier under
            // multicast; it can never need *more* rounds than broadcast.
            prop_assert!(mm.rounds <= mb.rounds);
            prop_assert!(
                mm.max_active_machines <= mb.max_active_machines,
                "multicast activated more machines ({} > {}) on {:?}",
                mm.max_active_machines, mb.max_active_machines, u
            );
            prop_assert!(mm.machines_touched <= mb.machines_touched);
            prop_assert_eq!(mc.component_labels(), bc.component_labels());
            prop_assert_eq!(snapshot(mc.driver()), snapshot(bc.driver()), "state diverged after {:?}", u);
            mc.driver().audit().map_err(TestCaseError::fail)?;
            mc.driver().audit_directory().map_err(TestCaseError::fail)?;
            bc.driver().audit_directory().map_err(TestCaseError::fail)?;
        }
    }

    /// Directory invariant under churn *and* batched execution: after every
    /// update and every batch, each component's owner set is exactly the
    /// machines owning >= 1 live vertex of it.
    #[test]
    fn directory_invariant_on_churn_and_batches(
        ops in proptest::collection::vec((0u32..20, 0u32..20, any::<bool>()), 1..140),
        k in 1usize..24
    ) {
        let n = 20usize;
        let params = DmpcParams::new(n, 140);
        let mut single = DmpcConnectivity::new(params);
        let mut batched = DmpcConnectivity::new(params);
        let stream = valid_stream(n, ops);
        for &u in &stream {
            let m = apply(&mut single, u);
            prop_assert!(m.clean());
            single.driver().audit_directory().map_err(TestCaseError::fail)?;
        }
        for batch in stream.chunks(k) {
            let bm = batched.apply_batch(batch);
            prop_assert!(bm.clean(), "batch violations: {}", bm.violations);
            batched.driver().audit_directory().map_err(TestCaseError::fail)?;
            batched.driver().audit().map_err(TestCaseError::fail)?;
        }
        // Batched execution may pick a different (equally valid) spanning
        // forest than one-by-one execution; only the partition must agree.
        let norm = |labels: Vec<CompId>| {
            let mut map = std::collections::HashMap::new();
            labels
                .into_iter()
                .map(|l| {
                    let next = map.len() as u32;
                    *map.entry(l).or_insert(next)
                })
                .collect::<Vec<u32>>()
        };
        prop_assert_eq!(
            norm(single.component_labels()),
            norm(batched.component_labels())
        );
    }
}

/// MST mode (path-max queries, swap cuts) is also routing-independent.
#[test]
fn mst_multicast_equals_broadcast() {
    let n = 32;
    let params = DmpcParams::new(n, 160);
    for seed in 0..3 {
        let mut mc = DmpcMst::with_routing(params, 0.1, Routing::Multicast);
        let mut bc = DmpcMst::with_routing(params, 0.1, Routing::Broadcast);
        let ups = streams::with_weights(&streams::churn_stream(n, 50, 120, 0.5, seed), 100, seed);
        for (step, &u) in ups.iter().enumerate() {
            let (mm, mb) = match u {
                WeightedUpdate::Insert(e, w) => (mc.insert(e, w), bc.insert(e, w)),
                WeightedUpdate::Delete(e) => (mc.delete(e), bc.delete(e)),
            };
            assert!(mm.clean(), "seed {seed} step {step}: {:?}", mm.violations);
            assert!(mb.clean(), "seed {seed} step {step}: {:?}", mb.violations);
            assert!(mm.max_active_machines <= mb.max_active_machines);
            assert_eq!(
                snapshot(mc.driver()),
                snapshot(bc.driver()),
                "seed {seed} step {step} ({u:?}): states diverged"
            );
            assert_eq!(mc.forest_weight(), bc.forest_weight());
            mc.driver().audit().unwrap();
            mc.driver().audit_directory().unwrap();
        }
    }
}

/// Directory bootstrap: bulk loading installs exact owner sets.
#[test]
fn bulk_load_installs_directory() {
    let n = 40;
    let params = DmpcParams::new(n, 200);
    let edges = dmpc_graph::generators::random_tree_plus(n, 40, 5);
    let mut alg = DmpcConnectivity::new(params);
    alg.bulk_load(&edges);
    alg.driver().audit().unwrap();
    alg.driver().audit_directory().unwrap();
    // And the directory stays exact while the loaded graph is torn down.
    for &e in &edges {
        let m = alg.delete(e);
        assert!(m.clean(), "{:?}", m.violations);
        alg.driver().audit_directory().unwrap();
    }
}

/// No machine ever messages itself: self-addressed protocol steps execute
/// locally (local work is free in the MPC model), so the metered flow map
/// must contain no (m, m) pair — in either routing, and in MST mode.
#[test]
fn no_machine_messages_itself() {
    let n = 40;
    let params = DmpcParams::new(n, 200);
    let check = |m: &UpdateMetrics, what: &str| {
        for (&(src, dst), &words) in &m.flows {
            assert_ne!(
                src, dst,
                "{what}: machine {src} sent itself {words} words of metered traffic"
            );
        }
        assert!(!m.flows.is_empty() || m.total_words == 0);
    };
    for routing in [Routing::Multicast, Routing::Broadcast] {
        let mut cc = DmpcConnectivity::with_routing(params, ExecOptions::default(), routing);
        for &u in &streams::churn_stream(n, 60, 160, 0.5, 11) {
            check(&apply(&mut cc, u), "connectivity");
        }
    }
    let mut mst = DmpcMst::new(params, 0.1);
    let wups = streams::with_weights(&streams::churn_stream(n, 50, 120, 0.5, 7), 100, 7);
    for &u in &wups {
        let m = match u {
            WeightedUpdate::Insert(e, w) => mst.insert(e, w),
            WeightedUpdate::Delete(e) => mst.delete(e),
        };
        check(&m, "mst");
    }
}

/// The acceptance run: on the canonical churn stream (n = 256, P = 16),
/// multicast yields bit-identical query answers and states to broadcast,
/// while its active-machine footprint on structural updates drops from P to
/// the affected components' owner-set size.
#[test]
fn canonical_stream_bit_identical_and_active_drop() {
    let n = 256;
    let p = 16;
    let params = DmpcParams::new(n, 3 * n);
    let exec = ExecOptions::default();
    let mut mc = DmpcConnectivity::with_cluster(params, exec, Routing::Multicast, p);
    let mut bc = DmpcConnectivity::with_cluster(params, exec, Routing::Broadcast, p);
    assert_eq!(mc.driver().n_machines(), p);
    let ups = streams::churn_stream(n, 2 * n, 512, 0.5, 42);
    let (mut sum_mc, mut sum_bc) = (0usize, 0usize);
    let mut structural_improved = 0usize;
    let mut structural_total = 0usize;
    for (step, &u) in ups.iter().enumerate() {
        let structural = mc.driver().is_structural(u);
        // Pre-update owner footprint: the machines owning either endpoint's
        // component. Every machine the update touches must come from there.
        let e = u.edge();
        let union = mc.driver().owner_footprint(e);
        let mm = apply(&mut mc, u);
        let mb = apply(&mut bc, u);
        assert!(mm.clean() && mb.clean(), "step {step}");
        assert_eq!(
            mc.component_labels(),
            bc.component_labels(),
            "step {step} ({u:?}): query answers diverged"
        );
        assert!(
            mm.machines_touched <= union.len(),
            "step {step} ({u:?}): multicast touched {} machines but the affected \
             owner footprint is only {}",
            mm.machines_touched,
            union.len()
        );
        assert!(mm.max_active_machines <= mb.max_active_machines);
        sum_mc += mm.machines_touched;
        sum_bc += mb.machines_touched;
        if structural {
            structural_total += 1;
            if mm.machines_touched < mb.machines_touched {
                structural_improved += 1;
            }
        }
        if step % 64 == 0 {
            assert_eq!(snapshot(mc.driver()), snapshot(bc.driver()), "step {step}");
            mc.driver().audit_directory().unwrap();
        }
    }
    assert_eq!(snapshot(mc.driver()), snapshot(bc.driver()));
    assert!(
        structural_total > 0,
        "stream exercised no structural updates"
    );
    assert!(
        structural_improved > 0,
        "no structural update improved on broadcast ({structural_total} structural)"
    );
    assert!(
        sum_mc < sum_bc,
        "multicast total machine footprint {sum_mc} must beat broadcast {sum_bc}"
    );
}

/// On cluster-local workloads, multicast restores the Table-1 bound: the
/// whole update footprint stays within the owner set, machine count P be
/// damned — while broadcast activates ~P on every structural update.
#[test]
fn clustered_churn_active_bounded_by_owner_sets() {
    let n = 128;
    let p = 32;
    let params = DmpcParams::new(n, 3 * n);
    let exec = ExecOptions::default();
    let mut mc = DmpcConnectivity::with_cluster(params, exec, Routing::Multicast, p);
    let mut bc = DmpcConnectivity::with_cluster(params, exec, Routing::Broadcast, p);
    let p = mc.driver().n_machines();
    let ups = streams::clustered_churn_stream(n, 8, 12, 200, 0.5, 9);
    let mut bc_saw_full_fanout = false;
    for &u in &ups {
        let structural = mc.driver().is_structural(u);
        let mm = apply(&mut mc, u);
        let mb = apply(&mut bc, u);
        // Clusters span n/8 = 16 vertices = 4 machine blocks: the whole
        // update must fit in a handful of machines under multicast.
        assert!(
            mm.machines_touched <= 5,
            "{u:?} touched {} machines on a 4-machine cluster",
            mm.machines_touched
        );
        if structural {
            bc_saw_full_fanout |= mb.max_active_machines >= p - 1;
        }
        assert_eq!(mc.component_labels(), bc.component_labels());
    }
    assert!(
        bc_saw_full_fanout,
        "broadcast never hit full fan-out; the comparison is vacuous"
    );
    mc.driver().audit().unwrap();
    mc.driver().audit_directory().unwrap();
}

/// Single edge insert between two machines: the multicast path keeps the
/// whole flow inside the two owners (plus nobody else), in any cluster size.
#[test]
fn singleton_link_touches_only_the_two_owners() {
    for p in [4usize, 16, 64] {
        let n = 256;
        let params = DmpcParams::new(n, 3 * n);
        let mut alg =
            DmpcConnectivity::with_cluster(params, ExecOptions::default(), Routing::Multicast, p);
        let block = n.div_ceil(alg.driver().n_machines());
        // Pick endpoints on two different machines.
        let e = Edge::new(0, block as V);
        let m = alg.insert(e);
        assert!(m.clean());
        assert_eq!(
            m.machines_touched, 2,
            "P={p}: a two-owner link touched {} machines",
            m.machines_touched
        );
        assert!(alg.connected(0, block as V));
    }
}
