//! Scheduler differential: the conflict-group scheduler against the
//! serialized controller — one protocol, two phase-2 schedules,
//! bit-identical everything.
//!
//! Both schedulers run the identical per-item structural flow; the conflict
//! scheduler merely overlaps flows whose pre-batch components are disjoint.
//! So final states, state digests, query answers and audits must be *equal*
//! on every workload — mixed read/write streams, adversarial same-component
//! conflict batches, and chaos runs with a kill landing mid-round inside a
//! multi-lane batch (the PR 8 epoch fence aborts and retries either
//! schedule bit-identically). Round counts are where they may — and on
//! shallow conflict graphs must — differ; see `conflict_scaling` in the
//! `batch_scaling` bench for the quantitative claim.

use dmpc_connectivity::{ConflictStats, DmpcConnectivity};
use dmpc_core::{
    apply_unweighted, run_chaos_stream, run_plain_stream, DmpcParams, DynamicGraphAlgorithm,
    ElasticAlgorithm, QueryableAlgorithm,
};
use dmpc_graph::streams::{self, chunk_stream, QueryMix, TargetDist, Update};
use dmpc_graph::{Op, Query};
use dmpc_mpc::{ChaosKind, ChaosPlan, ExecOptions, Scheduler};
use proptest::prelude::*;

fn pair(n: usize, m_max: usize) -> (DmpcConnectivity, DmpcConnectivity) {
    let params = DmpcParams::new(n, m_max);
    (
        DmpcConnectivity::with_scheduler(params, ExecOptions::default(), Scheduler::Conflict),
        DmpcConnectivity::with_scheduler(params, ExecOptions::default(), Scheduler::Serialized),
    )
}

fn partitions_equal(a: &[u32], b: &[u32]) -> bool {
    let norm = |labels: &[u32]| {
        let mut map = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect::<Vec<u32>>()
    };
    norm(a) == norm(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched churn streams: both schedulers report the same conflict
    /// partition, zero violations, and identical digests at every batch
    /// boundary; the final components match the `DynamicGraph` replay.
    #[test]
    fn conflict_equals_serialized_on_churn_batches(seed in 0u64..1u64 << 48) {
        let n = 48;
        let (mut con, mut ser) = pair(n, 4 * n);
        let ups = streams::churn_stream(n, 80, 160, 0.55, seed);
        let batches = chunk_stream(&ups, 8);
        for (i, batch) in batches.iter().enumerate() {
            let bc = con.apply_batch(batch);
            let bs = ser.apply_batch(batch);
            prop_assert_eq!(bc.violations, 0, "conflict violations at batch {}", i);
            prop_assert_eq!(bs.violations, 0, "serialized violations at batch {}", i);
            // The partition is computed under both schedulers and must agree.
            prop_assert_eq!(bc.conflict_groups, bs.conflict_groups);
            prop_assert_eq!(bc.conflict_depth, bs.conflict_depth);
            // Overlap never hurts: the conflict schedule takes no more
            // rounds than full serialization.
            prop_assert!(bc.rounds <= bs.rounds,
                "conflict {} rounds > serialized {} at batch {}", bc.rounds, bs.rounds, i);
            prop_assert_eq!(con.state_digest(), ser.state_digest(),
                "digest diverged at batch {}", i);
        }
        prop_assert!(partitions_equal(&con.component_labels(), &ser.component_labels()));
        let g = streams::replay(n, &ups);
        prop_assert!(partitions_equal(&con.component_labels(), &g.components()));
        con.driver().audit().map_err(TestCaseError::fail)?;
        ser.driver().audit().map_err(TestCaseError::fail)?;
        con.driver().audit_directory().map_err(TestCaseError::fail)?;
    }

    /// Mixed read/write streams: interleaving query waves between batches
    /// yields identical answers under both schedulers.
    #[test]
    fn conflict_equals_serialized_on_mixed_streams(seed in 0u64..1u64 << 48) {
        let n = 40;
        let (mut con, mut ser) = pair(n, 4 * n);
        let ops = streams::mixed_stream(
            n, 160, 50, TargetDist::Uniform, QueryMix::Connectivity, seed,
        );
        let mut writes: Vec<Update> = Vec::new();
        let mut reads: Vec<Query> = Vec::new();
        let flush = |con: &mut DmpcConnectivity,
                         ser: &mut DmpcConnectivity,
                         writes: &mut Vec<Update>,
                         reads: &mut Vec<Query>|
         -> Result<(), TestCaseError> {
            if !writes.is_empty() {
                con.apply_batch(writes);
                ser.apply_batch(writes);
                writes.clear();
            }
            if !reads.is_empty() {
                let (ac, _) = con.answer_queries(reads);
                let (as_, _) = ser.answer_queries(reads);
                prop_assert_eq!(ac, as_, "answers diverged");
                reads.clear();
            }
            Ok(())
        };
        for op in &ops {
            match op {
                Op::Write(u) => {
                    if !reads.is_empty() {
                        flush(&mut con, &mut ser, &mut writes, &mut reads)?;
                    }
                    writes.push(*u);
                }
                Op::Read(q) => {
                    if !writes.is_empty() {
                        flush(&mut con, &mut ser, &mut writes, &mut reads)?;
                    }
                    reads.push(*q);
                }
            }
        }
        flush(&mut con, &mut ser, &mut writes, &mut reads)?;
        prop_assert_eq!(con.state_digest(), ser.state_digest());
    }

    /// Adversarial all-conflict batches: every structural item of a batch
    /// lands in the same component, so the partition is one group of full
    /// depth and the conflict scheduler degenerates to the serialized
    /// schedule — same rounds, same digests.
    #[test]
    fn same_component_batches_serialize_identically(seed in 0u64..1u64 << 48) {
        let n = 32;
        let (mut con, mut ser) = pair(n, 4 * n);
        // One growing path: batch i links vertices 4i..4i+4 onto the
        // component of vertex 0 — every link touches the same component
        // chain, so each batch is a single conflict group.
        let mut batches: Vec<Vec<Update>> = Vec::new();
        for i in 0..7u32 {
            let base = 4 * i;
            batches.push(
                (0..4)
                    .map(|j| Update::Insert(dmpc_graph::Edge::new(base + j, base + j + 1)))
                    .collect(),
            );
        }
        // Seed only shuffles which batch gets a deletion replayed.
        let del = (seed % 7) as usize;
        for (i, batch) in batches.iter().enumerate() {
            let bc = con.apply_batch(batch);
            let bs = ser.apply_batch(batch);
            prop_assert_eq!(bc.conflict_groups, 1, "batch {} should be one group", i);
            prop_assert_eq!(bc.conflict_depth, 4);
            prop_assert_eq!(bc.max_lanes, 1, "a single group never overlaps");
            prop_assert_eq!(bc.rounds, bs.rounds,
                "one lane must cost the same as the serialized schedule");
            prop_assert_eq!(con.state_digest(), ser.state_digest());
        }
        // A tree delete in the middle of the path is also a single group.
        let e = dmpc_graph::Edge::new(4 * del as u32, 4 * del as u32 + 1);
        let bc = con.apply_batch(&[Update::Delete(e)]);
        let bs = ser.apply_batch(&[Update::Delete(e)]);
        prop_assert_eq!(bc.conflict_groups, 1);
        prop_assert_eq!(bc.rounds, bs.rounds);
        prop_assert_eq!(con.state_digest(), ser.state_digest());
        con.driver().audit().map_err(TestCaseError::fail)?;
    }

    /// Chaos interleave: a kill firing mid-round inside a multi-lane batch
    /// aborts the epoch and retries; the recovered digest equals the
    /// failure-free run under *both* schedulers.
    #[test]
    fn mid_flight_kill_in_multi_lane_batch_recovers(seed in 0u64..200u64, r in 1u32..8) {
        let n = 64;
        // Disjoint fresh paths per batch: guaranteed multi-lane phase 2.
        let batches = streams::conflict_batches(n, 4, 2, 3, seed);
        let target = 1usize; // kill inside the second batch
        let mk = |s: Scheduler| move || {
            DmpcConnectivity::with_scheduler(
                DmpcParams::new(n, 4 * n), ExecOptions::default(), s,
            )
        };
        let plan = ChaosPlan::new(seed).with_event_in_round(target, r, ChaosKind::Kill(1));
        let plain_c = run_plain_stream(mk(Scheduler::Conflict), apply_unweighted, &batches);
        let plain_s = run_plain_stream(mk(Scheduler::Serialized), apply_unweighted, &batches);
        prop_assert_eq!(&plain_c.final_digest, &plain_s.final_digest);
        let chaos_c = run_chaos_stream(
            mk(Scheduler::Conflict), apply_unweighted, &batches, &plan, 3,
        );
        let chaos_s = run_chaos_stream(
            mk(Scheduler::Serialized), apply_unweighted, &batches, &plan, 3,
        );
        prop_assert_eq!(&chaos_c.final_digest, &plain_c.final_digest,
            "conflict-scheduled chaos diverged (kill round {})", r);
        prop_assert_eq!(&chaos_s.final_digest, &plain_s.final_digest,
            "serialized chaos diverged (kill round {})", r);
        prop_assert_eq!(chaos_c.workload.violations, 0);
        prop_assert_eq!(chaos_c.workload.lost_words, 0);
        prop_assert_eq!(chaos_s.workload.violations, 0);
    }
}

/// Deterministic shape check on the known-depth generator driven end to
/// end: the controller's reported partition matches the generator's
/// construction, multiple lanes actually overlap, and the conflict
/// schedule beats full serialization on a shallow conflict graph.
#[test]
fn conflict_batches_overlap_and_win() {
    let n = 128;
    let (mut con, mut ser) = pair(n, 4 * n);
    let (groups, depth) = (6, 1);
    for batch in streams::conflict_batches(n, groups, depth, 3, 11) {
        let bc = con.apply_batch(&batch);
        let bs = ser.apply_batch(&batch);
        assert_eq!(bc.conflict_groups, groups);
        assert_eq!(bc.conflict_depth, depth);
        assert!(
            bc.max_lanes >= 2,
            "disjoint groups must overlap (max_lanes = {})",
            bc.max_lanes
        );
        assert_eq!(bs.max_lanes, 1, "serialized runs one lane");
        assert_eq!(
            bs.conflict_groups, groups,
            "stats are scheduler-independent"
        );
        assert!(
            bc.rounds < bs.rounds,
            "overlapping {groups} disjoint groups must beat serialization \
             ({} vs {} rounds)",
            bc.rounds,
            bs.rounds
        );
        assert_eq!(bc.violations, 0);
        assert_eq!(bs.violations, 0);
        assert_eq!(con.state_digest(), ser.state_digest());
    }
    con.driver().audit().unwrap();
    ser.driver().audit().unwrap();
}

/// The controller publishes its partition stats through the driver exactly
/// once per batch run; an unbatched update publishes none.
#[test]
fn conflict_stats_surface_in_metrics() {
    let n = 64;
    let params = DmpcParams::new(n, 4 * n);
    let mut alg = DmpcConnectivity::new(params);
    let batch: Vec<Update> = (0..4)
        .map(|i| Update::Insert(dmpc_graph::Edge::new(2 * i, 2 * i + 1)))
        .collect();
    let bm = alg.apply_batch(&batch);
    assert_eq!(bm.conflict_groups, 4);
    assert_eq!(bm.conflict_depth, 1);
    assert!(bm.max_lanes >= 2);
    // Single-update runs bypass the batch plane: no stats.
    let um = alg.insert(dmpc_graph::Edge::new(40, 41));
    assert!(um.clean());
    let bm2 = alg.apply_batch(&[Update::Insert(dmpc_graph::Edge::new(50, 51))]);
    assert_eq!(bm2.conflict_groups, 1);
    assert_eq!(bm2.conflict_depth, 1);
    assert_eq!(bm2.max_lanes, 1);
    // The exported stats type is plain data.
    let st = ConflictStats {
        groups: 2,
        depth: 1,
        max_lanes: 2,
    };
    assert_eq!(st, st.clone());
}
