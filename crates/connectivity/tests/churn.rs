//! Machine churn: shard split/merge migrations, fail-stop kill + checkpoint/
//! replay revive, and the chaos plane — for connectivity and MST.
//!
//! The central claim under test: every recovery is **bit-identical** — a
//! chaos run's final state digest equals the failure-free run's digest over
//! the same stream, and both match the `DynamicGraph` ground truth.

use dmpc_connectivity::{DmpcConnectivity, DmpcMst, Routing};
use dmpc_core::{
    apply_unweighted, run_chaos_stream, run_plain_stream, DmpcParams, DynamicGraphAlgorithm,
    ElasticAlgorithm,
};
use dmpc_graph::{streams, Edge, Update};
use dmpc_mpc::{BatchMetrics, ChaosCaps, ChaosKind, ChaosPlan, ExecOptions, MachineId};
use proptest::prelude::*;

fn partitions_equal(a: &[u32], b: &[u32]) -> bool {
    let norm = |labels: &[u32]| {
        let mut map = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect::<Vec<u32>>()
    };
    norm(a) == norm(b)
}

fn conn_with(n: usize, p: usize) -> DmpcConnectivity {
    let params = DmpcParams::new(n, 4 * n);
    DmpcConnectivity::with_cluster(params, ExecOptions::default(), Routing::Multicast, p)
}

/// Applies one weighted batch to an MST instance (weights derived
/// deterministically per edge, so replicas see identical ops).
fn apply_mst(a: &mut DmpcMst, batch: &[Update]) -> BatchMetrics {
    let mut bm = BatchMetrics::default();
    for wu in streams::with_weights(batch, 64, 77) {
        match wu {
            dmpc_graph::WeightedUpdate::Insert(e, w) => {
                bm.absorb_update(&dmpc_core::WeightedDynamicGraphAlgorithm::insert(a, e, w))
            }
            dmpc_graph::WeightedUpdate::Delete(e) => {
                bm.absorb_update(&dmpc_core::WeightedDynamicGraphAlgorithm::delete(a, e))
            }
        }
    }
    bm
}

// ----- shard migration ------------------------------------------------------

/// Split then merge: state, audits, directory, and components are unaffected
/// by a boundary-shift migration, and the partition table stays in sync on
/// every machine.
#[test]
fn split_and_merge_preserve_state() {
    let n = 64;
    let p = 8;
    let mut alg = conn_with(n, p);
    let mut witness = conn_with(n, p);
    let ups = streams::clustered_churn_stream(n, 8, 5, 60, 0.6, 9);
    alg.apply_batch(&ups);
    witness.apply_batch(&ups);
    let labels = witness.component_labels();
    let digest0 = witness.state_digest();

    for m in [0u32, 3, 7] {
        let um = alg.driver_mut().split_shard(m).expect("splittable");
        assert!(um.clean(), "split {m}: {:?}", um.violations);
        assert!(um.rounds >= 1);
        alg.driver().audit().unwrap();
        alg.driver().audit_directory().unwrap();
        assert!(partitions_equal(&alg.component_labels(), &labels));
    }
    for m in [3u32, 0] {
        let um = alg.driver_mut().merge_shard(m).expect("mergeable");
        assert!(um.clean(), "merge {m}: {:?}", um.violations);
        alg.driver().audit().unwrap();
        alg.driver().audit_directory().unwrap();
        assert!(partitions_equal(&alg.component_labels(), &labels));
        // The emptied machine keeps its controller/rendezvous roles but owns
        // no vertices.
        let b = alg.driver().bounds();
        assert_eq!(b[m as usize], b[m as usize + 1]);
    }
    // Every machine agrees on the partition table (bounds broadcasts
    // landed), and the digest is changed only by *where* state lives —
    // updates still behave identically afterwards.
    let reference = bounds_line(&alg, 0);
    for m in 1..p as MachineId {
        assert_eq!(bounds_line(&alg, m), reference, "machine {m} bounds");
    }
    let e = Edge::new(1, 62);
    alg.insert(e);
    witness.insert(e);
    assert!(partitions_equal(
        &alg.component_labels(),
        &witness.component_labels()
    ));
    // Merging everything back to the uniform layout is not required for
    // correctness; digests differ only because ownership moved.
    let _ = digest0;
}

/// The `bounds` line of machine `m`'s snapshot (the partition table).
fn bounds_line(alg: &DmpcConnectivity, m: MachineId) -> Option<String> {
    alg.driver()
        .snapshot_machine(m)
        .lines()
        .find(|l| l.starts_with("bounds "))
        .map(str::to_owned)
}

/// Migration keeps updates working across the moved boundary: edges whose
/// endpoints changed owner still insert/delete/query correctly.
#[test]
fn migration_then_updates_across_moved_boundary() {
    let n = 32;
    let mut alg = conn_with(n, 4);
    let mut plain = conn_with(n, 4);
    let load: Vec<Edge> = (0..(n as u32) - 1).map(|v| Edge::new(v, v + 1)).collect();
    alg.bulk_load(&load);
    plain.bulk_load(&load);
    alg.driver_mut().split_shard(1).expect("split");
    alg.driver().audit().unwrap();
    // Delete a path edge inside the moved range, then re-insert it.
    let e = Edge::new(13, 14);
    for inst in [&mut alg, &mut plain] {
        inst.delete(e);
    }
    assert!(partitions_equal(
        &alg.component_labels(),
        &plain.component_labels()
    ));
    assert!(!alg.connected(13, 14));
    for inst in [&mut alg, &mut plain] {
        inst.insert(e);
    }
    assert!(alg.connected(0, 31));
    alg.driver().audit_directory().unwrap();
}

// ----- kill / revive --------------------------------------------------------

/// Kill + checkpoint/replay revive restores the machine bit-identically: the
/// digest equals an untouched twin's, audits hold, answers match.
#[test]
fn kill_and_revive_is_bit_identical() {
    let n = 64;
    let p = 8;
    let ups = streams::clustered_churn_stream(n, 8, 5, 80, 0.5, 21);
    let (pre, post) = ups.split_at(ups.len() / 2);

    let mut alg = conn_with(n, p);
    let mut twin = conn_with(n, p);
    alg.apply_batch(pre);
    twin.apply_batch(pre);
    let ckpt = ElasticAlgorithm::checkpoint(&alg);

    // Kill machine 3, losing its state; updates addressed to it would be
    // dropped (we apply none while it is down).
    alg.driver_mut().kill_machine(3);
    assert!(!alg.driver().is_alive(3));

    // Recover on an off-cluster replica: checkpoint + empty suffix.
    let mut replica = conn_with(n, p);
    replica.restore(&ckpt);
    let snap = replica.snapshot_machine(3);
    let um = alg.driver_mut().revive_machine(3, &snap);
    assert!(um.clean(), "revive violations: {:?}", um.violations);
    assert!(um.total_words > 0, "recovery traffic must be metered");
    assert!(alg.driver().is_alive(3));

    // No migration happened, so even the raw per-machine snapshots (bounds,
    // directory shards and all) must match text-for-text — stronger than
    // the placement-independent digest.
    assert_eq!(
        ElasticAlgorithm::checkpoint(&alg),
        ElasticAlgorithm::checkpoint(&twin)
    );
    assert_eq!(alg.state_digest(), twin.state_digest());
    alg.driver().audit().unwrap();
    alg.driver().audit_directory().unwrap();

    // And the revived cluster keeps working.
    alg.apply_batch(post);
    twin.apply_batch(post);
    assert_eq!(alg.state_digest(), twin.state_digest());
}

/// Reviving with a replayed suffix (checkpoint taken *before* some batches)
/// still lands bit-identically.
#[test]
fn revive_with_replay_suffix() {
    let n = 48;
    let p = 6;
    let ups = streams::clustered_churn_stream(n, 6, 4, 60, 0.5, 33);
    let batches = streams::chunk_stream(&ups, 10);
    let make = || conn_with(n, p);

    let mut alg = make();
    let mut twin = make();
    let ckpt = ElasticAlgorithm::checkpoint(&alg); // empty-state checkpoint
    for b in &batches {
        alg.apply_batch(b);
        twin.apply_batch(b);
    }
    alg.driver_mut().kill_machine(2);

    let mut replica = make();
    replica.restore(&ckpt);
    for b in &batches {
        replica.apply_batch(b); // replay the full suffix
    }
    let um = alg
        .driver_mut()
        .revive_machine(2, &replica.snapshot_machine(2));
    assert!(um.clean());
    assert_eq!(alg.state_digest(), twin.state_digest());
}

// ----- flow-map regression --------------------------------------------------

/// Recovery and migration traffic obeys the same flow discipline as
/// updates: per-pair flows sum to `total_words`, no machine messages
/// itself, and no round exceeds the send cap `S` (budgeted chunking).
#[test]
fn recovery_traffic_flow_discipline() {
    let n = 64;
    let p = 8;
    let params = DmpcParams::new(n, 4 * n);
    let cap = params.capacity_words();
    let exec = ExecOptions {
        track_flows: Some(true),
        ..ExecOptions::default()
    };
    let mut alg = DmpcConnectivity::with_cluster(params, exec, Routing::Multicast, p);
    let ups = streams::clustered_churn_stream(n, 8, 6, 80, 0.6, 13);
    alg.apply_batch(&ups);

    let check = |um: &dmpc_mpc::UpdateMetrics, what: &str| {
        assert!(um.clean(), "{what}: {:?}", um.violations);
        let flow_sum: u64 = um.flows.values().sum();
        assert_eq!(
            flow_sum as usize, um.total_words,
            "{what}: flows must account for every metered word"
        );
        for &(src, dst) in um.flows.keys() {
            assert_ne!(src, dst, "{what}: self-flow {src}->{dst}");
        }
        assert!(
            um.max_words_per_round <= cap,
            "{what}: round of {} words exceeds S = {cap}",
            um.max_words_per_round
        );
    };

    let um = alg.driver_mut().split_shard(2).expect("split");
    check(&um, "split");
    let um = alg.driver_mut().merge_shard(5).expect("merge");
    check(&um, "merge");

    let ckpt = ElasticAlgorithm::checkpoint(&alg);
    alg.driver_mut().kill_machine(4);
    let mut replica =
        DmpcConnectivity::with_cluster(params, ExecOptions::default(), Routing::Multicast, p);
    replica.restore(&ckpt);
    let um = alg
        .driver_mut()
        .revive_machine(4, &replica.snapshot_machine(4));
    check(&um, "revive");
    assert!(
        um.rounds >= 2,
        "budgeted handoff of a loaded shard is multi-round"
    );
    alg.driver().audit().unwrap();
}

// ----- the chaos plane ------------------------------------------------------

/// Canonical seeded chaos run: kills, revives, splits and merges interleaved
/// with update batches; the final state is bit-identical to the failure-free
/// run and matches ground truth, with zero model violations.
#[test]
fn chaos_stream_recovers_bit_identical() {
    let n = 64;
    let p = 8;
    let batches = streams::chaos_churn_batches(n, 8, 6, 180, 12, 42);
    let plan = ChaosPlan::generate(42, batches.len(), p, 10, ChaosCaps::default());
    assert!(!plan.events.is_empty());
    let make = || conn_with(n, p);

    let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 4);
    let plain = run_plain_stream(make, apply_unweighted, &batches);

    assert_eq!(
        chaos.final_digest, plain.final_digest,
        "chaos run diverged from failure-free run"
    );
    assert_eq!(chaos.updates, plain.updates);
    assert_eq!(
        chaos.recovery.violations, 0,
        "recovery must be violation-free"
    );
    assert_eq!(chaos.workload.violations, 0);
    assert!(chaos.applied.iter().any(|e| e.kind.starts_with("kill")));
    assert!(chaos.applied.iter().any(|e| e.kind.starts_with("revive")));
    assert!(chaos.recovery.total_words > 0);

    // Ground truth: replay the same stream into a DynamicGraph and compare
    // components on a fresh instance driven the same way.
    let mut alg = make();
    for b in &batches {
        alg.apply_batch(b);
    }
    let flat: Vec<Update> = batches.iter().flatten().copied().collect();
    let g = streams::replay(n, &flat);
    assert!(partitions_equal(&alg.component_labels(), &g.components()));
    assert_eq!(alg.state_digest(), chaos.final_digest);
}

/// The MST driver exposes the same chaos surface: digests match across
/// chaos/plain, and the forest weight matches the failure-free instance.
#[test]
fn mst_chaos_stream_recovers_bit_identical() {
    let n = 48;
    let batches = streams::chaos_churn_batches(n, 6, 5, 120, 10, 7);
    let params = DmpcParams::new(n, 4 * n);
    let make = || DmpcMst::new(params, 0.1);
    // The MST driver uses the model-default machine count; generate the
    // plan against the actual layout.
    let p = make().driver().n_machines();
    let plan = ChaosPlan::generate(7, batches.len(), p, 8, ChaosCaps::default());

    let chaos = run_chaos_stream(make, apply_mst, &batches, &plan, 3);
    let plain = run_plain_stream(make, apply_mst, &batches);
    assert_eq!(chaos.final_digest, plain.final_digest);
    assert_eq!(chaos.recovery.violations, 0);
    assert_eq!(chaos.workload.violations, 0);

    // Forest weight sanity against a fresh failure-free instance.
    let mut a = make();
    for b in &batches {
        apply_mst(&mut a, b);
    }
    assert_eq!(a.state_digest(), chaos.final_digest);
}

// ----- property tests -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary seeds: chaos and plain runs agree bit-for-bit, recovery is
    /// violation-free, and components match ground truth — connectivity.
    #[test]
    fn prop_chaos_conn_bit_identical(seed in 0u64..1000, events in 2usize..12) {
        let n = 40;
        let p = 5;
        let batches = streams::chaos_churn_batches(n, 5, 4, 90, 9, seed);
        let plan = ChaosPlan::generate(seed, batches.len(), p, events, ChaosCaps::default());
        let make = || conn_with(n, p);
        let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 3);
        let plain = run_plain_stream(make, apply_unweighted, &batches);
        prop_assert_eq!(chaos.final_digest, plain.final_digest);
        prop_assert_eq!(chaos.recovery.violations, 0);
        prop_assert_eq!(chaos.workload.violations, 0);

        let mut alg = make();
        for b in &batches { alg.apply_batch(b); }
        let flat: Vec<Update> = batches.iter().flatten().copied().collect();
        let g = streams::replay(n, &flat);
        prop_assert!(partitions_equal(&alg.component_labels(), &g.components()));
        alg.driver().audit().map_err(TestCaseError::fail)?;
        alg.driver().audit_directory().map_err(TestCaseError::fail)?;
    }

    /// Same property for MST (weighted apply path).
    #[test]
    fn prop_chaos_mst_bit_identical(seed in 0u64..1000, events in 2usize..10) {
        let n = 32;
        let batches = streams::chaos_churn_batches(n, 4, 4, 60, 8, seed);
        let params = DmpcParams::new(n, 3 * n);
        let make = || DmpcMst::new(params, 0.1);
        let p = make().driver().n_machines();
        let plan = ChaosPlan::generate(seed, batches.len(), p, events, ChaosCaps::default());
        let chaos = run_chaos_stream(make, apply_mst, &batches, &plan, 4);
        let plain = run_plain_stream(make, apply_mst, &batches);
        prop_assert_eq!(chaos.final_digest, plain.final_digest);
        prop_assert_eq!(chaos.recovery.violations, 0);
        prop_assert_eq!(chaos.workload.violations, 0);
    }

    /// Hand-built worst-case plans: kill immediately followed by revive at
    /// the same batch index, repeated; the harness handles back-to-back
    /// transitions.
    #[test]
    fn prop_kill_revive_same_batch(seed in 0u64..500, m in 0u32..5) {
        let n = 30;
        let p = 5;
        let batches = streams::chaos_churn_batches(n, 5, 3, 40, 8, seed);
        let mid = batches.len() / 2;
        let plan = ChaosPlan::new(seed)
            .with_event(mid, ChaosKind::Kill(m))
            .with_event(mid, ChaosKind::Revive(m))
            .with_event(mid + 1, ChaosKind::Kill(m))
            .with_event(mid + 2, ChaosKind::Revive(m));
        let make = || conn_with(n, p);
        let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 2);
        let plain = run_plain_stream(make, apply_unweighted, &batches);
        prop_assert_eq!(chaos.final_digest, plain.final_digest);
        prop_assert_eq!(chaos.recovery.violations, 0);
        prop_assert_eq!(chaos.applied.len(), 4);
    }
}
