//! Randomized end-to-end verification of the distributed connectivity and
//! MST algorithms against ground-truth recomputation, with full structural
//! audits after every update.

use dmpc_connectivity::{DmpcConnectivity, DmpcMst};
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm, WeightedDynamicGraphAlgorithm};
use dmpc_graph::mst::msf_weight;
use dmpc_graph::streams::{self, Update, WeightedUpdate};
use dmpc_graph::{DynamicGraph, Edge, Weight};

fn partitions_equal(a: &[u32], b: &[u32]) -> bool {
    let norm = |labels: &[u32]| {
        let mut map = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect::<Vec<u32>>()
    };
    norm(a) == norm(b)
}

#[test]
fn connectivity_random_churn_verified() {
    let n = 40;
    let params = DmpcParams::new(n, 200);
    for seed in 0..3 {
        let mut alg = DmpcConnectivity::new(params);
        let mut g = DynamicGraph::new(n);
        let ups = streams::churn_stream(n, 60, 160, 0.5, seed);
        for (step, &u) in ups.iter().enumerate() {
            let m = match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                    alg.insert(e)
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                    alg.delete(e)
                }
            };
            assert!(
                m.clean(),
                "seed {seed} step {step} ({u:?}): violations {:?}",
                m.violations
            );
            assert!(
                m.rounds <= 10,
                "seed {seed} step {step}: {} rounds",
                m.rounds
            );
            alg.driver()
                .audit()
                .unwrap_or_else(|e| panic!("seed {seed} step {step} ({u:?}): audit failed: {e}"));
            assert!(
                partitions_equal(&alg.component_labels(), &g.components()),
                "seed {seed} step {step} ({u:?}): components diverged"
            );
        }
    }
}

#[test]
fn connectivity_tree_churn_worst_case() {
    // Every deletion removes a tree edge and forces a replacement search.
    let n = 32;
    let params = DmpcParams::new(n, 64);
    let mut alg = DmpcConnectivity::new(params);
    let mut g = DynamicGraph::new(n);
    let ups = streams::tree_churn_stream(n, 80, 7);
    for (step, &u) in ups.iter().enumerate() {
        let m = match u {
            Update::Insert(e) => {
                g.insert(e).unwrap();
                alg.insert(e)
            }
            Update::Delete(e) => {
                g.delete(e).unwrap();
                alg.delete(e)
            }
        };
        assert!(m.clean(), "step {step}: {:?}", m.violations);
        alg.driver().audit().unwrap();
        assert!(partitions_equal(&alg.component_labels(), &g.components()));
    }
}

#[test]
fn connectivity_bulk_load_then_updates() {
    let n = 30;
    let params = DmpcParams::new(n, 120);
    let edges = dmpc_graph::generators::random_tree_plus(n, 30, 11);
    let mut alg = DmpcConnectivity::new(params);
    alg.bulk_load(&edges);
    alg.driver().audit().unwrap();
    let mut g = DynamicGraph::from_edges(n, &edges);
    assert!(partitions_equal(&alg.component_labels(), &g.components()));
    // Delete every edge in a scrambled order, checking throughout.
    let mut order = edges.clone();
    order.sort_by_key(|e| (e.u as usize * 7 + e.v as usize * 13) % 31);
    for (step, &e) in order.iter().enumerate() {
        g.delete(e).unwrap();
        let m = alg.delete(e);
        assert!(m.clean(), "step {step}: {:?}", m.violations);
        alg.driver().audit().unwrap();
        assert!(
            partitions_equal(&alg.component_labels(), &g.components()),
            "step {step} deleting {e}"
        );
    }
    assert_eq!(alg.driver().tree_edges().len(), 0);
}

#[test]
fn batched_cancellation_same_edge_insert_delete() {
    // A batch containing an insert and a delete of the same edge nets out;
    // a delete-then-reinsert nets to presence. Checked against ground truth.
    let n = 12;
    let params = DmpcParams::new(n, 60);
    let mut alg = DmpcConnectivity::new(params);
    let mut g = DynamicGraph::new(n);
    let (e, f, h) = (Edge::new(0, 1), Edge::new(1, 2), Edge::new(3, 4));
    // Pre-state: f present.
    g.insert(f).unwrap();
    alg.insert(f);
    let batch = [
        Update::Insert(e), // cancelled below
        Update::Delete(f), // reinserted below: net no-op
        Update::Insert(h), // survives
        Update::Delete(e),
        Update::Insert(f),
    ];
    for &u in &batch {
        match u {
            Update::Insert(x) => g.insert(x).unwrap(),
            Update::Delete(x) => g.delete(x).unwrap(),
        }
    }
    let bm = alg.apply_batch(&batch);
    assert!(bm.clean(), "{} violations", bm.violations);
    assert_eq!(bm.updates, 5);
    alg.driver().audit().unwrap();
    assert!(partitions_equal(&alg.component_labels(), &g.components()));
    assert!(alg.connected(1, 2)); // f still present
    assert!(alg.connected(3, 4)); // h inserted
    assert!(!alg.connected(0, 1) || g.components()[0] == g.components()[1]);
}

#[test]
fn batched_connectivity_amortizes_rounds() {
    // The batched machine program must beat the looped default on amortized
    // rounds per update at moderate batch sizes.
    let n = 64;
    let params = DmpcParams::new(n, 3 * n);
    let ups = streams::churn_stream(n, 2 * n, 192, 0.5, 99);
    let mut batched = DmpcConnectivity::new(params);
    let mut looped = DmpcConnectivity::new(params);
    let mut bm = dmpc_mpc::BatchMetrics::default();
    let mut lm = dmpc_mpc::BatchMetrics::default();
    for batch in ups.chunks(64) {
        bm.merge(&batched.apply_batch(batch));
        lm.merge(&dmpc_core::apply_batch_looped(&mut looped, batch));
    }
    assert!(bm.clean(), "batched violations: {}", bm.violations);
    batched.driver().audit().unwrap();
    assert!(
        bm.amortized_rounds() * 1.5 < lm.amortized_rounds(),
        "expected >=1.5x round amortization: batched {:.2} vs looped {:.2}",
        bm.amortized_rounds(),
        lm.amortized_rounds()
    );
}

#[test]
fn mst_matches_kruskal_throughout() {
    let n = 28;
    let params = DmpcParams::new(n, 160);
    for seed in 0..3 {
        let mut alg = DmpcMst::new(params, 0.1);
        let mut live: Vec<(Edge, Weight)> = Vec::new();
        let ups = streams::with_weights(&streams::churn_stream(n, 50, 120, 0.5, seed), 100, seed);
        for (step, &u) in ups.iter().enumerate() {
            let m = match u {
                WeightedUpdate::Insert(e, w) => {
                    live.push((e, w));
                    alg.insert(e, w)
                }
                WeightedUpdate::Delete(e) => {
                    live.retain(|&(x, _)| x != e);
                    alg.delete(e)
                }
            };
            assert!(m.clean(), "seed {seed} step {step}: {:?}", m.violations);
            alg.driver().audit().unwrap_or_else(|err| {
                panic!("seed {seed} step {step} ({u:?}): audit failed: {err}")
            });
            // No preprocessing happened, so the maintained forest must be an
            // exact MSF of the live graph.
            let expect = msf_weight(n, &live);
            let got = alg.forest_weight();
            assert_eq!(
                got, expect,
                "seed {seed} step {step} ({u:?}): forest weight {got} != kruskal {expect}"
            );
        }
    }
}

#[test]
fn mst_bulk_load_respects_epsilon() {
    let n = 40;
    let params = DmpcParams::new(n, 200);
    let eps = 0.25;
    let edges: Vec<(Edge, Weight)> = dmpc_graph::generators::random_tree_plus(n, 60, 3)
        .into_iter()
        .map(|e| (e, dmpc_graph::streams::edge_weight(e, 500, 5)))
        .collect();
    let mut alg = DmpcMst::new(params, eps);
    alg.bulk_load(&edges);
    alg.driver().audit().unwrap();
    let exact = msf_weight(n, &edges);
    // The maintained forest's true weight: sum the *bucketed* weights the
    // algorithm stores; it must be within (1+eps) of the exact optimum.
    let approx = alg.forest_weight();
    assert!(
        approx <= exact,
        "bucketing rounds down: {approx} vs {exact}"
    );
    assert!(
        exact as f64 <= approx as f64 * (1.0 + eps) * 1.001 + 1.0,
        "{approx} vs {exact}"
    );
}

#[test]
fn table1_shape_rounds_constant_communication_sqrt() {
    // The headline Table 1 row: rounds flat, communication ~sqrt(N).
    let mut rounds_at_size = Vec::new();
    let mut words_at_size = Vec::new();
    for k in [5usize, 6, 7] {
        let n = 1 << k;
        let m_max = 2 * n;
        let params = DmpcParams::new(n, m_max);
        let mut alg = DmpcConnectivity::new(params);
        let ups = streams::tree_churn_stream(n, 40, 13);
        let mut worst_rounds = 0;
        let mut worst_words = 0;
        for &u in &ups {
            let m = match u {
                Update::Insert(e) => alg.insert(e),
                Update::Delete(e) => alg.delete(e),
            };
            worst_rounds = worst_rounds.max(m.rounds);
            worst_words = worst_words.max(m.max_words_per_round);
        }
        rounds_at_size.push(worst_rounds);
        words_at_size.push(worst_words);
    }
    // Rounds do not grow with N.
    assert!(rounds_at_size.windows(2).all(|w| w[1] <= w[0] + 1));
    assert!(*rounds_at_size.last().unwrap() <= 10);
    // Communication grows with N (the broadcasts touch O(sqrt N) machines).
    assert!(words_at_size.last().unwrap() > words_at_size.first().unwrap());
}
