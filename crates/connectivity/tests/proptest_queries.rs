//! Property tests for the query plane (PR 5): batched `answer_queries` is
//! bit-identical to looped single queries AND to the `DynamicGraph` ground
//! truth, for plain connectivity and MST mode, with query waves interleaved
//! between update batches (reads must be invisible to later writes).

use dmpc_connectivity::{DmpcConnectivity, DmpcMst};
use dmpc_core::{
    DmpcParams, DynamicGraphAlgorithm, QueryableAlgorithm, WeightedDynamicGraphAlgorithm,
};
use dmpc_graph::{DynamicGraph, Edge, Query, QueryAnswer, Update, Weight, V};
use proptest::prelude::*;

/// Turns raw proptest ops into a valid update stream.
fn valid_stream(n: usize, ops: Vec<(u32, u32, bool)>) -> Vec<Update> {
    let mut g = DynamicGraph::new(n);
    let mut stream = Vec::new();
    for (a, b, ins) in ops {
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if ins && !g.has_edge(e) {
            g.insert(e).unwrap();
            stream.push(Update::Insert(e));
        } else if !ins && g.has_edge(e) {
            g.delete(e).unwrap();
            stream.push(Update::Delete(e));
        }
    }
    stream
}

/// Deterministic query pool derived from the raw query seeds.
fn pool_from(n: u32, seeds: &[(u32, u32, u8)]) -> Vec<Query> {
    seeds
        .iter()
        .map(|&(a, b, kind)| {
            let (a, b) = (a % n, b % n);
            match kind % 3 {
                0 => Query::Connected(a, b),
                1 => Query::ComponentOf(a),
                _ => Query::PathMax(a, b),
            }
        })
        .collect()
}

/// Ground-truth check of one answer against the reference graph (and, for
/// path-max, against a BFS over the maintained forest).
fn check_answer(
    g: &DynamicGraph,
    tree: &[(Edge, Weight)],
    q: Query,
    a: QueryAnswer,
) -> Result<(), TestCaseError> {
    let labels = g.components();
    match (q, a) {
        (Query::Connected(u, v), QueryAnswer::Bool(conn)) => {
            prop_assert_eq!(conn, labels[u as usize] == labels[v as usize], "{:?}", q);
        }
        (Query::ComponentOf(_), QueryAnswer::Component(_)) => {
            // Label values are representation-specific; cross-query
            // consistency is asserted by the caller via partition equality.
        }
        (Query::PathMax(u, v), QueryAnswer::PathMax(best)) => {
            prop_assert_eq!(best, path_max_reference(g.n(), tree, u, v), "{:?}", q);
        }
        other => prop_assert!(false, "unexpected answer shape {:?}", other),
    }
    Ok(())
}

/// BFS path max over the maintained forest, with the machines' tie-break.
fn path_max_reference(n: usize, tree: &[(Edge, Weight)], u: V, v: V) -> Option<(Edge, Weight)> {
    if u == v {
        return None;
    }
    let mut adj: Vec<Vec<(V, Edge, Weight)>> = vec![Vec::new(); n];
    for &(e, w) in tree {
        adj[e.u as usize].push((e.v, e, w));
        adj[e.v as usize].push((e.u, e, w));
    }
    let mut prev: Vec<Option<(V, Edge, Weight)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([u]);
    seen[u as usize] = true;
    while let Some(x) = queue.pop_front() {
        for &(y, e, w) in &adj[x as usize] {
            if !seen[y as usize] {
                seen[y as usize] = true;
                prev[y as usize] = Some((x, e, w));
                queue.push_back(y);
            }
        }
    }
    if !seen[v as usize] {
        return None;
    }
    let mut best: Option<(Weight, Edge)> = None;
    let mut x = v;
    while x != u {
        let (p, e, w) = prev[x as usize].unwrap();
        let better = match best {
            None => true,
            Some((bw, be)) => w > bw || (w == bw && e < be),
        };
        if better {
            best = Some((w, e));
        }
        x = p;
    }
    best.map(|(w, e)| (e, w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Plain connectivity: update batches interleaved with query waves.
    /// After every batch, batched answers == looped answers == ground
    /// truth, with zero violations, and the waves leave no trace (the next
    /// batch's audit still holds).
    #[test]
    fn queries_interleave_with_update_batches(
        ops in proptest::collection::vec((0u32..24, 0u32..24, any::<bool>()), 1..120),
        qseeds in proptest::collection::vec((0u32..24, 0u32..24, 0u8..3), 4..40),
        k in 1usize..20
    ) {
        let n = 24usize;
        let params = DmpcParams::new(n, 140);
        let mut alg = DmpcConnectivity::new(params);
        let mut g = DynamicGraph::new(n);
        let stream = valid_stream(n, ops);
        let pool = pool_from(n as u32, &qseeds);
        for batch in stream.chunks(k) {
            for &u in batch {
                match u {
                    Update::Insert(e) => g.insert(e).unwrap(),
                    Update::Delete(e) => g.delete(e).unwrap(),
                }
            }
            let bm = alg.apply_batch(batch);
            prop_assert!(bm.clean(), "batch violations: {}", bm.violations);

            let tree: Vec<(Edge, Weight)> = alg.driver().tree_edges();
            let (batched, qm) = alg.answer_queries(&pool);
            prop_assert!(qm.clean(), "query violations: {}", qm.violations);
            prop_assert_eq!(qm.queries, pool.len());
            let (looped, _) = dmpc_core::answer_queries_looped(&mut alg, &pool);
            prop_assert_eq!(&batched, &looped, "batched != looped");
            for (&q, &a) in pool.iter().zip(&batched) {
                check_answer(&g, &tree, q, a)?;
            }
            // ComponentOf answers are mutually consistent with the ground
            // truth partition: equal labels iff connected.
            let comp_qs: Vec<(V, V)> = pool.iter().zip(&batched).filter_map(|(&q, &a)| {
                match (q, a) {
                    (Query::ComponentOf(v), QueryAnswer::Component(c)) => Some((v, c)),
                    _ => None,
                }
            }).collect();
            let labels = g.components();
            for &(v1, c1) in &comp_qs {
                for &(v2, c2) in &comp_qs {
                    prop_assert_eq!(
                        c1 == c2,
                        labels[v1 as usize] == labels[v2 as usize],
                        "ComponentOf({}) / ComponentOf({})", v1, v2
                    );
                }
            }
            // Reads left no trace: the structural audits still pass.
            alg.driver().audit().map_err(TestCaseError::fail)?;
            alg.driver().audit_directory().map_err(TestCaseError::fail)?;
        }
    }

    /// MST mode: the same interleaving over weighted streams, including
    /// path-max queries checked against a BFS over the maintained forest.
    #[test]
    fn mst_queries_interleave_with_updates(
        ops in proptest::collection::vec((0u32..18, 0u32..18, any::<bool>()), 1..90),
        qseeds in proptest::collection::vec((0u32..18, 0u32..18, 0u8..3), 4..30),
        stride in 1usize..12
    ) {
        let n = 18usize;
        let params = DmpcParams::new(n, 110);
        let mut alg = DmpcMst::new(params, 0.1);
        let mut g = DynamicGraph::new(n);
        let stream = valid_stream(n, ops);
        let wstream = dmpc_graph::streams::with_weights(&stream, 30, 5);
        let pool = pool_from(n as u32, &qseeds);
        for (i, &u) in wstream.iter().enumerate() {
            match u.unweighted() {
                Update::Insert(e) => g.insert(e).unwrap(),
                Update::Delete(e) => g.delete(e).unwrap(),
            }
            let m = alg.apply(u);
            prop_assert!(m.clean(), "violations: {:?}", m.violations);
            if i % stride != 0 {
                continue;
            }
            let tree: Vec<(Edge, Weight)> = alg.driver().tree_edges();
            let (batched, qm) = alg.answer_queries(&pool);
            prop_assert!(qm.clean(), "query violations: {}", qm.violations);
            let (looped, _) = dmpc_core::answer_queries_looped(&mut alg, &pool);
            prop_assert_eq!(&batched, &looped, "batched != looped");
            for (&q, &a) in pool.iter().zip(&batched) {
                check_answer(&g, &tree, q, a)?;
            }
            alg.driver().audit().map_err(TestCaseError::fail)?;
        }
    }
}
