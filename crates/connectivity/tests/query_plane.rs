//! The query plane (PR 5): batched waves answer in O(1) rounds, send O(q)
//! words through the same metered outbox as updates, never mutate state,
//! and agree bit-identically with looped single queries and ground truth.

use dmpc_connectivity::{DmpcConnectivity, DmpcMst};
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm, QueryableAlgorithm};
use dmpc_graph::streams;
use dmpc_graph::{DynamicGraph, Edge, Query, QueryAnswer, Update, Weight, V};
use dmpc_mpc::ExecOptions;

fn build(n: usize, steps: usize, seed: u64) -> (DmpcConnectivity, DynamicGraph) {
    let params = DmpcParams::new(n, 3 * n);
    let mut alg = DmpcConnectivity::new(params);
    let ups = streams::churn_stream(n, 2 * n, steps, 0.5, seed);
    let mut g = DynamicGraph::new(n);
    for &u in &ups {
        match u {
            Update::Insert(e) => g.insert(e).unwrap(),
            Update::Delete(e) => g.delete(e).unwrap(),
        }
        let m = alg.apply(u);
        assert!(m.clean());
    }
    (alg, g)
}

fn conn_pool(n: usize) -> Vec<Query> {
    // A deterministic mix covering both kinds and both verdicts.
    (0..64u32)
        .map(|i| {
            let a = (7 * i + 3) % n as V;
            let b = (11 * i + 5) % n as V;
            if i % 3 == 0 || a == b {
                Query::ComponentOf(a)
            } else {
                Query::Connected(a, b)
            }
        })
        .collect()
}

#[test]
fn batched_answers_match_looped_and_ground_truth() {
    let n = 48;
    let (mut alg, g) = build(n, 160, 7);
    let pool = conn_pool(n);
    let labels = g.components();
    let (batched, qm) = alg.answer_queries(&pool);
    assert!(qm.clean());
    assert_eq!(qm.queries, pool.len());
    for (q, a) in pool.iter().zip(&batched) {
        let (looped, single) = alg.answer_query(*q);
        assert_eq!(*a, looped, "batched vs looped diverged on {q:?}");
        assert!(single.clean());
        match (*q, *a) {
            (Query::Connected(u, v), QueryAnswer::Bool(conn)) => {
                assert_eq!(conn, labels[u as usize] == labels[v as usize], "{q:?}");
            }
            (Query::ComponentOf(u), QueryAnswer::Component(c)) => {
                // Component ids equal the driver's own extraction.
                assert_eq!(c, alg.driver().comp_of(u), "{q:?}");
            }
            other => panic!("unexpected answer shape {other:?}"),
        }
    }
    // Waves share rounds: the whole batch costs O(1) rounds, the loop pays
    // per query.
    let (_, looped_qm) = dmpc_core::answer_queries_looped(&mut alg, &pool);
    assert!(qm.amortized_rounds() < looped_qm.amortized_rounds());
    assert!(looped_qm.amortized_rounds() >= 1.0);
}

/// The satellite fix test: query-wave sends flow through the same
/// `Outbox::queued_words` counter as the update path, so the per-pair flow
/// map accounts for every queried word and a q-query batch totals O(q)
/// words — nothing on the read path bypasses the metering.
#[test]
fn query_wave_words_flow_through_the_metered_outbox() {
    let n = 64;
    let params = DmpcParams::new(n, 3 * n);
    // Flow tracking is on by default in the driver config.
    let mut alg = DmpcConnectivity::with_exec(params, ExecOptions::default());
    let ups = streams::churn_stream(n, 2 * n, 100, 0.5, 11);
    for &u in &ups {
        alg.apply(u);
    }
    let q = 32usize; // one wave: q <= sqrt N, so no driver chunking
    let pool: Vec<Query> = (0..q as u32)
        .map(|i| Query::Connected(i % n as V, (i * 5 + 1) % n as V))
        .collect();
    let (answers, m) = alg.driver_mut().query_wave(&pool);
    assert_eq!(answers.len(), q);
    assert!(m.clean());
    // The wave is not silently unmetered, and each Connected query costs at
    // most two 4-word joins (self-rendezvous joins are local and free):
    // O(q) words total.
    assert!(m.total_words > 0, "query traffic must be metered");
    assert!(
        m.total_words <= 8 * q,
        "O(q) bound violated: {} words for {q} queries",
        m.total_words
    );
    // The flow map accounts for exactly the metered words, and no machine
    // ever messages itself on the query path.
    let flow_sum: u64 = m.flows.values().sum();
    assert_eq!(flow_sum as usize, m.total_words);
    assert!(!m.flows.is_empty());
    for &(src, dst) in m.flows.keys() {
        assert_ne!(src, dst, "self-flow on the query path");
    }
    // Rounds: the whole Connected wave resolves in two rounds.
    assert!(m.rounds <= 2, "wave took {} rounds", m.rounds);
}

#[test]
fn query_waves_never_mutate_state() {
    let n = 40;
    let (mut alg, g) = build(n, 120, 3);
    let before: Vec<_> = alg.component_labels();
    alg.driver().audit().unwrap();
    alg.driver().audit_directory().unwrap();
    let pool = conn_pool(n);
    for _ in 0..3 {
        let (_, qm) = alg.answer_queries(&pool);
        assert!(qm.clean());
    }
    // State: labels, audits, and the ground truth all still hold.
    assert_eq!(before, alg.component_labels());
    alg.driver().audit().unwrap();
    alg.driver().audit_directory().unwrap();
    // Updates after query waves behave normally.
    let mut g = g;
    let e = Edge::new(0, (n / 2) as V);
    if !g.has_edge(e) {
        g.insert(e).unwrap();
        let m = alg.insert(e);
        assert!(m.clean());
        assert!(alg.connected(e.u, e.v));
    }
}

#[test]
fn degenerate_and_unsupported_queries_answer_locally() {
    let (mut alg, _) = build(24, 60, 5);
    let (answers, qm) = alg.answer_queries(&[
        Query::Connected(3, 3),
        Query::PathMax(7, 7),
        Query::MatchingSize,
        Query::IsMatched(1),
    ]);
    assert_eq!(
        answers,
        vec![
            QueryAnswer::Bool(true),
            QueryAnswer::PathMax(None),
            QueryAnswer::Unsupported,
            QueryAnswer::Unsupported,
        ]
    );
    // All four resolve without any machine involvement.
    assert_eq!(qm.rounds, 0);
    assert_eq!(qm.total_words, 0);
    assert!(qm.clean());
}

/// Ground-truth path max over the maintained forest: BFS the tree path and
/// fold with the same (weight desc, edge asc) tie-break as the machines.
fn path_max_reference(n: usize, tree: &[(Edge, Weight)], u: V, v: V) -> Option<(Edge, Weight)> {
    let mut adj: Vec<Vec<(V, Edge, Weight)>> = vec![Vec::new(); n];
    for &(e, w) in tree {
        adj[e.u as usize].push((e.v, e, w));
        adj[e.v as usize].push((e.u, e, w));
    }
    let mut prev: Vec<Option<(V, Edge, Weight)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([u]);
    seen[u as usize] = true;
    while let Some(x) = queue.pop_front() {
        for &(y, e, w) in &adj[x as usize] {
            if !seen[y as usize] {
                seen[y as usize] = true;
                prev[y as usize] = Some((x, e, w));
                queue.push_back(y);
            }
        }
    }
    if u == v || !seen[v as usize] {
        return None;
    }
    let mut best: Option<(Weight, Edge)> = None;
    let mut x = v;
    while x != u {
        let (p, e, w) = prev[x as usize].unwrap();
        let better = match best {
            None => true,
            Some((bw, be)) => w > bw || (w == bw && e < be),
        };
        if better {
            best = Some((w, e));
        }
        x = p;
    }
    best.map(|(w, e)| (e, w))
}

#[test]
fn mst_path_max_queries_match_the_maintained_forest() {
    let n = 40usize;
    let params = DmpcParams::new(n, 3 * n);
    let mut alg = DmpcMst::new(params, 0.1);
    let ups = streams::churn_stream(n, 2 * n, 140, 0.5, 13);
    let wups = streams::with_weights(&ups, 50, 13);
    for &u in &wups {
        use dmpc_core::WeightedDynamicGraphAlgorithm;
        let m = alg.apply(u);
        assert!(m.clean());
    }
    let tree = alg.driver().tree_edges();
    let pool: Vec<Query> = (0..n as V)
        .flat_map(|a| [Query::PathMax(a, (a + 7) % n as V), Query::PathMax(a, a)])
        .collect();
    let (batched, qm) = alg.answer_queries(&pool);
    assert!(qm.clean());
    for (q, a) in pool.iter().zip(&batched) {
        let Query::PathMax(u, v) = *q else {
            unreachable!()
        };
        let (looped, _) = alg.answer_query(*q);
        assert_eq!(*a, looped);
        assert_eq!(
            *a,
            QueryAnswer::PathMax(path_max_reference(n, &tree, u, v)),
            "PathMax({u},{v})"
        );
    }
}
