//! Holm–de Lichtenberg–Thorup fully-dynamic connectivity.
//!
//! One Euler-tour-tree forest per level `0..=L` (`L = ceil(log2 n)`);
//! forest `F_i` spans the edges of level `>= i`. A deleted tree edge of
//! level `l` triggers the standard replacement search: push the smaller
//! side's level-`l` tree edges down to level `l+1`, then scan its level-`l`
//! non-tree edges — each either reconnects (becomes a tree edge) or is
//! pushed to level `l+1`, paying for itself. Amortized O(log^2 n).

use crate::ProbeCounted;
use dmpc_eulertour::EttForest;
use dmpc_graph::{Edge, V};
use std::collections::{BTreeSet, HashMap};

/// Fully-dynamic connectivity structure.
pub struct HdtConnectivity {
    n: usize,
    levels: Vec<EttForest>,
    /// Per level, per vertex: incident non-tree edges at exactly that level.
    nontree: Vec<Vec<BTreeSet<V>>>,
    /// level and tree-flag of each live edge.
    edges: HashMap<Edge, (usize, bool)>,
    probes: u64,
}

impl HdtConnectivity {
    /// Creates the structure on `n` vertices.
    pub fn new(n: usize) -> Self {
        let l_max = (n.max(2) as f64).log2().ceil() as usize + 2;
        HdtConnectivity {
            n,
            levels: (0..l_max)
                .map(|i| EttForest::new(n, 0x4d7 ^ i as u64))
                .collect(),
            nontree: vec![vec![BTreeSet::new(); n]; l_max],
            edges: HashMap::new(),
            probes: 0,
        }
    }

    fn probe(&mut self, k: u64) {
        self.probes += k;
    }

    /// True if `a` and `b` are connected.
    pub fn connected(&mut self, a: V, b: V) -> bool {
        self.probe(2);
        self.levels[0].connected(a, b)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    fn set_vertex_mark(&mut self, level: usize, v: V) {
        let has = !self.nontree[level][v as usize].is_empty();
        self.levels[level].mark_vertex(v, has);
        self.probes += 1;
    }

    /// Inserts edge `e` (must be absent).
    pub fn insert(&mut self, e: Edge) {
        assert!(!self.edges.contains_key(&e), "duplicate edge {e}");
        self.probe(4);
        if !self.levels[0].connected(e.u, e.v) {
            self.levels[0].link(e.u, e.v);
            self.levels[0].mark_edge(e, true);
            self.edges.insert(e, (0, true));
        } else {
            self.nontree[0][e.u as usize].insert(e.v);
            self.nontree[0][e.v as usize].insert(e.u);
            self.set_vertex_mark(0, e.u);
            self.set_vertex_mark(0, e.v);
            self.edges.insert(e, (0, false));
        }
    }

    /// Deletes edge `e` (must be present).
    pub fn delete(&mut self, e: Edge) {
        let (level, is_tree) = self.edges.remove(&e).expect("absent edge");
        self.probe(4);
        if !is_tree {
            self.nontree[level][e.u as usize].remove(&e.v);
            self.nontree[level][e.v as usize].remove(&e.u);
            self.set_vertex_mark(level, e.u);
            self.set_vertex_mark(level, e.v);
            return;
        }
        // Cut from every forest containing it, then search replacements.
        self.levels[level].mark_edge(e, false);
        for i in 0..=level {
            self.levels[i].cut(e.u, e.v);
            self.probes += 1;
        }
        for i in (0..=level).rev() {
            if let Some(r) = self.search_replacement(i, e) {
                // Reconnect with r as a tree edge at level i.
                self.nontree[i][r.u as usize].remove(&r.v);
                self.nontree[i][r.v as usize].remove(&r.u);
                self.set_vertex_mark(i, r.u);
                self.set_vertex_mark(i, r.v);
                for j in 0..=i {
                    self.levels[j].link(r.u, r.v);
                    self.probes += 1;
                }
                self.levels[i].mark_edge(r, true);
                self.edges.insert(r, (i, true));
                return;
            }
        }
    }

    /// The replacement search at level `i` for the cut edge `e`.
    fn search_replacement(&mut self, i: usize, e: Edge) -> Option<Edge> {
        // Smaller side first (drives the amortization).
        let (su, sv) = (self.levels[i].tree_size(e.u), self.levels[i].tree_size(e.v));
        self.probe(2);
        let (small, other) = if su <= sv { (e.u, e.v) } else { (e.v, e.u) };
        // 1. Promote the small side's level-i tree edges to level i+1.
        while let Some(t) = self.levels[i].find_marked_edge(small) {
            self.probe(4);
            self.levels[i].mark_edge(t, false);
            self.levels[i + 1].link(t.u, t.v);
            self.levels[i + 1].mark_edge(t, true);
            self.edges.insert(t, (i + 1, true));
        }
        // 2. Scan the small side's level-i non-tree edges.
        while let Some(x) = self.levels[i].find_marked_vertex(small) {
            let nbrs: Vec<V> = self.nontree[i][x as usize].iter().copied().collect();
            for y in nbrs {
                self.probe(3);
                if self.levels[i].connected(y, other) {
                    return Some(Edge::new(x, y));
                }
                // Not a replacement: push to level i+1.
                self.nontree[i][x as usize].remove(&y);
                self.nontree[i][y as usize].remove(&x);
                self.nontree[i + 1][x as usize].insert(y);
                self.nontree[i + 1][y as usize].insert(x);
                self.set_vertex_mark(i, y);
                self.set_vertex_mark(i + 1, x);
                self.set_vertex_mark(i + 1, y);
            }
            self.set_vertex_mark(i, x);
        }
        None
    }
}

impl ProbeCounted for HdtConnectivity {
    fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::{streams, UnionFind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_union_find_recompute() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..8 {
            let n = 32;
            let mut hdt = HdtConnectivity::new(n);
            let mut live: Vec<Edge> = Vec::new();
            for _ in 0..300 {
                let a = rng.gen_range(0..n as V);
                let b = rng.gen_range(0..n as V);
                if a == b {
                    continue;
                }
                let e = Edge::new(a, b);
                let present = live.contains(&e);
                if !present && rng.gen_bool(0.6) {
                    hdt.insert(e);
                    live.push(e);
                } else if present {
                    hdt.delete(e);
                    live.retain(|&x| x != e);
                }
                let mut uf = UnionFind::new(n);
                for le in &live {
                    uf.union(le.u, le.v);
                }
                for _ in 0..8 {
                    let x = rng.gen_range(0..n as V);
                    let y = rng.gen_range(0..n as V);
                    assert_eq!(hdt.connected(x, y), uf.same(x, y), "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn tree_churn_worst_case() {
        let n = 64;
        let mut hdt = HdtConnectivity::new(n);
        let ups = streams::tree_churn_stream(n, 150, 3);
        let mut uf_edges: Vec<Edge> = Vec::new();
        for u in &ups {
            match *u {
                streams::Update::Insert(e) => {
                    hdt.insert(e);
                    uf_edges.push(e);
                }
                streams::Update::Delete(e) => {
                    hdt.delete(e);
                    uf_edges.retain(|&x| x != e);
                }
            }
        }
        let mut uf = UnionFind::new(n);
        for e in &uf_edges {
            uf.union(e.u, e.v);
        }
        for v in 1..n as V {
            assert_eq!(hdt.connected(0, v), uf.same(0, v));
        }
    }

    #[test]
    fn probes_stay_polylog_amortized() {
        let n = 128;
        let mut hdt = HdtConnectivity::new(n);
        let ups = streams::churn_stream(n, 2 * n, 600, 0.5, 1);
        let mut total = 0u64;
        let mut count = 0u64;
        for u in &ups {
            match *u {
                streams::Update::Insert(e) => hdt.insert(e),
                streams::Update::Delete(e) => hdt.delete(e),
            }
            total += hdt.take_probes();
            count += 1;
        }
        let avg = total as f64 / count as f64;
        let lg = (n as f64).log2();
        assert!(
            avg <= 40.0 * lg * lg,
            "amortized probes {avg} exceed polylog budget"
        );
    }
}
