//! A simple exact sequential fully-dynamic minimum spanning forest.
//!
//! Maintains the MSF over the indexed Euler-tour forest: an insertion that
//! closes a cycle swaps out the maximum-weight path edge if beneficial
//! (path membership via the paper's ancestor tests); a deleted tree edge is
//! replaced by the minimum-weight crossing edge. Searches are linear scans
//! over the component's edges, all probe-counted — this substitutes for the
//! polylog structure of Holm et al. \[21\] in Table 1's reduction row 8 (the
//! reduction itself is agnostic to the inner structure; only the measured
//! probe counts differ, and EXPERIMENTS.md reports them as measured).

use crate::ProbeCounted;
use dmpc_eulertour::IndexedForest;
use dmpc_graph::{Edge, Weight, V};
use std::collections::HashMap;

/// Sequential exact dynamic MSF.
pub struct SeqDynMst {
    forest: IndexedForest,
    weights: HashMap<Edge, Weight>,
    probes: u64,
}

impl SeqDynMst {
    /// Creates the structure on `n` vertices.
    pub fn new(n: usize) -> Self {
        SeqDynMst {
            forest: IndexedForest::new(n),
            weights: HashMap::new(),
            probes: 0,
        }
    }

    /// Total weight of the maintained forest.
    pub fn forest_weight(&self) -> Weight {
        self.forest.tree_edges().map(|e| self.weights[&e]).sum()
    }

    /// True if `a` and `b` are connected.
    pub fn connected(&self, a: V, b: V) -> bool {
        self.forest.connected(a, b)
    }

    /// Inserts edge `e` with weight `w`.
    pub fn insert(&mut self, e: Edge, w: Weight) {
        assert!(self.weights.insert(e, w).is_none(), "duplicate edge {e}");
        self.probes += 2;
        if !self.forest.connected(e.u, e.v) {
            self.forest.link(e.u, e.v);
            self.probes += self.forest.tree_size(e.u) as u64;
            return;
        }
        // Max-weight tree edge on the path u..v (the paper's Section 5.1
        // ancestor test per tree edge).
        let comp_edges: Vec<Edge> = self
            .forest
            .tree_edges()
            .filter(|&t| self.forest.comp_of(t.u) == self.forest.comp_of(e.u))
            .collect();
        self.probes += comp_edges.len() as u64;
        let on_path: Option<(Weight, Edge)> = comp_edges
            .into_iter()
            .filter(|&t| self.forest.on_path(t, e.u, e.v))
            .map(|t| (self.weights[&t], t))
            .max();
        if let Some((mw, me)) = on_path {
            if mw > w {
                self.forest.cut(me.u, me.v);
                self.forest.link(e.u, e.v);
                self.probes += 2 * self.forest.tree_size(e.u) as u64;
            }
        }
    }

    /// Deletes edge `e`.
    pub fn delete(&mut self, e: Edge) {
        self.weights.remove(&e).expect("absent edge");
        self.probes += 2;
        if !self.forest.is_tree_edge(e) {
            return;
        }
        self.forest.cut(e.u, e.v);
        self.probes += self.forest.tree_size(e.u) as u64;
        // Minimum crossing replacement.
        let (ca, cb) = (self.forest.comp_of(e.u), self.forest.comp_of(e.v));
        let mut best: Option<(Weight, Edge)> = None;
        for (&c, &w) in &self.weights {
            self.probes += 1;
            let (x, y) = (self.forest.comp_of(c.u), self.forest.comp_of(c.v));
            if (x == ca && y == cb) || (x == cb && y == ca) {
                let cand = (w, c);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        if let Some((_, r)) = best {
            self.forest.link(r.u, r.v);
            self.probes += self.forest.tree_size(r.u) as u64;
        }
    }
}

impl ProbeCounted for SeqDynMst {
    fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::mst::msf_weight;
    use dmpc_graph::streams::{self, WeightedUpdate};

    #[test]
    fn tracks_kruskal_exactly() {
        for seed in 0..4 {
            let n = 24;
            let mut alg = SeqDynMst::new(n);
            let mut live: Vec<(Edge, Weight)> = Vec::new();
            let ups =
                streams::with_weights(&streams::churn_stream(n, 50, 150, 0.5, seed), 100, seed);
            for (step, &u) in ups.iter().enumerate() {
                match u {
                    WeightedUpdate::Insert(e, w) => {
                        live.push((e, w));
                        alg.insert(e, w);
                    }
                    WeightedUpdate::Delete(e) => {
                        live.retain(|&(x, _)| x != e);
                        alg.delete(e);
                    }
                }
                assert_eq!(
                    alg.forest_weight(),
                    msf_weight(n, &live),
                    "seed {seed} step {step}"
                );
            }
        }
    }
}
