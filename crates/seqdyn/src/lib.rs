//! Sequential fully-dynamic graph algorithms with **probe counting**.
//!
//! These are the inputs to the paper's Section 7 black-box reduction: a
//! sequential dynamic algorithm with update time `u(N)` becomes a DMPC
//! algorithm running in `O(u(N))` rounds with O(1) active machines and O(1)
//! communication per round, one round (-trip) per memory probe. Every
//! structure here counts its probes (data-structure accesses) so the
//! reduction can meter rounds faithfully.
//!
//! * [`HdtConnectivity`] — Holm–de Lichtenberg–Thorup fully-dynamic
//!   connectivity: Euler-tour-tree forests per level with edge-level
//!   promotion (amortized O(log^2 n) probes per update). Backs Table 1's
//!   "Connected comps, ~O(1) rounds amortized, deterministic" reduction row.
//! * [`NsMatching`] — Neiman–Solomon-style sequential fully-dynamic maximal
//!   matching with the heavy/light threshold (O(sqrt m) worst-case probes).
//!   Backs the "Maximal matching" reduction row (the paper cites Solomon's
//!   O(1)-amortized randomized variant \[31\]; this deterministic
//!   O(sqrt m)-worst-case structure is the one the Section 3 algorithm is
//!   built from, and the reduction preserves its characteristics).
//! * [`SeqDynMst`] — a simple exact fully-dynamic MSF over the indexed
//!   Euler-tour forest (path-max swap on insert, min replacement on delete;
//!   linear-scan searches, probe-counted). Backs the "MST" reduction row;
//!   the polylog structure of \[21\] is a documented substitution.
//!
//! # Example
//!
//! ```
//! use dmpc_graph::Edge;
//! use dmpc_seqdyn::{HdtConnectivity, ProbeCounted};
//!
//! let mut hdt = HdtConnectivity::new(8);
//! hdt.insert(Edge::new(0, 1));
//! hdt.insert(Edge::new(1, 2));
//! assert!(hdt.connected(0, 2));
//! assert!(hdt.take_probes() > 0); // every operation is probe-metered
//! hdt.delete(Edge::new(1, 2));
//! assert!(!hdt.connected(0, 2));
//! ```

pub mod hdt;
pub mod mst;
pub mod ns;

pub use hdt::HdtConnectivity;
pub use mst::SeqDynMst;
pub use ns::NsMatching;

/// A probe-counted sequential dynamic algorithm (the reduction's input).
pub trait ProbeCounted {
    /// Probes consumed since the last call to [`ProbeCounted::take_probes`].
    fn take_probes(&mut self) -> u64;
}
