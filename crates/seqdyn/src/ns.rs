//! Neiman–Solomon-style sequential fully-dynamic maximal matching with
//! O(sqrt(2 m_max)) worst-case probes per update.
//!
//! The same heavy/light idea as the paper's Section 3 (which adapts this
//! exact structure to DMPC): a deletion that frees a vertex `z` scans at
//! most `tau = ceil(sqrt(2 m_max))` of its neighbors; if all are matched,
//! one of them must have a light mate (else the mates' degrees would sum
//! past 2m), which `z` steals; the stolen light mate rematches by scanning
//! its own (<= tau) neighbors.

use crate::ProbeCounted;
use dmpc_graph::matching::Matching;
use dmpc_graph::{Edge, V};
use std::collections::BTreeSet;

/// Sequential fully-dynamic maximal matching.
pub struct NsMatching {
    adj: Vec<BTreeSet<V>>,
    mate: Vec<Option<V>>,
    tau: usize,
    probes: u64,
}

impl NsMatching {
    /// Creates the structure for `n` vertices and at most `m_max` edges.
    pub fn new(n: usize, m_max: usize) -> Self {
        NsMatching {
            adj: vec![BTreeSet::new(); n],
            mate: vec![None; n],
            tau: ((2.0 * m_max.max(1) as f64).sqrt()).ceil() as usize,
            probes: 0,
        }
    }

    /// The heavy/light threshold in use.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Extracts the maintained matching.
    pub fn matching(&self) -> Matching {
        let mut edges = Vec::new();
        for v in 0..self.adj.len() as V {
            if let Some(m) = self.mate[v as usize] {
                if v < m {
                    edges.push(Edge::new(v, m));
                }
            }
        }
        Matching::from_edges(&edges)
    }

    fn free(&self, v: V) -> bool {
        self.mate[v as usize].is_none()
    }

    /// Tries to match the free vertex `z`, scanning at most `tau` neighbors
    /// and stealing a light mate if every scanned neighbor is matched.
    fn rematch(&mut self, z: V) {
        debug_assert!(self.free(z));
        let scan: Vec<V> = self.adj[z as usize]
            .iter()
            .copied()
            .take(self.tau)
            .collect();
        self.probes += scan.len() as u64 + 1;
        // A free neighbor?
        if let Some(&q) = scan.iter().find(|&&q| self.free(q)) {
            self.mate[z as usize] = Some(q);
            self.mate[q as usize] = Some(z);
            return;
        }
        if self.adj[z as usize].len() <= self.tau {
            // Light and saturated: all neighbors matched, maximality holds.
            return;
        }
        // Heavy with tau matched neighbors: one has a light mate.
        for &w in &scan {
            let wm = self.mate[w as usize].expect("scanned neighbor matched");
            self.probes += 1;
            if self.adj[wm as usize].len() <= self.tau {
                // Steal w; rematch its light former mate.
                self.mate[wm as usize] = None;
                self.mate[z as usize] = Some(w);
                self.mate[w as usize] = Some(z);
                self.rematch_light(wm);
                return;
            }
        }
        unreachable!("counting argument: some scanned neighbor has a light mate");
    }

    /// Rematch for a light vertex: full scan.
    fn rematch_light(&mut self, z: V) {
        debug_assert!(self.adj[z as usize].len() <= self.tau);
        self.probes += self.adj[z as usize].len() as u64 + 1;
        let q = self.adj[z as usize].iter().copied().find(|&q| self.free(q));
        if let Some(q) = q {
            self.mate[z as usize] = Some(q);
            self.mate[q as usize] = Some(z);
        }
    }

    /// Inserts edge `e`.
    pub fn insert(&mut self, e: Edge) {
        self.probes += 2;
        self.adj[e.u as usize].insert(e.v);
        self.adj[e.v as usize].insert(e.u);
        if self.free(e.u) && self.free(e.v) {
            self.mate[e.u as usize] = Some(e.v);
            self.mate[e.v as usize] = Some(e.u);
        }
    }

    /// Deletes edge `e`.
    pub fn delete(&mut self, e: Edge) {
        self.probes += 2;
        self.adj[e.u as usize].remove(&e.v);
        self.adj[e.v as usize].remove(&e.u);
        if self.mate[e.u as usize] == Some(e.v) {
            self.mate[e.u as usize] = None;
            self.mate[e.v as usize] = None;
            self.rematch(e.u);
            if self.free(e.v) {
                self.rematch(e.v);
            }
        }
    }
}

impl ProbeCounted for NsMatching {
    fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::matching::{is_maximal_matching, is_valid_matching};
    use dmpc_graph::streams::{self, Update};
    use dmpc_graph::DynamicGraph;

    #[test]
    fn maximal_under_churn() {
        for seed in 0..4 {
            let n = 48;
            let mut ns = NsMatching::new(n, 400);
            let mut g = DynamicGraph::new(n);
            let ups = streams::churn_stream(n, 120, 400, 0.5, seed);
            for (step, &u) in ups.iter().enumerate() {
                match u {
                    Update::Insert(e) => {
                        g.insert(e).unwrap();
                        ns.insert(e);
                    }
                    Update::Delete(e) => {
                        g.delete(e).unwrap();
                        ns.delete(e);
                    }
                }
                let m = ns.matching();
                assert!(is_valid_matching(&g, &m), "seed {seed} step {step}");
                assert!(is_maximal_matching(&g, &m), "seed {seed} step {step}");
            }
        }
    }

    #[test]
    fn probes_bounded_by_tau() {
        let n = 128;
        let m_max = 1024;
        let mut ns = NsMatching::new(n, m_max);
        let ups = streams::churn_stream(n, 600, 500, 0.5, 7);
        for u in &ups {
            match *u {
                Update::Insert(e) => ns.insert(e),
                Update::Delete(e) => ns.delete(e),
            }
            let p = ns.take_probes();
            // Worst case: two rematches + a steal rematch, each <= tau + O(1).
            assert!(p <= 6 * ns.tau() as u64 + 24, "probes {p}");
        }
    }

    #[test]
    fn star_graph_heavy_center() {
        let n = 40;
        let mut ns = NsMatching::new(n, 48);
        let mut g = DynamicGraph::new(n);
        let edges: Vec<Edge> = (1..n as V).map(|v| Edge::new(0, v)).collect();
        for &e in &edges {
            g.insert(e).unwrap();
            ns.insert(e);
        }
        for &e in edges.iter().rev() {
            g.delete(e).unwrap();
            ns.delete(e);
            let m = ns.matching();
            assert!(is_maximal_matching(&g, &m));
        }
    }
}
