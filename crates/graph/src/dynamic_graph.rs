//! A simple dynamic graph used as ground truth by all verification code.
//!
//! The DMPC algorithms keep their own distributed state; tests replay the same
//! update stream into a [`DynamicGraph`] and cross-check solutions against it.

use crate::{Edge, V};
use std::collections::BTreeSet;

/// Errors returned by [`DynamicGraph`] mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// The edge already exists (on insert).
    DuplicateEdge(Edge),
    /// The edge does not exist (on delete).
    MissingEdge(Edge),
    /// An endpoint is out of range.
    VertexOutOfRange(V),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DuplicateEdge(e) => write!(f, "edge {e} already present"),
            GraphError::MissingEdge(e) => write!(f, "edge {e} not present"),
            GraphError::VertexOutOfRange(v) => write!(f, "vertex {v} out of range"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph on vertices `0..n` supporting edge insertions
/// and deletions. Adjacency is kept in ordered sets so iteration order is
/// deterministic (important for reproducible experiments).
#[derive(Clone, Debug, Default)]
pub struct DynamicGraph {
    adj: Vec<BTreeSet<V>>,
    m: usize,
}

impl DynamicGraph {
    /// Creates an empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            adj: vec![BTreeSet::new(); n],
            m: 0,
        }
    }

    /// Creates a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut g = DynamicGraph::new(n);
        for &e in edges {
            g.insert(e).expect("duplicate edge in from_edges");
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges currently present.
    pub fn m(&self) -> usize {
        self.m
    }

    fn check(&self, e: Edge) -> Result<(), GraphError> {
        if (e.u as usize) >= self.n() {
            return Err(GraphError::VertexOutOfRange(e.u));
        }
        if (e.v as usize) >= self.n() {
            return Err(GraphError::VertexOutOfRange(e.v));
        }
        Ok(())
    }

    /// Inserts an edge; errors if it is already present.
    pub fn insert(&mut self, e: Edge) -> Result<(), GraphError> {
        self.check(e)?;
        if !self.adj[e.u as usize].insert(e.v) {
            return Err(GraphError::DuplicateEdge(e));
        }
        self.adj[e.v as usize].insert(e.u);
        self.m += 1;
        Ok(())
    }

    /// Deletes an edge; errors if it is absent.
    pub fn delete(&mut self, e: Edge) -> Result<(), GraphError> {
        self.check(e)?;
        if !self.adj[e.u as usize].remove(&e.v) {
            return Err(GraphError::MissingEdge(e));
        }
        self.adj[e.v as usize].remove(&e.u);
        self.m -= 1;
        Ok(())
    }

    /// True if the edge is present.
    pub fn has_edge(&self, e: Edge) -> bool {
        self.adj.get(e.u as usize).is_some_and(|s| s.contains(&e.v))
    }

    /// Degree of `v`.
    pub fn degree(&self, v: V) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterates over the neighbors of `v` in increasing order.
    pub fn neighbors(&self, v: V) -> impl Iterator<Item = V> + '_ {
        self.adj[v as usize].iter().copied()
    }

    /// Iterates over all edges in normalized, sorted order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&v| (u as V) < v)
                .map(move |&v| Edge { u: u as V, v })
        })
    }

    /// Connected component labels computed from scratch (BFS). Labels are the
    /// minimum vertex id in each component.
    pub fn components(&self) -> Vec<V> {
        let n = self.n();
        let mut label = vec![V::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            if label[s] != V::MAX {
                continue;
            }
            label[s] = s as V;
            queue.push_back(s as V);
            while let Some(x) = queue.pop_front() {
                for y in self.neighbors(x) {
                    if label[y as usize] == V::MAX {
                        label[y as usize] = s as V;
                        queue.push_back(y);
                    }
                }
            }
        }
        label
    }

    /// True if `a` and `b` are in the same connected component (BFS check).
    pub fn connected(&self, a: V, b: V) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.n()];
        let mut queue = std::collections::VecDeque::new();
        seen[a as usize] = true;
        queue.push_back(a);
        while let Some(x) = queue.pop_front() {
            if x == b {
                return true;
            }
            for y in self.neighbors(x) {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    queue.push_back(y);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_roundtrip() {
        let mut g = DynamicGraph::new(4);
        let e = Edge::new(0, 2);
        g.insert(e).unwrap();
        assert!(g.has_edge(e));
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.insert(e), Err(GraphError::DuplicateEdge(e)));
        g.delete(e).unwrap();
        assert!(!g.has_edge(e));
        assert_eq!(g.delete(e), Err(GraphError::MissingEdge(e)));
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = DynamicGraph::new(3);
        assert_eq!(
            g.insert(Edge::new(0, 5)),
            Err(GraphError::VertexOutOfRange(5))
        );
    }

    #[test]
    fn components_and_connected() {
        let mut g = DynamicGraph::new(6);
        g.insert(Edge::new(0, 1)).unwrap();
        g.insert(Edge::new(1, 2)).unwrap();
        g.insert(Edge::new(3, 4)).unwrap();
        let labels = g.components();
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert!(g.connected(0, 2));
        assert!(!g.connected(0, 3));
        assert!(g.connected(5, 5));
    }

    #[test]
    fn edges_iterates_sorted_normalized() {
        let mut g = DynamicGraph::new(5);
        g.insert(Edge::new(4, 1)).unwrap();
        g.insert(Edge::new(0, 3)).unwrap();
        let es: Vec<Edge> = g.edges().collect();
        assert_eq!(es, vec![Edge::new(0, 3), Edge::new(1, 4)]);
    }
}
