//! Update streams: the sequences of edge insertions/deletions that drive the
//! dynamic algorithms, plus generators for the workload patterns used in the
//! paper-shaped experiments.

use crate::{DynamicGraph, Edge, Weight, V};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An unweighted graph update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert an edge that is currently absent.
    Insert(Edge),
    /// Delete an edge that is currently present.
    Delete(Edge),
}

impl Update {
    /// The edge being inserted or deleted.
    pub fn edge(&self) -> Edge {
        match *self {
            Update::Insert(e) | Update::Delete(e) => e,
        }
    }

    /// True for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert(_))
    }
}

/// A weighted graph update (for MST maintenance).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightedUpdate {
    /// Insert an absent edge with the given weight.
    Insert(Edge, Weight),
    /// Delete a present edge.
    Delete(Edge),
}

impl WeightedUpdate {
    /// The edge being inserted or deleted.
    pub fn edge(&self) -> Edge {
        match *self {
            WeightedUpdate::Insert(e, _) | WeightedUpdate::Delete(e) => e,
        }
    }

    /// Drops weights, producing the unweighted update.
    pub fn unweighted(&self) -> Update {
        match *self {
            WeightedUpdate::Insert(e, _) => Update::Insert(e),
            WeightedUpdate::Delete(e) => Update::Delete(e),
        }
    }
}

/// Builds update streams that are *valid by construction*: inserts only absent
/// edges, deletes only present ones. Internally tracks the evolving graph.
pub struct StreamBuilder {
    rng: StdRng,
    graph: DynamicGraph,
    present: Vec<Edge>,
    updates: Vec<Update>,
}

impl StreamBuilder {
    /// A builder over `n` vertices seeded deterministically.
    pub fn new(n: usize, seed: u64) -> Self {
        StreamBuilder {
            rng: StdRng::seed_from_u64(seed),
            graph: DynamicGraph::new(n),
            present: Vec::new(),
            updates: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Edges currently present.
    pub fn m(&self) -> usize {
        self.present.len()
    }

    fn random_absent_edge(&mut self) -> Option<Edge> {
        let n = self.graph.n() as V;
        if n < 2 {
            return None;
        }
        // Rejection sampling; fine while the graph is sparse relative to n^2.
        for _ in 0..10_000 {
            let a = self.rng.gen_range(0..n);
            let b = self.rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if !self.graph.has_edge(e) {
                return Some(e);
            }
        }
        None
    }

    /// Appends a random insertion; returns the edge if one was found.
    pub fn random_insert(&mut self) -> Option<Edge> {
        let e = self.random_absent_edge()?;
        self.graph.insert(e).expect("absent edge");
        self.present.push(e);
        self.updates.push(Update::Insert(e));
        Some(e)
    }

    /// Appends a deletion of a uniformly random present edge.
    pub fn random_delete(&mut self) -> Option<Edge> {
        if self.present.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.present.len());
        let e = self.present.swap_remove(i);
        self.graph.delete(e).expect("present edge");
        self.updates.push(Update::Delete(e));
        Some(e)
    }

    /// Appends the insertion of a specific (absent) edge.
    pub fn insert(&mut self, e: Edge) {
        self.graph.insert(e).expect("insert of present edge");
        self.present.push(e);
        self.updates.push(Update::Insert(e));
    }

    /// Appends the deletion of a specific (present) edge.
    pub fn delete(&mut self, e: Edge) {
        self.graph.delete(e).expect("delete of absent edge");
        let i = self
            .present
            .iter()
            .position(|&x| x == e)
            .expect("edge tracked");
        self.present.swap_remove(i);
        self.updates.push(Update::Delete(e));
    }

    /// Finishes the stream.
    pub fn build(self) -> Vec<Update> {
        self.updates
    }
}

/// Insert `m` random edges, then churn for `steps` updates with the given
/// probability of insertion (deletions otherwise). This is the default mixed
/// workload for Table-1 experiments.
pub fn churn_stream(n: usize, m: usize, steps: usize, p_insert: f64, seed: u64) -> Vec<Update> {
    let mut b = StreamBuilder::new(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    for _ in 0..m {
        b.random_insert();
    }
    for _ in 0..steps {
        let do_insert = rng.gen_bool(p_insert) || b.m() == 0;
        if do_insert {
            if b.random_insert().is_none() {
                b.random_delete();
            }
        } else {
            b.random_delete();
        }
    }
    b.build()
}

/// Insert-only stream of `m` random edges (the paper's Section 4 algorithm
/// starts from the empty graph).
pub fn insert_only_stream(n: usize, m: usize, seed: u64) -> Vec<Update> {
    let mut b = StreamBuilder::new(n, seed);
    for _ in 0..m {
        if b.random_insert().is_none() {
            break;
        }
    }
    b.build()
}

/// Sliding-window stream: insert `window` edges, then for `steps` updates
/// alternately insert a fresh edge and delete the oldest one. Models evolving
/// social-network edges with bounded lifetime.
pub fn sliding_window_stream(n: usize, window: usize, steps: usize, seed: u64) -> Vec<Update> {
    let mut b = StreamBuilder::new(n, seed);
    let mut fifo: std::collections::VecDeque<Edge> = std::collections::VecDeque::new();
    for _ in 0..window {
        if let Some(e) = b.random_insert() {
            fifo.push_back(e);
        }
    }
    for _ in 0..steps {
        if let Some(e) = b.random_insert() {
            fifo.push_back(e);
        }
        if fifo.len() > window {
            let old = fifo.pop_front().unwrap();
            b.delete(old);
        }
    }
    b.build()
}

/// A forest-heavy stream: builds a random spanning tree then repeatedly
/// deletes a random *tree* edge and reinserts an edge reconnecting the two
/// sides. This is the worst case for connectivity/MST maintenance (every
/// deletion splits a component and forces a replacement search).
pub fn tree_churn_stream(n: usize, steps: usize, seed: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = StreamBuilder::new(n, seed ^ 0xdead_beef);
    // Random spanning tree: attach each vertex to a random earlier vertex.
    let mut tree: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n as V {
        let p = rng.gen_range(0..v);
        let e = Edge::new(p, v);
        b.insert(e);
        tree.push(e);
    }
    for _ in 0..steps {
        if tree.is_empty() {
            break;
        }
        let i = rng.gen_range(0..tree.len());
        let e = tree.swap_remove(i);
        b.delete(e);
        // Reconnect with a fresh random edge across the cut if possible,
        // otherwise reinsert the same edge.
        let replacement = e;
        b.insert(replacement);
        tree.push(replacement);
    }
    b.build()
}

/// Attaches deterministic pseudo-random weights to an unweighted stream.
/// Weights are in `1..=max_w`; a given edge always receives the same weight
/// (so delete/re-insert cycles are consistent).
pub fn with_weights(updates: &[Update], max_w: Weight, seed: u64) -> Vec<WeightedUpdate> {
    updates
        .iter()
        .map(|u| match *u {
            Update::Insert(e) => WeightedUpdate::Insert(e, edge_weight(e, max_w, seed)),
            Update::Delete(e) => WeightedUpdate::Delete(e),
        })
        .collect()
}

/// Deterministic per-edge weight in `1..=max_w` derived by hashing.
pub fn edge_weight(e: Edge, max_w: Weight, seed: u64) -> Weight {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((e.u as u64) << 32 | e.v as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    1 + h % max_w
}

/// Replays a stream into a fresh [`DynamicGraph`], returning the final graph.
/// Panics if the stream is invalid (insert of present / delete of absent).
pub fn replay(n: usize, updates: &[Update]) -> DynamicGraph {
    let mut g = DynamicGraph::new(n);
    for u in updates {
        match *u {
            Update::Insert(e) => g.insert(e).expect("valid stream"),
            Update::Delete(e) => g.delete(e).expect("valid stream"),
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_stream_is_valid() {
        let ups = churn_stream(50, 100, 500, 0.5, 7);
        let g = replay(50, &ups); // panics if invalid
        assert!(g.m() <= 50 * 49 / 2);
    }

    #[test]
    fn insert_only_has_no_deletes() {
        let ups = insert_only_stream(30, 60, 1);
        assert!(ups.iter().all(|u| u.is_insert()));
        assert_eq!(ups.len(), 60);
    }

    #[test]
    fn sliding_window_bounds_edges() {
        let ups = sliding_window_stream(40, 30, 200, 3);
        let g = replay(40, &ups);
        assert!(g.m() <= 31, "window should cap live edges, got {}", g.m());
    }

    #[test]
    fn tree_churn_keeps_tree_size() {
        let ups = tree_churn_stream(20, 50, 9);
        let g = replay(20, &ups);
        assert_eq!(g.m(), 19);
        // Every deletion in the stream is immediately followed by a reconnect.
        let labels = g.components();
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn weights_are_stable_per_edge() {
        let e = Edge::new(3, 9);
        assert_eq!(edge_weight(e, 100, 5), edge_weight(e, 100, 5));
        let ups = vec![Update::Insert(e), Update::Delete(e), Update::Insert(e)];
        let w = with_weights(&ups, 100, 5);
        match (w[0], w[2]) {
            (WeightedUpdate::Insert(_, a), WeightedUpdate::Insert(_, b)) => assert_eq!(a, b),
            _ => panic!("unexpected shapes"),
        }
    }

    #[test]
    fn stream_builder_deterministic() {
        let a = churn_stream(25, 40, 100, 0.4, 42);
        let b = churn_stream(25, 40, 100, 0.4, 42);
        assert_eq!(a, b);
    }
}
