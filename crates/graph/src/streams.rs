//! Update streams: the sequences of edge insertions/deletions that drive the
//! dynamic algorithms, plus generators for the workload patterns used in the
//! paper-shaped experiments.

use crate::{DynamicGraph, Edge, Weight, V};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An unweighted graph update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert an edge that is currently absent.
    Insert(Edge),
    /// Delete an edge that is currently present.
    Delete(Edge),
}

impl Update {
    /// The edge being inserted or deleted.
    pub fn edge(&self) -> Edge {
        match *self {
            Update::Insert(e) | Update::Delete(e) => e,
        }
    }

    /// True for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert(_))
    }
}

/// A weighted graph update (for MST maintenance).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightedUpdate {
    /// Insert an absent edge with the given weight.
    Insert(Edge, Weight),
    /// Delete a present edge.
    Delete(Edge),
}

impl WeightedUpdate {
    /// The edge being inserted or deleted.
    pub fn edge(&self) -> Edge {
        match *self {
            WeightedUpdate::Insert(e, _) | WeightedUpdate::Delete(e) => e,
        }
    }

    /// Drops weights, producing the unweighted update.
    pub fn unweighted(&self) -> Update {
        match *self {
            WeightedUpdate::Insert(e, _) => Update::Insert(e),
            WeightedUpdate::Delete(e) => Update::Delete(e),
        }
    }
}

/// Builds update streams that are *valid by construction*: inserts only absent
/// edges, deletes only present ones. Internally tracks the evolving graph.
pub struct StreamBuilder {
    rng: StdRng,
    graph: DynamicGraph,
    present: Vec<Edge>,
    updates: Vec<Update>,
}

impl StreamBuilder {
    /// A builder over `n` vertices seeded deterministically.
    pub fn new(n: usize, seed: u64) -> Self {
        StreamBuilder {
            rng: StdRng::seed_from_u64(seed),
            graph: DynamicGraph::new(n),
            present: Vec::new(),
            updates: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Edges currently present.
    pub fn m(&self) -> usize {
        self.present.len()
    }

    fn random_absent_edge(&mut self) -> Option<Edge> {
        let n = self.graph.n() as V;
        if n < 2 {
            return None;
        }
        // Rejection sampling; fine while the graph is sparse relative to n^2.
        for _ in 0..10_000 {
            let a = self.rng.gen_range(0..n);
            let b = self.rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if !self.graph.has_edge(e) {
                return Some(e);
            }
        }
        None
    }

    /// Appends a random insertion; returns the edge if one was found.
    pub fn random_insert(&mut self) -> Option<Edge> {
        let e = self.random_absent_edge()?;
        self.graph.insert(e).expect("absent edge");
        self.present.push(e);
        self.updates.push(Update::Insert(e));
        Some(e)
    }

    /// Appends a deletion of a uniformly random present edge.
    pub fn random_delete(&mut self) -> Option<Edge> {
        if self.present.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.present.len());
        let e = self.present.swap_remove(i);
        self.graph.delete(e).expect("present edge");
        self.updates.push(Update::Delete(e));
        Some(e)
    }

    /// Appends the insertion of a specific (absent) edge.
    pub fn insert(&mut self, e: Edge) {
        self.graph.insert(e).expect("insert of present edge");
        self.present.push(e);
        self.updates.push(Update::Insert(e));
    }

    /// Appends the deletion of a specific (present) edge.
    pub fn delete(&mut self, e: Edge) {
        self.graph.delete(e).expect("delete of absent edge");
        let i = self
            .present
            .iter()
            .position(|&x| x == e)
            .expect("edge tracked");
        self.present.swap_remove(i);
        self.updates.push(Update::Delete(e));
    }

    /// Finishes the stream.
    pub fn build(self) -> Vec<Update> {
        self.updates
    }
}

// ---------------------------------------------------------------------------
// Batches.
//
// A *batch* is an ordered slice of updates handed to an algorithm as one unit
// of work. Batch semantics are sequential: applying a batch must leave the
// graph (and any maintained structure, up to non-unique representations such
// as which maximal matching is held) in the state reached by applying its
// updates one by one, in order. In particular a batch may contain an insert
// and a delete of the *same* edge; the net effect on that edge is defined by
// `coalesce` below.
// ---------------------------------------------------------------------------

/// Reduces a sequentially-valid batch to its *net* updates: for each edge,
/// ops cancel in pairs and only the last op survives (an odd number of ops
/// nets to the final op, an even number cancels entirely). This is the
/// intra-batch cancellation semantics: replaying `coalesce(batch)` from the
/// pre-batch graph reaches exactly the same graph as replaying `batch`.
///
/// Surviving updates keep the relative order of their edges' first
/// appearances, so coalescing is deterministic.
///
/// The input must be valid as a sequential stream from the pre-batch graph
/// (ops on one edge alternate insert/delete); then the output is valid too.
///
/// Validity is enforced in **release builds too**: an invalid batch (two
/// consecutive ops of the same kind on one edge) panics instead of silently
/// keeping the last op. This is the batch boundary every `apply_batch`
/// driver funnels through, so corrupt batches fail loudly at the driver
/// boundary rather than desynchronizing machine state downstream. Callers
/// that want to reject instead of panic use [`try_coalesce`].
pub fn coalesce(batch: &[Update]) -> Vec<Update> {
    match try_coalesce(batch) {
        Ok(net) => net,
        Err(e) => panic!("invalid batch: {e}"),
    }
}

/// Error describing why a batch is not sequentially valid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidBatch {
    /// The edge whose ops do not alternate insert/delete.
    pub edge: Edge,
    /// Index (within the batch) of the offending op.
    pub at: usize,
}

impl std::fmt::Display for InvalidBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ops on {} do not alternate insert/delete (op #{} repeats the previous kind); \
             the batch is not a valid sequential stream",
            self.edge, self.at
        )
    }
}

/// Fallible [`coalesce`]: returns the net updates, or [`InvalidBatch`] when
/// ops on some edge do not alternate insert/delete.
pub fn try_coalesce(batch: &[Update]) -> Result<Vec<Update>, InvalidBatch> {
    let mut order: Vec<Edge> = Vec::new();
    let mut per_edge: std::collections::HashMap<Edge, (usize, Update)> =
        std::collections::HashMap::new();
    for (i, &u) in batch.iter().enumerate() {
        let e = u.edge();
        match per_edge.entry(e) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert((1, u));
                order.push(e);
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let (count, last) = slot.get_mut();
                if last.is_insert() == u.is_insert() {
                    return Err(InvalidBatch { edge: e, at: i });
                }
                *count += 1;
                *last = u;
            }
        }
    }
    Ok(order
        .into_iter()
        .filter_map(|e| {
            let (count, last) = per_edge[&e];
            (count % 2 == 1).then_some(last)
        })
        .collect())
}

/// Splits a stream into consecutive *owned* batches of (at most) `k`
/// updates (the last may be shorter; `k` is clamped to at least 1). Use
/// this when batches must outlive the stream or be reordered/mutated; for
/// read-only iteration, plain `updates.chunks(k)` borrows without
/// allocating and is what the experiment drivers use.
pub fn chunk_stream(updates: &[Update], k: usize) -> Vec<Vec<Update>> {
    updates.chunks(k.max(1)).map(|c| c.to_vec()).collect()
}

// ---------------------------------------------------------------------------
// Seeded-RNG entry point.
//
// Every generator in this module derives its RNG through [`stream_rng`]
// with a fixed per-generator salt: one user seed reproduces each
// generator's stream independently (domain separation), and two generators
// given the same seed never see correlated draws. Reproducibility is
// documented and tested here, in one place — see the
// `one_seed_reproduces_every_generator` test.
// ---------------------------------------------------------------------------

/// Salt of [`burst_batches`].
pub const SALT_BURST: u64 = 0x1234_5678_9abc_def0;
/// Salt of [`cancelling_batches`].
pub const SALT_CANCEL: u64 = 0x0bad_cafe_f00d_d00d;
/// Salt of [`churn_stream`].
pub const SALT_CHURN: u64 = 0x9e37_79b9_7f4a_7c15;
/// Salt of [`clustered_churn_stream`].
pub const SALT_CLUSTERED: u64 = 0x0005_eed5_eed5_eed5;
/// Salt of [`mixed_stream`].
pub const SALT_MIXED: u64 = 0x0dd5_7e4d_0dd5_7e4d;
/// Salt of [`chaos_churn_batches`] (the chaos plane's workload stream —
/// deliberately distinct from [`SALT_CLUSTERED`] so chaos runs and plain
/// clustered benches over one seed stay uncorrelated).
pub const SALT_CHAOS: u64 = 0x00c4_a05c_4a05_c4a0;

/// Salt of [`conflict_batches`].
pub const SALT_CONFLICT: u64 = 0x00c0_4f11_c7ba_7c45;

/// The single seeded-RNG entry point of all stream generators: a
/// deterministic [`StdRng`] from one user seed, domain-separated by the
/// generator's salt.
pub fn stream_rng(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ salt)
}

/// Correlated burst batches: each batch picks a random *hub* vertex and
/// performs `k` updates on edges incident to it (inserting absent spokes,
/// deleting present ones). Models the bursty, locality-heavy update traffic
/// (one account fanning out) that batch-dynamic MPC algorithms target.
/// Every batch is valid as a sequential stream; batches compose into one
/// valid stream.
pub fn burst_batches(n: usize, batches: usize, k: usize, seed: u64) -> Vec<Vec<Update>> {
    assert!(n >= 2, "bursts need at least two vertices");
    let mut b = StreamBuilder::new(n, seed);
    let mut rng = stream_rng(seed, SALT_BURST);
    let mut out = Vec::with_capacity(batches);
    let mut len_so_far = 0usize;
    for _ in 0..batches {
        let hub = rng.gen_range(0..n as V);
        for _ in 0..k {
            let spoke = {
                let s = rng.gen_range(0..n as V - 1);
                if s >= hub {
                    s + 1
                } else {
                    s
                }
            };
            let e = Edge::new(hub, spoke);
            if b.graph.has_edge(e) {
                b.delete(e);
            } else {
                b.insert(e);
            }
        }
        out.push(b.updates[len_so_far..].to_vec());
        len_so_far = b.updates.len();
    }
    out
}

/// Mixed insert/delete batches that *deliberately* contain cancelling pairs:
/// roughly `cancel_frac` of each batch's slots are spent on an
/// insert-then-delete (or delete-then-insert) of the same edge. Exercises
/// the intra-batch cancellation semantics of `coalesce`.
pub fn cancelling_batches(
    n: usize,
    batches: usize,
    k: usize,
    cancel_frac: f64,
    seed: u64,
) -> Vec<Vec<Update>> {
    assert!((0.0..=1.0).contains(&cancel_frac));
    let mut b = StreamBuilder::new(n, seed);
    let mut rng = stream_rng(seed, SALT_CANCEL);
    let mut out = Vec::with_capacity(batches);
    let mut len_so_far = 0usize;
    for _ in 0..batches {
        let mut slots = 0usize;
        while slots < k {
            if slots + 1 < k && rng.gen_bool(cancel_frac) {
                // A cancelling pair on one edge.
                if b.m() > 0 && rng.gen_bool(0.5) {
                    if let Some(e) = b.random_delete() {
                        b.insert(e);
                        slots += 2;
                        continue;
                    }
                }
                if let Some(e) = b.random_insert() {
                    b.delete(e);
                    slots += 2;
                    continue;
                }
                slots += 1; // graph full/empty: fall through to a plain op
            } else if b.m() == 0 || rng.gen_bool(0.5) {
                if b.random_insert().is_none() {
                    b.random_delete();
                }
                slots += 1;
            } else {
                b.random_delete();
                slots += 1;
            }
        }
        out.push(b.updates[len_so_far..].to_vec());
        len_so_far = b.updates.len();
    }
    out
}

/// Insert `m` random edges, then churn for `steps` updates with the given
/// probability of insertion (deletions otherwise). This is the default mixed
/// workload for Table-1 experiments.
pub fn churn_stream(n: usize, m: usize, steps: usize, p_insert: f64, seed: u64) -> Vec<Update> {
    let mut b = StreamBuilder::new(n, seed);
    let mut rng = stream_rng(seed, SALT_CHURN);
    for _ in 0..m {
        b.random_insert();
    }
    for _ in 0..steps {
        let do_insert = rng.gen_bool(p_insert) || b.m() == 0;
        if do_insert {
            if b.random_insert().is_none() {
                b.random_delete();
            }
        } else {
            b.random_delete();
        }
    }
    b.build()
}

/// Churn restricted to `clusters` disjoint contiguous vertex ranges: edges
/// only ever connect vertices of the same cluster, so components stay inside
/// one cluster and — under the block vertex partitioning the owner machines
/// use — each component's owner set stays small regardless of the machine
/// count. This is the workload that separates component-owner multicast
/// (active machines ~ owner-set size) from broadcast (active machines ~ P).
pub fn clustered_churn_stream(
    n: usize,
    clusters: usize,
    m_per_cluster: usize,
    steps: usize,
    p_insert: f64,
    seed: u64,
) -> Vec<Update> {
    clustered_churn(
        n,
        clusters,
        m_per_cluster,
        steps,
        p_insert,
        seed,
        SALT_CLUSTERED,
    )
}

/// The clustered-churn stream chopped into `k`-update batches: the chaos
/// plane's canonical workload (components span few machines, so shard
/// migrations and directory repairs are exercised without every component
/// touching every machine). Same core generator as
/// [`clustered_churn_stream`], same single RNG entry point
/// ([`stream_rng`]), its own salt ([`SALT_CHAOS`]).
pub fn chaos_churn_batches(
    n: usize,
    clusters: usize,
    m_per_cluster: usize,
    steps: usize,
    k: usize,
    seed: u64,
) -> Vec<Vec<Update>> {
    let ups = clustered_churn(n, clusters, m_per_cluster, steps, 0.5, seed, SALT_CHAOS);
    chunk_stream(&ups, k)
}

/// Batches with a *known* conflict-graph depth, for the conflict-group
/// scheduler's depth-scaling experiments. Each batch consists of `groups`
/// vertex-disjoint paths of `depth` link insertions, every path built from
/// fresh vertices that were singletons before the batch: the conflict
/// partition of such a batch is exactly `groups` groups of `depth` items
/// each (consecutive path edges share a vertex, so a path chains into one
/// group; distinct paths share nothing). Items are interleaved round-robin
/// across the paths so a scheduler cannot exploit submission order.
/// Successive batches draw from disjoint vertex pools, so the whole stream
/// applied to one instance keeps the per-batch partition exact; the pool is
/// shuffled by the seeded RNG so vertex placement (and thus machine
/// ownership) varies with the seed. Requires
/// `groups * (depth + 1) * batches <= n`.
pub fn conflict_batches(
    n: usize,
    groups: usize,
    depth: usize,
    batches: usize,
    seed: u64,
) -> Vec<Vec<Update>> {
    assert!(groups >= 1 && depth >= 1 && batches >= 1);
    let per_batch = groups * (depth + 1);
    assert!(
        per_batch * batches <= n,
        "conflict_batches needs {} fresh vertices but n = {n}",
        per_batch * batches
    );
    let mut rng = stream_rng(seed, SALT_CONFLICT);
    let mut pool: Vec<V> = (0..n as V).collect();
    // Fisher-Yates; the vendored rand's slice shuffle is not assumed.
    for i in (1..pool.len()).rev() {
        pool.swap(i, rng.gen_range(0..i + 1));
    }
    let mut next = 0usize;
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let paths: Vec<&[V]> = (0..groups)
            .map(|g| &pool[next + g * (depth + 1)..next + (g + 1) * (depth + 1)])
            .collect();
        next += per_batch;
        let mut batch = Vec::with_capacity(groups * depth);
        for s in 0..depth {
            for path in &paths {
                batch.push(Update::Insert(Edge::new(path[s], path[s + 1])));
            }
        }
        out.push(batch);
    }
    out
}

/// Shared core of [`clustered_churn_stream`] and [`chaos_churn_batches`].
#[allow(clippy::too_many_arguments)]
fn clustered_churn(
    n: usize,
    clusters: usize,
    m_per_cluster: usize,
    steps: usize,
    p_insert: f64,
    seed: u64,
    salt: u64,
) -> Vec<Update> {
    assert!(n >= 2, "clustered churn needs at least two vertices");
    let clusters = clusters.clamp(1, n / 2);
    let span = n / clusters; // last cluster absorbs the remainder
    let mut b = StreamBuilder::new(n, seed);
    let mut rng = stream_rng(seed, salt);
    let range_of = |c: usize| {
        let lo = c * span;
        let hi = if c + 1 == clusters { n } else { lo + span };
        (lo as V, hi as V)
    };
    let random_edge_in = |rng: &mut StdRng, c: usize, g: &DynamicGraph| -> Option<Edge> {
        let (lo, hi) = range_of(c);
        for _ in 0..1_000 {
            let a = rng.gen_range(lo..hi);
            let d = rng.gen_range(lo..hi);
            if a == d {
                continue;
            }
            let e = Edge::new(a, d);
            if !g.has_edge(e) {
                return Some(e);
            }
        }
        None
    };
    // Build-up: m edges per cluster.
    for c in 0..clusters {
        for _ in 0..m_per_cluster {
            if let Some(e) = random_edge_in(&mut rng, c, &b.graph) {
                b.insert(e);
            }
        }
    }
    // Churn: pick a cluster, then insert or delete inside it.
    for _ in 0..steps {
        let c = rng.gen_range(0..clusters);
        let (lo, hi) = range_of(c);
        let in_cluster: Vec<Edge> = b
            .present
            .iter()
            .copied()
            .filter(|e| e.u >= lo && e.u < hi)
            .collect();
        let do_insert = rng.gen_bool(p_insert) || in_cluster.is_empty();
        if do_insert {
            if let Some(e) = random_edge_in(&mut rng, c, &b.graph) {
                b.insert(e);
            } else if let Some(&e) = in_cluster.first() {
                b.delete(e);
            }
        } else {
            let e = in_cluster[rng.gen_range(0..in_cluster.len())];
            b.delete(e);
        }
    }
    b.build()
}

// ---------------------------------------------------------------------------
// Mixed read/write workloads.
//
// The ROADMAP's north star is a read-heavy service: most production traffic
// *queries* the maintained structure and only a sliver updates it (Durfee et
// al., arXiv:1908.01956, measure exactly such interleaved workloads). These
// generators emit `Op` streams at a fixed read percentage with either
// uniform or clustered targets, valid-by-construction on the write side.
// ---------------------------------------------------------------------------

/// How the targets of reads (and, under clustering, writes) are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetDist {
    /// Uniform over all vertices.
    Uniform,
    /// Confined to `clusters` contiguous vertex ranges: each op first picks
    /// a cluster, then vertices inside it — the locality-heavy traffic shape
    /// (one community served by few owner machines) that separates
    /// owner-multicast routing from broadcast.
    Clustered {
        /// Number of contiguous vertex ranges.
        clusters: usize,
    },
}

/// Which query kinds a mixed stream's reads draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMix {
    /// `Connected` / `ComponentOf` (the connectivity/MST service).
    Connectivity,
    /// `Connected` / `ComponentOf` / `PathMax` (the MST service).
    Mst,
    /// `IsMatched` / `MatchingSize` (the matching service).
    Matching,
}

/// Generates a mixed read/write stream of `steps` operations: each step is a
/// read with probability `read_pct`/100 (targets drawn per `dist`, kinds per
/// `mix`), otherwise a valid-by-construction edge update (under
/// [`TargetDist::Clustered`] the writes stay inside clusters too, like
/// [`clustered_churn_stream`]). The canonical ratios measured by the
/// `query_scaling` bench are 95/5, 50/50 and 5/95.
pub fn mixed_stream(
    n: usize,
    steps: usize,
    read_pct: u32,
    dist: TargetDist,
    mix: QueryMix,
    seed: u64,
) -> Vec<crate::queries::Op> {
    use crate::queries::{Op, Query};
    assert!(n >= 4, "mixed streams need at least four vertices");
    assert!(read_pct <= 100, "read_pct is a percentage");
    let clusters = match dist {
        TargetDist::Uniform => 1,
        TargetDist::Clustered { clusters } => clusters.clamp(1, n / 2),
    };
    let span = n / clusters;
    let range_of = |c: usize| {
        let lo = c * span;
        let hi = if c + 1 == clusters { n } else { lo + span };
        (lo as V, hi as V)
    };
    let mut b = StreamBuilder::new(n, seed);
    let mut rng = stream_rng(seed, SALT_MIXED);
    let mut out = Vec::with_capacity(steps);
    let mut written = 0usize;
    for _ in 0..steps {
        let c = rng.gen_range(0..clusters);
        let (lo, hi) = range_of(c);
        if rng.gen_range(0..100) < read_pct {
            let a = rng.gen_range(lo..hi);
            let d = {
                let d = rng.gen_range(lo..hi - 1);
                if d >= a {
                    d + 1
                } else {
                    d
                }
            };
            let q = match mix {
                QueryMix::Connectivity => match rng.gen_range(0..2) {
                    0 => Query::Connected(a, d),
                    _ => Query::ComponentOf(a),
                },
                QueryMix::Mst => match rng.gen_range(0..3) {
                    0 => Query::Connected(a, d),
                    1 => Query::ComponentOf(a),
                    _ => Query::PathMax(a, d),
                },
                QueryMix::Matching => match rng.gen_range(0..4) {
                    0 => Query::MatchingSize,
                    _ => Query::IsMatched(a),
                },
            };
            out.push(Op::Read(q));
        } else {
            // A valid write inside the chosen cluster: toggle a random pair.
            let mut placed = false;
            for _ in 0..1_000 {
                let a = rng.gen_range(lo..hi);
                let d = rng.gen_range(lo..hi);
                if a == d {
                    continue;
                }
                let e = Edge::new(a, d);
                if b.graph.has_edge(e) {
                    b.delete(e);
                } else {
                    b.insert(e);
                }
                placed = true;
                written += 1;
                break;
            }
            if placed {
                out.push(crate::queries::Op::Write(*b.updates.last().unwrap()));
            }
        }
    }
    debug_assert_eq!(written, b.updates.len());
    out
}

/// Insert-only stream of `m` random edges (the paper's Section 4 algorithm
/// starts from the empty graph).
pub fn insert_only_stream(n: usize, m: usize, seed: u64) -> Vec<Update> {
    let mut b = StreamBuilder::new(n, seed);
    for _ in 0..m {
        if b.random_insert().is_none() {
            break;
        }
    }
    b.build()
}

/// Sliding-window stream: insert `window` edges, then for `steps` updates
/// alternately insert a fresh edge and delete the oldest one. Models evolving
/// social-network edges with bounded lifetime.
pub fn sliding_window_stream(n: usize, window: usize, steps: usize, seed: u64) -> Vec<Update> {
    let mut b = StreamBuilder::new(n, seed);
    let mut fifo: std::collections::VecDeque<Edge> = std::collections::VecDeque::new();
    for _ in 0..window {
        if let Some(e) = b.random_insert() {
            fifo.push_back(e);
        }
    }
    for _ in 0..steps {
        if let Some(e) = b.random_insert() {
            fifo.push_back(e);
        }
        if fifo.len() > window {
            let old = fifo.pop_front().unwrap();
            b.delete(old);
        }
    }
    b.build()
}

/// A forest-heavy stream: builds a random spanning tree then repeatedly
/// deletes a random *tree* edge and reinserts an edge reconnecting the two
/// sides. This is the worst case for connectivity/MST maintenance (every
/// deletion splits a component and forces a replacement search).
pub fn tree_churn_stream(n: usize, steps: usize, seed: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = StreamBuilder::new(n, seed ^ 0xdead_beef);
    // Random spanning tree: attach each vertex to a random earlier vertex.
    let mut tree: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n as V {
        let p = rng.gen_range(0..v);
        let e = Edge::new(p, v);
        b.insert(e);
        tree.push(e);
    }
    for _ in 0..steps {
        if tree.is_empty() {
            break;
        }
        let i = rng.gen_range(0..tree.len());
        let e = tree.swap_remove(i);
        b.delete(e);
        // Reconnect with a fresh random edge across the cut if possible,
        // otherwise reinsert the same edge.
        let replacement = e;
        b.insert(replacement);
        tree.push(replacement);
    }
    b.build()
}

/// Attaches deterministic pseudo-random weights to an unweighted stream.
/// Weights are in `1..=max_w`; a given edge always receives the same weight
/// (so delete/re-insert cycles are consistent).
pub fn with_weights(updates: &[Update], max_w: Weight, seed: u64) -> Vec<WeightedUpdate> {
    updates
        .iter()
        .map(|u| match *u {
            Update::Insert(e) => WeightedUpdate::Insert(e, edge_weight(e, max_w, seed)),
            Update::Delete(e) => WeightedUpdate::Delete(e),
        })
        .collect()
}

/// Deterministic per-edge weight in `1..=max_w` derived by hashing.
pub fn edge_weight(e: Edge, max_w: Weight, seed: u64) -> Weight {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((e.u as u64) << 32 | e.v as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    1 + h % max_w
}

/// Replays a stream into a fresh [`DynamicGraph`], returning the final graph.
/// Panics if the stream is invalid (insert of present / delete of absent).
pub fn replay(n: usize, updates: &[Update]) -> DynamicGraph {
    let mut g = DynamicGraph::new(n);
    for u in updates {
        match *u {
            Update::Insert(e) => g.insert(e).expect("valid stream"),
            Update::Delete(e) => g.delete(e).expect("valid stream"),
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_stream_is_valid() {
        let ups = churn_stream(50, 100, 500, 0.5, 7);
        let g = replay(50, &ups); // panics if invalid
        assert!(g.m() <= 50 * 49 / 2);
    }

    #[test]
    fn insert_only_has_no_deletes() {
        let ups = insert_only_stream(30, 60, 1);
        assert!(ups.iter().all(|u| u.is_insert()));
        assert_eq!(ups.len(), 60);
    }

    #[test]
    fn sliding_window_bounds_edges() {
        let ups = sliding_window_stream(40, 30, 200, 3);
        let g = replay(40, &ups);
        assert!(g.m() <= 31, "window should cap live edges, got {}", g.m());
    }

    #[test]
    fn tree_churn_keeps_tree_size() {
        let ups = tree_churn_stream(20, 50, 9);
        let g = replay(20, &ups);
        assert_eq!(g.m(), 19);
        // Every deletion in the stream is immediately followed by a reconnect.
        let labels = g.components();
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn conflict_batches_have_the_advertised_partition() {
        // Every vertex is a singleton before its batch (fresh, disjoint
        // pools), so an insert touches the components named by its own
        // endpoints — exactly what the connectivity classifier would
        // report. The partitioner must see `groups` groups of `depth`
        // items in every batch.
        for (groups, depth) in [(1, 1), (4, 1), (3, 4), (2, 7)] {
            let batches = conflict_batches(128, groups, depth, 3, 42);
            assert_eq!(batches.len(), 3);
            for batch in &batches {
                assert_eq!(batch.len(), groups * depth);
                let touches: Vec<(u64, u64)> = batch
                    .iter()
                    .map(|u| {
                        let e = u.edge();
                        (u64::from(e.u), u64::from(e.v))
                    })
                    .collect();
                let p = crate::conflict::partition_conflicts(&touches);
                assert_eq!(p.groups, groups, "groups at depth {depth}");
                assert_eq!(p.depth, depth, "depth with {groups} groups");
            }
        }
    }

    #[test]
    fn conflict_batches_pools_are_disjoint_across_batches() {
        let batches = conflict_batches(64, 2, 3, 4, 7);
        let mut seen: std::collections::BTreeSet<V> = std::collections::BTreeSet::new();
        for batch in &batches {
            let mut mine: std::collections::BTreeSet<V> = std::collections::BTreeSet::new();
            for u in batch {
                let e = u.edge();
                mine.insert(e.u);
                mine.insert(e.v);
            }
            assert!(seen.is_disjoint(&mine), "batches share vertices");
            seen.extend(mine);
        }
        // Round-robin interleave: consecutive items belong to distinct paths.
        let b0 = &batches[0];
        let e0 = b0[0].edge();
        let e1 = b0[1].edge();
        assert!(!e0.touches(e1.u) && !e0.touches(e1.v));
    }

    #[test]
    fn weights_are_stable_per_edge() {
        let e = Edge::new(3, 9);
        assert_eq!(edge_weight(e, 100, 5), edge_weight(e, 100, 5));
        let ups = vec![Update::Insert(e), Update::Delete(e), Update::Insert(e)];
        let w = with_weights(&ups, 100, 5);
        match (w[0], w[2]) {
            (WeightedUpdate::Insert(_, a), WeightedUpdate::Insert(_, b)) => assert_eq!(a, b),
            _ => panic!("unexpected shapes"),
        }
    }

    #[test]
    fn coalesce_nets_out_cancelling_pairs() {
        let (a, b, c) = (Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3));
        // a: I,D (cancels); b: D,I (cancels); c: I,D,I (nets to I).
        let batch = vec![
            Update::Insert(a),
            Update::Delete(b),
            Update::Insert(c),
            Update::Delete(a),
            Update::Insert(b),
            Update::Delete(c),
            Update::Insert(c),
        ];
        assert_eq!(coalesce(&batch), vec![Update::Insert(c)]);
        assert!(coalesce(&[]).is_empty());
    }

    #[test]
    fn coalesce_preserves_replay_state() {
        // Replaying coalesce(batch) reaches the same graph as replaying batch.
        let n = 30;
        for seed in 0..4 {
            let batches = cancelling_batches(n, 6, 12, 0.5, seed);
            let mut g_full = DynamicGraph::new(n);
            let mut g_net = DynamicGraph::new(n);
            for batch in &batches {
                for &u in batch {
                    match u {
                        Update::Insert(e) => g_full.insert(e).unwrap(),
                        Update::Delete(e) => g_full.delete(e).unwrap(),
                    }
                }
                for u in coalesce(batch) {
                    match u {
                        Update::Insert(e) => g_net.insert(e).unwrap(),
                        Update::Delete(e) => g_net.delete(e).unwrap(),
                    }
                }
                let sorted = |g: &DynamicGraph| {
                    let mut es: Vec<Edge> = g.edges().collect();
                    es.sort_unstable();
                    es
                };
                assert_eq!(sorted(&g_full), sorted(&g_net));
            }
        }
    }

    /// Regression (PR 4): batch validity is enforced in release builds too.
    /// A repeated-kind pair on one edge must be rejected, not silently
    /// coalesced to the last op.
    #[test]
    fn try_coalesce_rejects_non_alternating_ops() {
        let e = Edge::new(0, 1);
        let bad = vec![Update::Insert(e), Update::Insert(e)];
        let err = try_coalesce(&bad).unwrap_err();
        assert_eq!(err.edge, e);
        assert_eq!(err.at, 1);
        let bad2 = vec![
            Update::Insert(e),
            Update::Delete(e),
            Update::Delete(e), // repeats the kind
        ];
        assert_eq!(try_coalesce(&bad2).unwrap_err().at, 2);
        // Valid batches still pass through the fallible path.
        let good = vec![Update::Insert(e), Update::Delete(e), Update::Insert(e)];
        assert_eq!(try_coalesce(&good).unwrap(), vec![Update::Insert(e)]);
    }

    /// `coalesce` panics on invalid batches — with a real check, not a
    /// `debug_assert!`, so the behavior is identical in release builds
    /// (this test compiles under both profiles and pins the panic).
    #[test]
    #[should_panic(expected = "invalid batch")]
    fn coalesce_panics_on_invalid_batch_in_all_profiles() {
        let e = Edge::new(2, 3);
        coalesce(&[Update::Delete(e), Update::Delete(e)]);
    }

    #[test]
    fn clustered_churn_stays_within_clusters() {
        let n = 64;
        let clusters = 8;
        let ups = clustered_churn_stream(n, clusters, 6, 100, 0.5, 3);
        assert!(!ups.is_empty());
        let span = n / clusters;
        for u in &ups {
            let e = u.edge();
            assert_eq!(
                e.u as usize / span,
                e.v as usize / span,
                "edge {e} crosses clusters"
            );
        }
        replay(n, &ups); // panics if the stream is invalid
    }

    #[test]
    fn chunk_stream_partitions() {
        let ups = churn_stream(20, 30, 50, 0.5, 11);
        let chunks = chunk_stream(&ups, 16);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), ups.len());
        assert!(chunks[..chunks.len() - 1].iter().all(|c| c.len() == 16));
        let flat: Vec<Update> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, ups);
        // k = 0 clamps to 1.
        assert_eq!(chunk_stream(&ups, 0).len(), ups.len());
    }

    #[test]
    fn burst_batches_are_hub_local_and_valid() {
        let batches = burst_batches(25, 8, 10, 3);
        assert_eq!(batches.len(), 8);
        let flat: Vec<Update> = batches.iter().flatten().copied().collect();
        replay(25, &flat); // panics if any batch breaks validity
        for batch in &batches {
            assert_eq!(batch.len(), 10);
            // All edges of a burst share the hub vertex.
            let e0 = batch[0].edge();
            let shared: Vec<V> = [e0.u, e0.v]
                .into_iter()
                .filter(|&h| batch.iter().all(|u| u.edge().u == h || u.edge().v == h))
                .collect();
            assert!(!shared.is_empty(), "no common hub in {batch:?}");
        }
    }

    #[test]
    fn cancelling_batches_contain_cancelling_pairs() {
        let batches = cancelling_batches(20, 10, 12, 0.6, 5);
        let flat: Vec<Update> = batches.iter().flatten().copied().collect();
        replay(20, &flat);
        // At least one batch must net out shorter than it is.
        assert!(batches.iter().any(|b| coalesce(b).len() < b.len()));
    }

    #[test]
    fn mixed_stream_hits_the_requested_ratio_and_stays_valid() {
        use crate::queries::Op;
        for (pct, dist) in [
            (95, TargetDist::Uniform),
            (50, TargetDist::Clustered { clusters: 4 }),
            (5, TargetDist::Uniform),
        ] {
            let ops = mixed_stream(64, 2000, pct, dist, QueryMix::Connectivity, 9);
            let reads = ops.iter().filter(|o| o.is_read()).count() as f64;
            let frac = reads / ops.len() as f64;
            assert!(
                (frac - pct as f64 / 100.0).abs() < 0.05,
                "read fraction {frac} far from {pct}%"
            );
            // The write subsequence must be a valid update stream.
            let writes: Vec<Update> = ops
                .iter()
                .filter_map(|o| match o {
                    Op::Write(u) => Some(*u),
                    Op::Read(_) => None,
                })
                .collect();
            replay(64, &writes);
        }
    }

    #[test]
    fn mixed_stream_clustered_targets_stay_in_cluster() {
        use crate::queries::{Op, Query};
        let n = 64;
        let clusters = 8;
        let span = n / clusters;
        let ops = mixed_stream(
            n,
            500,
            50,
            TargetDist::Clustered { clusters },
            QueryMix::Mst,
            3,
        );
        for op in &ops {
            match op {
                Op::Write(u) => {
                    let e = u.edge();
                    assert_eq!(e.u as usize / span, e.v as usize / span);
                }
                Op::Read(Query::Connected(a, b)) | Op::Read(Query::PathMax(a, b)) => {
                    assert_eq!(*a as usize / span, *b as usize / span);
                    assert_ne!(a, b);
                }
                Op::Read(_) => {}
            }
        }
        // The MST mix actually emits path-max queries.
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Read(Query::PathMax(_, _)))));
    }

    #[test]
    fn mixed_stream_matching_mix_emits_matching_queries() {
        use crate::queries::{Op, Query};
        let ops = mixed_stream(32, 400, 95, TargetDist::Uniform, QueryMix::Matching, 7);
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Read(Query::IsMatched(_)))));
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Read(Query::MatchingSize))));
        assert!(!ops
            .iter()
            .any(|o| matches!(o, Op::Read(Query::Connected(_, _)))));
    }

    #[test]
    fn stream_builder_deterministic() {
        let a = churn_stream(25, 40, 100, 0.4, 42);
        let b = churn_stream(25, 40, 100, 0.4, 42);
        assert_eq!(a, b);
    }

    /// The single reproducibility contract for every generator in this
    /// module: one seed through [`stream_rng`] fully determines each stream,
    /// and the per-generator salts keep generators decorrelated even when
    /// they share a seed.
    #[test]
    fn one_seed_reproduces_every_generator() {
        let seed = 42;
        // Same seed → bit-identical stream, for every generator.
        assert_eq!(
            burst_batches(25, 8, 10, seed),
            burst_batches(25, 8, 10, seed)
        );
        assert_eq!(
            cancelling_batches(20, 10, 12, 0.6, seed),
            cancelling_batches(20, 10, 12, 0.6, seed)
        );
        assert_eq!(
            churn_stream(25, 40, 100, 0.4, seed),
            churn_stream(25, 40, 100, 0.4, seed)
        );
        assert_eq!(
            clustered_churn_stream(64, 8, 6, 100, 0.5, seed),
            clustered_churn_stream(64, 8, 6, 100, 0.5, seed)
        );
        assert_eq!(
            chaos_churn_batches(64, 8, 6, 100, 16, seed),
            chaos_churn_batches(64, 8, 6, 100, 16, seed)
        );
        assert_eq!(
            mixed_stream(
                64,
                500,
                50,
                TargetDist::Uniform,
                QueryMix::Connectivity,
                seed
            ),
            mixed_stream(
                64,
                500,
                50,
                TargetDist::Uniform,
                QueryMix::Connectivity,
                seed
            )
        );
        // Distinct salts: the chaos stream is not a re-chunked clustered
        // stream, even with identical shape parameters and seed.
        let clustered = clustered_churn_stream(64, 8, 6, 100, 0.5, seed);
        let chaos: Vec<Update> = chaos_churn_batches(64, 8, 6, 100, 16, seed)
            .into_iter()
            .flatten()
            .collect();
        assert_ne!(clustered, chaos, "salts failed to decorrelate generators");
        // The chaos batches form a valid, cluster-local update stream.
        let span = 64 / 8;
        for u in &chaos {
            let e = u.edge();
            assert_eq!(e.u as usize / span, e.v as usize / span);
        }
        replay(64, &chaos);
        // Different seeds actually change the stream.
        assert_ne!(
            churn_stream(25, 40, 100, 0.4, seed),
            churn_stream(25, 40, 100, 0.4, seed + 1)
        );
    }
}
