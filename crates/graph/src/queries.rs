//! Read-side vocabulary of the DMPC algorithms: the queries a deployed
//! service answers between updates, and their answers.
//!
//! The paper's Table 1 bounds *queries* as well as updates; this module is
//! the query-plane counterpart of [`crate::streams`]' update vocabulary.
//! Queries are algorithm-agnostic at the type level — every algorithm
//! answers the subset it maintains state for and reports
//! [`QueryAnswer::Unsupported`] for the rest, so mixed-workload streams
//! (see [`crate::streams::mixed_stream`]) can be replayed against any
//! algorithm.

use crate::{Edge, Weight, V};

/// A read-only query against the maintained structure. Queries never modify
/// machine state: answering a batch of them must leave the cluster exactly
/// as it was (the experiment drivers rely on this to interleave query waves
/// with update batches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// Are `u` and `v` in the same connected component?
    Connected(V, V),
    /// The component label of `v` (the root vertex of its tree).
    ComponentOf(V),
    /// The maximum-weight spanning-forest edge on the tree path between `u`
    /// and `v` (ties broken toward the smaller edge), or `None` when the
    /// endpoints are disconnected or equal. Answered by the connectivity/MST
    /// machines; in plain connectivity mode every weight is 1.
    PathMax(V, V),
    /// Is `v` matched in the maintained matching?
    IsMatched(V),
    /// Number of edges in the maintained matching.
    MatchingSize,
}

/// The answer to a [`Query`]. The variant is determined by the query kind;
/// [`QueryAnswer::Unsupported`] means the algorithm does not maintain the
/// state the query asks about (e.g. `IsMatched` against connectivity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Answer to [`Query::Connected`] / [`Query::IsMatched`].
    Bool(bool),
    /// Answer to [`Query::ComponentOf`].
    Component(V),
    /// Answer to [`Query::PathMax`]: the heaviest on-path tree edge, or
    /// `None` when no tree path joins the endpoints.
    PathMax(Option<(Edge, Weight)>),
    /// Answer to [`Query::MatchingSize`].
    Count(usize),
    /// The algorithm does not answer this query kind.
    Unsupported,
    /// The query's owner set intersects a machine that is currently dead
    /// (chaos plane): the service stays up and acknowledges the read, but
    /// cannot produce an exact answer until recovery completes. Degraded
    /// answers are the read-side contract of an outage — "writes pause,
    /// reads degrade" — and callers distinguish them from
    /// [`QueryAnswer::Unsupported`] (a capability gap, not an outage).
    Degraded,
}

impl QueryAnswer {
    /// True for answers degraded by an ongoing outage.
    pub fn is_degraded(&self) -> bool {
        matches!(self, QueryAnswer::Degraded)
    }
}

/// One operation of a mixed read/write workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// An edge update.
    Write(crate::Update),
    /// A query.
    Read(Query),
}

impl Op {
    /// True for reads.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classifies() {
        assert!(Op::Read(Query::MatchingSize).is_read());
        assert!(!Op::Write(crate::Update::Insert(Edge::new(0, 1))).is_read());
    }
}
