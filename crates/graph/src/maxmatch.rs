//! Maximum cardinality matching in general graphs (Edmonds' blossom
//! algorithm, O(V^3)).
//!
//! The paper's approximation guarantees (3/2 in Section 4, 2+eps in Section 6)
//! are relative to the *maximum* matching; this exact baseline lets the test
//! suite and benchmarks measure empirical approximation ratios.

use crate::matching::Matching;
use crate::{DynamicGraph, Edge, V};
use std::collections::VecDeque;

const NONE: V = V::MAX;

struct Blossom<'a> {
    g: &'a DynamicGraph,
    mate: Vec<V>,
    p: Vec<V>,
    base: Vec<V>,
    used: Vec<bool>,
    blossom: Vec<bool>,
}

impl<'a> Blossom<'a> {
    fn new(g: &'a DynamicGraph) -> Self {
        let n = g.n();
        Blossom {
            g,
            mate: vec![NONE; n],
            p: vec![NONE; n],
            base: (0..n as V).collect(),
            used: vec![false; n],
            blossom: vec![false; n],
        }
    }

    /// Lowest common ancestor of `a` and `b` in the alternating tree,
    /// expressed through blossom bases.
    fn lca(&self, a: V, b: V) -> V {
        let n = self.g.n();
        let mut used2 = vec![false; n];
        let mut t = a;
        loop {
            t = self.base[t as usize];
            used2[t as usize] = true;
            if self.mate[t as usize] == NONE {
                break;
            }
            t = self.p[self.mate[t as usize] as usize];
        }
        t = b;
        loop {
            t = self.base[t as usize];
            if used2[t as usize] {
                return t;
            }
            t = self.p[self.mate[t as usize] as usize];
        }
    }

    fn mark_path(&mut self, mut v: V, b: V, mut child: V) {
        while self.base[v as usize] != b {
            self.blossom[self.base[v as usize] as usize] = true;
            self.blossom[self.base[self.mate[v as usize] as usize] as usize] = true;
            self.p[v as usize] = child;
            child = self.mate[v as usize];
            v = self.p[self.mate[v as usize] as usize];
        }
    }

    /// BFS from `root` growing an alternating tree with blossom contraction.
    /// Returns the free endpoint of an augmenting path, if found.
    fn find_path(&mut self, root: V) -> Option<V> {
        let n = self.g.n();
        self.used.iter_mut().for_each(|x| *x = false);
        self.p.iter_mut().for_each(|x| *x = NONE);
        for i in 0..n {
            self.base[i] = i as V;
        }
        self.used[root as usize] = true;
        let mut q = VecDeque::new();
        q.push_back(root);
        while let Some(v) = q.pop_front() {
            let nbrs: Vec<V> = self.g.neighbors(v).collect();
            for to in nbrs {
                if self.base[v as usize] == self.base[to as usize] || self.mate[v as usize] == to {
                    continue;
                }
                if to == root
                    || (self.mate[to as usize] != NONE
                        && self.p[self.mate[to as usize] as usize] != NONE)
                {
                    // Odd cycle: contract the blossom rooted at the LCA.
                    let curbase = self.lca(v, to);
                    self.blossom.iter_mut().for_each(|x| *x = false);
                    self.mark_path(v, curbase, to);
                    self.mark_path(to, curbase, v);
                    for i in 0..n {
                        if self.blossom[self.base[i] as usize] {
                            self.base[i] = curbase;
                            if !self.used[i] {
                                self.used[i] = true;
                                q.push_back(i as V);
                            }
                        }
                    }
                } else if self.p[to as usize] == NONE {
                    self.p[to as usize] = v;
                    if self.mate[to as usize] == NONE {
                        return Some(to);
                    }
                    let m = self.mate[to as usize];
                    self.used[m as usize] = true;
                    q.push_back(m);
                }
            }
        }
        None
    }

    fn augment(&mut self, mut u: V) {
        while u != NONE {
            let pv = self.p[u as usize];
            let ppv = self.mate[pv as usize];
            self.mate[u as usize] = pv;
            self.mate[pv as usize] = u;
            u = ppv;
        }
    }

    fn solve(mut self) -> Matching {
        let n = self.g.n();
        // Greedy warm start cuts the number of BFS phases roughly in half.
        for v in 0..n as V {
            if self.mate[v as usize] != NONE {
                continue;
            }
            let pick = self.g.neighbors(v).find(|&w| self.mate[w as usize] == NONE);
            if let Some(w) = pick {
                self.mate[v as usize] = w;
                self.mate[w as usize] = v;
            }
        }
        for v in 0..n as V {
            if self.mate[v as usize] == NONE {
                if let Some(end) = self.find_path(v) {
                    self.augment(end);
                }
            }
        }
        let mut edges = Vec::new();
        for v in 0..n as V {
            let m = self.mate[v as usize];
            if m != NONE && v < m {
                edges.push(Edge::new(v, m));
            }
        }
        Matching::from_edges(&edges)
    }
}

/// Computes a maximum cardinality matching of `g`.
pub fn maximum_matching(g: &DynamicGraph) -> Matching {
    Blossom::new(g).solve()
}

/// Size of the maximum matching (convenience).
pub fn maximum_matching_size(g: &DynamicGraph) -> usize {
    maximum_matching(g).size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::matching::is_valid_matching;

    #[test]
    fn path_graphs() {
        for n in 2..10 {
            let g = DynamicGraph::from_edges(n, &generators::path(n));
            assert_eq!(maximum_matching_size(&g), n / 2, "path of {n}");
        }
    }

    #[test]
    fn odd_cycle_needs_blossom() {
        // C5: maximum matching 2.
        let mut es: Vec<Edge> = generators::path(5);
        es.push(Edge::new(0, 4));
        let g = DynamicGraph::from_edges(5, &es);
        let m = maximum_matching(&g);
        assert!(is_valid_matching(&g, &m));
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn two_triangles_bridge() {
        // Triangles {0,1,2} and {3,4,5} joined by (2,3): perfect matching 3.
        let es = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(3, 4),
            Edge::new(4, 5),
            Edge::new(3, 5),
            Edge::new(2, 3),
        ];
        let g = DynamicGraph::from_edges(6, &es);
        assert_eq!(maximum_matching_size(&g), 3);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        let outer: Vec<Edge> = (0..5).map(|i| Edge::new(i, (i + 1) % 5)).collect();
        let spokes: Vec<Edge> = (0..5).map(|i| Edge::new(i, i + 5)).collect();
        let inner: Vec<Edge> = (0..5u32)
            .map(|i| Edge::new(5 + i, 5 + (i + 2) % 5))
            .collect();
        let es: Vec<Edge> = outer.into_iter().chain(spokes).chain(inner).collect();
        let g = DynamicGraph::from_edges(10, &es);
        assert_eq!(maximum_matching_size(&g), 5);
    }

    #[test]
    fn star_matches_one() {
        let g = DynamicGraph::from_edges(8, &generators::star(8));
        assert_eq!(maximum_matching_size(&g), 1);
    }

    #[test]
    fn at_least_greedy_on_random_graphs() {
        for seed in 0..5 {
            let es = generators::gnm(40, 120, seed);
            let g = DynamicGraph::from_edges(40, &es);
            let max = maximum_matching(&g);
            assert!(is_valid_matching(&g, &max));
            let greedy = crate::matching::greedy_maximal(&g);
            assert!(max.size() >= greedy.size());
            // Maximal matching is a 2-approximation.
            assert!(2 * greedy.size() >= max.size());
        }
    }
}
