//! Graph substrate for the DMPC reproduction.
//!
//! This crate provides everything the distributed algorithms are built on and
//! verified against:
//!
//! * [`Edge`], [`Update`] — the update-stream vocabulary shared by all crates.
//! * [`Query`], [`QueryAnswer`], [`Op`] — the read-side vocabulary and mixed
//!   read/write workload streams (`streams::mixed_stream`).
//! * [`arrivals`] — clocked arrival processes (steady, bursty, diurnal) that
//!   pin an op stream to simulated-clock ticks for the online service loop.
//! * [`DynamicGraph`] — a simple adjacency-set dynamic graph used as ground
//!   truth during verification.
//! * [`generators`] — graph and update-stream generators (G(n,m), preferential
//!   attachment, grids, churn/sliding-window streams).
//! * [`UnionFind`] — reference connectivity.
//! * [`conflict`] — the batch conflict partitioner backing the
//!   conflict-group scheduler (`streams::conflict_batches` generates batches
//!   with a known conflict depth).
//! * [`matching`] — matching validity/maximality checks, greedy baselines, and
//!   the short-augmenting-path detector used by the 3/2-approximation proofs.
//! * [`maxmatch`] — an Edmonds blossom maximum-matching implementation used to
//!   measure empirical approximation ratios.
//! * [`mst`] — Kruskal reference MST and spanning forests.
//!
//! # Example
//!
//! ```
//! use dmpc_graph::{DynamicGraph, Edge, UnionFind};
//!
//! let mut g = DynamicGraph::new(4);
//! g.insert(Edge::new(2, 0)).unwrap();
//! assert!(g.has_edge(Edge::new(0, 2))); // edges are stored normalized
//!
//! let mut uf = UnionFind::new(4);
//! uf.union(0, 2);
//! assert!(uf.same(0, 2));
//! assert_eq!(uf.components(), 3);
//! ```

pub mod arrivals;
pub mod conflict;
pub mod dynamic_graph;
pub mod generators;
pub mod matching;
pub mod maxmatch;
pub mod mst;
pub mod queries;
pub mod streams;
pub mod unionfind;

pub use arrivals::{arrival_trace, Arrival, ArrivalProcess};
pub use conflict::{partition_conflicts, ConflictPartition};
pub use dynamic_graph::DynamicGraph;
pub use queries::{Op, Query, QueryAnswer};
pub use streams::{Update, WeightedUpdate};
pub use unionfind::UnionFind;

/// Vertex identifier. Vertices are dense integers `0..n`.
pub type V = u32;

/// Edge weight used by the MST algorithms (integral; ties broken by edge).
pub type Weight = u64;

/// An undirected edge, stored in normalized form (`u <= v`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: V,
    /// Larger endpoint.
    pub v: V,
}

impl Edge {
    /// Creates a normalized edge. Panics on self-loops: the DMPC model (and
    /// the paper's algorithms) operate on simple graphs.
    pub fn new(a: V, b: V) -> Self {
        assert!(a != b, "self-loops are not allowed");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The endpoint different from `x`. Panics if `x` is not an endpoint.
    pub fn other(&self, x: V) -> V {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}")
        }
    }

    /// Returns both endpoints as a tuple `(u, v)` with `u <= v`.
    pub fn ends(&self) -> (V, V) {
        (self.u, self.v)
    }

    /// True if `x` is one of the two endpoints.
    pub fn touches(&self, x: V) -> bool {
        self.u == x || self.v == x
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
        assert_eq!(Edge::new(3, 1).ends(), (1, 3));
    }

    #[test]
    #[should_panic]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(2, 2);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(4, 7);
        assert_eq!(e.other(4), 7);
        assert_eq!(e.other(7), 4);
        assert!(e.touches(4) && e.touches(7) && !e.touches(5));
    }
}
