//! Union-find (disjoint set union) — the reference connectivity oracle.

use crate::V;

/// Union-find with union by rank and path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<V>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as V).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x` (with path halving).
    pub fn find(&mut self, mut x: V) -> V {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false if already merged.
    pub fn union(&mut self, a: V, b: V) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: V, b: V) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
    }

    #[test]
    fn finds_are_canonical() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), r);
        }
        assert_eq!(uf.components(), 1);
    }
}
