//! Graph generators for the experiment workloads.

use crate::{Edge, V};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Uniform G(n, m): `m` distinct random edges on `n` vertices.
pub fn gnm(n: usize, m: usize, seed: u64) -> Vec<Edge> {
    assert!(n >= 2 || m == 0);
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "requested {m} edges but only {max_m} possible");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let a = rng.gen_range(0..n as V);
        let b = rng.gen_range(0..n as V);
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if set.insert(e) {
            edges.push(e);
        }
    }
    edges
}

/// Preferential-attachment graph: each new vertex attaches `k` edges to
/// existing vertices chosen proportionally to degree (the paper's motivating
/// "evolving social network" workload).
pub fn preferential_attachment(n: usize, k: usize, seed: u64) -> Vec<Edge> {
    assert!(n >= 2);
    let k = k.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::new();
    // endpoint multiset: sampling uniformly from it = degree-proportional.
    let mut ends: Vec<V> = vec![0, 1];
    edges.push(Edge::new(0, 1));
    for v in 2..n as V {
        let mut chosen = HashSet::new();
        let mut tries = 0;
        while chosen.len() < k.min(v as usize) && tries < 50 * k {
            let t = ends[rng.gen_range(0..ends.len())];
            tries += 1;
            if t != v {
                chosen.insert(t);
            }
        }
        for t in chosen {
            edges.push(Edge::new(v, t));
            ends.push(v);
            ends.push(t);
        }
    }
    edges
}

/// A `rows x cols` grid graph — the road-network-like workload.
pub fn grid(rows: usize, cols: usize) -> Vec<Edge> {
    let id = |r: usize, c: usize| (r * cols + c) as V;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c)));
            }
        }
    }
    edges
}

/// Random spanning tree on `0..n` (each vertex hooks to a random predecessor)
/// plus `extra` random non-tree edges. Useful for connectivity stress tests.
pub fn random_tree_plus(n: usize, extra: usize, seed: u64) -> Vec<Edge> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = HashSet::new();
    let mut edges = Vec::new();
    for v in 1..n as V {
        let p = rng.gen_range(0..v);
        let e = Edge::new(p, v);
        set.insert(e);
        edges.push(e);
    }
    let mut added = 0;
    let max_m = n * (n - 1) / 2;
    while added < extra && set.len() < max_m {
        let a = rng.gen_range(0..n as V);
        let b = rng.gen_range(0..n as V);
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if set.insert(e) {
            edges.push(e);
            added += 1;
        }
    }
    edges
}

/// A path graph 0-1-2-...-(n-1): the deepest spanning tree, worst case for
/// tour renumbering breadth.
pub fn path(n: usize) -> Vec<Edge> {
    (1..n as V).map(|v| Edge::new(v - 1, v)).collect()
}

/// A star graph centered at 0: maximal degree concentration, worst case for
/// the heavy-vertex machinery of the matching algorithms.
pub fn star(n: usize) -> Vec<Edge> {
    (1..n as V).map(|v| Edge::new(0, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicGraph;

    #[test]
    fn gnm_has_exact_count_and_no_dups() {
        let es = gnm(30, 100, 3);
        assert_eq!(es.len(), 100);
        let set: HashSet<Edge> = es.iter().copied().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn pa_graph_is_connected() {
        let es = preferential_attachment(100, 2, 11);
        let g = DynamicGraph::from_edges(100, &es);
        let labels = g.components();
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn grid_edge_count() {
        let es = grid(4, 5);
        // 4*4 horizontal + 3*5 vertical = 16 + 15
        assert_eq!(es.len(), 31);
    }

    #[test]
    fn random_tree_plus_connected() {
        let es = random_tree_plus(50, 20, 5);
        assert_eq!(es.len(), 49 + 20);
        let g = DynamicGraph::from_edges(50, &es);
        let labels = g.components();
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn star_and_path_shapes() {
        let s = star(6);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|e| e.touches(0)));
        let p = path(6);
        assert_eq!(p.len(), 5);
    }
}
