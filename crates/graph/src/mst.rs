//! Reference spanning forest / minimum spanning forest algorithms.

use crate::{DynamicGraph, Edge, UnionFind, Weight, V};

/// Kruskal's algorithm over an explicit weighted edge list. Returns the
/// minimum spanning forest edges and the total weight. Ties are broken by the
/// normalized edge ordering so results are deterministic.
pub fn kruskal(n: usize, edges: &[(Edge, Weight)]) -> (Vec<Edge>, Weight) {
    let mut es: Vec<(Weight, Edge)> = edges.iter().map(|&(e, w)| (w, e)).collect();
    es.sort_unstable();
    let mut uf = UnionFind::new(n);
    let mut forest = Vec::new();
    let mut total: Weight = 0;
    for (w, e) in es {
        if uf.union(e.u, e.v) {
            forest.push(e);
            total += w;
        }
    }
    (forest, total)
}

/// Weight of the minimum spanning forest (convenience).
pub fn msf_weight(n: usize, edges: &[(Edge, Weight)]) -> Weight {
    kruskal(n, edges).1
}

/// A BFS spanning forest of `g` (one tree per connected component).
pub fn spanning_forest(g: &DynamicGraph) -> Vec<Edge> {
    let n = g.n();
    let mut seen = vec![false; n];
    let mut forest = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as V {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(x) = queue.pop_front() {
            for y in g.neighbors(x) {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    forest.push(Edge::new(x, y));
                    queue.push_back(y);
                }
            }
        }
    }
    forest
}

/// Checks that `forest` is a spanning forest of `g`: acyclic, edges present,
/// and connecting exactly the components of `g`.
pub fn is_spanning_forest(g: &DynamicGraph, forest: &[Edge]) -> bool {
    let mut uf = UnionFind::new(g.n());
    for &e in forest {
        if !g.has_edge(e) {
            return false;
        }
        if !uf.union(e.u, e.v) {
            return false; // cycle
        }
    }
    // Same number of components as the graph itself.
    let g_components = {
        let labels = g.components();
        let mut set: Vec<V> = labels.clone();
        set.sort_unstable();
        set.dedup();
        set.len()
    };
    uf.components() == g_components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::streams::edge_weight;

    #[test]
    fn kruskal_on_square_with_diagonal() {
        // Square 0-1-2-3 plus diagonal; weights force specific tree.
        let edges = vec![
            (Edge::new(0, 1), 1),
            (Edge::new(1, 2), 4),
            (Edge::new(2, 3), 2),
            (Edge::new(0, 3), 3),
            (Edge::new(0, 2), 10),
        ];
        let (forest, w) = kruskal(4, &edges);
        assert_eq!(forest.len(), 3);
        assert_eq!(w, 1 + 2 + 3);
    }

    #[test]
    fn kruskal_on_disconnected_graph() {
        let edges = vec![(Edge::new(0, 1), 5), (Edge::new(2, 3), 7)];
        let (forest, w) = kruskal(4, &edges);
        assert_eq!(forest.len(), 2);
        assert_eq!(w, 12);
    }

    #[test]
    fn spanning_forest_valid_on_random_graph() {
        let es = generators::gnm(40, 80, 2);
        let g = DynamicGraph::from_edges(40, &es);
        let f = spanning_forest(&g);
        assert!(is_spanning_forest(&g, &f));
    }

    #[test]
    fn spanning_forest_detects_cycle() {
        let es = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
        let g = DynamicGraph::from_edges(3, &es);
        assert!(!is_spanning_forest(&g, &es)); // all three edges form a cycle
        assert!(is_spanning_forest(&g, &es[..2]));
    }

    #[test]
    fn msf_weight_monotone_under_extra_edges() {
        let n = 30;
        let base = generators::random_tree_plus(n, 10, 3);
        let wedges: Vec<(Edge, Weight)> =
            base.iter().map(|&e| (e, edge_weight(e, 50, 1))).collect();
        let w1 = msf_weight(n, &wedges);
        // Adding an edge can only keep or reduce MSF weight.
        let mut more = wedges.clone();
        more.push((Edge::new(0, (n - 1) as u32), 1));
        let w2 = msf_weight(n, &more);
        assert!(w2 <= w1);
    }
}
