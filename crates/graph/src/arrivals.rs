//! Clocked arrival processes: pin an ordered operation stream to simulated
//! clock ticks, turning the offline workloads of [`crate::streams`] into
//! *online* traces for the continuous-service front-end.
//!
//! An arrival trace assigns each op of an existing stream a tick at which it
//! reaches the service. Ticks are monotone non-decreasing and the op order
//! is preserved, so the write subsequence stays valid-by-construction
//! exactly as the source generator built it — the process only shapes
//! *when* ops show up, never *which* ops or in what order. Like every
//! generator in [`crate::streams`], randomness flows through
//! [`crate::streams::stream_rng`] under a dedicated salt
//! ([`SALT_ARRIVALS`]), so one user seed reproduces the whole trace and
//! arrival jitter stays decorrelated from the op stream itself.

use crate::queries::Op;
use crate::streams::stream_rng;
use rand::Rng;

/// Salt of [`arrival_trace`] (see [`crate::streams::stream_rng`]).
pub const SALT_ARRIVALS: u64 = 0x00a7_71fa_57a7_71fa;

/// One op pinned to its arrival tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Simulated-clock tick at which the op reaches the service.
    pub tick: u64,
    /// The operation.
    pub op: Op,
}

/// The shape of the expected arrival rate over time, in ops per tick.
/// Every variant's long-run rate is strictly positive, so a trace always
/// terminates (validated by [`arrival_trace`] before generation starts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Constant expected rate — the baseline service-load shape.
    Steady {
        /// Expected ops per tick (> 0).
        ops_per_tick: f64,
    },
    /// A low base rate punctuated by periodic bursts — the hub-fan-out
    /// traffic shape `streams::burst_batches` models offline.
    Bursty {
        /// Expected ops per tick outside bursts (>= 0).
        base: f64,
        /// Expected ops per tick inside bursts (> 0).
        burst: f64,
        /// Ticks between burst starts (>= 1).
        period: u64,
        /// Ticks each burst lasts (1..=period).
        burst_len: u64,
    },
    /// A diurnal ramp: the rate climbs linearly from `low` to `high` over
    /// the first half of each period and back down over the second —
    /// day/night load for a service "serving heavy traffic from millions
    /// of users".
    Diurnal {
        /// Off-peak expected ops per tick (>= 0).
        low: f64,
        /// Peak expected ops per tick (> 0, >= `low`).
        high: f64,
        /// Full ramp-up-and-down period in ticks (>= 2).
        period: u64,
    },
}

impl ArrivalProcess {
    /// The expected arrival rate at tick `t` (ops per tick).
    pub fn rate_at(&self, t: u64) -> f64 {
        match *self {
            ArrivalProcess::Steady { ops_per_tick } => ops_per_tick,
            ArrivalProcess::Bursty {
                base,
                burst,
                period,
                burst_len,
            } => {
                if t % period < burst_len {
                    burst
                } else {
                    base
                }
            }
            ArrivalProcess::Diurnal { low, high, period } => {
                let phase = t % period;
                let half = period / 2;
                // Triangle wave: 0 at phase 0, 1 at the half period, back
                // to 0 at the period end.
                let frac = if phase <= half {
                    phase as f64 / half.max(1) as f64
                } else {
                    (period - phase) as f64 / (period - half).max(1) as f64
                };
                low + (high - low) * frac
            }
        }
    }

    /// Panics (with the offending parameter) unless the process has a
    /// strictly positive long-run rate — the termination precondition of
    /// [`arrival_trace`].
    fn validate(&self) {
        match *self {
            ArrivalProcess::Steady { ops_per_tick } => {
                assert!(ops_per_tick > 0.0, "steady ops_per_tick must be > 0");
            }
            ArrivalProcess::Bursty {
                base,
                burst,
                period,
                burst_len,
            } => {
                assert!(base >= 0.0, "bursty base rate must be >= 0");
                assert!(burst > 0.0, "bursty burst rate must be > 0");
                assert!(period >= 1, "bursty period must be >= 1");
                assert!(
                    (1..=period).contains(&burst_len),
                    "bursty burst_len must be in 1..=period"
                );
            }
            ArrivalProcess::Diurnal { low, high, period } => {
                assert!(low >= 0.0, "diurnal low rate must be >= 0");
                assert!(
                    high > 0.0 && high >= low,
                    "diurnal high must be > 0, >= low"
                );
                assert!(period >= 2, "diurnal period must be >= 2");
            }
        }
    }
}

/// Assigns monotone non-decreasing arrival ticks to `ops`, preserving their
/// order (a credit accumulator releases the next ops whenever the expected
/// arrivals-so-far crosses an integer). Per-tick rates carry a seeded
/// ±25% multiplicative jitter so tick boundaries decorrelate from the
/// deterministic rate shape while the mean rate is preserved. Panics when
/// `process` has no positive long-run rate (the trace would never finish).
pub fn arrival_trace(ops: &[Op], process: ArrivalProcess, seed: u64) -> Vec<Arrival> {
    process.validate();
    let mut rng = stream_rng(seed, SALT_ARRIVALS);
    let mut out = Vec::with_capacity(ops.len());
    let mut acc = 0.0f64;
    let mut t = 0u64;
    let mut i = 0usize;
    while i < ops.len() {
        // Jitter in [0.75, 1.25], mean 1.
        let jitter = 0.75 + rng.gen_range(0..501u32) as f64 / 1000.0;
        acc += process.rate_at(t) * jitter;
        while acc >= 1.0 && i < ops.len() {
            out.push(Arrival {
                tick: t,
                op: ops[i],
            });
            acc -= 1.0;
            i += 1;
        }
        t += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::{self, QueryMix, TargetDist};

    fn ops(n_ops: usize, seed: u64) -> Vec<Op> {
        streams::mixed_stream(
            64,
            n_ops,
            50,
            TargetDist::Uniform,
            QueryMix::Connectivity,
            seed,
        )
    }

    #[test]
    fn trace_preserves_order_and_is_monotone() {
        let src = ops(300, 7);
        for process in [
            ArrivalProcess::Steady { ops_per_tick: 1.5 },
            ArrivalProcess::Bursty {
                base: 0.0,
                burst: 8.0,
                period: 16,
                burst_len: 2,
            },
            ArrivalProcess::Diurnal {
                low: 0.25,
                high: 4.0,
                period: 32,
            },
        ] {
            let trace = arrival_trace(&src, process, 42);
            assert_eq!(trace.len(), src.len(), "{process:?} dropped ops");
            let replayed: Vec<Op> = trace.iter().map(|a| a.op).collect();
            assert_eq!(replayed, src, "{process:?} reordered ops");
            assert!(
                trace.windows(2).all(|w| w[0].tick <= w[1].tick),
                "{process:?} ticks not monotone"
            );
        }
    }

    #[test]
    fn trace_is_seed_deterministic() {
        let src = ops(200, 3);
        let p = ArrivalProcess::Steady { ops_per_tick: 2.0 };
        assert_eq!(arrival_trace(&src, p, 42), arrival_trace(&src, p, 42));
        let a = arrival_trace(&src, p, 42);
        let b = arrival_trace(&src, p, 43);
        assert_ne!(
            a.iter().map(|x| x.tick).collect::<Vec<_>>(),
            b.iter().map(|x| x.tick).collect::<Vec<_>>(),
            "seed did not move the jitter"
        );
    }

    #[test]
    fn steady_rate_is_roughly_honored() {
        let src = ops(400, 11);
        let trace = arrival_trace(&src, ArrivalProcess::Steady { ops_per_tick: 4.0 }, 42);
        let span = trace.last().unwrap().tick + 1;
        let rate = trace.len() as f64 / span as f64;
        assert!(
            (rate - 4.0).abs() < 1.0,
            "steady rate {rate} far from requested 4.0"
        );
    }

    #[test]
    fn bursty_traces_have_idle_gaps() {
        let src = ops(200, 5);
        let trace = arrival_trace(
            &src,
            ArrivalProcess::Bursty {
                base: 0.0,
                burst: 16.0,
                period: 32,
                burst_len: 2,
            },
            42,
        );
        // With a zero base rate, arrivals cluster inside bursts: some
        // consecutive arrivals must be separated by a long idle gap.
        let max_gap = trace
            .windows(2)
            .map(|w| w[1].tick - w[0].tick)
            .max()
            .unwrap();
        assert!(max_gap >= 16, "no idle gap between bursts (max {max_gap})");
    }

    #[test]
    fn diurnal_peak_outpaces_trough() {
        let src = ops(600, 9);
        let period = 64u64;
        let trace = arrival_trace(
            &src,
            ArrivalProcess::Diurnal {
                low: 0.25,
                high: 8.0,
                period,
            },
            42,
        );
        // Count arrivals near the peak (middle quarter of each period)
        // vs the trough (first/last eighth).
        let (mut peak, mut trough) = (0usize, 0usize);
        for a in &trace {
            let phase = a.tick % period;
            if (period * 3 / 8..period * 5 / 8).contains(&phase) {
                peak += 1;
            } else if phase < period / 8 || phase >= period * 7 / 8 {
                trough += 1;
            }
        }
        assert!(
            peak > 2 * trough.max(1),
            "diurnal ramp flat: peak {peak} vs trough {trough}"
        );
    }

    #[test]
    #[should_panic(expected = "ops_per_tick must be > 0")]
    fn zero_rate_is_rejected() {
        arrival_trace(
            &ops(10, 1),
            ArrivalProcess::Steady { ops_per_tick: 0.0 },
            42,
        );
    }
}
