//! Batch conflict partitioner for the conflict-group scheduler.
//!
//! A batch of structural updates (links and cuts) can run concurrently
//! exactly when the items touch disjoint components: structural protocol
//! flows on vertex-disjoint components never share an owner set, a
//! directory entry, or a rendezvous, so their message traffic commutes.
//! [`partition_conflicts`] computes the finest such partition — union-find
//! over the (pre-batch) component pairs each item touches — and reports the
//! two quantities that govern batch cost under a conflict-group scheduler:
//! the number of groups (available parallelism) and the *depth*, the size
//! of the largest group, which is the serialization floor no scheduler can
//! beat without reordering semantics.

use crate::unionfind::UnionFind;
use std::collections::BTreeMap;

/// The conflict partition of one batch's structural items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictPartition {
    /// Group id per item, parallel to the input slice. Group ids are dense
    /// `0..groups`, numbered by each group's first appearance in item order,
    /// so the partition is deterministic for a given input order.
    pub group_of: Vec<u32>,
    /// Number of disjoint conflict groups.
    pub groups: usize,
    /// Items in the largest group — the conflict-graph depth. Zero for an
    /// empty batch.
    pub depth: usize,
}

/// Partitions structural items into conflict groups.
///
/// Each item is described by the pair of component ids it touches: for a
/// link, the two endpoint components; for a cut, the edge's component
/// twice. Items land in the same group iff their component pairs are
/// connected in the conflict graph (the multigraph whose vertices are
/// component ids and whose edges are the items). Component ids are opaque
/// — only equality matters — so callers pass whatever id space they have
/// (the connectivity layer passes Euler-tour component ids).
pub fn partition_conflicts(touches: &[(u64, u64)]) -> ConflictPartition {
    // Dense-remap the distinct component ids so union-find can be indexed.
    let mut dense: BTreeMap<u64, u32> = BTreeMap::new();
    for &(a, b) in touches {
        let next = dense.len() as u32;
        dense.entry(a).or_insert(next);
        let next = dense.len() as u32;
        dense.entry(b).or_insert(next);
    }
    let mut uf = UnionFind::new(dense.len());
    for &(a, b) in touches {
        uf.union(dense[&a], dense[&b]);
    }
    // Number groups by first appearance so group 0 holds the earliest item.
    let mut group_ids: BTreeMap<u32, u32> = BTreeMap::new();
    let mut group_of = Vec::with_capacity(touches.len());
    let mut sizes: Vec<usize> = Vec::new();
    for &(a, _) in touches {
        let root = uf.find(dense[&a]);
        let next = group_ids.len() as u32;
        let g = *group_ids.entry(root).or_insert(next);
        if g as usize == sizes.len() {
            sizes.push(0);
        }
        sizes[g as usize] += 1;
        group_of.push(g);
    }
    ConflictPartition {
        group_of,
        groups: sizes.len(),
        depth: sizes.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_has_no_groups() {
        let p = partition_conflicts(&[]);
        assert_eq!(p.groups, 0);
        assert_eq!(p.depth, 0);
        assert!(p.group_of.is_empty());
    }

    #[test]
    fn disjoint_items_get_distinct_groups() {
        // Four links over eight distinct components: fully parallel.
        let p = partition_conflicts(&[(0, 1), (2, 3), (4, 5), (6, 7)]);
        assert_eq!(p.groups, 4);
        assert_eq!(p.depth, 1);
        assert_eq!(p.group_of, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shared_component_chains_items() {
        // A chain 0-1, 1-2, 2-3 conflicts end to end; 9-10 is free.
        let p = partition_conflicts(&[(0, 1), (9, 10), (1, 2), (2, 3)]);
        assert_eq!(p.groups, 2);
        assert_eq!(p.depth, 3);
        assert_eq!(p.group_of, vec![0, 1, 0, 0]);
    }

    #[test]
    fn cuts_touch_one_component_twice() {
        // Two cuts in the same component conflict; a cut elsewhere does not.
        let p = partition_conflicts(&[(7, 7), (7, 7), (5, 5)]);
        assert_eq!(p.groups, 2);
        assert_eq!(p.depth, 2);
        assert_eq!(p.group_of, vec![0, 0, 1]);
    }

    #[test]
    fn group_ids_are_dense_and_first_appearance_ordered() {
        // Later items joining earlier groups keep the earlier id.
        let p = partition_conflicts(&[(0, 1), (2, 3), (3, 0)]);
        assert_eq!(p.groups, 1);
        assert_eq!(p.depth, 3);
        assert_eq!(p.group_of, vec![0, 0, 0]);
    }

    #[test]
    fn opaque_ids_only_compare_for_equality() {
        let big = u64::MAX;
        let p = partition_conflicts(&[(big, big - 1), (big - 1, 0)]);
        assert_eq!(p.groups, 1);
        assert_eq!(p.depth, 2);
    }
}
