//! Matching verification utilities and greedy baselines.
//!
//! The dynamic matching algorithms are verified against these checks:
//! validity (no shared endpoints, edges present), maximality (no free-free
//! edge), and absence of short augmenting paths (which certifies the 3/2
//! approximation per Hopcroft–Karp, as used by the paper's Lemma 4.1).

use crate::{DynamicGraph, Edge, V};
use std::collections::{BTreeMap, HashSet};

/// A matching represented as a mate map: `mate[v] = Some(u)` iff (u,v) is a
/// matching edge. Kept in a sorted map for deterministic iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Matching {
    mate: BTreeMap<V, V>,
}

impl Matching {
    /// An empty matching.
    pub fn new() -> Self {
        Matching::default()
    }

    /// Builds a matching from a list of pairwise-disjoint edges.
    pub fn from_edges(edges: &[Edge]) -> Self {
        let mut m = Matching::new();
        for &e in edges {
            m.add(e);
        }
        m
    }

    /// Number of matched edges.
    pub fn size(&self) -> usize {
        self.mate.len() / 2
    }

    /// The mate of `v`, if matched.
    pub fn mate(&self, v: V) -> Option<V> {
        self.mate.get(&v).copied()
    }

    /// True if `v` is matched.
    pub fn is_matched(&self, v: V) -> bool {
        self.mate.contains_key(&v)
    }

    /// True if edge `e` is in the matching.
    pub fn contains(&self, e: Edge) -> bool {
        self.mate(e.u) == Some(e.v)
    }

    /// Adds a matching edge; panics if either endpoint is already matched.
    pub fn add(&mut self, e: Edge) {
        assert!(!self.is_matched(e.u), "endpoint {} already matched", e.u);
        assert!(!self.is_matched(e.v), "endpoint {} already matched", e.v);
        self.mate.insert(e.u, e.v);
        self.mate.insert(e.v, e.u);
    }

    /// Removes a matching edge; panics if absent.
    pub fn remove(&mut self, e: Edge) {
        assert!(self.contains(e), "edge {e} not in matching");
        self.mate.remove(&e.u);
        self.mate.remove(&e.v);
    }

    /// Iterates over the matched edges in normalized sorted order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.mate
            .iter()
            .filter(|(&a, &b)| a < b)
            .map(|(&a, &b)| Edge { u: a, v: b })
    }
}

/// Checks that `m` is a valid matching of `g`: every matched edge exists in
/// `g` and no vertex has two mates (structurally guaranteed, re-checked).
pub fn is_valid_matching(g: &DynamicGraph, m: &Matching) -> bool {
    let mut used: HashSet<V> = HashSet::new();
    for e in m.edges() {
        if !g.has_edge(e) {
            return false;
        }
        if !used.insert(e.u) || !used.insert(e.v) {
            return false;
        }
    }
    true
}

/// Checks maximality: no edge of `g` has both endpoints free.
pub fn is_maximal_matching(g: &DynamicGraph, m: &Matching) -> bool {
    g.edges().all(|e| m.is_matched(e.u) || m.is_matched(e.v))
}

/// Counts edges of `g` whose endpoints are both free — the number of
/// "violations" of maximality. Used for the (2+eps) almost-maximal audits.
pub fn maximality_violations(g: &DynamicGraph, m: &Matching) -> usize {
    g.edges()
        .filter(|e| !m.is_matched(e.u) && !m.is_matched(e.v))
        .count()
}

/// Greedy maximal matching scanning edges in sorted order (deterministic).
pub fn greedy_maximal(g: &DynamicGraph) -> Matching {
    let mut m = Matching::new();
    for e in g.edges() {
        if !m.is_matched(e.u) && !m.is_matched(e.v) {
            m.add(e);
        }
    }
    m
}

/// True if there exists an augmenting path of length at most `max_len`
/// (edges) with respect to `m`. Only odd lengths are meaningful. For
/// `max_len = 3` this is the certificate used by the paper's Lemma 4.1:
/// a maximal matching with no length-3 augmenting path is 3/2-approximate.
pub fn has_short_augmenting_path(g: &DynamicGraph, m: &Matching, max_len: usize) -> bool {
    // Length-1: free--free edge (non-maximality).
    if max_len >= 1 && !is_maximal_matching(g, m) {
        return true;
    }
    if max_len < 3 {
        return false;
    }
    // Length-3: free u — w — mate(w)=w' — z free, z != u.
    for u in 0..g.n() as V {
        if m.is_matched(u) {
            continue;
        }
        for w in g.neighbors(u) {
            let Some(wp) = m.mate(w) else { continue };
            for z in g.neighbors(wp) {
                if z != u && z != w && !m.is_matched(z) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DynamicGraph {
        DynamicGraph::from_edges(n, &crate::generators::path(n))
    }

    #[test]
    fn matching_add_remove() {
        let mut m = Matching::new();
        m.add(Edge::new(0, 1));
        assert!(m.is_matched(0) && m.is_matched(1));
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.size(), 1);
        m.remove(Edge::new(0, 1));
        assert_eq!(m.size(), 0);
    }

    #[test]
    #[should_panic]
    fn matching_rejects_conflicts() {
        let mut m = Matching::new();
        m.add(Edge::new(0, 1));
        m.add(Edge::new(1, 2));
    }

    #[test]
    fn greedy_is_valid_and_maximal() {
        let g = path_graph(7);
        let m = greedy_maximal(&g);
        assert!(is_valid_matching(&g, &m));
        assert!(is_maximal_matching(&g, &m));
    }

    #[test]
    fn detects_length_one_augmenting_path() {
        let g = path_graph(2);
        let m = Matching::new();
        assert!(has_short_augmenting_path(&g, &m, 1));
        assert_eq!(maximality_violations(&g, &m), 1);
    }

    #[test]
    fn detects_length_three_augmenting_path() {
        // Path 0-1-2-3 with only (1,2) matched: 0-1-2-3 is augmenting.
        let g = path_graph(4);
        let m = Matching::from_edges(&[Edge::new(1, 2)]);
        assert!(is_maximal_matching(&g, &m));
        assert!(!has_short_augmenting_path(&g, &m, 1));
        assert!(has_short_augmenting_path(&g, &m, 3));
    }

    #[test]
    fn no_short_path_when_perfectly_matched() {
        let g = path_graph(4);
        let m = Matching::from_edges(&[Edge::new(0, 1), Edge::new(2, 3)]);
        assert!(!has_short_augmenting_path(&g, &m, 3));
    }
}
