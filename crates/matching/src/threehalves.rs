//! Section 4: fully-dynamic 3/2-approximate matching.
//!
//! Builds on the Section 3 machinery with free-neighbor counters on the
//! stats machines and elimination of every augmenting path of length <= 3
//! after each update (which certifies the 3/2 approximation by
//! Hopcroft–Karp, the paper's Lemma 4.1). Starts from the empty graph, as
//! the paper assumes. Costs: O(1) rounds, O(n / sqrt N) active machines
//! (the counter commit touches that many stats machines in the worst case),
//! O(sqrt N) communication per round — Table 1 row 2.

use crate::maximal::DmpcMaximalMatching;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm, QueryableAlgorithm};
use dmpc_graph::matching::Matching;
use dmpc_graph::{DynamicGraph, Edge, Query, QueryAnswer};
use dmpc_mpc::{QueryMetrics, UpdateMetrics};

/// Fully-dynamic 3/2-approximate maximum matching.
pub struct DmpcThreeHalves {
    inner: DmpcMaximalMatching,
}

impl DmpcThreeHalves {
    /// Creates an empty instance.
    pub fn new(params: DmpcParams) -> Self {
        DmpcThreeHalves {
            inner: DmpcMaximalMatching::with_mode(params, true),
        }
    }

    /// Extracts the maintained matching.
    pub fn matching(&self) -> Matching {
        self.inner.matching()
    }

    /// Deep structural audit, including counter exactness and the
    /// no-short-augmenting-path certificate.
    pub fn audit(&self, g: &DynamicGraph) -> Result<(), String> {
        self.inner.audit(g)?;
        let m = self.matching();
        if dmpc_graph::matching::has_short_augmenting_path(g, &m, 3) {
            return Err("a length-<=3 augmenting path survived the update".into());
        }
        Ok(())
    }
}

/// The 3/2 algorithm shares the Section 3 machine layout, so its query
/// plane is the inner one: `IsMatched` answered at the stats machines,
/// `MatchingSize` from the coordinator's matched-pair counter.
impl QueryableAlgorithm for DmpcThreeHalves {
    fn answer_query(&mut self, q: Query) -> (QueryAnswer, QueryMetrics) {
        self.inner.answer_query(q)
    }

    fn answer_queries(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
        self.inner.answer_queries(queries)
    }
}

impl DynamicGraphAlgorithm for DmpcThreeHalves {
    fn name(&self) -> &'static str {
        "dmpc-3/2-matching"
    }

    fn insert(&mut self, e: Edge) -> UpdateMetrics {
        self.inner.insert(e)
    }

    fn delete(&mut self, e: Edge) -> UpdateMetrics {
        self.inner.delete(e)
    }
}
