//! DMPC fully-dynamic matching algorithms (paper Sections 3, 4 and 6) and
//! the static MPC baselines they are measured against.
//!
//! * [`maximal`] — Section 3: a deterministic fully-dynamic **maximal
//!   matching** with O(1) rounds per update, O(1) active machines per round
//!   and O(sqrt N) communication per round, in the worst case. The
//!   distinctive machinery is all here: a coordinator machine `M_C` holding
//!   the **update-history** ring buffer, stats machines with exact
//!   per-vertex records, storage machines holding adjacency lists with
//!   *stale-but-repairable* matching annotations, round-robin machine
//!   refresh, and the heavy/light vertex split with alive/suspended edge
//!   sets (threshold `tau = ceil(sqrt(2 m_max))`).
//! * [`threehalves`] — Section 4: the 3/2-approximate extension that
//!   maintains free-neighbor counters and eliminates every augmenting path
//!   of length <= 3 after each update.
//! * [`cs`] — Section 6: the (2+eps)-approximate almost-maximal matching in
//!   the style of Charikar–Solomon, with the level decomposition and the
//!   four schedulers executing bounded batches per update cycle.
//! * [`static_mm`] — the static MPC baseline (Israeli–Itai-style randomized
//!   maximal matching in O(log n) rounds with Omega(N) communication).
//!
//! # Example
//!
//! ```
//! use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
//! use dmpc_graph::Edge;
//! use dmpc_matching::DmpcMaximalMatching;
//!
//! let mut mm = DmpcMaximalMatching::new(DmpcParams::new(16, 64));
//! let m = mm.insert(Edge::new(0, 1));
//! assert!(m.clean());
//! mm.insert(Edge::new(1, 2)); // vertex 1 already matched: matching stays {0-1}
//! let matching = mm.matching();
//! assert_eq!(matching.size(), 1);
//! assert_eq!(matching.mate(0), Some(1));
//! ```

pub mod cs;
pub mod maximal;
pub mod static_mm;
pub mod threehalves;

pub use maximal::DmpcMaximalMatching;
pub use threehalves::DmpcThreeHalves;
