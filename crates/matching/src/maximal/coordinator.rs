//! The coordinator machine `M_C`: buffers the update-history, tracks which
//! machine has seen which history prefix, and orchestrates every update as
//! a constant number of request/reply waves.
//!
//! In 3/2 mode, scans of a heavy vertex consult *both* its alive set (on
//! its storage machine) and its suspended stack (on its overflow machine):
//! a free neighbor hiding among suspended edges would otherwise survive as
//! the far end of a length-3 augmenting path. The plain Section 3 algorithm
//! only needs the alive set (maximality is restored either way).

use super::msg::{Ann, HistEntry, HistSlice, MatchMsg, StatRec, NO_MATE};
use super::Layout;
use dmpc_graph::{Edge, Update, V};
use dmpc_mpc::MachineId;
use std::collections::{HashMap, VecDeque};

/// What to do once a batch of stats records arrives.
#[derive(Clone, Debug)]
pub enum StatsThen {
    /// Initial fetch of an insert's endpoints.
    InsPrimary,
    /// Second insert wave: the endpoints' mates.
    InsMates,
    /// Initial fetch of a delete's endpoints.
    DelPrimary,
    /// Records needed to perform a queued mutation, then resume the free
    /// loop.
    Mutate(MutateAction),
    /// Batch prefetch wave 1: every endpoint of every queued update.
    BatchEndpoints,
    /// Batch prefetch wave 2: the mates of all matched endpoints; then the
    /// queue starts draining.
    BatchMates,
}

/// A queued matching mutation awaiting the stats of its participants.
#[derive(Clone, Copy, Debug)]
pub enum MutateAction {
    /// Add `(a, b)` to the matching.
    MatchPair {
        /// One endpoint.
        a: V,
        /// The other endpoint.
        b: V,
    },
    /// Heavy steal: unmatch `(w, wm)`, match `(z, w)`, queue `wm`.
    Steal {
        /// The free heavy vertex.
        z: V,
        /// The stolen neighbor.
        w: V,
        /// Its (light) former mate.
        wm: V,
    },
    /// Length-3 augmentation: unmatch `(w, wp)`, match `(z, w)` and
    /// `(wp, q)`.
    AugRotate {
        /// The free vertex the path starts at.
        z: V,
        /// Its matched neighbor.
        w: V,
        /// `w`'s former mate.
        wp: V,
        /// The free endpoint closing the path.
        q: V,
    },
    /// Safety-net rotation: unmatch `(a, b)`, match `(a, x)` and `(b, y)`
    /// (the both-sides-free check on a freshly created matched edge).
    CheckRotate {
        /// One endpoint of the new matched edge.
        a: V,
        /// The other endpoint.
        b: V,
        /// Pre-free witness adjacent to `a`.
        x: V,
        /// Pre-free witness adjacent to `b` (distinct from `x`).
        y: V,
    },
    /// Section 4 insert case: unmatch `(u, up)`, match `(u, v)` and
    /// `(up, w)`.
    InsAugRotate {
        /// The matched endpoint of the inserted edge.
        u: V,
        /// Its former mate.
        up: V,
        /// The free endpoint of the inserted edge.
        v: V,
        /// The free neighbor of `up` closing the path.
        w: V,
    },
}

/// Why a free-neighbor scan was issued.
#[derive(Clone, Copy, Debug)]
pub enum ScanPurpose {
    /// Try to rematch free vertex `z`.
    Rematch,
    /// Section 4 insert check at `up = mate(u)` (excluding `v`).
    InsAug {
        /// Matched endpoint.
        u: V,
        /// Its mate being scanned.
        up: V,
        /// Free endpoint of the new edge.
        v: V,
    },
    /// Final scan of a length-3 augmentation at `wp` (excluding `z`).
    AugFinal {
        /// Path start.
        z: V,
        /// Matched neighbor.
        w: V,
        /// Its mate being scanned.
        wp: V,
    },
}

/// Coordinator protocol phase.
#[derive(Clone, Debug)]
pub enum Phase {
    /// No update in flight.
    Idle,
    /// Awaiting `StatReply` batches.
    AwaitStats {
        /// Replies still missing.
        expect: usize,
        /// Continuation.
        then: StatsThen,
    },
    /// Awaiting `MovedOut` replies from heavy transitions.
    AwaitMovedOut {
        /// Replies still missing.
        expect: usize,
    },
    /// Awaiting `DelReply` probes.
    AwaitDelProbes {
        /// Replies still missing.
        expect: usize,
        /// Whether each endpoint's alive-set copy was removed.
        found_alive: HashMap<V, bool>,
    },
    /// Awaiting `FetchReply` refills.
    AwaitFetch {
        /// Replies still missing.
        expect: usize,
    },
    /// Awaiting scan replies for free heavy vertex `z` (alive scan plus, in
    /// 3/2 mode, the suspended scan).
    AwaitScanHeavy {
        /// The free heavy vertex.
        z: V,
        /// Replies still missing.
        expect: usize,
        /// Free neighbors reported so far.
        free: Vec<V>,
        /// Steal candidate from the alive scan.
        steal: Option<(V, V)>,
    },
    /// Awaiting free-neighbor scan replies (1 machine for a light vertex,
    /// 2 for a heavy one in 3/2 mode).
    AwaitScanFree {
        /// Scanned vertex.
        z: V,
        /// Why.
        purpose: ScanPurpose,
        /// Replies still missing.
        expect: usize,
        /// Free neighbors reported so far.
        found: Vec<V>,
    },
    /// Awaiting `ScanAdjReply` batches for an augmentation search at `z`.
    AwaitAugAdj {
        /// Path start.
        z: V,
        /// Replies still missing.
        expect: usize,
    },
    /// Awaiting `CounterReply` batches for the augmentation search at `z`.
    AwaitAugCounters {
        /// Path start.
        z: V,
        /// Candidate (w, mate(w), mate-is-light) triples in scan order.
        cands: Vec<(V, V, bool)>,
        /// Replies still missing.
        expect: usize,
        /// Counters received so far.
        got: Vec<(V, u32)>,
    },
    /// Checking a new matched edge `(a,b)`: scanning `a` for a free witness
    /// outside the in-update free set.
    AwaitCheckScanA {
        /// One endpoint.
        a: V,
        /// The other endpoint.
        b: V,
        /// Replies still missing.
        expect: usize,
        /// Witnesses found so far.
        found: Vec<V>,
    },
    /// Checking `(a,b)`: scanning `b` for a witness distinct from `x`.
    AwaitCheckScanB {
        /// One endpoint.
        a: V,
        /// The other endpoint.
        b: V,
        /// The witness at `a`.
        x: V,
        /// Replies still missing.
        expect: usize,
        /// Witnesses found so far.
        found: Vec<V>,
    },
    /// Awaiting `ScanAdjReply` batches for the end-of-update counter commit.
    AwaitCommitAdj {
        /// Replies still missing.
        expect: usize,
        /// Adjacency gathered so far, merged per vertex.
        got: HashMap<V, Vec<V>>,
    },
    /// Batch drain paused at a send-budget boundary; resumes on
    /// [`MatchMsg::BatchResume`].
    BatchYield,
}

/// The per-update working memory.
#[derive(Debug, Default)]
pub struct Ctx {
    /// The update being processed.
    pub upd: Option<Update>,
    /// Cached records, kept current with local mutations.
    pub stat: HashMap<V, StatRec>,
    /// Snapshot of records at first fetch (pre-update statuses).
    pub pre: HashMap<V, StatRec>,
    /// Free vertices still to process.
    pub free_list: Vec<V>,
    /// Vertices certified free-and-pathless; re-queued after any later
    /// matching mutation, since a rematch elsewhere can create a new
    /// length-3 path ending at them (fixpoint bounded by the O(1)
    /// mutations per update).
    pub parked: Vec<V>,
    /// Fetched adjacency lists (light vertices: complete).
    pub adj: HashMap<V, Vec<(V, Ann)>>,
    /// Direct counter deltas (relation changes).
    pub counter_deltas: HashMap<V, i64>,
    /// Matched edges created this update, pending the both-sides-free
    /// safety check (3/2 mode).
    pub new_edges: Vec<(V, V)>,
}

impl Ctx {
    /// Vertices whose matched-status now differs from the pre-update
    /// snapshot; `true` = now free.
    pub fn status_diff(&self) -> Vec<(V, bool)> {
        let mut out = Vec::new();
        for (&v, rec) in &self.stat {
            if let Some(p) = self.pre.get(&v) {
                if p.matched() != rec.matched() {
                    out.push((v, !rec.matched()));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// The coordinator machine state.
pub struct Coordinator {
    /// Machine layout.
    pub layout: Layout,
    /// Section 4 mode: maintain counters + eliminate length-3 paths.
    pub three_halves: bool,
    /// Per-round send budget `S` in words; the batch drain yields to the
    /// next round rather than exceed it.
    send_budget: usize,
    hist: VecDeque<(u64, HistEntry)>,
    next_seq: u64,
    last_seen: HashMap<MachineId, u64>,
    rr_cursor: usize,
    overflow_of: HashMap<V, MachineId>,
    free_overflow: Vec<MachineId>,
    suspended: HashMap<V, usize>,
    /// Current protocol phase.
    pub phase: Phase,
    /// Per-update working memory.
    pub ctx: Ctx,
    /// Updates of the in-flight batch still to drain. The stat cache in
    /// [`Ctx::stat`] is carried from update to update within a batch (the
    /// coordinator is the only writer, so cached records stay exact), which
    /// is what turns per-update fetch round-trips into synchronous cache
    /// hits.
    queue: VecDeque<Update>,
    /// Running matched-edge count: every mutation goes through
    /// [`Coordinator`]'s `do_match`/`do_unmatch`, so one local counter
    /// answers `MatchingSize` queries without touching any other machine.
    matched_pairs: usize,
    /// Query answers stashed for driver-side extraction after the wave.
    answers: Vec<(u32, usize)>,
    /// Outbound recovery handoff in flight (the coordinator is the paper's
    /// reliable machine, so it stages and ships revive snapshots).
    courier: Option<dmpc_mpc::SnapCourier>,
    /// Packed snapshot staged by the driver for the next
    /// [`MatchMsg::HandoffBegin`].
    staged: Option<Vec<u64>>,
    out: Vec<(MachineId, MatchMsg)>,
}

impl Coordinator {
    /// Creates the coordinator for the given layout; `send_budget` is the
    /// machine send cap `S` (in words) the batch drain must respect.
    pub fn new(layout: Layout, three_halves: bool, send_budget: usize) -> Self {
        let base = layout.overflow_base();
        Coordinator {
            layout,
            three_halves,
            send_budget,
            hist: VecDeque::new(),
            next_seq: 1,
            last_seen: HashMap::new(),
            rr_cursor: 0,
            overflow_of: HashMap::new(),
            free_overflow: (0..layout.n_overflow)
                .rev()
                .map(|i| base + i as MachineId)
                .collect(),
            suspended: HashMap::new(),
            phase: Phase::Idle,
            ctx: Ctx::default(),
            queue: VecDeque::new(),
            matched_pairs: 0,
            answers: Vec::new(),
            courier: None,
            staged: None,
            out: Vec::new(),
        }
    }

    /// Driver-side staging of a packed snapshot for a recovery handoff
    /// (consumed by the next [`MatchMsg::HandoffBegin`]).
    pub fn stage_handoff(&mut self, words: Vec<u64>) {
        self.staged = Some(words);
    }

    /// Words held by the recovery plane (metered as coordinator memory).
    pub fn recovery_words(&self) -> usize {
        self.courier.as_ref().map_or(0, |c| 2 + c.words_left())
            + self.staged.as_ref().map_or(0, |s| s.len())
    }

    /// Plain-text snapshot of the coordinator's full durable state. The
    /// coordinator is never killed, but the epoch-abort path rolls *every*
    /// live machine back to the pre-batch frontier, so the snapshot must be
    /// lossless: history buffer, sync table, overflow directory and the
    /// matched-pair counter all round-trip through
    /// [`Coordinator::restore_text`]. Transient working state (phase, ctx,
    /// queue, stashed answers, courier) is empty at every quiescent boundary
    /// and is not serialized.
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("coord v2\n");
        writeln!(
            s,
            "pairs {}\nseq {}\nrr {}",
            self.matched_pairs, self.next_seq, self.rr_cursor
        )
        .unwrap();
        for &(seq, ref h) in &self.hist {
            match *h {
                HistEntry::MatchAdd(e, la, lb) => {
                    writeln!(
                        s,
                        "hist {seq} add {} {} {} {}",
                        e.u, e.v, la as u8, lb as u8
                    )
                }
                HistEntry::MatchDel(e) => writeln!(s, "hist {seq} del {} {}", e.u, e.v),
                HistEntry::Heavy(v) => writeln!(s, "hist {seq} heavy {v}"),
                HistEntry::Light(v) => writeln!(s, "hist {seq} light {v}"),
            }
            .unwrap();
        }
        let mut seen: Vec<(MachineId, u64)> =
            self.last_seen.iter().map(|(&m, &q)| (m, q)).collect();
        seen.sort_unstable();
        for (m, q) in seen {
            writeln!(s, "seen {m} {q}").unwrap();
        }
        let mut ovf: Vec<(V, MachineId)> = self.overflow_of.iter().map(|(&v, &m)| (v, m)).collect();
        ovf.sort_unstable();
        for (v, m) in ovf {
            writeln!(s, "ovf {v} {m}").unwrap();
        }
        // Stack order is load-bearing: future overflow assignments pop from
        // the back, so the restored vector must be bit-identical.
        for &m in &self.free_overflow {
            writeln!(s, "free {m}").unwrap();
        }
        let mut susp: Vec<(V, usize)> = self.suspended.iter().map(|(&v, &c)| (v, c)).collect();
        susp.sort_unstable();
        for (v, c) in susp {
            writeln!(s, "susp {v} {c}").unwrap();
        }
        s
    }

    /// Full state restore from [`Coordinator::snapshot_text`] output: the
    /// epoch-abort rollback. Transients reset to the quiescent idle state
    /// the snapshot was taken in.
    pub fn restore_text(&mut self, text: &str) {
        self.hist.clear();
        self.last_seen.clear();
        self.overflow_of.clear();
        self.free_overflow.clear();
        self.suspended.clear();
        self.phase = Phase::Idle;
        self.ctx = Ctx::default();
        self.queue.clear();
        self.answers.clear();
        self.courier = None;
        self.staged = None;
        self.out.clear();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("coord v2"), "snapshot header");
        for line in lines {
            let mut it = line.split_ascii_whitespace();
            let key = it.next().unwrap();
            match key {
                "pairs" => self.matched_pairs = it.next().unwrap().parse().unwrap(),
                "seq" => self.next_seq = it.next().unwrap().parse().unwrap(),
                "rr" => self.rr_cursor = it.next().unwrap().parse().unwrap(),
                "hist" => {
                    let seq: u64 = it.next().unwrap().parse().unwrap();
                    let entry = match it.next().unwrap() {
                        "add" => HistEntry::MatchAdd(
                            Edge::new(
                                it.next().unwrap().parse().unwrap(),
                                it.next().unwrap().parse().unwrap(),
                            ),
                            it.next().unwrap() == "1",
                            it.next().unwrap() == "1",
                        ),
                        "del" => HistEntry::MatchDel(Edge::new(
                            it.next().unwrap().parse().unwrap(),
                            it.next().unwrap().parse().unwrap(),
                        )),
                        "heavy" => HistEntry::Heavy(it.next().unwrap().parse().unwrap()),
                        "light" => HistEntry::Light(it.next().unwrap().parse().unwrap()),
                        other => panic!("unknown hist entry kind {other}"),
                    };
                    self.hist.push_back((seq, entry));
                }
                "seen" => {
                    let m: MachineId = it.next().unwrap().parse().unwrap();
                    self.last_seen
                        .insert(m, it.next().unwrap().parse().unwrap());
                }
                "ovf" => {
                    let v: V = it.next().unwrap().parse().unwrap();
                    self.overflow_of
                        .insert(v, it.next().unwrap().parse().unwrap());
                }
                "free" => self.free_overflow.push(it.next().unwrap().parse().unwrap()),
                "susp" => {
                    let v: V = it.next().unwrap().parse().unwrap();
                    self.suspended
                        .insert(v, it.next().unwrap().parse().unwrap());
                }
                other => panic!("unknown snapshot key {other}"),
            }
        }
    }

    fn courier_chunk(&mut self) -> Vec<(MachineId, MatchMsg)> {
        let mut msgs = Vec::new();
        if let Some(c) = &mut self.courier {
            match c.next_chunk() {
                Some((words, last)) => msgs.push((c.dst, MatchMsg::SnapChunk { words, last })),
                None => self.courier = None,
            }
        }
        msgs
    }

    /// Bulk-load hook: presets the matched-pair counter to the size of the
    /// preprocessed matching.
    pub fn preset_matched_pairs(&mut self, pairs: usize) {
        self.matched_pairs = pairs;
    }

    /// Current matched-edge count (exact; see the field docs).
    pub fn matched_pairs(&self) -> usize {
        self.matched_pairs
    }

    /// Answers a `MatchingSize` query from the local counter (stashes the
    /// answer for driver-side extraction; zero outbound traffic).
    pub fn answer_matching_size(&mut self, qid: u32) {
        self.answers.push((qid, self.matched_pairs));
    }

    /// Drains the query answers stashed here.
    pub fn take_answers(&mut self) -> Vec<(u32, usize)> {
        std::mem::take(&mut self.answers)
    }

    /// Stashed-answer count (metered as coordinator memory).
    pub fn answers_len(&self) -> usize {
        self.answers.len()
    }

    /// Bulk-load hook: registers an overflow assignment made during
    /// preprocessing.
    pub fn preassign_overflow(&mut self, v: V, machine: MachineId, count: usize) {
        self.free_overflow.retain(|&m| m != machine);
        self.overflow_of.insert(v, machine);
        self.suspended.insert(v, count);
    }

    /// True when no update or batch is in flight.
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::Idle) && self.queue.is_empty()
    }

    /// Records currently cached in per-update working memory (metered as
    /// coordinator memory).
    pub fn cache_len(&self) -> usize {
        self.ctx.stat.len()
    }

    /// Batch updates still queued (metered as coordinator memory).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    // ---- history helpers -------------------------------------------------

    fn push_hist(&mut self, e: HistEntry) {
        self.hist.push_back((self.next_seq, e));
        self.next_seq += 1;
    }

    fn hist_for(&mut self, machine: MachineId) -> HistSlice {
        let seen = self.last_seen.get(&machine).copied().unwrap_or(0);
        let slice: HistSlice = self
            .hist
            .iter()
            .filter(|&&(seq, _)| seq > seen)
            .copied()
            .collect();
        self.last_seen.insert(machine, self.next_seq - 1);
        slice
    }

    fn trim_hist(&mut self) {
        let first_store = 1 + self.layout.n_stats;
        let total = self.layout.total_machines();
        let min_seen = (first_store..total)
            .map(|m| self.last_seen.get(&(m as MachineId)).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        while let Some(&(seq, _)) = self.hist.front() {
            if seq <= min_seen {
                self.hist.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current history length (tests assert it stays bounded by the
    /// refresh cycle).
    pub fn hist_len(&self) -> usize {
        self.hist.len()
    }

    /// The history entries with sequence number greater than `seen`
    /// (read-only; used by audits to replicate a machine's repair).
    pub fn hist_suffix(&self, seen: u64) -> HistSlice {
        self.hist
            .iter()
            .filter(|&&(seq, _)| seq > seen)
            .copied()
            .collect()
    }

    // ---- small senders ---------------------------------------------------

    fn send(&mut self, to: MachineId, msg: MatchMsg) {
        self.out.push((to, msg));
    }

    fn send_storage(&mut self, v: V, build: impl FnOnce(HistSlice) -> MatchMsg) {
        let m = self.layout.storage_of(v);
        let h = self.hist_for(m);
        self.out.push((m, build(h)));
    }

    fn send_overflow(&mut self, v: V, build: impl FnOnce(HistSlice) -> MatchMsg) {
        let m = self.overflow_of[&v];
        let h = self.hist_for(m);
        self.out.push((m, build(h)));
    }

    fn push_stat(&mut self, v: V) {
        let rec = self.ctx.stat[&v];
        let m = self.layout.stats_of(v);
        self.send(m, MatchMsg::StatSet(vec![(v, rec)]));
    }

    fn fetch_stats(&mut self, vs: Vec<V>, then: StatsThen) {
        let mut by_machine: HashMap<MachineId, Vec<V>> = HashMap::new();
        for v in vs {
            if self.ctx.stat.contains_key(&v) {
                continue;
            }
            by_machine
                .entry(self.layout.stats_of(v))
                .or_default()
                .push(v);
        }
        if by_machine.is_empty() {
            self.after_stats(then);
            return;
        }
        let expect = by_machine.len();
        for (m, vs) in by_machine {
            self.send(m, MatchMsg::StatQuery(vs));
        }
        self.phase = Phase::AwaitStats { expect, then };
    }

    fn light(&self, v: V) -> bool {
        !self.ctx.stat[&v].heavy
    }

    fn ann_of(&self, v: V) -> Ann {
        let r = &self.ctx.stat[&v];
        if r.matched() {
            Ann {
                matched: true,
                mate: r.mate,
                mate_light: !self.ctx.stat[&r.mate].heavy,
            }
        } else {
            Ann::free()
        }
    }

    /// Issues a free-neighbor scan for `z`: the storage machine, plus the
    /// overflow machine in 3/2 mode when `z` is heavy with suspended edges.
    /// `z_heavy` is passed explicitly because `z`'s record may not be
    /// cached (it can come from an adjacency annotation).
    fn scan_free(&mut self, z: V, z_heavy: bool, exclude: Vec<V>, purpose: ScanPurpose) {
        let mut expect = 1;
        let ex = exclude.clone();
        self.send_storage(z, |hist| MatchMsg::ScanFree {
            z,
            exclude: ex,
            hist,
        });
        if self.three_halves && z_heavy && self.suspended.get(&z).copied().unwrap_or(0) > 0 {
            self.send_overflow(z, |hist| MatchMsg::ScanFree { z, exclude, hist });
            expect += 1;
        }
        self.phase = Phase::AwaitScanFree {
            z,
            purpose,
            expect,
            found: Vec::new(),
        };
    }

    // ---- matching mutations -----------------------------------------------

    fn do_match(&mut self, a: V, b: V) {
        debug_assert!(
            !self.ctx.stat[&a].matched() && !self.ctx.stat[&b].matched(),
            "match({a},{b}) on matched vertex"
        );
        self.ctx.stat.get_mut(&a).unwrap().mate = b;
        self.ctx.stat.get_mut(&b).unwrap().mate = a;
        let (al, bl) = (self.light(a), self.light(b));
        let e = Edge::new(a, b);
        let (ul, vl) = if e.u == a { (al, bl) } else { (bl, al) };
        self.push_hist(HistEntry::MatchAdd(e, ul, vl));
        self.matched_pairs += 1;
        self.push_stat(a);
        self.push_stat(b);
        self.ctx.free_list.retain(|&x| x != a && x != b);
        if self.three_halves {
            self.ctx.new_edges.push((a, b));
        }
    }

    fn do_unmatch(&mut self, a: V, b: V) {
        debug_assert_eq!(self.ctx.stat[&a].mate, b);
        self.ctx.stat.get_mut(&a).unwrap().mate = NO_MATE;
        self.ctx.stat.get_mut(&b).unwrap().mate = NO_MATE;
        self.push_hist(HistEntry::MatchDel(Edge::new(a, b)));
        self.matched_pairs -= 1;
        self.push_stat(a);
        self.push_stat(b);
    }

    // ---- entry points ------------------------------------------------------

    /// Starts processing an injected update; returns outbound messages.
    pub fn start(&mut self, upd: Update) -> Vec<(MachineId, MatchMsg)> {
        // Mirror of the recovery in `start_batch`: a non-idle state at
        // injection time can only be a round-limit-aborted previous run.
        // Per the simulator's record-don't-abort contract, that run's
        // `Violation::RoundLimit` is the authoritative error signal;
        // execution after it is best-effort (in-flight replies were
        // dropped, so machine-side state may be inconsistent until callers
        // acting on the violation reset the structure).
        if !self.is_idle() {
            self.phase = Phase::Idle;
            self.queue.clear();
        }
        self.ctx = Ctx {
            upd: Some(upd),
            ..Default::default()
        };
        let e = upd.edge();
        match upd {
            Update::Insert(_) => self.fetch_stats(vec![e.u, e.v], StatsThen::InsPrimary),
            Update::Delete(_) => self.fetch_stats(vec![e.u, e.v], StatsThen::DelPrimary),
        }
        std::mem::take(&mut self.out)
    }

    /// Starts an injected batch: prefetches every endpoint's record in one
    /// shared wave (then the mates in a second), and drains the queue
    /// back-to-back — consecutive updates whose records are cached process
    /// in the same round with zero extra fetch round-trips. Section 3 mode
    /// only: the 3/2 algorithm's counter commit reads pre-update snapshots
    /// that assume one update per run.
    pub fn start_batch(&mut self, updates: Vec<Update>) -> Vec<(MachineId, MatchMsg)> {
        // External injections only arrive between runs; a non-idle state
        // here means the previous run was aborted by the round-limit guard
        // (its violation is already metered — the authoritative error
        // signal under the simulator's record-don't-abort contract).
        // Recover rather than panic; post-abort execution is best-effort.
        if !self.is_idle() {
            self.phase = Phase::Idle;
            self.queue.clear();
        }
        assert!(
            !self.three_halves,
            "batched execution covers the Section 3 algorithm only"
        );
        if updates.is_empty() {
            return Vec::new();
        }
        self.queue = updates.into();
        self.ctx = Ctx::default();
        let mut endpoints: Vec<V> = self
            .queue
            .iter()
            .flat_map(|u| {
                let e = u.edge();
                [e.u, e.v]
            })
            .collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        self.fetch_stats(endpoints, StatsThen::BatchEndpoints);
        std::mem::take(&mut self.out)
    }

    /// Pops the next queued batch update, carrying the stat cache over.
    fn next_queued(&mut self) {
        let Some(upd) = self.queue.pop_front() else {
            self.phase = Phase::Idle;
            return;
        };
        let stat = std::mem::take(&mut self.ctx.stat);
        self.ctx = Ctx {
            upd: Some(upd),
            stat,
            ..Default::default()
        };
        let e = upd.edge();
        match upd {
            Update::Insert(_) => self.fetch_stats(vec![e.u, e.v], StatsThen::InsPrimary),
            Update::Delete(_) => self.fetch_stats(vec![e.u, e.v], StatsThen::DelPrimary),
        }
    }

    /// Feeds one reply message; returns outbound messages.
    pub fn reply(&mut self, msg: MatchMsg) -> Vec<(MachineId, MatchMsg)> {
        // Recovery-handoff traffic is phase-independent: the courier runs
        // only at driver-level quiescence, never inside an update.
        match msg {
            MatchMsg::HandoffBegin { to, budget } => {
                let words = self
                    .staged
                    .take()
                    .expect("handoff without a staged snapshot");
                self.courier = Some(dmpc_mpc::SnapCourier::new(to, true, words, budget));
                return self.courier_chunk();
            }
            MatchMsg::SnapAck => return self.courier_chunk(),
            _ => {}
        }
        let phase = std::mem::replace(&mut self.phase, Phase::Idle);
        match (phase, msg) {
            (Phase::AwaitStats { mut expect, then }, MatchMsg::StatReply(recs)) => {
                for (v, r) in recs {
                    self.ctx.stat.insert(v, r);
                    self.ctx.pre.entry(v).or_insert(r);
                }
                expect -= 1;
                if expect == 0 {
                    self.after_stats(then);
                } else {
                    self.phase = Phase::AwaitStats { expect, then };
                }
            }
            (Phase::AwaitMovedOut { mut expect }, MatchMsg::MovedOut { v, entries }) => {
                expect -= 1;
                if !entries.is_empty() {
                    *self.suspended.entry(v).or_default() += entries.len();
                    self.send_overflow(v, |hist| MatchMsg::AddSuspended { v, entries, hist });
                }
                if expect == 0 {
                    self.insert_place_edge();
                } else {
                    self.phase = Phase::AwaitMovedOut { expect };
                }
            }
            (
                Phase::AwaitDelProbes {
                    mut expect,
                    mut found_alive,
                },
                MatchMsg::DelReply { at, found, alive },
            ) => {
                // Only an alive-set removal can trigger a suspended-stack
                // refill; a suspended removal leaves the alive set intact.
                if found && alive {
                    found_alive.insert(at, true);
                } else if found && !alive {
                    // Suspended copy removed: account for it.
                    if let Some(c) = self.suspended.get_mut(&at) {
                        *c -= 1;
                    }
                }
                found_alive.entry(at).or_insert(false);
                expect -= 1;
                if expect == 0 {
                    self.delete_after_probes(found_alive);
                } else {
                    self.phase = Phase::AwaitDelProbes {
                        expect,
                        found_alive,
                    };
                }
            }
            (Phase::AwaitFetch { mut expect }, MatchMsg::FetchReply { v, entry }) => {
                expect -= 1;
                if let Some(entry) = entry {
                    *self.suspended.get_mut(&v).unwrap() -= 1;
                    self.send_storage(v, |hist| MatchMsg::AddAlive { at: v, entry, hist });
                }
                if expect == 0 {
                    self.delete_after_refill();
                } else {
                    self.phase = Phase::AwaitFetch { expect };
                }
            }
            (
                Phase::AwaitScanHeavy {
                    z,
                    mut expect,
                    mut free,
                    steal,
                },
                reply,
            ) => {
                let steal = match reply {
                    MatchMsg::ScanHeavyReply {
                        free: f, steal: s, ..
                    } => {
                        free.extend(f);
                        s.or(steal)
                    }
                    MatchMsg::ScanFreeReply { q, .. } => {
                        free.extend(q);
                        steal
                    }
                    other => panic!("unexpected reply in heavy scan: {other:?}"),
                };
                expect -= 1;
                if expect == 0 {
                    self.on_scan_heavy(z, free, steal);
                } else {
                    self.phase = Phase::AwaitScanHeavy {
                        z,
                        expect,
                        free,
                        steal,
                    };
                }
            }
            (
                Phase::AwaitScanFree {
                    z,
                    purpose,
                    mut expect,
                    mut found,
                },
                MatchMsg::ScanFreeReply { q, .. },
            ) => {
                found.extend(q);
                expect -= 1;
                if expect == 0 {
                    found.sort_unstable();
                    self.on_scan_free(z, purpose, found.first().copied());
                } else {
                    self.phase = Phase::AwaitScanFree {
                        z,
                        purpose,
                        expect,
                        found,
                    };
                }
            }
            (Phase::AwaitAugAdj { z, mut expect }, MatchMsg::ScanAdjReply { z: v, entries }) => {
                self.ctx.adj.insert(v, entries);
                expect -= 1;
                if expect == 0 {
                    self.aug_counters(z);
                } else {
                    self.phase = Phase::AwaitAugAdj { z, expect };
                }
            }
            (
                Phase::AwaitAugCounters {
                    z,
                    cands,
                    mut expect,
                    mut got,
                },
                MatchMsg::CounterReply(rs),
            ) => {
                got.extend(rs);
                expect -= 1;
                if expect == 0 {
                    self.aug_pick(z, cands, got);
                } else {
                    self.phase = Phase::AwaitAugCounters {
                        z,
                        cands,
                        expect,
                        got,
                    };
                }
            }
            (
                Phase::AwaitCheckScanA {
                    a,
                    b,
                    mut expect,
                    mut found,
                },
                MatchMsg::ScanFreeReply { q, .. },
            ) => {
                found.extend(q);
                expect -= 1;
                if expect == 0 {
                    found.sort_unstable();
                    match found.first().copied() {
                        Some(x) => self.check_scan_b(a, b, x),
                        None => self.pre_commit(),
                    }
                } else {
                    self.phase = Phase::AwaitCheckScanA {
                        a,
                        b,
                        expect,
                        found,
                    };
                }
            }
            (
                Phase::AwaitCheckScanB {
                    a,
                    b,
                    x,
                    mut expect,
                    mut found,
                },
                MatchMsg::ScanFreeReply { q, .. },
            ) => {
                found.extend(q);
                expect -= 1;
                if expect == 0 {
                    found.sort_unstable();
                    match found.first().copied() {
                        Some(y) => self.fetch_stats(
                            vec![x, y],
                            StatsThen::Mutate(MutateAction::CheckRotate { a, b, x, y }),
                        ),
                        None => self.pre_commit(),
                    }
                } else {
                    self.phase = Phase::AwaitCheckScanB {
                        a,
                        b,
                        x,
                        expect,
                        found,
                    };
                }
            }
            (
                Phase::AwaitCommitAdj {
                    mut expect,
                    mut got,
                },
                MatchMsg::ScanAdjReply { z, entries },
            ) => {
                got.entry(z)
                    .or_default()
                    .extend(entries.iter().map(|&(n, _)| n));
                expect -= 1;
                if expect == 0 {
                    self.commit_counters(got);
                } else {
                    self.phase = Phase::AwaitCommitAdj { expect, got };
                }
            }
            (Phase::BatchYield, MatchMsg::BatchResume) => self.next_queued(),
            (phase, msg) => panic!("coordinator in {phase:?} got unexpected {msg:?}"),
        }
        std::mem::take(&mut self.out)
    }

    // ---- insert flow -------------------------------------------------------

    fn after_stats(&mut self, then: StatsThen) {
        match then {
            StatsThen::InsPrimary => {
                let e = self.ctx.upd.unwrap().edge();
                let mut mates = Vec::new();
                for v in [e.u, e.v] {
                    let r = self.ctx.stat[&v];
                    if r.matched() {
                        mates.push(r.mate);
                    }
                }
                self.fetch_stats(mates, StatsThen::InsMates);
            }
            StatsThen::InsMates => self.insert_transitions(),
            StatsThen::DelPrimary => self.delete_probes(),
            StatsThen::Mutate(action) => self.run_mutation(action),
            StatsThen::BatchEndpoints => {
                // Wave 2: the mates of every matched endpoint, so the
                // per-update InsMates fetches also hit the cache.
                let mut mates: Vec<V> = self
                    .queue
                    .iter()
                    .flat_map(|u| {
                        let e = u.edge();
                        [e.u, e.v]
                    })
                    .filter_map(|v| {
                        let r = self.ctx.stat[&v];
                        r.matched().then_some(r.mate)
                    })
                    .collect();
                mates.sort_unstable();
                mates.dedup();
                self.fetch_stats(mates, StatsThen::BatchMates);
            }
            StatsThen::BatchMates => self.next_queued(),
        }
    }

    fn insert_transitions(&mut self) {
        let e = self.ctx.upd.unwrap().edge();
        let tau = self.layout.tau as u32;
        let mut transitions = Vec::new();
        for v in [e.u, e.v] {
            let r = self.ctx.stat.get_mut(&v).unwrap();
            r.degree += 1;
            if r.degree == tau + 1 {
                r.heavy = true;
                transitions.push(v);
            }
        }
        for &v in &transitions {
            self.push_hist(HistEntry::Heavy(v));
            let ov = self
                .free_overflow
                .pop()
                .expect("overflow pool exhausted; raise Layout::n_overflow");
            self.overflow_of.insert(v, ov);
            self.suspended.insert(v, 0);
            let mate = self.ctx.stat[&v].mate;
            let mate = (mate != NO_MATE).then_some(mate);
            self.send_storage(v, |hist| MatchMsg::MakeHeavy { v, mate, hist });
        }
        self.push_stat(e.u);
        self.push_stat(e.v);
        if transitions.is_empty() {
            self.insert_place_edge();
        } else {
            self.phase = Phase::AwaitMovedOut {
                expect: transitions.len(),
            };
        }
    }

    fn insert_place_edge(&mut self) {
        let e = self.ctx.upd.unwrap().edge();
        for (at, nbr) in [(e.u, e.v), (e.v, e.u)] {
            let ann = self.ann_of(nbr);
            if self.ctx.stat[&at].heavy {
                *self.suspended.get_mut(&at).unwrap() += 1;
                self.send_overflow(at, |hist| MatchMsg::AddSuspended {
                    v: at,
                    entries: vec![(nbr, ann)],
                    hist,
                });
            } else {
                self.send_storage(at, |hist| MatchMsg::AddEdge { at, nbr, ann, hist });
            }
        }
        if self.three_halves {
            let (pu, pv) = (self.ctx.pre[&e.u], self.ctx.pre[&e.v]);
            if !pv.matched() {
                *self.ctx.counter_deltas.entry(e.u).or_default() += 1;
            }
            if !pu.matched() {
                *self.ctx.counter_deltas.entry(e.v).or_default() += 1;
            }
        }
        self.insert_decide();
    }

    fn insert_decide(&mut self) {
        let e = self.ctx.upd.unwrap().edge();
        let (ru, rv) = (self.ctx.stat[&e.u], self.ctx.stat[&e.v]);
        match (ru.matched(), rv.matched()) {
            (true, true) => self.pre_commit(),
            (false, false) => {
                self.do_match(e.u, e.v);
                self.pre_commit();
            }
            (m_u, _) => {
                let (u, v) = if m_u { (e.u, e.v) } else { (e.v, e.u) };
                if self.three_halves {
                    let up = self.ctx.stat[&u].mate;
                    let up_heavy = self.ctx.stat[&up].heavy;
                    // Exclude v and anything freed so far as witnesses.
                    let mut ex = vec![v];
                    ex.extend(self.in_update_free());
                    self.scan_free(up, up_heavy, ex, ScanPurpose::InsAug { u, up, v });
                } else if self.ctx.stat[&v].heavy {
                    self.ctx.free_list.push(v);
                    self.process_free();
                } else {
                    self.pre_commit();
                }
            }
        }
    }

    // ---- delete flow -------------------------------------------------------

    fn delete_probes(&mut self) {
        let e = self.ctx.upd.unwrap().edge();
        let mut expect = 0;
        for (at, nbr) in [(e.u, e.v), (e.v, e.u)] {
            self.send_storage(at, |hist| MatchMsg::DelEdge { at, nbr, hist });
            expect += 1;
            if self.ctx.stat[&at].heavy && self.overflow_of.contains_key(&at) {
                self.send_overflow(at, |hist| MatchMsg::DelEdge { at, nbr, hist });
                expect += 1;
            }
        }
        self.phase = Phase::AwaitDelProbes {
            expect,
            found_alive: HashMap::new(),
        };
    }

    fn delete_after_probes(&mut self, found_alive: HashMap<V, bool>) {
        let e = self.ctx.upd.unwrap().edge();
        let mut fetches = 0;
        for v in [e.u, e.v] {
            let suspended = self.suspended.get(&v).copied().unwrap_or(0);
            if self.ctx.stat[&v].heavy
                && found_alive.get(&v).copied().unwrap_or(false)
                && suspended > 0
            {
                self.send_overflow(v, |hist| MatchMsg::FetchSuspended { v, hist });
                fetches += 1;
            }
        }
        if fetches > 0 {
            self.phase = Phase::AwaitFetch { expect: fetches };
        } else {
            self.delete_after_refill();
        }
    }

    fn delete_after_refill(&mut self) {
        let e = self.ctx.upd.unwrap().edge();
        let tau = self.layout.tau as u32;
        for v in [e.u, e.v] {
            let (newdeg, was_heavy) = {
                let r = self.ctx.stat.get_mut(&v).unwrap();
                r.degree -= 1;
                (r.degree, r.heavy)
            };
            if was_heavy && newdeg == tau {
                self.ctx.stat.get_mut(&v).unwrap().heavy = false;
                self.push_hist(HistEntry::Light(v));
                debug_assert_eq!(
                    self.suspended.get(&v).copied().unwrap_or(0),
                    0,
                    "alive = min(tau, deg) keeps the stack empty at the transition"
                );
                self.send_storage(v, |hist| MatchMsg::MakeLight { v, hist });
                if let Some(ov) = self.overflow_of.remove(&v) {
                    self.send(ov, MatchMsg::ReleaseOverflow { v });
                    self.free_overflow.push(ov);
                }
                self.suspended.remove(&v);
            }
        }
        self.push_stat(e.u);
        self.push_stat(e.v);
        if self.three_halves {
            let (pu, pv) = (self.ctx.pre[&e.u], self.ctx.pre[&e.v]);
            if !pv.matched() {
                *self.ctx.counter_deltas.entry(e.u).or_default() -= 1;
            }
            if !pu.matched() {
                *self.ctx.counter_deltas.entry(e.v).or_default() -= 1;
            }
        }
        if self.ctx.stat[&e.u].mate == e.v {
            self.do_unmatch(e.u, e.v);
            self.ctx.free_list.push(e.u);
            self.ctx.free_list.push(e.v);
            self.process_free();
        } else {
            self.pre_commit();
        }
    }

    // ---- the free-vertex loop ----------------------------------------------

    fn process_free(&mut self) {
        // Drop entries that got matched along the way.
        let stat = &self.ctx.stat;
        self.ctx.free_list.retain(|v| !stat[v].matched());
        // Heavy vertices first: their steals may free further light
        // vertices, and finishing them first keeps every remaining free
        // vertex light (which the augmentation accounting relies on).
        let heavy_z = self
            .ctx
            .free_list
            .iter()
            .copied()
            .find(|&v| self.ctx.stat[&v].heavy);
        let Some(z) = heavy_z.or_else(|| self.ctx.free_list.first().copied()) else {
            self.pre_commit();
            return;
        };
        if self.ctx.stat[&z].heavy {
            let mut expect = 1;
            self.send_storage(z, |hist| MatchMsg::ScanHeavy { z, hist });
            if self.three_halves && self.suspended.get(&z).copied().unwrap_or(0) > 0 {
                self.send_overflow(z, |hist| MatchMsg::ScanFree {
                    z,
                    exclude: Vec::new(),
                    hist,
                });
                expect += 1;
            }
            self.phase = Phase::AwaitScanHeavy {
                z,
                expect,
                free: Vec::new(),
                steal: None,
            };
        } else {
            self.scan_free(z, false, Vec::new(), ScanPurpose::Rematch);
        }
    }

    fn on_scan_heavy(&mut self, z: V, mut free: Vec<V>, steal: Option<(V, V)>) {
        free.sort_unstable();
        if let Some(&q) = free.first() {
            self.fetch_stats(
                vec![q],
                StatsThen::Mutate(MutateAction::MatchPair { a: z, b: q }),
            );
        } else if let Some((w, wm)) = steal {
            self.fetch_stats(
                vec![w, wm],
                StatsThen::Mutate(MutateAction::Steal { z, w, wm }),
            );
        } else {
            // The counting argument (tau^2 > 2 m_max) guarantees a steal
            // candidate among tau all-matched alive neighbors.
            panic!("heavy vertex {z} found neither free neighbor nor light-mated neighbor");
        }
    }

    fn on_scan_free(&mut self, z: V, purpose: ScanPurpose, q: Option<V>) {
        match purpose {
            ScanPurpose::Rematch => {
                if let Some(q) = q {
                    self.fetch_stats(
                        vec![q],
                        StatsThen::Mutate(MutateAction::MatchPair { a: z, b: q }),
                    );
                } else if self.three_halves {
                    self.aug_search(z);
                } else {
                    self.park(z);
                    self.process_free();
                }
            }
            ScanPurpose::InsAug { u, up, v } => {
                if let Some(w) = q {
                    self.fetch_stats(
                        vec![w],
                        StatsThen::Mutate(MutateAction::InsAugRotate { u, up, v, w }),
                    );
                } else if self.ctx.stat[&v].heavy {
                    self.ctx.free_list.push(v);
                    self.process_free();
                } else {
                    self.pre_commit();
                }
            }
            ScanPurpose::AugFinal { z, w, wp } => {
                if let Some(q) = q {
                    self.fetch_stats(
                        vec![w, wp, q],
                        StatsThen::Mutate(MutateAction::AugRotate { z, w, wp, q }),
                    );
                } else {
                    panic!("counter promised a free neighbor of {wp} but the scan found none");
                }
            }
        }
    }

    fn run_mutation(&mut self, action: MutateAction) {
        match action {
            MutateAction::MatchPair { a, b } => {
                self.do_match(a, b);
            }
            MutateAction::Steal { z, w, wm } => {
                self.do_unmatch(w, wm);
                self.do_match(z, w);
                self.ctx.free_list.push(wm);
            }
            MutateAction::AugRotate { z, w, wp, q } => {
                self.do_unmatch(w, wp);
                self.do_match(z, w);
                self.do_match(wp, q);
            }
            MutateAction::InsAugRotate { u, up, v, w } => {
                self.do_unmatch(u, up);
                self.do_match(u, v);
                self.do_match(up, w);
            }
            MutateAction::CheckRotate { a, b, x, y } => {
                self.do_unmatch(a, b);
                self.do_match(a, x);
                self.do_match(b, y);
            }
        }
        // Mutations invalidate earlier no-path certificates: re-queue.
        let parked = std::mem::take(&mut self.ctx.parked);
        self.ctx.free_list.extend(parked);
        self.process_free();
    }

    /// Vertices freed during this update that are still free (invalid as
    /// augmentation witnesses: their own neighborhoods are re-verified via
    /// the parked/requeue loop instead).
    fn in_update_free(&self) -> Vec<V> {
        self.ctx
            .status_diff()
            .into_iter()
            .filter(|&(_, now_free)| now_free)
            .map(|(v, _)| v)
            .collect()
    }

    /// Certifies `z` free with no applicable move; re-checked only if a
    /// later mutation occurs in this update.
    fn park(&mut self, z: V) {
        self.ctx.free_list.retain(|&x| x != z);
        if !self.ctx.parked.contains(&z) {
            self.ctx.parked.push(z);
        }
    }

    // ---- Section 4 augmentation search ---------------------------------------

    fn aug_search(&mut self, z: V) {
        let mut want: Vec<V> = vec![z];
        want.extend(self.ctx.free_list.iter().copied());
        for (v, _) in self.ctx.status_diff() {
            want.push(v);
        }
        want.sort_unstable();
        want.dedup();
        want.retain(|v| !self.ctx.adj.contains_key(v));
        if want.is_empty() {
            self.aug_counters(z);
            return;
        }
        let expect = want.len();
        for v in want {
            debug_assert!(self.light(v), "augmentation participants are light");
            self.send_storage(v, |hist| MatchMsg::ScanAdj { z: v, hist });
        }
        self.phase = Phase::AwaitAugAdj { z, expect };
    }

    fn aug_counters(&mut self, z: V) {
        let cands: Vec<(V, V, bool)> = self.ctx.adj[&z]
            .iter()
            .filter(|(_, ann)| ann.matched)
            .map(|&(w, ann)| (w, ann.mate, ann.mate_light))
            .collect();
        if cands.is_empty() {
            self.park(z);
            self.process_free();
            return;
        }
        let mut by_machine: HashMap<MachineId, Vec<V>> = HashMap::new();
        for &(_, wp, _) in &cands {
            by_machine
                .entry(self.layout.stats_of(wp))
                .or_default()
                .push(wp);
        }
        let expect = by_machine.len();
        for (m, vs) in by_machine {
            self.send(m, MatchMsg::CounterQuery(vs));
        }
        self.phase = Phase::AwaitAugCounters {
            z,
            cands,
            expect,
            got: Vec::new(),
        };
    }

    fn aug_pick(&mut self, z: V, cands: Vec<(V, V, bool)>, got: Vec<(V, u32)>) {
        let counters: HashMap<V, u32> = got.into_iter().collect();
        let diff = self.ctx.status_diff();
        let adj_has = |v: V, w: V| -> bool {
            self.ctx
                .adj
                .get(&v)
                .is_some_and(|l| l.iter().any(|&(x, _)| x == w))
        };
        for &(w, wp, wp_light) in &cands {
            let mut c = counters.get(&wp).copied().unwrap_or(0) as i64;
            // Stored counters reflect pre-update statuses; adjust for every
            // status change made during this update, then exclude z itself.
            for &(d, now_free) in &diff {
                if adj_has(d, wp) {
                    c += if now_free { 1 } else { -1 };
                }
            }
            if adj_has(z, wp) {
                c -= 1;
            }
            if c >= 1 {
                self.scan_free(wp, !wp_light, vec![z], ScanPurpose::AugFinal { z, w, wp });
                return;
            }
        }
        self.park(z);
        self.process_free();
    }

    // ---- finalization ---------------------------------------------------------

    /// Before committing counters: run the both-sides-free safety check on
    /// every matched edge created during this update. A new matched edge
    /// whose two endpoints *both* still have free neighbors (outside the
    /// in-update free set, whose ends are re-verified separately via the
    /// parked/requeue loop) is the middle of a length-3 augmenting path;
    /// augmenting it matches two more free vertices, so the loop terminates.
    fn pre_commit(&mut self) {
        if !self.three_halves {
            self.finalize();
            return;
        }
        while let Some((a, b)) = self.ctx.new_edges.pop() {
            // Rotations may have re-unmatched the pair since.
            if self.ctx.stat[&a].mate != b {
                continue;
            }
            let exclude = self.in_update_free();
            let a_heavy = self.ctx.stat[&a].heavy;
            let mut expect = 1;
            let ex = exclude.clone();
            self.send_storage(a, |hist| MatchMsg::ScanFree {
                z: a,
                exclude: ex,
                hist,
            });
            if a_heavy && self.suspended.get(&a).copied().unwrap_or(0) > 0 {
                self.send_overflow(a, |hist| MatchMsg::ScanFree {
                    z: a,
                    exclude,
                    hist,
                });
                expect += 1;
            }
            self.phase = Phase::AwaitCheckScanA {
                a,
                b,
                expect,
                found: Vec::new(),
            };
            return;
        }
        self.finalize();
    }

    fn check_scan_b(&mut self, a: V, b: V, x: V) {
        let mut exclude = self.in_update_free();
        exclude.push(x);
        let b_heavy = self.ctx.stat[&b].heavy;
        let mut expect = 1;
        let ex = exclude.clone();
        self.send_storage(b, |hist| MatchMsg::ScanFree {
            z: b,
            exclude: ex,
            hist,
        });
        if b_heavy && self.suspended.get(&b).copied().unwrap_or(0) > 0 {
            self.send_overflow(b, |hist| MatchMsg::ScanFree {
                z: b,
                exclude,
                hist,
            });
            expect += 1;
        }
        self.phase = Phase::AwaitCheckScanB {
            a,
            b,
            x,
            expect,
            found: Vec::new(),
        };
    }

    fn finalize(&mut self) {
        if self.three_halves {
            let diff = self.ctx.status_diff();
            let missing: Vec<V> = diff
                .iter()
                .map(|&(v, _)| v)
                .filter(|v| !self.ctx.adj.contains_key(v))
                .collect();
            if !missing.is_empty() {
                let mut expect = 0;
                for v in missing {
                    self.send_storage(v, |hist| MatchMsg::ScanAdj { z: v, hist });
                    expect += 1;
                    if self.ctx.stat[&v].heavy && self.suspended.get(&v).copied().unwrap_or(0) > 0 {
                        self.send_overflow(v, |hist| MatchMsg::ScanAdj { z: v, hist });
                        expect += 1;
                    }
                }
                self.phase = Phase::AwaitCommitAdj {
                    expect,
                    got: HashMap::new(),
                };
                return;
            }
            let got: HashMap<V, Vec<V>> = diff
                .iter()
                .map(|&(v, _)| {
                    (
                        v,
                        self.ctx.adj[&v].iter().map(|&(n, _)| n).collect::<Vec<V>>(),
                    )
                })
                .collect();
            self.commit_counters(got);
        } else {
            self.refresh_and_idle();
        }
    }

    fn commit_counters(&mut self, mut adjacency: HashMap<V, Vec<V>>) {
        for (v, _) in self.ctx.status_diff() {
            if let std::collections::hash_map::Entry::Vacant(e) = adjacency.entry(v) {
                let l: Vec<V> = self.ctx.adj[&v].iter().map(|&(n, _)| n).collect();
                e.insert(l);
            }
        }
        let mut deltas = std::mem::take(&mut self.ctx.counter_deltas);
        for (v, now_free) in self.ctx.status_diff() {
            let d = if now_free { 1 } else { -1 };
            for &nbr in &adjacency[&v] {
                *deltas.entry(nbr).or_default() += d;
            }
        }
        let mut by_machine: HashMap<(MachineId, i64), Vec<V>> = HashMap::new();
        for (v, d) in deltas {
            if d != 0 {
                by_machine
                    .entry((self.layout.stats_of(v), d))
                    .or_default()
                    .push(v);
            }
        }
        for ((m, d), vs) in by_machine {
            self.send(m, MatchMsg::CounterDelta(vs, d as i32));
        }
        self.refresh_and_idle();
    }

    fn refresh_and_idle(&mut self) {
        let first = 1 + self.layout.n_stats;
        let count = self.layout.n_storage + self.layout.n_overflow;
        let m = (first + self.rr_cursor % count) as MachineId;
        self.rr_cursor = (self.rr_cursor + 1) % count;
        let h = self.hist_for(m);
        if !h.is_empty() {
            self.send(m, MatchMsg::Refresh(h));
        }
        self.trim_hist();
        if self.queue.is_empty() {
            self.phase = Phase::Idle;
        } else if 4 * self.out_words() < self.send_budget {
            // Batch drain: chain straight into the next queued update. With
            // a warm cache this happens within the same round.
            self.next_queued();
        } else {
            // Nearing the send cap: yield and resume next round, so the
            // combined drain never violates the per-round send budget.
            self.send(dmpc_mpc::COORDINATOR, MatchMsg::BatchResume);
            self.phase = Phase::BatchYield;
        }
    }

    /// Words queued for sending in the current step.
    fn out_words(&self) -> usize {
        use dmpc_mpc::Payload;
        self.out.iter().map(|(_, m)| m.size_words()).sum()
    }
}
