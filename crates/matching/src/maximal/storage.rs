//! Storage machines (adjacency lists with repairable annotations) and the
//! overflow pool (suspended-edge stacks of heavy vertices).

use super::msg::{repair_entry, Ann, HistSlice, MatchMsg};
use dmpc_graph::V;
use std::collections::BTreeMap;

/// Per-owned-vertex storage: the full adjacency of a light vertex, or the
/// alive set of a heavy one.
#[derive(Clone, Debug, Default)]
pub struct StoreVertex {
    /// Heavy flag (mirrors the stats record, repaired with the state).
    pub heavy: bool,
    /// (neighbor, annotation) entries.
    pub entries: Vec<(V, Ann)>,
}

/// A storage machine owning a contiguous vertex block.
#[derive(Debug, Default)]
pub struct StorageMachine {
    verts: BTreeMap<V, StoreVertex>,
    last_seen: u64,
    tau: usize,
    /// Inbound recovery-snapshot chunks accumulated so far.
    snap_buf: Vec<u64>,
}

impl StorageMachine {
    /// Creates the machine owning vertices `lo..hi`, with heavy threshold
    /// `tau` (the alive-set capacity).
    pub fn new(lo: V, hi: V, tau: usize) -> Self {
        StorageMachine {
            verts: (lo..hi).map(|v| (v, StoreVertex::default())).collect(),
            last_seen: 0,
            tau,
            snap_buf: Vec::new(),
        }
    }

    /// Fail-stop wipe (chaos plane): drops program state; `tau` is
    /// construction-time configuration and survives.
    pub fn wipe(&mut self) {
        self.verts.clear();
        self.last_seen = 0;
        self.snap_buf = Vec::new();
    }

    /// Plain-text snapshot: sync point, then per-vertex heavy flag and
    /// entries in stored (scan) order. Deterministic: the vertex map
    /// iterates in key order and entry `Vec`s serialize positionally.
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("storage v1\n");
        writeln!(s, "seen {}", self.last_seen).unwrap();
        for (&v, sv) in &self.verts {
            writeln!(s, "svert {v} {}", sv.heavy as u8).unwrap();
            for &(nbr, ann) in &sv.entries {
                writeln!(
                    s,
                    "sedge {v} {nbr} {} {} {}",
                    ann.matched as u8, ann.mate, ann.mate_light as u8
                )
                .unwrap();
            }
        }
        s
    }

    /// Full state restore from [`StorageMachine::snapshot_text`] output.
    pub fn restore_text(&mut self, text: &str) {
        self.wipe();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("storage v1"), "snapshot header");
        for line in lines {
            let mut it = line.split_ascii_whitespace();
            match it.next().expect("non-empty snapshot line") {
                "seen" => self.last_seen = it.next().unwrap().parse().unwrap(),
                "svert" => {
                    let v: V = it.next().unwrap().parse().unwrap();
                    let heavy = it.next().unwrap() == "1";
                    self.verts.insert(
                        v,
                        StoreVertex {
                            heavy,
                            entries: Vec::new(),
                        },
                    );
                }
                "sedge" => {
                    let v: V = it.next().unwrap().parse().unwrap();
                    let (nbr, ann) = parse_entry(&mut it);
                    self.verts
                        .get_mut(&v)
                        .expect("sedge line before its svert line")
                        .entries
                        .push((nbr, ann));
                }
                k => panic!("unknown snapshot line {k:?}"),
            }
        }
    }

    /// Read access for audits.
    pub fn vertex(&self, v: V) -> Option<&StoreVertex> {
        self.verts.get(&v)
    }

    /// Direct load for bulk preprocessing.
    pub fn load(&mut self, v: V, sv: StoreVertex) {
        self.verts.insert(v, sv);
    }

    /// Sets the history synchronization point (bulk preprocessing).
    pub fn set_last_seen(&mut self, seq: u64) {
        self.last_seen = seq;
    }

    /// The history sequence number this machine has replayed up to.
    pub fn last_seen(&self) -> u64 {
        self.last_seen
    }

    fn repair(&mut self, hist: &HistSlice) {
        for &(seq, entry) in hist {
            if seq <= self.last_seen {
                continue;
            }
            for sv in self.verts.values_mut() {
                // Heavy/light flag of the *owned* vertex itself.
                for (nbr, ann) in sv.entries.iter_mut() {
                    repair_entry(&entry, *nbr, ann);
                }
            }
            match entry {
                super::msg::HistEntry::Heavy(c) => {
                    if let Some(sv) = self.verts.get_mut(&c) {
                        sv.heavy = true;
                    }
                }
                super::msg::HistEntry::Light(c) => {
                    if let Some(sv) = self.verts.get_mut(&c) {
                        sv.heavy = false;
                    }
                }
                _ => {}
            }
            self.last_seen = seq;
        }
    }

    /// Handles one request; may produce a reply for the coordinator.
    pub fn handle(&mut self, msg: MatchMsg) -> Option<MatchMsg> {
        match msg {
            MatchMsg::Refresh(hist) => {
                self.repair(&hist);
                None
            }
            MatchMsg::AddEdge { at, nbr, ann, hist } => {
                self.repair(&hist);
                let sv = self.verts.get_mut(&at).expect("vertex not owned");
                debug_assert!(sv.entries.iter().all(|&(x, _)| x != nbr));
                sv.entries.push((nbr, ann));
                None
            }
            MatchMsg::DelEdge { at, nbr, hist } => {
                self.repair(&hist);
                let sv = self.verts.get_mut(&at).expect("vertex not owned");
                let before = sv.entries.len();
                sv.entries.retain(|&(x, _)| x != nbr);
                Some(MatchMsg::DelReply {
                    at,
                    found: sv.entries.len() < before,
                    alive: true,
                })
            }
            MatchMsg::ScanFree { z, exclude, hist } => {
                self.repair(&hist);
                let sv = &self.verts[&z];
                let q = sv
                    .entries
                    .iter()
                    .find(|&&(nbr, ann)| !ann.matched && !exclude.contains(&nbr))
                    .map(|&(nbr, _)| nbr);
                Some(MatchMsg::ScanFreeReply { z, q })
            }
            MatchMsg::ScanAdj { z, hist } => {
                self.repair(&hist);
                Some(MatchMsg::ScanAdjReply {
                    z,
                    entries: self.verts[&z].entries.clone(),
                })
            }
            MatchMsg::ScanHeavy { z, hist } => {
                self.repair(&hist);
                let sv = &self.verts[&z];
                debug_assert!(sv.heavy);
                let free = sv
                    .entries
                    .iter()
                    .find(|&&(_, ann)| !ann.matched)
                    .map(|&(nbr, _)| nbr);
                let steal = sv
                    .entries
                    .iter()
                    .find(|&&(_, ann)| ann.matched && ann.mate_light)
                    .map(|&(nbr, ann)| (nbr, ann.mate));
                Some(MatchMsg::ScanHeavyReply { z, free, steal })
            }
            MatchMsg::MakeHeavy { v, mate, hist } => {
                self.repair(&hist);
                let keep = self.tau;
                let sv = self.verts.get_mut(&v).expect("vertex not owned");
                sv.heavy = true;
                // Keep the mate edge among the alive set: move it first.
                if let Some(m) = mate {
                    if let Some(pos) = sv.entries.iter().position(|&(x, _)| x == m) {
                        sv.entries.swap(0, pos);
                    }
                }
                let entries = if sv.entries.len() > keep {
                    sv.entries.split_off(keep)
                } else {
                    Vec::new()
                };
                Some(MatchMsg::MovedOut { v, entries })
            }
            MatchMsg::AddAlive { at, entry, hist } => {
                self.repair(&hist);
                let sv = self.verts.get_mut(&at).expect("vertex not owned");
                sv.entries.push(entry);
                None
            }
            MatchMsg::MakeLight { v, hist } => {
                self.repair(&hist);
                let sv = self.verts.get_mut(&v).expect("vertex not owned");
                sv.heavy = false;
                None
            }
            MatchMsg::SnapChunk { words, last } => {
                self.snap_buf.extend_from_slice(&words);
                if last {
                    let buf = std::mem::take(&mut self.snap_buf);
                    self.restore_text(&dmpc_mpc::unpack_text(&buf));
                }
                Some(MatchMsg::SnapAck)
            }
            other => panic!("storage machine got unexpected message {other:?}"),
        }
    }

    /// Memory footprint in words.
    pub fn memory_words(&self) -> usize {
        2 + self
            .verts
            .values()
            .map(|sv| 2 + 4 * sv.entries.len())
            .sum::<usize>()
            + self.snap_buf.len()
    }
}

/// Parses the tail of an `sedge`/`oedge` snapshot line:
/// `nbr matched mate mate_light`.
fn parse_entry<'a, I: Iterator<Item = &'a str>>(it: &mut I) -> (V, Ann) {
    let nbr: V = it.next().unwrap().parse().unwrap();
    let ann = Ann {
        matched: it.next().unwrap() == "1",
        mate: it.next().unwrap().parse().unwrap(),
        mate_light: it.next().unwrap() == "1",
    };
    (nbr, ann)
}

/// An overflow machine: the suspended-edge stack of (at most) one heavy
/// vertex at a time.
#[derive(Debug, Default)]
pub struct OverflowMachine {
    assigned: Option<V>,
    edges: Vec<(V, Ann)>,
    last_seen: u64,
    /// Inbound recovery-snapshot chunks accumulated so far.
    snap_buf: Vec<u64>,
}

impl OverflowMachine {
    /// The vertex whose stack this machine holds.
    pub fn assigned(&self) -> Option<V> {
        self.assigned
    }

    /// Number of suspended edges held.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Read access for audits.
    pub fn edges(&self) -> &[(V, Ann)] {
        &self.edges
    }

    /// Direct load for bulk preprocessing.
    pub fn load(&mut self, v: V, edges: Vec<(V, Ann)>, last_seen: u64) {
        self.assigned = Some(v);
        self.edges = edges;
        self.last_seen = last_seen;
    }

    /// Fail-stop wipe (chaos plane): drops all program state.
    pub fn wipe(&mut self) {
        self.assigned = None;
        self.edges = Vec::new();
        self.last_seen = 0;
        self.snap_buf = Vec::new();
    }

    /// Plain-text snapshot: sync point, assignment, and the suspended
    /// stack in positional order.
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("overflow v1\n");
        writeln!(s, "seen {}", self.last_seen).unwrap();
        if let Some(v) = self.assigned {
            writeln!(s, "assigned {v}").unwrap();
        }
        for &(nbr, ann) in &self.edges {
            writeln!(
                s,
                "oedge {nbr} {} {} {}",
                ann.matched as u8, ann.mate, ann.mate_light as u8
            )
            .unwrap();
        }
        s
    }

    /// Full state restore from [`OverflowMachine::snapshot_text`] output.
    pub fn restore_text(&mut self, text: &str) {
        self.wipe();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("overflow v1"), "snapshot header");
        for line in lines {
            let mut it = line.split_ascii_whitespace();
            match it.next().expect("non-empty snapshot line") {
                "seen" => self.last_seen = it.next().unwrap().parse().unwrap(),
                "assigned" => self.assigned = Some(it.next().unwrap().parse().unwrap()),
                "oedge" => self.edges.push(parse_entry(&mut it)),
                k => panic!("unknown snapshot line {k:?}"),
            }
        }
    }

    fn repair(&mut self, hist: &HistSlice) {
        for &(seq, entry) in hist {
            if seq <= self.last_seen {
                continue;
            }
            for (nbr, ann) in self.edges.iter_mut() {
                repair_entry(&entry, *nbr, ann);
            }
            self.last_seen = seq;
        }
    }

    /// Handles one request; may produce a reply.
    pub fn handle(&mut self, msg: MatchMsg) -> Option<MatchMsg> {
        match msg {
            MatchMsg::Refresh(hist) => {
                self.repair(&hist);
                None
            }
            MatchMsg::AddSuspended { v, entries, hist } => {
                self.repair(&hist);
                if self.assigned.is_none() {
                    self.assigned = Some(v);
                }
                debug_assert_eq!(self.assigned, Some(v));
                self.edges.extend(entries);
                None
            }
            MatchMsg::DelEdge { at, nbr, hist } => {
                self.repair(&hist);
                debug_assert_eq!(self.assigned, Some(at));
                let before = self.edges.len();
                self.edges.retain(|&(x, _)| x != nbr);
                Some(MatchMsg::DelReply {
                    at,
                    found: self.edges.len() < before,
                    alive: false,
                })
            }
            MatchMsg::ScanFree { z, exclude, hist } => {
                self.repair(&hist);
                debug_assert_eq!(self.assigned, Some(z));
                let q = self
                    .edges
                    .iter()
                    .find(|&&(nbr, ann)| !ann.matched && !exclude.contains(&nbr))
                    .map(|&(nbr, _)| nbr);
                Some(MatchMsg::ScanFreeReply { z, q })
            }
            MatchMsg::FetchSuspended { v, hist } => {
                self.repair(&hist);
                debug_assert_eq!(self.assigned, Some(v));
                Some(MatchMsg::FetchReply {
                    v,
                    entry: self.edges.pop(),
                })
            }
            MatchMsg::ScanAdj { z, hist } => {
                self.repair(&hist);
                Some(MatchMsg::ScanAdjReply {
                    z,
                    entries: self.edges.clone(),
                })
            }
            MatchMsg::ReleaseOverflow { v } => {
                debug_assert_eq!(self.assigned, Some(v));
                debug_assert!(self.edges.is_empty());
                self.assigned = None;
                None
            }
            MatchMsg::SnapChunk { words, last } => {
                self.snap_buf.extend_from_slice(&words);
                if last {
                    let buf = std::mem::take(&mut self.snap_buf);
                    self.restore_text(&dmpc_mpc::unpack_text(&buf));
                }
                Some(MatchMsg::SnapAck)
            }
            other => panic!("overflow machine got unexpected message {other:?}"),
        }
    }

    /// Memory footprint in words.
    pub fn memory_words(&self) -> usize {
        3 + 4 * self.edges.len() + self.snap_buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::msg::HistEntry;
    use super::*;
    use dmpc_graph::Edge;

    #[test]
    fn add_del_scan() {
        let mut m = StorageMachine::new(0, 4, 8);
        m.handle(MatchMsg::AddEdge {
            at: 1,
            nbr: 9,
            ann: Ann::free(),
            hist: vec![],
        });
        m.handle(MatchMsg::AddEdge {
            at: 1,
            nbr: 8,
            ann: Ann {
                matched: true,
                mate: 3,
                mate_light: true,
            },
            hist: vec![],
        });
        match m
            .handle(MatchMsg::ScanFree {
                z: 1,
                exclude: vec![],
                hist: vec![],
            })
            .unwrap()
        {
            MatchMsg::ScanFreeReply { q, .. } => assert_eq!(q, Some(9)),
            _ => panic!(),
        }
        match m
            .handle(MatchMsg::ScanFree {
                z: 1,
                exclude: vec![9],
                hist: vec![],
            })
            .unwrap()
        {
            MatchMsg::ScanFreeReply { q, .. } => assert_eq!(q, None),
            _ => panic!(),
        }
        match m
            .handle(MatchMsg::DelEdge {
                at: 1,
                nbr: 9,
                hist: vec![],
            })
            .unwrap()
        {
            MatchMsg::DelReply { found, alive, .. } => {
                assert!(found);
                assert!(alive);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn history_repair_applies_once() {
        let mut m = StorageMachine::new(0, 2, 8);
        m.handle(MatchMsg::AddEdge {
            at: 0,
            nbr: 5,
            ann: Ann::free(),
            hist: vec![],
        });
        let h1 = vec![(1, HistEntry::MatchAdd(Edge::new(5, 6), true, true))];
        m.handle(MatchMsg::Refresh(h1.clone()));
        assert!(m.vertex(0).unwrap().entries[0].1.matched);
        // Replaying the same suffix is a no-op (idempotent by seq).
        let h2 = vec![
            (1, HistEntry::MatchAdd(Edge::new(5, 6), true, true)),
            (2, HistEntry::MatchDel(Edge::new(5, 6))),
        ];
        m.handle(MatchMsg::Refresh(h2));
        assert!(!m.vertex(0).unwrap().entries[0].1.matched);
        assert_eq!(m.last_seen(), 2);
    }

    #[test]
    fn overflow_stack() {
        let mut o = OverflowMachine::default();
        o.handle(MatchMsg::AddSuspended {
            v: 3,
            entries: vec![(7, Ann::free()), (8, Ann::free())],
            hist: vec![],
        });
        assert_eq!(o.assigned(), Some(3));
        assert_eq!(o.len(), 2);
        match o
            .handle(MatchMsg::FetchSuspended { v: 3, hist: vec![] })
            .unwrap()
        {
            MatchMsg::FetchReply { entry, .. } => assert_eq!(entry.unwrap().0, 8),
            _ => panic!(),
        }
        match o
            .handle(MatchMsg::DelEdge {
                at: 3,
                nbr: 7,
                hist: vec![],
            })
            .unwrap()
        {
            MatchMsg::DelReply { found, alive, .. } => {
                assert!(found);
                assert!(!alive);
            }
            _ => panic!(),
        }
        assert!(o.is_empty());
        o.handle(MatchMsg::ReleaseOverflow { v: 3 });
        assert_eq!(o.assigned(), None);
    }
}
