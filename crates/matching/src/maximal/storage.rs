//! Storage machines (adjacency lists with repairable annotations) and the
//! overflow pool (suspended-edge stacks of heavy vertices).
//!
//! Like the connectivity crate's vertex shards, a storage machine keeps its
//! owned block behind a layout knob ([`dmpc_mpc::Layout`]): the map layout
//! is the clarity-first original (`BTreeMap` of per-vertex entry `Vec`s,
//! kept for differential testing), the SoA layout stores every vertex's
//! entries as a segment of one shared arena split into parallel property
//! arrays. Entry order is *semantic* here (the alive set is positional:
//! the mate edge is moved to the front, `MakeHeavy` splits at `tau`, scans
//! take the first hit), so all SoA mutations preserve segment order —
//! removals shift the tail down instead of swapping.

use super::msg::{repair_entry, Ann, HistSlice, MatchMsg};
use dmpc_graph::V;
use dmpc_mpc::Layout;
use std::collections::BTreeMap;

/// Per-owned-vertex storage: the full adjacency of a light vertex, or the
/// alive set of a heavy one.
#[derive(Clone, Debug, Default)]
pub struct StoreVertex {
    /// Heavy flag (mirrors the stats record, repaired with the state).
    pub heavy: bool,
    /// (neighbor, annotation) entries.
    pub entries: Vec<(V, Ann)>,
}

/// A segment of the entry arena: `start..start+len` live, `cap` reserved.
#[derive(Clone, Copy, Debug, Default)]
struct Seg {
    start: u32,
    len: u32,
    cap: u32,
}

/// Slot state: no vertex in this slot.
const SLOT_ABSENT: u8 = 0;
/// Slot state: light vertex.
const SLOT_LIGHT: u8 = 1;
/// Slot state: heavy vertex.
const SLOT_HEAVY: u8 = 2;

/// Headroom granted when an entry segment relocates.
const ENTRY_HEADROOM: u32 = 2;

/// Annotation flag bit: `matched`.
const F_MATCHED: u8 = 1;
/// Annotation flag bit: `mate_light`.
const F_MATE_LIGHT: u8 = 2;

#[inline]
fn pack_ann(ann: Ann) -> (V, u8) {
    let mut f = 0;
    if ann.matched {
        f |= F_MATCHED;
    }
    if ann.mate_light {
        f |= F_MATE_LIGHT;
    }
    (ann.mate, f)
}

#[inline]
fn unpack_ann(mate: V, f: u8) -> Ann {
    Ann {
        matched: f & F_MATCHED != 0,
        mate,
        mate_light: f & F_MATE_LIGHT != 0,
    }
}

/// The compact layout: per-slot state byte + arena segment, entries as
/// three parallel arrays (neighbor, mate, flag byte).
#[derive(Debug, Default)]
struct SoaStore {
    /// Direct-mapped interner base: vertex `v` lives in slot `v - base`.
    base: V,
    /// [`SLOT_ABSENT`] / [`SLOT_LIGHT`] / [`SLOT_HEAVY`] per slot.
    state: Vec<u8>,
    /// Entry segment per slot.
    pos: Vec<Seg>,
    /// Neighbor per entry.
    nbr: Vec<V>,
    /// Annotation mate per entry.
    mate: Vec<V>,
    /// Annotation flags per entry.
    flags: Vec<u8>,
    /// Live entries in the arena (the rest are holes).
    live: usize,
}

impl SoaStore {
    fn new_range(lo: V, hi: V) -> Self {
        SoaStore {
            base: lo,
            state: vec![SLOT_LIGHT; (hi - lo) as usize],
            pos: vec![Seg::default(); (hi - lo) as usize],
            ..Default::default()
        }
    }

    #[inline]
    fn slot_of(&self, v: V) -> Option<usize> {
        let i = v.checked_sub(self.base)? as usize;
        (i < self.state.len() && self.state[i] != SLOT_ABSENT).then_some(i)
    }

    #[inline]
    fn slot(&self, v: V) -> usize {
        self.slot_of(v).expect("vertex not owned")
    }

    /// Grows the slot range to cover `v` (installs an absent slot).
    fn ensure_slot(&mut self, v: V) -> usize {
        if self.state.is_empty() {
            self.base = v;
        }
        if v < self.base {
            let k = (self.base - v) as usize;
            self.state.splice(0..0, std::iter::repeat_n(SLOT_ABSENT, k));
            self.pos
                .splice(0..0, std::iter::repeat_n(Seg::default(), k));
            self.base = v;
        }
        let i = (v - self.base) as usize;
        while self.state.len() <= i {
            self.state.push(SLOT_ABSENT);
            self.pos.push(Seg::default());
        }
        i
    }

    #[inline]
    fn range(&self, slot: usize) -> std::ops::Range<usize> {
        let s = self.pos[slot];
        s.start as usize..(s.start + s.len) as usize
    }

    /// Appends one entry to a slot's segment, relocating (with headroom) on
    /// overflow; order-preserving.
    fn push(&mut self, slot: usize, n: V, ann: Ann) {
        let (m, f) = pack_ann(ann);
        let s = self.pos[slot];
        if s.len < s.cap {
            let i = (s.start + s.len) as usize;
            self.nbr[i] = n;
            self.mate[i] = m;
            self.flags[i] = f;
            self.pos[slot].len += 1;
        } else if (s.start + s.cap) as usize == self.nbr.len() {
            // The segment ends at the arena tail: grow in place, no hole.
            self.nbr.push(n);
            self.mate.push(m);
            self.flags.push(f);
            self.pos[slot].len += 1;
            self.pos[slot].cap += 1;
        } else {
            let start = self.nbr.len() as u32;
            let cap = s.len + 1 + ENTRY_HEADROOM;
            for i in self.range(slot) {
                let (xn, xm, xf) = (self.nbr[i], self.mate[i], self.flags[i]);
                self.nbr.push(xn);
                self.mate.push(xm);
                self.flags.push(xf);
            }
            self.nbr.push(n);
            self.mate.push(m);
            self.flags.push(f);
            let pad = (cap - s.len - 1) as usize;
            self.nbr.resize(self.nbr.len() + pad, 0);
            self.mate.resize(self.mate.len() + pad, 0);
            self.flags.resize(self.flags.len() + pad, 0);
            self.pos[slot] = Seg {
                start,
                len: s.len + 1,
                cap,
            };
        }
        self.live += 1;
        self.maybe_compact();
    }

    /// Removes the entry with neighbor `n`, shifting the tail down (order
    /// is semantic). Returns whether it was found.
    fn remove(&mut self, slot: usize, n: V) -> bool {
        let r = self.range(slot);
        let Some(i) = r.clone().find(|&i| self.nbr[i] == n) else {
            return false;
        };
        for j in i..r.end - 1 {
            self.nbr[j] = self.nbr[j + 1];
            self.mate[j] = self.mate[j + 1];
            self.flags[j] = self.flags[j + 1];
        }
        self.pos[slot].len -= 1;
        self.live -= 1;
        self.maybe_compact();
        true
    }

    fn maybe_compact(&mut self) {
        if self.nbr.len() <= self.live + self.live / 8 + 16 {
            return;
        }
        let mut nbr = Vec::with_capacity(self.live);
        let mut mate = Vec::with_capacity(self.live);
        let mut flags = Vec::with_capacity(self.live);
        for s in self.pos.iter_mut() {
            let start = nbr.len() as u32;
            for i in s.start as usize..(s.start + s.len) as usize {
                nbr.push(self.nbr[i]);
                mate.push(self.mate[i]);
                flags.push(self.flags[i]);
            }
            *s = Seg {
                start,
                len: s.len,
                cap: s.len,
            };
        }
        self.nbr = nbr;
        self.mate = mate;
        self.flags = flags;
    }

    fn materialize(&self, slot: usize) -> StoreVertex {
        StoreVertex {
            heavy: self.state[slot] == SLOT_HEAVY,
            entries: self
                .range(slot)
                .map(|i| (self.nbr[i], unpack_ann(self.mate[i], self.flags[i])))
                .collect(),
        }
    }
}

/// A machine's owned vertex block, in one of the two storage layouts.
#[derive(Debug)]
enum Store {
    /// Per-vertex map containers (legacy, differential testing).
    Map(BTreeMap<V, StoreVertex>),
    /// Arena-backed structure-of-arrays (default).
    Soa(SoaStore),
}

impl Store {
    fn new_range(layout: Layout, lo: V, hi: V) -> Self {
        match layout {
            Layout::Map => Store::Map((lo..hi).map(|v| (v, StoreVertex::default())).collect()),
            Layout::Soa => Store::Soa(SoaStore::new_range(lo, hi)),
        }
    }

    fn clear(&mut self) {
        match self {
            Store::Map(m) => m.clear(),
            Store::Soa(s) => *s = SoaStore::default(),
        }
    }

    /// Installs vertex `v` with no entries (snapshot restore).
    fn insert_vertex(&mut self, v: V, heavy: bool) {
        match self {
            Store::Map(m) => {
                m.insert(
                    v,
                    StoreVertex {
                        heavy,
                        entries: Vec::new(),
                    },
                );
            }
            Store::Soa(s) => {
                let slot = s.ensure_slot(v);
                s.live -= s.pos[slot].len as usize;
                s.pos[slot].len = 0;
                s.state[slot] = if heavy { SLOT_HEAVY } else { SLOT_LIGHT };
            }
        }
    }

    /// Appends one entry at `at` (order-preserving).
    fn push_entry(&mut self, at: V, n: V, ann: Ann) {
        match self {
            Store::Map(m) => m
                .get_mut(&at)
                .expect("vertex not owned")
                .entries
                .push((n, ann)),
            Store::Soa(s) => {
                let slot = s.slot(at);
                s.push(slot, n, ann);
            }
        }
    }

    /// Removes the entry `at -> n`; returns whether it was present.
    fn remove_entry(&mut self, at: V, n: V) -> bool {
        match self {
            Store::Map(m) => {
                let sv = m.get_mut(&at).expect("vertex not owned");
                let before = sv.entries.len();
                sv.entries.retain(|&(x, _)| x != n);
                sv.entries.len() < before
            }
            Store::Soa(s) => {
                let slot = s.slot(at);
                s.remove(slot, n)
            }
        }
    }

    fn has_entry(&self, at: V, n: V) -> bool {
        match self {
            Store::Map(m) => m
                .get(&at)
                .is_some_and(|sv| sv.entries.iter().any(|&(x, _)| x == n)),
            Store::Soa(s) => {
                let slot = s.slot(at);
                s.range(slot).any(|i| s.nbr[i] == n)
            }
        }
    }

    fn heavy(&self, v: V) -> bool {
        match self {
            Store::Map(m) => m.get(&v).expect("vertex not owned").heavy,
            Store::Soa(s) => s.state[s.slot(v)] == SLOT_HEAVY,
        }
    }

    /// Sets the heavy flag, ignoring non-owned vertices (history repair
    /// addresses every owner of the changed vertex's *neighbors* too).
    fn set_heavy_if_present(&mut self, v: V, heavy: bool) {
        match self {
            Store::Map(m) => {
                if let Some(sv) = m.get_mut(&v) {
                    sv.heavy = heavy;
                }
            }
            Store::Soa(s) => {
                if let Some(slot) = s.slot_of(v) {
                    s.state[slot] = if heavy { SLOT_HEAVY } else { SLOT_LIGHT };
                }
            }
        }
    }

    /// First entry at `z` that is free and not excluded.
    fn scan_free(&self, z: V, exclude: &[V]) -> Option<V> {
        match self {
            Store::Map(m) => m[&z]
                .entries
                .iter()
                .find(|&&(n, ann)| !ann.matched && !exclude.contains(&n))
                .map(|&(n, _)| n),
            Store::Soa(s) => {
                let slot = s.slot(z);
                s.range(slot)
                    .find(|&i| s.flags[i] & F_MATCHED == 0 && !exclude.contains(&s.nbr[i]))
                    .map(|i| s.nbr[i])
            }
        }
    }

    /// Heavy-scan at `z`: first free entry, and first steal candidate
    /// (matched to a light mate).
    fn scan_heavy(&self, z: V) -> (Option<V>, Option<(V, V)>) {
        match self {
            Store::Map(m) => {
                let sv = &m[&z];
                let free = sv
                    .entries
                    .iter()
                    .find(|&&(_, ann)| !ann.matched)
                    .map(|&(n, _)| n);
                let steal = sv
                    .entries
                    .iter()
                    .find(|&&(_, ann)| ann.matched && ann.mate_light)
                    .map(|&(n, ann)| (n, ann.mate));
                (free, steal)
            }
            Store::Soa(s) => {
                let slot = s.slot(z);
                let free = s
                    .range(slot)
                    .find(|&i| s.flags[i] & F_MATCHED == 0)
                    .map(|i| s.nbr[i]);
                let steal = s
                    .range(slot)
                    .find(|&i| s.flags[i] & (F_MATCHED | F_MATE_LIGHT) == F_MATCHED | F_MATE_LIGHT)
                    .map(|i| (s.nbr[i], s.mate[i]));
                (free, steal)
            }
        }
    }

    /// All entries at `z`, in stored order.
    fn entries_of(&self, z: V) -> Vec<(V, Ann)> {
        match self {
            Store::Map(m) => m[&z].entries.clone(),
            Store::Soa(s) => {
                let slot = s.slot(z);
                s.range(slot)
                    .map(|i| (s.nbr[i], unpack_ann(s.mate[i], s.flags[i])))
                    .collect()
            }
        }
    }

    /// Marks `v` heavy, moves the mate edge to the front of the alive set,
    /// and splits off everything past `keep` (the suspended entries).
    fn make_heavy(&mut self, v: V, mate: Option<V>, keep: usize) -> Vec<(V, Ann)> {
        match self {
            Store::Map(m) => {
                let sv = m.get_mut(&v).expect("vertex not owned");
                sv.heavy = true;
                if let Some(mv) = mate {
                    if let Some(pos) = sv.entries.iter().position(|&(x, _)| x == mv) {
                        sv.entries.swap(0, pos);
                    }
                }
                if sv.entries.len() > keep {
                    sv.entries.split_off(keep)
                } else {
                    Vec::new()
                }
            }
            Store::Soa(s) => {
                let slot = s.slot(v);
                s.state[slot] = SLOT_HEAVY;
                let r = s.range(slot);
                if let Some(mv) = mate {
                    if let Some(pos) = r.clone().find(|&i| s.nbr[i] == mv) {
                        s.nbr.swap(r.start, pos);
                        s.mate.swap(r.start, pos);
                        s.flags.swap(r.start, pos);
                    }
                }
                if r.len() > keep {
                    let moved: Vec<(V, Ann)> = (r.start + keep..r.end)
                        .map(|i| (s.nbr[i], unpack_ann(s.mate[i], s.flags[i])))
                        .collect();
                    s.pos[slot].len = keep as u32;
                    s.live -= moved.len();
                    s.maybe_compact();
                    moved
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Applies `f` to every entry's annotation (history repair; entry order
    /// is immaterial — repairs are per-entry independent).
    fn for_each_ann_mut(&mut self, mut f: impl FnMut(V, &mut Ann)) {
        match self {
            Store::Map(m) => {
                for sv in m.values_mut() {
                    for (n, ann) in sv.entries.iter_mut() {
                        f(*n, ann);
                    }
                }
            }
            Store::Soa(s) => {
                for slot in 0..s.pos.len() {
                    let sg = s.pos[slot];
                    for i in sg.start as usize..(sg.start + sg.len) as usize {
                        let mut ann = unpack_ann(s.mate[i], s.flags[i]);
                        f(s.nbr[i], &mut ann);
                        let (m, fl) = pack_ann(ann);
                        s.mate[i] = m;
                        s.flags[i] = fl;
                    }
                }
            }
        }
    }

    /// Materialized state of one vertex (audits; not the update path).
    fn vertex(&self, v: V) -> Option<StoreVertex> {
        match self {
            Store::Map(m) => m.get(&v).cloned(),
            Store::Soa(s) => s.slot_of(v).map(|slot| s.materialize(slot)),
        }
    }

    /// All owned vertices in id order (snapshots).
    fn vertices(&self) -> Vec<(V, StoreVertex)> {
        match self {
            Store::Map(m) => m.iter().map(|(&v, sv)| (v, sv.clone())).collect(),
            Store::Soa(s) => (0..s.state.len())
                .filter(|&slot| s.state[slot] != SLOT_ABSENT)
                .map(|slot| (s.base + slot as V, s.materialize(slot)))
                .collect(),
        }
    }

    /// Direct state injection (bulk loading).
    fn load(&mut self, v: V, sv: StoreVertex) {
        match self {
            Store::Map(m) => {
                m.insert(v, sv);
            }
            Store::Soa(_) => {
                self.insert_vertex(v, sv.heavy);
                for (n, ann) in sv.entries {
                    self.push_entry(v, n, ann);
                }
            }
        }
    }

    /// Exact resident footprint in words, counting the backing stores as
    /// allocated. Map: 2 header + 4 per entry per vertex. SoA: 13 bytes per
    /// slot (state byte + segment) plus 9 bytes per arena entry capacity
    /// (neighbor + mate + flag byte), rounded up to whole words.
    fn memory_words(&self) -> usize {
        match self {
            Store::Map(m) => m.values().map(|sv| 2 + 4 * sv.entries.len()).sum(),
            Store::Soa(s) => (s.state.len() + s.pos.len() * 12 + s.nbr.len() * 9).div_ceil(8),
        }
    }
}

/// A storage machine owning a contiguous vertex block.
#[derive(Debug)]
pub struct StorageMachine {
    verts: Store,
    last_seen: u64,
    tau: usize,
    /// Inbound recovery-snapshot chunks accumulated so far.
    snap_buf: Vec<u64>,
}

impl StorageMachine {
    /// Creates the machine owning vertices `lo..hi`, with heavy threshold
    /// `tau` (the alive-set capacity), in the default layout.
    pub fn new(lo: V, hi: V, tau: usize) -> Self {
        Self::with_layout(lo, hi, tau, Layout::default())
    }

    /// Creates the machine with an explicit state layout.
    pub fn with_layout(lo: V, hi: V, tau: usize, layout: Layout) -> Self {
        StorageMachine {
            verts: Store::new_range(layout, lo, hi),
            last_seen: 0,
            tau,
            snap_buf: Vec::new(),
        }
    }

    /// Fail-stop wipe (chaos plane): drops program state; `tau` is
    /// construction-time configuration and survives (as does the layout).
    pub fn wipe(&mut self) {
        self.verts.clear();
        self.last_seen = 0;
        self.snap_buf = Vec::new();
    }

    /// Plain-text snapshot: sync point, then per-vertex heavy flag and
    /// entries in stored (scan) order. Deterministic and bit-identical
    /// across layouts: vertices emit in id order and entries positionally.
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("storage v1\n");
        writeln!(s, "seen {}", self.last_seen).unwrap();
        for (v, sv) in self.verts.vertices() {
            writeln!(s, "svert {v} {}", sv.heavy as u8).unwrap();
            for &(nbr, ann) in &sv.entries {
                writeln!(
                    s,
                    "sedge {v} {nbr} {} {} {}",
                    ann.matched as u8, ann.mate, ann.mate_light as u8
                )
                .unwrap();
            }
        }
        s
    }

    /// Full state restore from [`StorageMachine::snapshot_text`] output.
    pub fn restore_text(&mut self, text: &str) {
        self.wipe();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("storage v1"), "snapshot header");
        for line in lines {
            let mut it = line.split_ascii_whitespace();
            match it.next().expect("non-empty snapshot line") {
                "seen" => self.last_seen = it.next().unwrap().parse().unwrap(),
                "svert" => {
                    let v: V = it.next().unwrap().parse().unwrap();
                    let heavy = it.next().unwrap() == "1";
                    self.verts.insert_vertex(v, heavy);
                }
                "sedge" => {
                    let v: V = it.next().unwrap().parse().unwrap();
                    let (nbr, ann) = parse_entry(&mut it);
                    self.verts.push_entry(v, nbr, ann);
                }
                k => panic!("unknown snapshot line {k:?}"),
            }
        }
    }

    /// Read access for audits (materialized; not the update path).
    pub fn vertex(&self, v: V) -> Option<StoreVertex> {
        self.verts.vertex(v)
    }

    /// Direct load for bulk preprocessing.
    pub fn load(&mut self, v: V, sv: StoreVertex) {
        self.verts.load(v, sv);
    }

    /// Sets the history synchronization point (bulk preprocessing).
    pub fn set_last_seen(&mut self, seq: u64) {
        self.last_seen = seq;
    }

    /// The history sequence number this machine has replayed up to.
    pub fn last_seen(&self) -> u64 {
        self.last_seen
    }

    fn repair(&mut self, hist: &HistSlice) {
        for &(seq, entry) in hist {
            if seq <= self.last_seen {
                continue;
            }
            self.verts
                .for_each_ann_mut(|nbr, ann| repair_entry(&entry, nbr, ann));
            match entry {
                super::msg::HistEntry::Heavy(c) => self.verts.set_heavy_if_present(c, true),
                super::msg::HistEntry::Light(c) => self.verts.set_heavy_if_present(c, false),
                _ => {}
            }
            self.last_seen = seq;
        }
    }

    /// Handles one request; may produce a reply for the coordinator.
    pub fn handle(&mut self, msg: MatchMsg) -> Option<MatchMsg> {
        match msg {
            MatchMsg::Refresh(hist) => {
                self.repair(&hist);
                None
            }
            MatchMsg::AddEdge { at, nbr, ann, hist } => {
                self.repair(&hist);
                debug_assert!(!self.verts.has_entry(at, nbr));
                self.verts.push_entry(at, nbr, ann);
                None
            }
            MatchMsg::DelEdge { at, nbr, hist } => {
                self.repair(&hist);
                let found = self.verts.remove_entry(at, nbr);
                Some(MatchMsg::DelReply {
                    at,
                    found,
                    alive: true,
                })
            }
            MatchMsg::ScanFree { z, exclude, hist } => {
                self.repair(&hist);
                let q = self.verts.scan_free(z, &exclude);
                Some(MatchMsg::ScanFreeReply { z, q })
            }
            MatchMsg::ScanAdj { z, hist } => {
                self.repair(&hist);
                Some(MatchMsg::ScanAdjReply {
                    z,
                    entries: self.verts.entries_of(z),
                })
            }
            MatchMsg::ScanHeavy { z, hist } => {
                self.repair(&hist);
                debug_assert!(self.verts.heavy(z));
                let (free, steal) = self.verts.scan_heavy(z);
                Some(MatchMsg::ScanHeavyReply { z, free, steal })
            }
            MatchMsg::MakeHeavy { v, mate, hist } => {
                self.repair(&hist);
                let entries = self.verts.make_heavy(v, mate, self.tau);
                Some(MatchMsg::MovedOut { v, entries })
            }
            MatchMsg::AddAlive { at, entry, hist } => {
                self.repair(&hist);
                self.verts.push_entry(at, entry.0, entry.1);
                None
            }
            MatchMsg::MakeLight { v, hist } => {
                self.repair(&hist);
                self.verts.set_heavy_if_present(v, false);
                None
            }
            MatchMsg::SnapChunk { words, last } => {
                self.snap_buf.extend_from_slice(&words);
                if last {
                    let buf = std::mem::take(&mut self.snap_buf);
                    self.restore_text(&dmpc_mpc::unpack_text(&buf));
                }
                Some(MatchMsg::SnapAck)
            }
            other => panic!("storage machine got unexpected message {other:?}"),
        }
    }

    /// Memory footprint in words.
    pub fn memory_words(&self) -> usize {
        2 + self.verts.memory_words() + self.snap_buf.len()
    }
}

/// Parses the tail of an `sedge`/`oedge` snapshot line:
/// `nbr matched mate mate_light`.
fn parse_entry<'a, I: Iterator<Item = &'a str>>(it: &mut I) -> (V, Ann) {
    let nbr: V = it.next().unwrap().parse().unwrap();
    let ann = Ann {
        matched: it.next().unwrap() == "1",
        mate: it.next().unwrap().parse().unwrap(),
        mate_light: it.next().unwrap() == "1",
    };
    (nbr, ann)
}

/// An overflow machine: the suspended-edge stack of (at most) one heavy
/// vertex at a time.
#[derive(Debug, Default)]
pub struct OverflowMachine {
    assigned: Option<V>,
    edges: Vec<(V, Ann)>,
    last_seen: u64,
    /// Inbound recovery-snapshot chunks accumulated so far.
    snap_buf: Vec<u64>,
}

impl OverflowMachine {
    /// The vertex whose stack this machine holds.
    pub fn assigned(&self) -> Option<V> {
        self.assigned
    }

    /// Number of suspended edges held.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Read access for audits.
    pub fn edges(&self) -> &[(V, Ann)] {
        &self.edges
    }

    /// Direct load for bulk preprocessing.
    pub fn load(&mut self, v: V, edges: Vec<(V, Ann)>, last_seen: u64) {
        self.assigned = Some(v);
        self.edges = edges;
        self.last_seen = last_seen;
    }

    /// Fail-stop wipe (chaos plane): drops all program state.
    pub fn wipe(&mut self) {
        self.assigned = None;
        self.edges = Vec::new();
        self.last_seen = 0;
        self.snap_buf = Vec::new();
    }

    /// Plain-text snapshot: sync point, assignment, and the suspended
    /// stack in positional order.
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("overflow v1\n");
        writeln!(s, "seen {}", self.last_seen).unwrap();
        if let Some(v) = self.assigned {
            writeln!(s, "assigned {v}").unwrap();
        }
        for &(nbr, ann) in &self.edges {
            writeln!(
                s,
                "oedge {nbr} {} {} {}",
                ann.matched as u8, ann.mate, ann.mate_light as u8
            )
            .unwrap();
        }
        s
    }

    /// Full state restore from [`OverflowMachine::snapshot_text`] output.
    pub fn restore_text(&mut self, text: &str) {
        self.wipe();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("overflow v1"), "snapshot header");
        for line in lines {
            let mut it = line.split_ascii_whitespace();
            match it.next().expect("non-empty snapshot line") {
                "seen" => self.last_seen = it.next().unwrap().parse().unwrap(),
                "assigned" => self.assigned = Some(it.next().unwrap().parse().unwrap()),
                "oedge" => self.edges.push(parse_entry(&mut it)),
                k => panic!("unknown snapshot line {k:?}"),
            }
        }
    }

    fn repair(&mut self, hist: &HistSlice) {
        for &(seq, entry) in hist {
            if seq <= self.last_seen {
                continue;
            }
            for (nbr, ann) in self.edges.iter_mut() {
                repair_entry(&entry, *nbr, ann);
            }
            self.last_seen = seq;
        }
    }

    /// Handles one request; may produce a reply.
    pub fn handle(&mut self, msg: MatchMsg) -> Option<MatchMsg> {
        match msg {
            MatchMsg::Refresh(hist) => {
                self.repair(&hist);
                None
            }
            MatchMsg::AddSuspended { v, entries, hist } => {
                self.repair(&hist);
                if self.assigned.is_none() {
                    self.assigned = Some(v);
                }
                debug_assert_eq!(self.assigned, Some(v));
                self.edges.extend(entries);
                None
            }
            MatchMsg::DelEdge { at, nbr, hist } => {
                self.repair(&hist);
                debug_assert_eq!(self.assigned, Some(at));
                let before = self.edges.len();
                self.edges.retain(|&(x, _)| x != nbr);
                Some(MatchMsg::DelReply {
                    at,
                    found: self.edges.len() < before,
                    alive: false,
                })
            }
            MatchMsg::ScanFree { z, exclude, hist } => {
                self.repair(&hist);
                debug_assert_eq!(self.assigned, Some(z));
                let q = self
                    .edges
                    .iter()
                    .find(|&&(nbr, ann)| !ann.matched && !exclude.contains(&nbr))
                    .map(|&(nbr, _)| nbr);
                Some(MatchMsg::ScanFreeReply { z, q })
            }
            MatchMsg::FetchSuspended { v, hist } => {
                self.repair(&hist);
                debug_assert_eq!(self.assigned, Some(v));
                Some(MatchMsg::FetchReply {
                    v,
                    entry: self.edges.pop(),
                })
            }
            MatchMsg::ScanAdj { z, hist } => {
                self.repair(&hist);
                Some(MatchMsg::ScanAdjReply {
                    z,
                    entries: self.edges.clone(),
                })
            }
            MatchMsg::ReleaseOverflow { v } => {
                debug_assert_eq!(self.assigned, Some(v));
                debug_assert!(self.edges.is_empty());
                self.assigned = None;
                None
            }
            MatchMsg::SnapChunk { words, last } => {
                self.snap_buf.extend_from_slice(&words);
                if last {
                    let buf = std::mem::take(&mut self.snap_buf);
                    self.restore_text(&dmpc_mpc::unpack_text(&buf));
                }
                Some(MatchMsg::SnapAck)
            }
            other => panic!("overflow machine got unexpected message {other:?}"),
        }
    }

    /// Memory footprint in words.
    pub fn memory_words(&self) -> usize {
        3 + 4 * self.edges.len() + self.snap_buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::msg::HistEntry;
    use super::*;
    use dmpc_graph::Edge;

    #[test]
    fn add_del_scan() {
        let mut m = StorageMachine::new(0, 4, 8);
        m.handle(MatchMsg::AddEdge {
            at: 1,
            nbr: 9,
            ann: Ann::free(),
            hist: vec![],
        });
        m.handle(MatchMsg::AddEdge {
            at: 1,
            nbr: 8,
            ann: Ann {
                matched: true,
                mate: 3,
                mate_light: true,
            },
            hist: vec![],
        });
        match m
            .handle(MatchMsg::ScanFree {
                z: 1,
                exclude: vec![],
                hist: vec![],
            })
            .unwrap()
        {
            MatchMsg::ScanFreeReply { q, .. } => assert_eq!(q, Some(9)),
            _ => panic!(),
        }
        match m
            .handle(MatchMsg::ScanFree {
                z: 1,
                exclude: vec![9],
                hist: vec![],
            })
            .unwrap()
        {
            MatchMsg::ScanFreeReply { q, .. } => assert_eq!(q, None),
            _ => panic!(),
        }
        match m
            .handle(MatchMsg::DelEdge {
                at: 1,
                nbr: 9,
                hist: vec![],
            })
            .unwrap()
        {
            MatchMsg::DelReply { found, alive, .. } => {
                assert!(found);
                assert!(alive);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn history_repair_applies_once() {
        let mut m = StorageMachine::new(0, 2, 8);
        m.handle(MatchMsg::AddEdge {
            at: 0,
            nbr: 5,
            ann: Ann::free(),
            hist: vec![],
        });
        let h1 = vec![(1, HistEntry::MatchAdd(Edge::new(5, 6), true, true))];
        m.handle(MatchMsg::Refresh(h1.clone()));
        assert!(m.vertex(0).unwrap().entries[0].1.matched);
        // Replaying the same suffix is a no-op (idempotent by seq).
        let h2 = vec![
            (1, HistEntry::MatchAdd(Edge::new(5, 6), true, true)),
            (2, HistEntry::MatchDel(Edge::new(5, 6))),
        ];
        m.handle(MatchMsg::Refresh(h2));
        assert!(!m.vertex(0).unwrap().entries[0].1.matched);
        assert_eq!(m.last_seen(), 2);
    }

    #[test]
    fn overflow_stack() {
        let mut o = OverflowMachine::default();
        o.handle(MatchMsg::AddSuspended {
            v: 3,
            entries: vec![(7, Ann::free()), (8, Ann::free())],
            hist: vec![],
        });
        assert_eq!(o.assigned(), Some(3));
        assert_eq!(o.len(), 2);
        match o
            .handle(MatchMsg::FetchSuspended { v: 3, hist: vec![] })
            .unwrap()
        {
            MatchMsg::FetchReply { entry, .. } => assert_eq!(entry.unwrap().0, 8),
            _ => panic!(),
        }
        match o
            .handle(MatchMsg::DelEdge {
                at: 3,
                nbr: 7,
                hist: vec![],
            })
            .unwrap()
        {
            MatchMsg::DelReply { found, alive, .. } => {
                assert!(found);
                assert!(!alive);
            }
            _ => panic!(),
        }
        assert!(o.is_empty());
        o.handle(MatchMsg::ReleaseOverflow { v: 3 });
        assert_eq!(o.assigned(), None);
    }

    /// The two layouts agree on every storage operation and snapshot.
    #[test]
    fn layouts_agree_on_storage_protocol() {
        let mk = |l: Layout| {
            let mut m = StorageMachine::with_layout(0, 4, 2, l);
            for (at, nbr) in [(0, 5), (0, 6), (1, 5), (2, 7), (0, 7)] {
                m.handle(MatchMsg::AddEdge {
                    at,
                    nbr,
                    ann: Ann::free(),
                    hist: vec![],
                });
            }
            m
        };
        let mut a = mk(Layout::Map);
        let mut b = mk(Layout::Soa);
        assert_eq!(a.snapshot_text(), b.snapshot_text());

        // MakeHeavy splits positionally; moved-out entries must match.
        for m in [&mut a, &mut b] {
            let hist = vec![(1, HistEntry::MatchAdd(Edge::new(6, 0), true, true))];
            m.handle(MatchMsg::Refresh(hist));
        }
        let ra = a.handle(MatchMsg::MakeHeavy {
            v: 0,
            mate: Some(6),
            hist: vec![],
        });
        let rb = b.handle(MatchMsg::MakeHeavy {
            v: 0,
            mate: Some(6),
            hist: vec![],
        });
        match (ra.unwrap(), rb.unwrap()) {
            (MatchMsg::MovedOut { entries: ea, .. }, MatchMsg::MovedOut { entries: eb, .. }) => {
                assert_eq!(ea, eb);
                assert_eq!(ea.len(), 1);
            }
            _ => panic!(),
        }
        assert_eq!(a.snapshot_text(), b.snapshot_text());

        // Order-preserving delete in the middle of a segment.
        for m in [&mut a, &mut b] {
            m.handle(MatchMsg::DelEdge {
                at: 0,
                nbr: 6,
                hist: vec![],
            });
        }
        assert_eq!(a.snapshot_text(), b.snapshot_text());

        // Round-trip through the snapshot codec.
        let text = b.snapshot_text();
        let mut c = StorageMachine::with_layout(0, 4, 2, Layout::Soa);
        c.restore_text(&text);
        assert_eq!(c.snapshot_text(), text);
    }
}
