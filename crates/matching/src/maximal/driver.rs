//! Cluster assembly, the public algorithm type, bulk preprocessing, result
//! extraction and deep structural audits.

use super::coordinator::Coordinator;
use super::msg::{Ann, HistSlice, MatchMsg, StatRec, NO_MATE};
use super::stats::StatsMachine;
use super::storage::{OverflowMachine, StorageMachine, StoreVertex};
use super::Layout;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm, QueryableAlgorithm};
use dmpc_graph::matching::Matching;
use dmpc_graph::{DynamicGraph, Edge, Query, QueryAnswer, Update, V};
use dmpc_mpc::chaos::ChaosKind;
use dmpc_mpc::Layout as StateLayout;
use dmpc_mpc::{
    BatchMetrics, Cluster, ClusterConfig, Envelope, ExecOptions, Machine, MachineId, Outbox,
    QueryMetrics, RoundCtx, UpdateMetrics, COORDINATOR,
};

/// One machine of the matching cluster.
// Each simulated machine holds exactly one Role for its whole lifetime, so
// the size difference between variants costs nothing per-message; boxing the
// large variants would only add indirection to the hot stepping path.
#[allow(clippy::large_enum_variant)]
pub enum Role {
    /// The coordinator `M_C`.
    Coord(Coordinator),
    /// A stats machine.
    Stats(StatsMachine),
    /// A storage machine.
    Storage(StorageMachine),
    /// An overflow machine.
    Overflow(OverflowMachine),
}

impl Machine for Role {
    type Msg = MatchMsg;

    fn on_messages(
        &mut self,
        _ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<MatchMsg>>,
        out: &mut Outbox<MatchMsg>,
    ) {
        match self {
            Role::Coord(c) => {
                for env in inbox.drain(..) {
                    let msgs = if env.from == Envelope::<MatchMsg>::EXTERNAL {
                        match env.msg {
                            MatchMsg::Insert(e) => c.start(Update::Insert(e)),
                            MatchMsg::Delete(e) => c.start(Update::Delete(e)),
                            MatchMsg::Batch(ups) => c.start_batch(ups),
                            MatchMsg::QMatchingSize { qid } => {
                                c.answer_matching_size(qid);
                                Vec::new()
                            }
                            m @ MatchMsg::HandoffBegin { .. } => c.reply(m),
                            other => panic!("unexpected injected message {other:?}"),
                        }
                    } else {
                        c.reply(env.msg)
                    };
                    for (to, m) in msgs {
                        out.send(to, m);
                    }
                }
            }
            Role::Stats(s) => {
                for env in inbox.drain(..) {
                    if let Some(r) = s.handle(env.msg) {
                        out.send(COORDINATOR, r);
                    }
                }
            }
            Role::Storage(s) => {
                for env in inbox.drain(..) {
                    if let Some(r) = s.handle(env.msg) {
                        out.send(COORDINATOR, r);
                    }
                }
            }
            Role::Overflow(o) => {
                for env in inbox.drain(..) {
                    if let Some(r) = o.handle(env.msg) {
                        out.send(COORDINATOR, r);
                    }
                }
            }
        }
    }

    fn memory_words(&self) -> usize {
        match self {
            // The coordinator's footprint is dominated by the history
            // buffer and the per-machine sync table, both O(sqrt N), plus —
            // during a batch — the queued updates and the carried stat
            // cache (both bounded by the chunking in `apply_batch`).
            Role::Coord(c) => {
                8 + 4 * c.hist_len()
                    + 4 * c.cache_len()
                    + 2 * c.queue_len()
                    + 2 * c.answers_len()
                    + c.recovery_words()
            }
            Role::Stats(s) => s.memory_words(),
            Role::Storage(s) => s.memory_words(),
            Role::Overflow(o) => o.memory_words(),
        }
    }
}

/// Fully-dynamic maximal matching in the DMPC model (paper Section 3):
/// O(1) rounds and O(1) active machines per update, O(sqrt N) communication
/// per round, worst case.
pub struct DmpcMaximalMatching {
    cluster: Cluster<Role>,
    layout: Layout,
    params: DmpcParams,
    /// Section 4 mode flag (set by [`crate::threehalves::DmpcThreeHalves`]).
    pub(crate) three_halves: bool,
}

impl DmpcMaximalMatching {
    /// Creates an empty instance.
    pub fn new(params: DmpcParams) -> Self {
        Self::with_mode_exec(params, false, ExecOptions::default())
    }

    /// Creates an empty instance with explicit executor tuning (backend
    /// selection, per-round recording) — bit-identical across backends.
    pub fn with_exec(params: DmpcParams, exec: ExecOptions) -> Self {
        Self::with_mode_exec(params, false, exec)
    }

    /// Creates an empty instance with an explicit storage state layout
    /// (map/SoA; layout-differential testing and benches).
    pub fn with_state_layout(params: DmpcParams, exec: ExecOptions, state: StateLayout) -> Self {
        Self::with_opts(params, false, exec, state)
    }

    pub(crate) fn with_mode(params: DmpcParams, three_halves: bool) -> Self {
        Self::with_mode_exec(params, three_halves, ExecOptions::default())
    }

    pub(crate) fn with_mode_exec(
        params: DmpcParams,
        three_halves: bool,
        exec: ExecOptions,
    ) -> Self {
        Self::with_opts(params, three_halves, exec, StateLayout::default())
    }

    fn with_opts(
        params: DmpcParams,
        three_halves: bool,
        exec: ExecOptions,
        state: StateLayout,
    ) -> Self {
        let layout = Layout::new(&params);
        let mut machines = Vec::with_capacity(layout.total_machines());
        machines.push(Role::Coord(Coordinator::new(
            layout,
            three_halves,
            params.capacity_words(),
        )));
        for i in 0..layout.n_stats {
            let lo = (i * layout.stats_block) as V;
            let hi = (((i + 1) * layout.stats_block).min(layout.n)) as V;
            machines.push(Role::Stats(StatsMachine::new(lo, hi)));
        }
        for i in 0..layout.n_storage {
            let lo = (i * layout.storage_block) as V;
            let hi = (((i + 1) * layout.storage_block).min(layout.n)) as V;
            machines.push(Role::Storage(StorageMachine::with_layout(
                lo, hi, layout.tau, state,
            )));
        }
        for _ in 0..layout.n_overflow {
            machines.push(Role::Overflow(OverflowMachine::default()));
        }
        // Flow tracking is on by default for drivers (the entropy bench
        // relies on it); `exec` can override it (e.g. `ExecOptions::lean()`
        // forces it off for timing runs).
        let mut cfg = ClusterConfig::with_capacity(params.capacity_words());
        cfg.track_flows = true;
        let cfg = cfg.with_exec(exec);
        DmpcMaximalMatching {
            cluster: Cluster::new(machines, cfg),
            layout,
            params,
            three_halves,
        }
    }

    /// The machine layout in use.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The model parameters.
    pub fn params(&self) -> &DmpcParams {
        &self.params
    }

    fn coord(&self) -> &Coordinator {
        match self.cluster.machine(COORDINATOR) {
            Role::Coord(c) => c,
            _ => unreachable!(),
        }
    }

    fn stats_rec(&self, v: V) -> StatRec {
        match self.cluster.machine(self.layout.stats_of(v)) {
            Role::Stats(s) => *s.record(v).expect("missing record"),
            _ => unreachable!(),
        }
    }

    /// Extracts the maintained matching (result extraction, not metered).
    pub fn matching(&self) -> Matching {
        let mut edges = Vec::new();
        for v in 0..self.layout.n as V {
            let r = self.stats_rec(v);
            if r.matched() && v < r.mate {
                edges.push(Edge::new(v, r.mate));
            }
        }
        Matching::from_edges(&edges)
    }

    /// Bulk preprocessing from an initial graph: a greedy maximal matching
    /// plus the heavy/light storage split, installed directly (the paper
    /// computes this with a randomized O(log n)-round matching algorithm;
    /// the static baseline exhibits those costs on the same simulator).
    pub fn bulk_load(&mut self, edges: &[Edge]) {
        assert!(
            !self.three_halves,
            "the Section 4 algorithm starts from the empty graph (paper assumption)"
        );
        let g = DynamicGraph::from_edges(self.layout.n, edges);
        let m = dmpc_graph::matching::greedy_maximal(&g);
        let tau = self.layout.tau;
        let n = self.layout.n;
        let recs: Vec<StatRec> = (0..n as V)
            .map(|v| StatRec {
                degree: g.degree(v) as u32,
                mate: m.mate(v).unwrap_or(NO_MATE),
                heavy: g.degree(v) > tau,
                free_nbrs: 0,
            })
            .collect();
        let ann_of = |u: V| -> Ann {
            match m.mate(u) {
                Some(mu) => Ann {
                    matched: true,
                    mate: mu,
                    mate_light: g.degree(mu) <= tau,
                },
                None => Ann::free(),
            }
        };
        // Stats machines.
        for v in 0..n as V {
            let sm = self.layout.stats_of(v);
            match self.cluster.machine_mut(sm) {
                Role::Stats(s) => s.load(v, recs[v as usize]),
                _ => unreachable!(),
            }
        }
        // Storage + overflow.
        let mut next_overflow = self.layout.overflow_base();
        let mut preassign = Vec::new();
        for v in 0..n as V {
            let mut entries: Vec<(V, Ann)> = g.neighbors(v).map(|u| (u, ann_of(u))).collect();
            let heavy = recs[v as usize].heavy;
            let mut suspended = Vec::new();
            if heavy {
                // Mate edge first, then split at tau.
                if let Some(mv) = m.mate(v) {
                    if let Some(pos) = entries.iter().position(|&(x, _)| x == mv) {
                        entries.swap(0, pos);
                    }
                }
                if entries.len() > tau {
                    suspended = entries.split_off(tau);
                }
            }
            let sm = self.layout.storage_of(v);
            match self.cluster.machine_mut(sm) {
                Role::Storage(s) => s.load(v, StoreVertex { heavy, entries }),
                _ => unreachable!(),
            }
            if heavy {
                let ov = next_overflow;
                next_overflow += 1;
                assert!(
                    (ov as usize) < self.layout.total_machines(),
                    "overflow pool exhausted during bulk load"
                );
                match self.cluster.machine_mut(ov) {
                    Role::Overflow(o) => o.load(v, suspended.clone(), 0),
                    _ => unreachable!(),
                }
                preassign.push((v, ov, suspended.len()));
            }
        }
        match self.cluster.machine_mut(COORDINATOR) {
            Role::Coord(c) => {
                for (v, ov, count) in preassign {
                    c.preassign_overflow(v, ov, count);
                }
                c.preset_matched_pairs(m.size());
            }
            _ => unreachable!(),
        }
    }

    /// Runs one chunk of queries as a single metered wave: `IsMatched`
    /// probes are injected at the stats machines (whose records are exact at
    /// all times), `MatchingSize` at the coordinator's local counter — the
    /// update path (history sync, storage scans) is never touched, and the
    /// whole wave resolves in one round.
    fn run_query_wave(&mut self, chunk: &[Query]) -> (Vec<QueryAnswer>, UpdateMetrics) {
        let mut wave: Vec<(MachineId, MatchMsg)> = Vec::with_capacity(chunk.len());
        let mut got: Vec<(u32, QueryAnswer)> = Vec::new();
        for (i, &q) in chunk.iter().enumerate() {
            let qid = i as u32;
            match q {
                // A dead stats owner can't answer; the service acknowledges
                // the read as `Degraded` ("writes pause, reads degrade").
                Query::IsMatched(v) if !self.cluster.is_alive(self.layout.stats_of(v)) => {
                    got.push((qid, QueryAnswer::Degraded));
                }
                Query::IsMatched(v) => {
                    wave.push((self.layout.stats_of(v), MatchMsg::QIsMatched { qid, v }));
                }
                Query::MatchingSize => {
                    wave.push((COORDINATOR, MatchMsg::QMatchingSize { qid }));
                }
                Query::Connected(_, _) | Query::ComponentOf(_) | Query::PathMax(_, _) => {
                    got.push((qid, QueryAnswer::Unsupported));
                }
            }
        }
        self.cluster.inject_batch(wave);
        let m = self.cluster.run_update();
        for mid in 0..self.cluster.n_machines() {
            match self.cluster.machine_mut(mid as MachineId) {
                Role::Coord(c) => {
                    got.extend(
                        c.take_answers()
                            .into_iter()
                            .map(|(qid, n)| (qid, QueryAnswer::Count(n))),
                    );
                }
                Role::Stats(s) => {
                    got.extend(
                        s.take_answers()
                            .into_iter()
                            .map(|(qid, b)| (qid, QueryAnswer::Bool(b))),
                    );
                }
                Role::Storage(_) | Role::Overflow(_) => {}
            }
        }
        got.sort_unstable_by_key(|&(qid, _)| qid);
        assert_eq!(got.len(), chunk.len(), "query answers missing/duplicated");
        (got.into_iter().map(|(_, a)| a).collect(), m)
    }

    /// Deep structural audit against the ground-truth graph: matching
    /// validity and maximality, record exactness, the heavy/light and
    /// alive/suspended invariants, annotation coherence (annotations plus
    /// the pending history suffix equal the truth), and counter exactness
    /// in 3/2 mode.
    pub fn audit(&self, g: &DynamicGraph) -> Result<(), String> {
        let n = self.layout.n;
        let tau = self.layout.tau;
        let m = self.matching();
        if !dmpc_graph::matching::is_valid_matching(g, &m) {
            return Err("matching invalid".into());
        }
        if !dmpc_graph::matching::is_maximal_matching(g, &m) {
            return Err("matching not maximal".into());
        }
        let coord = self.coord();
        for v in 0..n as V {
            let r = self.stats_rec(v);
            if r.degree as usize != g.degree(v) {
                return Err(format!(
                    "vertex {v}: degree {} != {}",
                    r.degree,
                    g.degree(v)
                ));
            }
            if r.heavy != (g.degree(v) > tau) {
                return Err(format!("vertex {v}: heavy flag wrong"));
            }
            if r.matched() != m.is_matched(v) || (r.matched() && m.mate(v) != Some(r.mate)) {
                return Err(format!("vertex {v}: mate record wrong"));
            }
            if self.three_halves {
                let actual = g.neighbors(v).filter(|&u| !m.is_matched(u)).count() as u32;
                if r.free_nbrs != actual {
                    return Err(format!(
                        "vertex {v}: counter {} != actual {actual}",
                        r.free_nbrs
                    ));
                }
            }
        }
        // Storage invariants + annotation coherence.
        for v in 0..n as V {
            let sm = self.layout.storage_of(v);
            let sv = match self.cluster.machine(sm) {
                Role::Storage(s) => s.vertex(v).expect("missing store vertex"),
                _ => unreachable!(),
            };
            let machine_seen = match self.cluster.machine(sm) {
                Role::Storage(s) => s.last_seen(),
                _ => unreachable!(),
            };
            let deg = g.degree(v);
            let expect_alive = if sv.heavy { deg.min(tau) } else { deg };
            if sv.heavy != (deg > tau) {
                return Err(format!("storage {v}: heavy flag wrong"));
            }
            if sv.entries.len() != expect_alive {
                return Err(format!(
                    "storage {v}: alive {} != expected {expect_alive}",
                    sv.entries.len()
                ));
            }
            let suffix = coord_suffix(coord, machine_seen);
            for (nbr, mut ann) in sv.entries {
                if !g.has_edge(Edge::new(v, nbr)) {
                    return Err(format!("storage {v}: stale edge to {nbr}"));
                }
                for (_, h) in &suffix {
                    super::msg::repair_entry(h, nbr, &mut ann);
                }
                let truth_m = m.is_matched(nbr);
                if ann.matched != truth_m {
                    return Err(format!(
                        "storage {v}->{nbr}: repaired matched={} truth={truth_m}",
                        ann.matched
                    ));
                }
                if truth_m {
                    let mate = m.mate(nbr).unwrap();
                    if ann.mate != mate {
                        return Err(format!("storage {v}->{nbr}: repaired mate wrong"));
                    }
                    if ann.mate_light != (g.degree(mate) <= tau) {
                        return Err(format!("storage {v}->{nbr}: repaired mate_light wrong"));
                    }
                }
            }
        }
        Ok(())
    }
}

fn coord_suffix(c: &Coordinator, seen: u64) -> HistSlice {
    c.hist_suffix(seen)
}

/// Batched query plane: every `q`-query wave resolves in one round —
/// `IsMatched` at the stats machines, `MatchingSize` at the coordinator —
/// without acquiring any update-path state (works in both Section 3 and
/// 3/2 mode, whose mutations share `do_match`/`do_unmatch`).
impl QueryableAlgorithm for DmpcMaximalMatching {
    fn answer_query(&mut self, q: Query) -> (QueryAnswer, QueryMetrics) {
        let (mut answers, m) = self.answer_queries(&[q]);
        (answers.pop().expect("one answer per query"), m)
    }

    fn answer_queries(&mut self, queries: &[Query]) -> (Vec<QueryAnswer>, QueryMetrics) {
        let mut answers = Vec::with_capacity(queries.len());
        let mut qm = QueryMetrics::default();
        // Chunked like update batches: the stashed answers are transient
        // machine state and must fit the O(sqrt N)-word budget.
        let chunk_len = self.params.sqrt_n().max(1);
        for chunk in queries.chunks(chunk_len) {
            let (a, m) = self.run_query_wave(chunk);
            answers.extend(a);
            qm.absorb_run(&m);
            qm.queries += chunk.len();
        }
        (answers, qm)
    }
}

impl DynamicGraphAlgorithm for DmpcMaximalMatching {
    fn name(&self) -> &'static str {
        if self.three_halves {
            "dmpc-3/2-matching"
        } else {
            "dmpc-maximal-matching"
        }
    }

    fn resident_words(&self) -> usize {
        self.cluster.resident_words()
    }

    fn admission_budget(&self) -> Option<usize> {
        // The batched coordinator program's chunk bound (see apply_batch);
        // the looped 3/2 mode has no batching to protect, so any window
        // size is admissible there too.
        Some((self.params.sqrt_n() / 4).max(1))
    }

    fn insert(&mut self, e: Edge) -> UpdateMetrics {
        self.cluster.inject(COORDINATOR, MatchMsg::Insert(e));
        self.cluster.run_update()
    }

    fn delete(&mut self, e: Edge) -> UpdateMetrics {
        self.cluster.inject(COORDINATOR, MatchMsg::Delete(e));
        self.cluster.run_update()
    }

    /// Genuinely batched execution (Section 3 mode): the batch is coalesced
    /// to its net updates and injected chunk-wise; the coordinator
    /// prefetches all endpoint records in one shared wave and drains the
    /// chunk back-to-back against the warm cache, collapsing the per-update
    /// fetch round-trips. The 3/2 mode falls back to the looped default
    /// (its counter commit assumes one update per run).
    fn apply_batch(&mut self, updates: &[Update]) -> BatchMetrics {
        if self.three_halves {
            return dmpc_core::apply_batch_looped(self, updates);
        }
        let net = dmpc_graph::streams::coalesce(updates);
        let mut bm = BatchMetrics::default();
        // Two budgets bound the chunk: the coordinator's transient cache
        // (~4 words per endpoint record) must fit its O(sqrt N)-word memory
        // alongside the history buffer, and a fully-cached drain emits the
        // whole chunk's O(1)-message updates in one round, which must fit
        // the O(sqrt N)-word send cap.
        let chunk = (self.params.sqrt_n() / 4).max(1);
        for part in net.chunks(chunk) {
            let m = self.cluster.run_batch(
                std::iter::once((COORDINATOR, MatchMsg::Batch(part.to_vec()))),
                part.len(),
            );
            bm.merge(&m);
        }
        // Amortize over the caller's batch: cancelled pairs count as free
        // work the batch absorbed.
        bm.updates = updates.len();
        bm
    }
}

impl Role {
    /// Plain-text snapshot of this machine's program state (chaos plane).
    fn snapshot_text(&self) -> String {
        match self {
            Role::Coord(c) => c.snapshot_text(),
            Role::Stats(s) => s.snapshot_text(),
            Role::Storage(s) => s.snapshot_text(),
            Role::Overflow(o) => o.snapshot_text(),
        }
    }

    /// Fail-stop wipe (chaos plane).
    fn wipe(&mut self) {
        match self {
            Role::Coord(_) => unreachable!("the coordinator is the reliable machine"),
            Role::Stats(s) => s.wipe(),
            Role::Storage(s) => s.wipe(),
            Role::Overflow(o) => o.wipe(),
        }
    }

    /// Machine-local restore from [`Role::snapshot_text`] output (the
    /// epoch-abort rollback path).
    fn restore_text(&mut self, text: &str) {
        match self {
            Role::Coord(c) => c.restore_text(text),
            Role::Stats(s) => s.restore_text(text),
            Role::Storage(s) => s.restore_text(text),
            Role::Overflow(o) => o.restore_text(text),
        }
    }
}

/// Chaos-plane surface (paper Section 3 keeps the coordinator `M_C` on the
/// model's one reliable machine, so it is never killable; it doubles as the
/// staging peer for revive handoffs). The algorithm keeps no full-cluster
/// checkpoint support — the history-repair protocol makes per-machine
/// snapshots cheap but restoring a *consistent cut* across the coordinator's
/// un-snapshotted working state is not worth the surface — so the harness
/// recovers machines by full-log replay on an off-cluster replica.
impl dmpc_core::ElasticAlgorithm for DmpcMaximalMatching {
    fn n_shards(&self) -> usize {
        self.cluster.n_machines()
    }

    fn killable(&self, m: MachineId) -> bool {
        m != COORDINATOR
    }

    fn is_alive(&self, m: MachineId) -> bool {
        self.cluster.is_alive(m)
    }

    fn round_limit(&self) -> usize {
        self.cluster.round_limit()
    }

    fn arm_in_round(&mut self, at_round: u32, kind: ChaosKind) {
        self.cluster.arm_in_round(at_round, kind)
    }

    fn restore_machine(&mut self, m: MachineId, snap: &str) {
        self.cluster.machine_mut(m).restore_text(snap);
    }

    fn supports_restore(&self) -> bool {
        false
    }

    fn snapshot_machine(&self, m: MachineId) -> String {
        self.cluster.machine(m).snapshot_text()
    }

    fn restore(&mut self, _snaps: &[String]) {
        unreachable!("full-log replay mode: the harness never restores checkpoints");
    }

    fn kill(&mut self, m: MachineId) {
        assert_ne!(m, COORDINATOR, "the coordinator is the reliable machine");
        self.cluster.kill(m);
        self.cluster.machine_mut(m).wipe();
    }

    fn revive(&mut self, m: MachineId, snap: &str) -> UpdateMetrics {
        self.cluster.revive(m);
        let budget = (self.params.capacity_words() / 4).max(1);
        match self.cluster.machine_mut(COORDINATOR) {
            Role::Coord(c) => c.stage_handoff(dmpc_mpc::pack_text(snap)),
            _ => unreachable!(),
        }
        self.cluster
            .inject(COORDINATOR, MatchMsg::HandoffBegin { to: m, budget });
        self.cluster.run_update()
    }

    fn state_digest(&self) -> u64 {
        let snaps: Vec<String> = (0..self.cluster.n_machines() as MachineId)
            .map(|m| self.cluster.machine(m).snapshot_text())
            .collect();
        dmpc_core::digest_snapshots(snaps.iter().map(|s| s.as_str()))
    }
}
