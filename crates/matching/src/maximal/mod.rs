//! Section 3: fully-dynamic maximal matching in the DMPC model.
//!
//! Machine roles (ids in order): the **coordinator** `M_C` (id 0), which
//! buffers the update-history `H` and orchestrates every update; **stats
//! machines** holding exact per-vertex records (degree, mate, heavy flag,
//! and — in 3/2 mode — the free-neighbor counter of Section 4); **storage
//! machines** holding adjacency lists annotated with each neighbor's
//! matching status (stale by up to one refresh cycle, repaired by replaying
//! the history suffix attached to every coordinator message); and an
//! **overflow pool** holding the *suspended* edges of heavy vertices (the
//! paper's `getSuspended` stack).
//!
//! A vertex is *heavy* iff its degree exceeds `tau = ceil(sqrt(2 m_max))`;
//! heavy vertices keep exactly `min(tau, deg)` *alive* edges on their owner
//! machine (the invariant is maintained with O(1)-edge moves per update:
//! new edges of heavy vertices go to the suspended stack, and a deletion
//! from the alive set pulls one suspended edge back).
//!
//! Differences from the paper's presentation, all documented here:
//! * Light vertices are packed by static contiguous vertex blocks instead
//!   of the dynamic `fits`/`toFit`/`moveEdges` repacking; the repacking
//!   exists to bound machine count and per-machine memory, which the static
//!   blocks already achieve for the evaluated workloads (violations are
//!   metered, and the suite asserts there are none).
//! * The history does not need explicit edge-insert/delete entries because
//!   adjacency structure is push-updated within each update; only matching
//!   and heavy/light *annotations* ride the history (`MatchAdd`, `MatchDel`,
//!   `Heavy`, `Light`).
//! * Alive sets store, with each edge, the neighbor's mate and whether that
//!   mate is light (repairable via the history); this is what lets the
//!   heavy-vertex steal pick a light-mated neighbor with O(1) active
//!   machines, matching Table 1 row 1.

pub mod coordinator;
pub mod driver;
pub mod msg;
pub mod stats;
pub mod storage;

pub use driver::DmpcMaximalMatching;

use dmpc_core::DmpcParams;
use dmpc_mpc::MachineId;

/// Machine layout derived from the model parameters.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Number of vertices.
    pub n: usize,
    /// Stats machines hold `stats_block` consecutive vertex records each.
    pub stats_block: usize,
    /// Number of stats machines.
    pub n_stats: usize,
    /// Storage machines own `storage_block` consecutive vertices each.
    pub storage_block: usize,
    /// Number of storage machines.
    pub n_storage: usize,
    /// Number of overflow machines in the pool.
    pub n_overflow: usize,
    /// Heavy/light threshold `tau`.
    pub tau: usize,
}

impl Layout {
    /// Derives the layout from the model parameters.
    pub fn new(params: &DmpcParams) -> Self {
        let n = params.n;
        let sqrt_n = params.sqrt_n();
        let stats_block = sqrt_n.max(1);
        let n_stats = n.div_ceil(stats_block).max(1);
        let n_storage = params.storage_machines();
        let storage_block = n.div_ceil(n_storage).max(1);
        let n_storage = n.div_ceil(storage_block).max(1);
        Layout {
            n,
            stats_block,
            n_stats,
            storage_block,
            n_storage,
            n_overflow: sqrt_n.max(4),
            tau: params.heavy_threshold(),
        }
    }

    /// Total machine count (coordinator + stats + storage + overflow).
    pub fn total_machines(&self) -> usize {
        1 + self.n_stats + self.n_storage + self.n_overflow
    }

    /// Stats machine of vertex `v`.
    pub fn stats_of(&self, v: u32) -> MachineId {
        1 + (v as usize / self.stats_block) as MachineId
    }

    /// Storage machine of vertex `v`.
    pub fn storage_of(&self, v: u32) -> MachineId {
        (1 + self.n_stats + v as usize / self.storage_block) as MachineId
    }

    /// First machine id of the overflow pool.
    pub fn overflow_base(&self) -> MachineId {
        (1 + self.n_stats + self.n_storage) as MachineId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_vertices() {
        let params = DmpcParams::new(100, 300);
        let l = Layout::new(&params);
        assert_eq!(l.tau, 25);
        for v in 0..100u32 {
            let s = l.stats_of(v);
            assert!(s >= 1 && (s as usize) <= l.n_stats);
            let st = l.storage_of(v);
            assert!(st as usize > l.n_stats && (st as usize) <= l.n_stats + l.n_storage);
        }
        assert!(l.total_machines() > l.n_stats + l.n_storage);
        assert_eq!(l.overflow_base() as usize, 1 + l.n_stats + l.n_storage);
    }
}
