//! Stats machines: exact per-vertex records.

use super::msg::{MatchMsg, StatRec};
use dmpc_graph::V;
use std::collections::BTreeMap;

/// A stats machine owning a contiguous block of vertex records. Records are
/// exact at all times: the coordinator pushes every change as part of the
/// update that causes it — which is what lets [`MatchMsg::QIsMatched`]
/// queries be answered here in one round, bypassing the coordinator.
#[derive(Debug, Default)]
pub struct StatsMachine {
    recs: BTreeMap<V, StatRec>,
    /// Query answers stashed for driver-side extraction after the wave.
    answers: Vec<(u32, bool)>,
    /// Inbound recovery-snapshot chunks accumulated so far.
    snap_buf: Vec<u64>,
}

impl StatsMachine {
    /// Creates the machine owning vertices `lo..hi`.
    pub fn new(lo: V, hi: V) -> Self {
        StatsMachine {
            recs: (lo..hi).map(|v| (v, StatRec::new())).collect(),
            answers: Vec::new(),
            snap_buf: Vec::new(),
        }
    }

    /// Fail-stop wipe (chaos plane): drops all program state.
    pub fn wipe(&mut self) {
        self.recs.clear();
        self.answers.clear();
        self.snap_buf = Vec::new();
    }

    /// Plain-text snapshot of the record table (deterministic: key order).
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("stats v1\n");
        for (&v, r) in &self.recs {
            writeln!(
                s,
                "rec {v} {} {} {} {}",
                r.degree, r.mate, r.heavy as u8, r.free_nbrs
            )
            .unwrap();
        }
        s
    }

    /// Full state restore from [`StatsMachine::snapshot_text`] output.
    pub fn restore_text(&mut self, text: &str) {
        self.wipe();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("stats v1"), "snapshot header");
        for line in lines {
            let mut it = line.split_ascii_whitespace();
            assert_eq!(it.next(), Some("rec"));
            let v: V = it.next().unwrap().parse().unwrap();
            self.recs.insert(
                v,
                StatRec {
                    degree: it.next().unwrap().parse().unwrap(),
                    mate: it.next().unwrap().parse().unwrap(),
                    heavy: it.next().unwrap() == "1",
                    free_nbrs: it.next().unwrap().parse().unwrap(),
                },
            );
        }
    }

    /// Drains the query answers stashed here (driver-side result extraction
    /// after a wave quiesces — not part of the model).
    pub fn take_answers(&mut self) -> Vec<(u32, bool)> {
        std::mem::take(&mut self.answers)
    }

    /// Read access for audits/extraction.
    pub fn record(&self, v: V) -> Option<&StatRec> {
        self.recs.get(&v)
    }

    /// Direct load for bulk preprocessing.
    pub fn load(&mut self, v: V, rec: StatRec) {
        self.recs.insert(v, rec);
    }

    /// Handles one request, possibly producing a reply for the coordinator.
    pub fn handle(&mut self, msg: MatchMsg) -> Option<MatchMsg> {
        match msg {
            MatchMsg::StatQuery(vs) => Some(MatchMsg::StatReply(
                vs.iter().map(|&v| (v, self.recs[&v])).collect(),
            )),
            MatchMsg::StatSet(rs) => {
                for (v, r) in rs {
                    self.recs.insert(v, r);
                }
                None
            }
            MatchMsg::CounterDelta(vs, delta) => {
                for v in vs {
                    let r = self.recs.get_mut(&v).expect("vertex not owned");
                    let nv = r.free_nbrs as i64 + delta as i64;
                    debug_assert!(nv >= 0, "counter of {v} went negative");
                    r.free_nbrs = nv.max(0) as u32;
                }
                None
            }
            MatchMsg::CounterQuery(vs) => Some(MatchMsg::CounterReply(
                vs.iter().map(|&v| (v, self.recs[&v].free_nbrs)).collect(),
            )),
            MatchMsg::QIsMatched { qid, v } => {
                self.answers.push((qid, self.recs[&v].matched()));
                None
            }
            MatchMsg::SnapChunk { words, last } => {
                self.snap_buf.extend_from_slice(&words);
                if last {
                    let buf = std::mem::take(&mut self.snap_buf);
                    self.restore_text(&dmpc_mpc::unpack_text(&buf));
                }
                Some(MatchMsg::SnapAck)
            }
            other => panic!("stats machine got unexpected message {other:?}"),
        }
    }

    /// Memory footprint in words.
    pub fn memory_words(&self) -> usize {
        1 + 4 * self.recs.len() + 2 * self.answers.len() + self.snap_buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_set_roundtrip() {
        let mut m = StatsMachine::new(0, 10);
        let mut r = StatRec::new();
        r.degree = 3;
        r.mate = 7;
        m.handle(MatchMsg::StatSet(vec![(2, r)]));
        let reply = m.handle(MatchMsg::StatQuery(vec![2, 3])).unwrap();
        match reply {
            MatchMsg::StatReply(rs) => {
                assert_eq!(rs[0].0, 2);
                assert_eq!(rs[0].1.degree, 3);
                assert!(rs[0].1.matched());
                assert!(!rs[1].1.matched());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn is_matched_queries_stash_locally() {
        let mut m = StatsMachine::new(0, 10);
        let mut r = StatRec::new();
        r.mate = 7;
        m.handle(MatchMsg::StatSet(vec![(2, r)]));
        assert!(m.handle(MatchMsg::QIsMatched { qid: 0, v: 2 }).is_none());
        assert!(m.handle(MatchMsg::QIsMatched { qid: 1, v: 3 }).is_none());
        assert_eq!(m.take_answers(), vec![(0, true), (1, false)]);
        // Drained: a second take is empty.
        assert!(m.take_answers().is_empty());
    }

    #[test]
    fn counters() {
        let mut m = StatsMachine::new(0, 5);
        m.handle(MatchMsg::CounterDelta(vec![1, 2], 2));
        m.handle(MatchMsg::CounterDelta(vec![1], -1));
        match m.handle(MatchMsg::CounterQuery(vec![1, 2])).unwrap() {
            MatchMsg::CounterReply(rs) => {
                assert_eq!(rs, vec![(1, 1), (2, 2)]);
            }
            _ => panic!(),
        }
    }
}
