//! Messages, per-vertex records, annotations, and the update-history.

use dmpc_graph::{Edge, Update, V};
use dmpc_mpc::{MachineId, Payload};

/// Sentinel for "no mate".
pub const NO_MATE: V = V::MAX;

/// Exact per-vertex record kept on stats machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatRec {
    /// Current degree.
    pub degree: u32,
    /// Current mate (`NO_MATE` if free).
    pub mate: V,
    /// Heavy flag (degree > tau).
    pub heavy: bool,
    /// Number of free neighbors (maintained in 3/2 mode only).
    pub free_nbrs: u32,
}

impl StatRec {
    /// A fresh isolated vertex.
    pub fn new() -> Self {
        StatRec {
            degree: 0,
            mate: NO_MATE,
            heavy: false,
            free_nbrs: 0,
        }
    }

    /// True if currently matched.
    pub fn matched(&self) -> bool {
        self.mate != NO_MATE
    }
}

impl Default for StatRec {
    fn default() -> Self {
        Self::new()
    }
}

/// Adjacency annotation stored with each edge copy: the *neighbor's*
/// matching status. Stale by at most one refresh cycle; repaired by
/// replaying the history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ann {
    /// Whether the neighbor is matched.
    pub matched: bool,
    /// The neighbor's mate (valid iff `matched`).
    pub mate: V,
    /// Whether that mate is light (valid iff `matched`); this is what the
    /// heavy-vertex steal scans for.
    pub mate_light: bool,
}

impl Ann {
    /// Annotation for a free neighbor.
    pub fn free() -> Self {
        Ann {
            matched: false,
            mate: NO_MATE,
            mate_light: false,
        }
    }
}

/// One update-history entry (sequence number assigned by the coordinator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistEntry {
    /// `(a,b)` joined the matching; flags say whether each endpoint is light
    /// *after* the change (used to repair `mate_light` annotations).
    MatchAdd(Edge, bool, bool),
    /// `(a,b)` left the matching.
    MatchDel(Edge),
    /// `v` became heavy.
    Heavy(V),
    /// `v` became light.
    Light(V),
}

/// A numbered history suffix shipped with coordinator messages.
pub type HistSlice = Vec<(u64, HistEntry)>;

/// Requests/replies of the matching protocol. Every storage/overflow-bound
/// message carries the history suffix the target has not yet seen.
#[derive(Clone, Debug)]
pub enum MatchMsg {
    /// Injected edge insertion.
    Insert(Edge),
    /// Injected edge deletion.
    Delete(Edge),
    /// Injected batch: the coordinator prefetches every endpoint's record
    /// in one shared wave, then drains the updates back-to-back against the
    /// warm cache (Section 3 mode only).
    Batch(Vec<Update>),
    /// Coordinator self-message: continue draining the batch queue next
    /// round (sent when this round's outbound volume nears the send cap).
    BatchResume,

    // --- query plane (never touches the update path) ---
    /// Injected at `v`'s stats machine: stash whether `v` is matched.
    /// Stats records are exact at all times, so the answer needs no history
    /// sync, no repair, and no coordinator round-trip.
    QIsMatched {
        /// Query id within the wave.
        qid: u32,
        /// The queried vertex.
        v: V,
    },
    /// Injected at the coordinator: stash the matching size from its
    /// locally maintained matched-pair counter.
    QMatchingSize {
        /// Query id within the wave.
        qid: u32,
    },

    // --- coordinator <-> stats ---
    /// Ask for the records of up to two vertices.
    StatQuery(Vec<V>),
    /// Stats reply.
    StatReply(Vec<(V, StatRec)>),
    /// Overwrite fields: (vertex, new record).
    StatSet(Vec<(V, StatRec)>),
    /// Add `delta` to the free-neighbor counters of the listed vertices.
    CounterDelta(Vec<V>, i32),
    /// Ask for free-neighbor counters.
    CounterQuery(Vec<V>),
    /// Counter reply.
    CounterReply(Vec<(V, u32)>),

    // --- coordinator <-> storage/overflow ---
    /// Periodic round-robin refresh: just replay the history.
    Refresh(HistSlice),
    /// Add an edge copy at `at` pointing to `nbr`.
    AddEdge {
        /// Owning vertex.
        at: V,
        /// Neighbor.
        nbr: V,
        /// Fresh annotation for `nbr`.
        ann: Ann,
        /// History suffix for repair.
        hist: HistSlice,
    },
    /// Remove the edge copy at `at` pointing to `nbr`; reply [`MatchMsg::DelReply`].
    DelEdge {
        /// Owning vertex.
        at: V,
        /// Neighbor.
        nbr: V,
        /// History suffix.
        hist: HistSlice,
    },
    /// Whether the probe found (and removed) the edge copy.
    DelReply {
        /// Echo of the owning vertex.
        at: V,
        /// Found and removed here.
        found: bool,
        /// True when the reporting store is the alive set (storage
        /// machine); false for the suspended stack (overflow machine).
        alive: bool,
    },
    /// Scan the list of `z` for a free neighbor outside `exclude`.
    ScanFree {
        /// The scanned vertex.
        z: V,
        /// Neighbors to skip (O(1) entries).
        exclude: Vec<V>,
        /// History suffix.
        hist: HistSlice,
    },
    /// Reply to [`MatchMsg::ScanFree`].
    ScanFreeReply {
        /// Echo.
        z: V,
        /// A free neighbor, if any.
        q: Option<V>,
    },
    /// Return the whole adjacency list of `z` (O(tau) words; light vertices
    /// and alive sets only).
    ScanAdj {
        /// The vertex.
        z: V,
        /// History suffix.
        hist: HistSlice,
    },
    /// Reply to [`MatchMsg::ScanAdj`].
    ScanAdjReply {
        /// Echo.
        z: V,
        /// The (neighbor, annotation) list.
        entries: Vec<(V, Ann)>,
    },
    /// Scan heavy `z`'s alive set for a free neighbor and a steal candidate.
    ScanHeavy {
        /// The heavy vertex.
        z: V,
        /// History suffix.
        hist: HistSlice,
    },
    /// Reply to [`MatchMsg::ScanHeavy`].
    ScanHeavyReply {
        /// Echo.
        z: V,
        /// A free alive neighbor, if any.
        free: Option<V>,
        /// A matched alive neighbor with a light mate: `(w, mate(w))`.
        steal: Option<(V, V)>,
    },
    /// Flip `v` to heavy; keep `tau` alive edges (the mate edge among them)
    /// and return the surplus via [`MatchMsg::MovedOut`].
    MakeHeavy {
        /// The transitioning vertex.
        v: V,
        /// Its mate if any (kept alive).
        mate: Option<V>,
        /// History suffix.
        hist: HistSlice,
    },
    /// Surplus edges evicted by [`MatchMsg::MakeHeavy`].
    MovedOut {
        /// The heavy vertex.
        v: V,
        /// Evicted entries.
        entries: Vec<(V, Ann)>,
    },
    /// Flip `v` back to light (its suspended stack is empty by invariant).
    MakeLight {
        /// The transitioning vertex.
        v: V,
        /// History suffix.
        hist: HistSlice,
    },
    /// Append suspended edges of `v` at its overflow machine.
    AddSuspended {
        /// The heavy vertex.
        v: V,
        /// Entries to store.
        entries: Vec<(V, Ann)>,
        /// History suffix.
        hist: HistSlice,
    },
    /// Pop one suspended edge of `v` (alive-set refill); reply
    /// [`MatchMsg::FetchReply`].
    FetchSuspended {
        /// The heavy vertex.
        v: V,
        /// History suffix.
        hist: HistSlice,
    },
    /// Reply to [`MatchMsg::FetchSuspended`].
    FetchReply {
        /// Echo.
        v: V,
        /// The popped entry (None if the stack is empty).
        entry: Option<(V, Ann)>,
    },
    /// Put one edge into the alive set of heavy `v` (refill).
    AddAlive {
        /// The heavy vertex.
        at: V,
        /// The refilled entry.
        entry: (V, Ann),
        /// History suffix.
        hist: HistSlice,
    },
    /// Release the overflow assignment of `v`.
    ReleaseOverflow {
        /// The vertex whose stack is freed.
        v: V,
    },

    // --- recovery handoff (chaos plane) ---
    /// Injected at the coordinator: start shipping the staged snapshot to
    /// the revived machine `to` in budgeted chunks.
    HandoffBegin {
        /// The revived machine.
        to: MachineId,
        /// Per-chunk word budget.
        budget: usize,
    },
    /// One chunk of a packed snapshot; the receiver installs on `last`.
    SnapChunk {
        /// Packed snapshot words (see `dmpc_mpc::pack_text`).
        words: Vec<u64>,
        /// True on the final chunk.
        last: bool,
    },
    /// Stop-and-wait acknowledgement releasing the next chunk.
    SnapAck,
}

impl Payload for MatchMsg {
    fn size_words(&self) -> usize {
        let hist_words = |h: &HistSlice| 4 * h.len();
        match self {
            MatchMsg::Insert(_) | MatchMsg::Delete(_) => 2,
            MatchMsg::Batch(ups) => 1 + 2 * ups.len(),
            MatchMsg::BatchResume => 1,
            MatchMsg::QIsMatched { .. } => 3,
            MatchMsg::QMatchingSize { .. } => 2,
            MatchMsg::StatQuery(vs) => 1 + vs.len(),
            MatchMsg::StatReply(rs) => 1 + 4 * rs.len(),
            MatchMsg::StatSet(rs) => 1 + 4 * rs.len(),
            MatchMsg::CounterDelta(vs, _) => 2 + vs.len(),
            MatchMsg::CounterQuery(vs) => 1 + vs.len(),
            MatchMsg::CounterReply(rs) => 1 + 2 * rs.len(),
            MatchMsg::Refresh(h) => 1 + hist_words(h),
            MatchMsg::AddEdge { hist, .. } => 6 + hist_words(hist),
            MatchMsg::DelEdge { hist, .. } => 3 + hist_words(hist),
            MatchMsg::DelReply { .. } => 3,
            MatchMsg::ScanFree { exclude, hist, .. } => 2 + exclude.len() + hist_words(hist),
            MatchMsg::ScanFreeReply { .. } => 2,
            MatchMsg::ScanAdj { hist, .. } => 2 + hist_words(hist),
            MatchMsg::ScanAdjReply { entries, .. } => 1 + 4 * entries.len(),
            MatchMsg::ScanHeavy { hist, .. } => 2 + hist_words(hist),
            MatchMsg::ScanHeavyReply { .. } => 4,
            MatchMsg::MakeHeavy { hist, .. } => 3 + hist_words(hist),
            MatchMsg::MovedOut { entries, .. } => 1 + 4 * entries.len(),
            MatchMsg::MakeLight { hist, .. } => 2 + hist_words(hist),
            MatchMsg::AddSuspended { entries, hist, .. } => {
                1 + 4 * entries.len() + hist_words(hist)
            }
            MatchMsg::FetchSuspended { hist, .. } => 2 + hist_words(hist),
            MatchMsg::FetchReply { .. } => 5,
            MatchMsg::AddAlive { hist, .. } => 6 + hist_words(hist),
            MatchMsg::ReleaseOverflow { .. } => 2,
            MatchMsg::HandoffBegin { .. } => 3,
            MatchMsg::SnapChunk { words, .. } => 2 + words.len(),
            MatchMsg::SnapAck => 1,
        }
    }
}

/// Replays one history entry over one adjacency entry, repairing its
/// annotation. This is the whole repair kernel used by storage and
/// overflow machines.
pub fn repair_entry(entry: &HistEntry, nbr: V, ann: &mut Ann) {
    match *entry {
        HistEntry::MatchAdd(e, ul, vl) => {
            if nbr == e.u {
                *ann = Ann {
                    matched: true,
                    mate: e.v,
                    mate_light: vl,
                };
            } else if nbr == e.v {
                *ann = Ann {
                    matched: true,
                    mate: e.u,
                    mate_light: ul,
                };
            }
        }
        HistEntry::MatchDel(e) => {
            if nbr == e.u || nbr == e.v {
                *ann = Ann::free();
            }
        }
        HistEntry::Heavy(c) => {
            if ann.matched && ann.mate == c {
                ann.mate_light = false;
            }
        }
        HistEntry::Light(c) => {
            if ann.matched && ann.mate == c {
                ann.mate_light = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_kernel() {
        let mut ann = Ann::free();
        repair_entry(
            &HistEntry::MatchAdd(Edge::new(3, 5), true, false),
            3,
            &mut ann,
        );
        assert!(ann.matched);
        assert_eq!(ann.mate, 5);
        assert!(!ann.mate_light); // 5 is heavy
        repair_entry(&HistEntry::Light(5), 3, &mut ann);
        assert!(ann.mate_light);
        repair_entry(&HistEntry::MatchDel(Edge::new(3, 5)), 3, &mut ann);
        assert!(!ann.matched);
        // Entries about other vertices leave the annotation alone.
        let before = ann;
        repair_entry(
            &HistEntry::MatchAdd(Edge::new(7, 9), true, true),
            3,
            &mut ann,
        );
        assert_eq!(ann, before);
    }

    #[test]
    fn message_sizes_scale_with_payload() {
        let h: HistSlice = vec![(1, HistEntry::MatchDel(Edge::new(0, 1))); 10];
        assert_eq!(MatchMsg::Refresh(h.clone()).size_words(), 41);
        assert!(MatchMsg::Insert(Edge::new(0, 1)).size_words() <= 2);
    }
}
