//! Section 6: fully-dynamic (2+eps)-approximate (almost-maximal) matching
//! in the style of Charikar–Solomon \[13\], adapted to the DMPC model.
//!
//! ## What is reproduced
//!
//! The data-structure architecture of the paper's Section 6: the level
//! decomposition with parameter `gamma` (levels `-1..=L`), matched edges
//! sampled uniformly from their survivor pool with tracked **support**,
//! per-level queues `Q_l` of temporarily free vertices, and the schedulers
//! that spend a bounded batch of `Delta` operations per *update cycle*:
//! `free-schedule` (rematch queued vertices), `unmatch-schedule`
//! (proactively resample matched edges whose support dropped below
//! `(1-eps) * gamma^l`), and `shuffle-schedule` (occasionally resample a
//! random matched edge). Because work is batched, the matching is *almost*
//! maximal at any instant: unprocessed queue entries are the only possible
//! maximality violations, and the test suite bounds them.
//!
//! ## Documented divergences
//!
//! * The paper executes each batch as a distributed program; here the
//!   structure is sequential and the DMPC cost of each update cycle is
//!   *modelled*: O(1) rounds per update, machines = vertex partitions
//!   touched, communication = operations executed (each operation is an
//!   O(1)-word exchange in the paper's own accounting, Theorem 6.1). The
//!   per-update operation budget is enforced deterministically instead of
//!   with-high-probability.
//! * `gamma` and `Delta` default to practical values instead of the
//!   asymptotic `Theta(log^5 n)` constants; both are tunable.
//! * The conflict-resolution machinery between concurrent subschedulers
//!   (paper Section 6.2) is unnecessary in a sequential batch executor and
//!   is therefore not modelled.

use dmpc_core::{DynamicGraphAlgorithm, QueryableAlgorithm};
use dmpc_graph::matching::Matching;
use dmpc_graph::{Edge, V};
use dmpc_mpc::UpdateMetrics;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

/// Tunable parameters of the level structure.
#[derive(Clone, Copy, Debug)]
pub struct CsParams {
    /// Approximation slack: support floor is `(1-eps) * gamma^l`.
    pub eps: f64,
    /// Level base (paper: polylog; default max(2, log2 n)).
    pub gamma: f64,
    /// Operation batch per scheduler per update cycle.
    pub delta: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CsParams {
    /// Defaults for `n` vertices.
    pub fn defaults(n: usize, eps: f64) -> Self {
        let lg = (n.max(4) as f64).log2();
        CsParams {
            eps,
            gamma: lg.max(2.0),
            delta: (lg * lg) as usize + 8,
            seed: 0xC5,
        }
    }
}

/// The (2+eps)-approximate almost-maximal matching structure.
pub struct CsMatching {
    n: usize,
    params: CsParams,
    levels: usize,
    adj: Vec<BTreeSet<V>>,
    mate: Vec<Option<V>>,
    level: Vec<i32>,
    /// Remaining support of the matched edge at each matched vertex.
    support: Vec<u64>,
    queues: Vec<VecDeque<V>>,
    in_queue: Vec<bool>,
    rng: SmallRng,
    /// Vertex-partition size used to model machine activity.
    part: usize,
    ops: usize,
    parts_touched: BTreeSet<usize>,
}

impl CsMatching {
    /// Creates an empty structure on `n` vertices.
    pub fn new(n: usize, params: CsParams) -> Self {
        let levels = ((n.max(2) as f64).ln() / params.gamma.ln()).ceil() as usize + 2;
        CsMatching {
            n,
            params,
            levels,
            adj: vec![BTreeSet::new(); n],
            mate: vec![None; n],
            level: vec![-1; n],
            support: vec![0; n],
            queues: vec![VecDeque::new(); levels],
            in_queue: vec![false; n],
            rng: SmallRng::seed_from_u64(params.seed),
            part: (n as f64).sqrt().ceil() as usize,
            ops: 0,
            parts_touched: BTreeSet::new(),
        }
    }

    fn op(&mut self, v: V) {
        self.ops += 1;
        self.parts_touched.insert(v as usize / self.part.max(1));
    }

    fn gamma_pow(&self, l: usize) -> f64 {
        self.params.gamma.powi(l as i32)
    }

    /// Extracts the maintained matching.
    pub fn matching(&self) -> Matching {
        let mut edges = Vec::new();
        for v in 0..self.n as V {
            if let Some(m) = self.mate[v as usize] {
                if v < m {
                    edges.push(Edge::new(v, m));
                }
            }
        }
        Matching::from_edges(&edges)
    }

    /// Number of vertices currently parked in the temporarily-free queues
    /// (an upper bound on maximality violations).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn enqueue_free(&mut self, v: V) {
        let l = self.level[v as usize].max(0) as usize;
        if !self.in_queue[v as usize] && self.mate[v as usize].is_none() {
            self.in_queue[v as usize] = true;
            self.queues[l.min(self.levels - 1)].push_back(v);
        }
    }

    fn unmatch(&mut self, a: V, b: V) {
        debug_assert_eq!(self.mate[a as usize], Some(b));
        self.mate[a as usize] = None;
        self.mate[b as usize] = None;
        self.support[a as usize] = 0;
        self.support[b as usize] = 0;
        self.op(a);
        self.op(b);
    }

    /// The paper's `handle-free`: place `v` at the highest level `l` whose
    /// candidate pool (neighbors strictly below `l`) has size >= gamma^l,
    /// sample a uniform mate from the pool, steal it if necessary.
    fn handle_free(&mut self, v: V) {
        if self.mate[v as usize].is_some() {
            return;
        }
        // Find the highest feasible level by scanning the neighborhood once.
        let nbrs: Vec<V> = self.adj[v as usize].iter().copied().collect();
        self.ops += nbrs.len().max(1);
        self.parts_touched.insert(v as usize / self.part.max(1));
        let mut best: Option<(usize, Vec<V>)> = None;
        for l in (0..self.levels).rev() {
            let pool: Vec<V> = nbrs
                .iter()
                .copied()
                .filter(|&w| (self.level[w as usize]) < l as i32)
                .collect();
            if pool.len() as f64 >= self.gamma_pow(l) {
                best = Some((l, pool));
                break;
            }
        }
        let Some((l, pool)) = best else {
            // No feasible level; in particular no free neighbor (a free
            // neighbor sits at level -1 < 0 and gamma^0 = 1).
            self.level[v as usize] = -1;
            return;
        };
        let w = pool[self.rng.gen_range(0..pool.len())];
        self.op(w);
        let stolen_mate = self.mate[w as usize];
        if let Some(wp) = stolen_mate {
            self.unmatch(w, wp);
        }
        self.mate[v as usize] = Some(w);
        self.mate[w as usize] = Some(v);
        let sup = pool.len() as u64;
        self.support[v as usize] = sup;
        self.support[w as usize] = sup;
        self.level[v as usize] = l as i32;
        self.level[w as usize] = l as i32;
        if let Some(wp) = stolen_mate {
            self.enqueue_free(wp);
        }
    }

    /// One update cycle: each scheduler spends up to `Delta` operations.
    fn update_cycle(&mut self) {
        let delta = self.params.delta;
        // free-schedule: drain queues highest level first.
        let start_ops = self.ops;
        'free: for l in (0..self.levels).rev() {
            while let Some(v) = self.queues[l].pop_front() {
                self.in_queue[v as usize] = false;
                self.handle_free(v);
                if self.ops - start_ops > delta {
                    break 'free;
                }
            }
        }
        // unmatch-schedule: resample matched edges whose support fell below
        // the floor (proactive, before the adversary can target them).
        let start_ops = self.ops;
        for v in 0..self.n as V {
            if self.ops - start_ops > delta {
                break;
            }
            if let Some(m) = self.mate[v as usize] {
                if v < m {
                    let l = self.level[v as usize].max(0) as usize;
                    let floor = (1.0 - self.params.eps) * self.gamma_pow(l);
                    if l > 0 && (self.support[v as usize] as f64) < floor {
                        self.unmatch(v, m);
                        self.enqueue_free(v);
                        self.enqueue_free(m);
                    }
                }
            }
        }
        // shuffle-schedule: occasionally resample one random matched edge
        // at a high level (keeps sample spaces fresh).
        if self.rng.gen_bool(0.05) {
            let matched: Vec<V> = (0..self.n as V)
                .filter(|&v| self.mate[v as usize].is_some_and(|m| v < m))
                .collect();
            if !matched.is_empty() {
                let v = matched[self.rng.gen_range(0..matched.len())];
                if self.level[v as usize] >= 1 {
                    let m = self.mate[v as usize].unwrap();
                    self.unmatch(v, m);
                    self.enqueue_free(v);
                    self.enqueue_free(m);
                }
            }
        }
    }

    fn metrics(&mut self) -> UpdateMetrics {
        let ops = std::mem::take(&mut self.ops);
        let parts = std::mem::take(&mut self.parts_touched);
        // Modelled DMPC cost of one update cycle (see module docs): O(1)
        // rounds; every operation is an O(1)-word exchange; active machines
        // are the vertex partitions touched plus the coordinator.
        UpdateMetrics {
            rounds: 4,
            max_active_machines: parts.len() + 1,
            max_words_per_round: ops.max(1),
            total_words: ops.max(1) * 2,
            total_messages: ops.max(1),
            ..Default::default()
        }
    }

    /// Audit: the matching is valid, and every maximality violation is
    /// accounted for by a queued temporarily-free vertex.
    pub fn audit(&self) -> Result<(), String> {
        for v in 0..self.n as V {
            if let Some(m) = self.mate[v as usize] {
                if self.mate[m as usize] != Some(v) {
                    return Err(format!("mate asymmetry at {v}"));
                }
                if !self.adj[v as usize].contains(&m) {
                    return Err(format!("matched edge ({v},{m}) not in graph"));
                }
            }
        }
        for v in 0..self.n as V {
            if self.mate[v as usize].is_none() && !self.in_queue[v as usize] {
                for &w in &self.adj[v as usize] {
                    if self.mate[w as usize].is_none() && !self.in_queue[w as usize] {
                        return Err(format!(
                            "unqueued free-free edge ({v},{w}): almost-maximality broken"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl QueryableAlgorithm for CsMatching {}

impl DynamicGraphAlgorithm for CsMatching {
    fn name(&self) -> &'static str {
        "dmpc-(2+eps)-matching"
    }

    fn insert(&mut self, e: Edge) -> UpdateMetrics {
        self.adj[e.u as usize].insert(e.v);
        self.adj[e.v as usize].insert(e.u);
        self.op(e.u);
        self.op(e.v);
        if self.mate[e.u as usize].is_none() && self.mate[e.v as usize].is_none() {
            // Both free: match at level 0 immediately (paper's insert).
            self.mate[e.u as usize] = Some(e.v);
            self.mate[e.v as usize] = Some(e.u);
            self.level[e.u as usize] = 0;
            self.level[e.v as usize] = 0;
            self.support[e.u as usize] = 1;
            self.support[e.v as usize] = 1;
        } else {
            // A free endpoint gains a potential mate: queue it for the
            // free-schedule rather than scanning now.
            for v in [e.u, e.v] {
                if self.mate[v as usize].is_none() {
                    self.enqueue_free(v);
                }
            }
        }
        self.update_cycle();
        self.metrics()
    }

    fn delete(&mut self, e: Edge) -> UpdateMetrics {
        self.adj[e.u as usize].remove(&e.v);
        self.adj[e.v as usize].remove(&e.u);
        self.op(e.u);
        self.op(e.v);
        // Support of adjacent matched edges shrinks by the deletion.
        for v in [e.u, e.v] {
            if self.mate[v as usize].is_some() {
                self.support[v as usize] = self.support[v as usize].saturating_sub(1);
                if let Some(m) = self.mate[v as usize] {
                    self.support[m as usize] = self.support[m as usize].saturating_sub(1);
                }
            }
        }
        if self.mate[e.u as usize] == Some(e.v) {
            self.unmatch(e.u, e.v);
            self.enqueue_free(e.u);
            self.enqueue_free(e.v);
        }
        self.update_cycle();
        self.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::maxmatch::maximum_matching_size;
    use dmpc_graph::streams::{self, Update};
    use dmpc_graph::DynamicGraph;

    fn run(n: usize, steps: usize, seed: u64) -> (CsMatching, DynamicGraph) {
        let params = CsParams::defaults(n, 0.3);
        let mut alg = CsMatching::new(n, params);
        let mut g = DynamicGraph::new(n);
        let ups = streams::churn_stream(n, 2 * n, steps, 0.5, seed);
        for &u in &ups {
            match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                    alg.insert(e);
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                    alg.delete(e);
                }
            }
            alg.audit().unwrap();
        }
        (alg, g)
    }

    #[test]
    fn almost_maximal_under_churn() {
        for seed in 0..3 {
            let (alg, g) = run(48, 300, seed);
            let m = alg.matching();
            assert!(dmpc_graph::matching::is_valid_matching(&g, &m));
            // Violations are bounded by the queue backlog.
            let violations = dmpc_graph::matching::maximality_violations(&g, &m);
            assert!(
                violations <= alg.queued() * 48,
                "violations {violations} queued {}",
                alg.queued()
            );
        }
    }

    #[test]
    fn approximation_after_drain() {
        let (mut alg, g) = run(40, 240, 7);
        // Drain the queues with idle cycles (no graph change).
        for _ in 0..200 {
            alg.update_cycle();
        }
        alg.audit().unwrap();
        let m = alg.matching();
        let max = maximum_matching_size(&g);
        // Almost-maximal => at least ~half of maximum.
        assert!(
            (2.0 + 0.6) * m.size() as f64 >= max as f64,
            "|M|={} max={max}",
            m.size()
        );
    }

    #[test]
    fn per_update_work_stays_polylog() {
        let n = 64;
        let params = CsParams::defaults(n, 0.3);
        let mut alg = CsMatching::new(n, params);
        let ups = streams::churn_stream(n, 2 * n, 300, 0.5, 3);
        let budget = 40 * params.delta;
        for &u in &ups {
            let m = match u {
                Update::Insert(e) => alg.insert(e),
                Update::Delete(e) => alg.delete(e),
            };
            assert_eq!(m.rounds, 4);
            assert!(
                m.max_words_per_round <= budget,
                "{} > {budget}",
                m.max_words_per_round
            );
        }
    }

    #[test]
    fn support_floor_triggers_resampling() {
        let n = 24;
        let mut alg = CsMatching::new(n, CsParams::defaults(n, 0.3));
        // Build a dense neighborhood so a matched edge lands at level >= 1.
        let mut g = DynamicGraph::new(n);
        for e in dmpc_graph::generators::gnm(n, 120, 5) {
            g.insert(e).unwrap();
            alg.insert(e);
        }
        for _ in 0..100 {
            alg.update_cycle();
        }
        alg.audit().unwrap();
        let m = alg.matching();
        assert!(dmpc_graph::matching::is_valid_matching(&g, &m));
        assert!(m.size() > 0);
    }
}
