//! Static MPC baseline: randomized maximal matching in O(log n) rounds
//! (Israeli–Itai-style proposal/acceptance with coin flips, the algorithm
//! the paper's preprocessing cites for initialization \[23\]).
//!
//! Rerunning this after every update is the static alternative the dynamic
//! Section 3 algorithm is measured against: rounds grow logarithmically and
//! communication is Omega(m) per round, versus O(1) rounds and O(sqrt N)
//! words for the dynamic algorithm.

use dmpc_graph::matching::Matching;
use dmpc_graph::{Edge, V};
use dmpc_mpc::{
    Cluster, ClusterConfig, Envelope, Machine, MachineId, Outbox, Payload, RoundCtx, UpdateMetrics,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Messages of the proposal rounds.
#[derive(Clone, Debug)]
pub enum MmMsg {
    /// Starts / keeps alive the round loop on a machine.
    Tick,
    /// `from` proposes to `to`.
    Propose {
        /// Proposing vertex.
        from: V,
        /// Proposed-to vertex.
        to: V,
    },
    /// `a` accepted `b`: both are now matched.
    Matched {
        /// Acceptor.
        a: V,
        /// Proposer.
        b: V,
    },
    /// Tell the owner of `v` that neighbor `w` is now matched.
    NbrMatched {
        /// Owned vertex to inform.
        v: V,
        /// The newly matched neighbor.
        w: V,
    },
}

impl Payload for MmMsg {
    fn size_words(&self) -> usize {
        match self {
            MmMsg::Tick => 1,
            _ => 2,
        }
    }
}

struct MmVertex {
    free: bool,
    mate: V,
    pending: bool,        // proposed this cycle, awaiting an accept
    nbrs: Vec<(V, bool)>, // (neighbor, believed-free)
}

struct MmMachine {
    block: usize,
    rng: SmallRng,
    verts: BTreeMap<V, MmVertex>,
}

impl MmMachine {
    fn owner(&self, v: V) -> MachineId {
        (v as usize / self.block) as MachineId
    }
}

impl Machine for MmMachine {
    type Msg = MmMsg;

    /// Three-round cycles keyed off the global round number:
    /// phase 0 — free vertices flip a coin and propose (marking `pending`,
    /// which also blocks them from accepting); phase 1 — non-pending free
    /// vertices accept the minimum proposer and commit (a proposer is
    /// guaranteed still free when its accept arrives, because pending
    /// vertices never accept); phase 2 — proposers receive the accept and
    /// commit, stale `pending` flags clear at the next phase 0.
    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<MmMsg>>,
        out: &mut Outbox<MmMsg>,
    ) {
        let mut proposals: BTreeMap<V, Vec<V>> = BTreeMap::new();
        let mut tick = false;
        for env in inbox.drain(..) {
            match env.msg {
                MmMsg::Tick => tick = true,
                MmMsg::Propose { from, to } => proposals.entry(to).or_default().push(from),
                MmMsg::Matched { a, b } => {
                    // The proposer's pending proposal was accepted.
                    let mv = self.verts.get_mut(&b).expect("proposer not owned");
                    debug_assert!(mv.free && mv.pending, "accept for a non-pending vertex");
                    mv.free = false;
                    mv.pending = false;
                    mv.mate = a;
                    let nbrs: Vec<V> = mv.nbrs.iter().map(|&(w, _)| w).collect();
                    for w in nbrs {
                        out.send(self.owner(w), MmMsg::NbrMatched { v: w, w: b });
                    }
                }
                MmMsg::NbrMatched { v, w } => {
                    if let Some(mv) = self.verts.get_mut(&v) {
                        for (x, f) in mv.nbrs.iter_mut() {
                            if *x == w {
                                *f = false;
                            }
                        }
                    }
                }
            }
        }
        // Acceptances: a free, non-pending proposed-to vertex accepts the
        // minimum proposer and commits immediately (the proposer cannot have
        // matched elsewhere this cycle).
        for (to, mut props) in proposals {
            props.sort_unstable();
            let Some(mv) = self.verts.get_mut(&to) else {
                continue;
            };
            if !mv.free || mv.pending {
                continue;
            }
            if let Some(&b) = props.first() {
                mv.free = false;
                mv.mate = b;
                let nbrs: Vec<V> = mv.nbrs.iter().map(|&(w, _)| w).collect();
                out.send(self.owner(b), MmMsg::Matched { a: to, b });
                for w in nbrs {
                    out.send(self.owner(w), MmMsg::NbrMatched { v: w, w: to });
                }
            }
        }
        if tick {
            let phase = ctx.round % 3;
            let mut any_active = false;
            let vs: Vec<V> = self.verts.keys().copied().collect();
            for v in vs {
                if phase == 1 {
                    // New cycle boundary: unaccepted proposals expire.
                    self.verts.get_mut(&v).unwrap().pending = false;
                }
                let (free, pending, candidates): (bool, bool, Vec<V>) = {
                    let mv = &self.verts[&v];
                    (
                        mv.free,
                        mv.pending,
                        mv.nbrs
                            .iter()
                            .filter(|&&(_, f)| f)
                            .map(|&(w, _)| w)
                            .collect(),
                    )
                };
                if !free || candidates.is_empty() {
                    continue;
                }
                any_active = true;
                if phase == 1 && !pending && self.rng.gen_bool(0.5) {
                    let t = candidates[self.rng.gen_range(0..candidates.len())];
                    self.verts.get_mut(&v).unwrap().pending = true;
                    out.send(self.owner(t), MmMsg::Propose { from: v, to: t });
                }
            }
            if any_active {
                out.send(ctx.self_id, MmMsg::Tick);
            }
        }
    }

    fn memory_words(&self) -> usize {
        self.verts.values().map(|m| 4 + 2 * m.nbrs.len()).sum()
    }
}

/// The static maximal-matching recomputation baseline.
pub struct StaticMaximalMatching {
    n: usize,
    machines: usize,
    block: usize,
    seed: u64,
}

impl StaticMaximalMatching {
    /// Baseline over `n` vertices on `machines` owner machines.
    pub fn new(n: usize, machines: usize, seed: u64) -> Self {
        let machines = machines.max(1);
        let block = n.div_ceil(machines).max(1);
        StaticMaximalMatching {
            n,
            machines: n.div_ceil(block),
            block,
            seed,
        }
    }

    /// Recomputes a maximal matching from scratch; returns it with the full
    /// run's metrics. The believed-free flags make acceptance conservative,
    /// so the result is always a valid matching; maximality follows because
    /// active free vertices keep proposing while any free-free edge remains.
    pub fn recompute(&self, edges: &[Edge]) -> (Matching, UpdateMetrics) {
        let mut progs: Vec<MmMachine> = (0..self.machines)
            .map(|i| {
                let lo = (i * self.block) as V;
                let hi = (((i + 1) * self.block).min(self.n)) as V;
                MmMachine {
                    block: self.block,
                    rng: SmallRng::seed_from_u64(self.seed ^ ((i as u64) << 32)),
                    verts: (lo..hi)
                        .map(|v| {
                            (
                                v,
                                MmVertex {
                                    free: true,
                                    mate: V::MAX,
                                    pending: false,
                                    nbrs: Vec::new(),
                                },
                            )
                        })
                        .collect(),
                }
            })
            .collect();
        for e in edges {
            progs[e.u as usize / self.block]
                .verts
                .get_mut(&e.u)
                .unwrap()
                .nbrs
                .push((e.v, true));
            progs[e.v as usize / self.block]
                .verts
                .get_mut(&e.v)
                .unwrap()
                .nbrs
                .push((e.u, true));
        }
        let mut cluster = Cluster::new(progs, ClusterConfig::default());
        for m in 0..self.machines as MachineId {
            cluster.inject(m, MmMsg::Tick);
        }
        let metrics = cluster.run_update();
        let mut edges_out = Vec::new();
        for m in 0..self.machines as MachineId {
            for (&v, mv) in &cluster.machine(m).verts {
                if !mv.free && v < mv.mate {
                    edges_out.push(Edge::new(v, mv.mate));
                }
            }
        }
        (Matching::from_edges(&edges_out), metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpc_graph::matching::{is_maximal_matching, is_valid_matching};
    use dmpc_graph::{generators, DynamicGraph};

    #[test]
    fn produces_maximal_matching() {
        for seed in 0..5 {
            let es = generators::gnm(60, 150, seed);
            let g = DynamicGraph::from_edges(60, &es);
            let (m, metrics) = StaticMaximalMatching::new(60, 8, seed).recompute(&es);
            assert!(is_valid_matching(&g, &m), "seed {seed}");
            assert!(is_maximal_matching(&g, &m), "seed {seed}");
            assert!(metrics.rounds >= 2);
        }
    }

    #[test]
    fn communication_scales_with_edges() {
        let sparse = generators::gnm(100, 120, 3);
        let dense = generators::gnm(100, 1200, 3);
        let alg = StaticMaximalMatching::new(100, 10, 1);
        let (_, ms) = alg.recompute(&sparse);
        let (_, md) = alg.recompute(&dense);
        assert!(md.total_words > ms.total_words);
    }

    #[test]
    fn empty_graph_is_fine() {
        let (m, _) = StaticMaximalMatching::new(10, 2, 1).recompute(&[]);
        assert_eq!(m.size(), 0);
    }
}
