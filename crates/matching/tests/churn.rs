//! Machine churn for the Section 3 maximal matching: fail-stop kills with
//! full-log-replay revives, the protected coordinator, and chaos runs that
//! must land bit-identical to failure-free runs and match ground truth.

use dmpc_core::{
    apply_unweighted, run_chaos_stream, run_plain_stream, DmpcParams, DynamicGraphAlgorithm,
    ElasticAlgorithm,
};
use dmpc_graph::streams;
use dmpc_graph::{DynamicGraph, Update};
use dmpc_matching::DmpcMaximalMatching;
use dmpc_mpc::{ChaosCaps, ChaosKind, ChaosPlan};
use proptest::prelude::*;

/// The coordinator is the paper's one reliable machine: never killable.
/// Every other machine (stats, storage, overflow) is fair game.
#[test]
fn coordinator_is_protected() {
    let params = DmpcParams::new(32, 128);
    let alg = DmpcMaximalMatching::new(params);
    assert!(!alg.killable(0), "coordinator must be protected");
    for m in 1..alg.n_shards() as u32 {
        assert!(alg.killable(m), "machine {m} should be killable");
    }
}

/// Kill one machine of each role, revive it from a full-log replica, and
/// compare against an untouched twin: digests equal, audits hold.
#[test]
fn kill_revive_each_role_bit_identical() {
    let n = 32;
    let params = DmpcParams::new(n, 160);
    let ups = streams::churn_stream(n, 60, 120, 0.5, 5);
    let (pre, post) = ups.split_at(ups.len() / 2);

    let make = || DmpcMaximalMatching::new(params);
    let layout_last = make().n_shards() as u32 - 1;
    // One stats machine, one from the far end (overflow/storage side).
    for victim in [1u32, layout_last] {
        let mut alg = make();
        let mut twin = make();
        let mut g = DynamicGraph::new(n);
        for &u in pre {
            match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                    alg.insert(e);
                    twin.insert(e);
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                    alg.delete(e);
                    twin.delete(e);
                }
            }
        }
        alg.kill(victim);
        assert!(!alg.is_alive(victim));

        // Full-log replay on an off-cluster replica (no checkpoint support).
        let mut replica = make();
        for &u in pre {
            match u {
                Update::Insert(e) => {
                    replica.insert(e);
                }
                Update::Delete(e) => {
                    replica.delete(e);
                }
            }
        }
        let um = alg.revive(victim, &replica.snapshot_machine(victim));
        assert!(um.clean(), "revive violations: {:?}", um.violations);
        assert!(um.total_words > 0, "handoff must be metered");
        assert!(alg.is_alive(victim));

        assert_eq!(
            alg.state_digest(),
            twin.state_digest(),
            "victim {victim} not restored bit-identically"
        );
        alg.audit(&g).unwrap();

        // The revived cluster keeps maintaining a maximal matching.
        for &u in post {
            match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                    alg.insert(e);
                    twin.insert(e);
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                    alg.delete(e);
                    twin.delete(e);
                }
            }
        }
        assert_eq!(alg.state_digest(), twin.state_digest());
        alg.audit(&g).unwrap();
    }
}

/// Chaos run through the shared harness: the generated plan (kills/revives
/// only — matching has no shard migration; the coordinator is protected)
/// lands bit-identical to the failure-free run, and the matching audits
/// against ground truth.
#[test]
fn chaos_stream_recovers_bit_identical() {
    let n = 32;
    let params = DmpcParams::new(n, 160);
    let batches = streams::chaos_churn_batches(n, 4, 5, 120, 10, 11);
    let make = || DmpcMaximalMatching::new(params);
    let p = make().n_shards();
    let caps = ChaosCaps {
        kill_revive: true,
        split_merge: false,
        protect: 1, // machine 0 is the coordinator
    };
    let plan = ChaosPlan::generate(11, batches.len(), p, 8, caps);
    assert!(plan
        .events
        .iter()
        .all(|e| !matches!(e.kind, ChaosKind::Kill(0))));

    let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 0);
    let plain = run_plain_stream(make, apply_unweighted, &batches);
    assert_eq!(chaos.final_digest, plain.final_digest);
    assert_eq!(chaos.recovery.violations, 0);
    assert_eq!(chaos.workload.violations, 0);
    assert!(chaos.applied.iter().any(|e| e.kind.starts_with("kill")));
    // Batches arriving during an outage are deferred, so a replay suffix
    // can legitimately be empty; but kills and revives must pair up.
    let kills = chaos
        .applied
        .iter()
        .filter(|e| e.kind.starts_with("kill"))
        .count();
    let revives = chaos
        .applied
        .iter()
        .filter(|e| e.kind.starts_with("revive"))
        .count();
    assert_eq!(kills, revives);

    // Ground truth audit on a fresh failure-free instance.
    let mut alg = make();
    let flat: Vec<Update> = batches.iter().flatten().copied().collect();
    let g = streams::replay(n, &flat);
    for b in &batches {
        alg.apply_batch(b);
    }
    alg.audit(&g).unwrap();
    assert_eq!(alg.state_digest(), chaos.final_digest);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary seeds: chaos == plain, violation-free, audits hold.
    #[test]
    fn prop_chaos_matching_bit_identical(seed in 0u64..500, events in 2usize..8) {
        let n = 24;
        let params = DmpcParams::new(n, 120);
        let batches = streams::chaos_churn_batches(n, 3, 4, 60, 8, seed);
        let make = || DmpcMaximalMatching::new(params);
        let p = make().n_shards();
        let caps = ChaosCaps { kill_revive: true, split_merge: false, protect: 1 };
        let plan = ChaosPlan::generate(seed, batches.len(), p, events, caps);
        let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 0);
        let plain = run_plain_stream(make, apply_unweighted, &batches);
        prop_assert_eq!(chaos.final_digest, plain.final_digest);
        prop_assert_eq!(chaos.recovery.violations, 0);
        prop_assert_eq!(chaos.workload.violations, 0);

        let mut alg = make();
        let flat: Vec<Update> = batches.iter().flatten().copied().collect();
        let g = streams::replay(n, &flat);
        for b in &batches { alg.apply_batch(b); }
        alg.audit(&g).map_err(TestCaseError::fail)?;
    }
}
