//! Mid-flight kills for the matching cluster: the coordinator is protected,
//! but any stats/storage/overflow machine may die inside a round. The
//! epoch-fenced harness aborts the batch, rolls every survivor (including
//! the coordinator, whose v2 snapshot is lossless) back to the pre-batch
//! frontier, rebuilds the victim by full-log replay, and re-executes —
//! bit-identical to the failure-free run.

use dmpc_core::{
    apply_unweighted, run_chaos_stream, run_chaos_stream_with, run_plain_stream, ChaosOptions,
    DmpcParams, DynamicGraphAlgorithm, ElasticAlgorithm, QueryableAlgorithm,
};
use dmpc_graph::{streams, DynamicGraph, Query, QueryAnswer, Update};
use dmpc_matching::DmpcMaximalMatching;
use dmpc_mpc::{ChaosKind, ChaosPlan};

/// Round sweep over two victims (a stats machine and the far-end machine):
/// every offset recovers bit-identically and audits against ground truth.
#[test]
fn mid_round_kill_recovers_bit_identical() {
    let n = 32;
    let params = DmpcParams::new(n, 160);
    let batches = streams::chaos_churn_batches(n, 4, 4, 80, 8, 13);
    let make = || DmpcMaximalMatching::new(params);
    let plain = run_plain_stream(make, apply_unweighted, &batches);
    let last = make().n_shards() as u32 - 1;
    let mut fired = 0usize;
    for r in 1..=6u32 {
        for victim in [1u32, last] {
            let plan = ChaosPlan::new(5).with_event_in_round(1, r, ChaosKind::Kill(victim));
            let chaos = run_chaos_stream(make, apply_unweighted, &batches, &plan, 0);
            assert_eq!(
                chaos.final_digest, plain.final_digest,
                "kill {victim} at round {r} diverged"
            );
            assert_eq!(chaos.workload.violations, 0);
            assert_eq!(chaos.workload.lost_words, 0);
            assert_eq!(chaos.mid_flight.len(), chaos.retries);
            for rec in &chaos.mid_flight {
                assert_eq!(rec.victims, vec![victim]);
                assert_eq!(rec.attempt, 1, "one clean retry must suffice");
            }
            fired += chaos.retries;
        }
    }
    assert!(
        fired >= 2,
        "the sweep should abort live rounds (fired={fired})"
    );

    // Ground truth: a directly-driven instance matches the failure-free
    // digest and audits against the replayed graph.
    let mut alg = make();
    let mut g = DynamicGraph::new(n);
    for b in &batches {
        for &u in b {
            match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                }
            }
        }
        alg.apply_batch(b);
    }
    assert_eq!(alg.state_digest(), plain.final_digest);
    alg.audit(&g).unwrap();
}

/// The coordinator's v2 snapshot is lossless: snapshot → restore on a twin
/// reproduces the digest, and the restored instance keeps answering and
/// updating identically.
#[test]
fn coordinator_snapshot_roundtrips() {
    let n = 32;
    let params = DmpcParams::new(n, 160);
    let ups = streams::churn_stream(n, 90, 180, 0.5, 5);
    let (pre, post) = ups.split_at(2 * ups.len() / 3);
    let mut alg = DmpcMaximalMatching::new(params);
    let mut twin = DmpcMaximalMatching::new(params);
    for &u in pre {
        match u {
            Update::Insert(e) => {
                alg.insert(e);
                twin.insert(e);
            }
            Update::Delete(e) => {
                alg.delete(e);
                twin.delete(e);
            }
        }
    }
    // Roll every machine of the twin back onto itself from its own
    // snapshot: a lossy codec would diverge here.
    for m in 0..twin.n_shards() as u32 {
        let snap = twin.snapshot_machine(m);
        twin.restore_machine(m, &snap);
    }
    assert_eq!(alg.state_digest(), twin.state_digest());
    // Both keep evolving identically after the round-trip.
    for &u in post {
        match u {
            Update::Insert(e) => {
                alg.insert(e);
                twin.insert(e);
            }
            Update::Delete(e) => {
                alg.delete(e);
                twin.delete(e);
            }
        }
    }
    assert_eq!(alg.state_digest(), twin.state_digest());
}

/// Degraded reads during a mid-flight rebuild: `IsMatched` for a vertex
/// whose stats owner died comes back `Degraded`; `MatchingSize` stays exact
/// (the coordinator is the reliable machine and answers from its local
/// counter).
#[test]
fn matching_size_stays_exact_while_stats_owner_is_down() {
    let n = 32;
    let params = DmpcParams::new(n, 160);
    let batches = streams::chaos_churn_batches(n, 4, 4, 80, 8, 29);
    let make = || DmpcMaximalMatching::new(params);
    // Machine 1 is the first stats machine: it owns vertex 0's record.
    let plan = ChaosPlan::new(7).with_event_in_round(1, 1, ChaosKind::Kill(1));
    let reads = [Query::IsMatched(0), Query::MatchingSize];
    let opts = ChaosOptions {
        checkpoint_every: 0,
        outage_reads: &reads,
        ..Default::default()
    };
    let chaos = run_chaos_stream_with(
        make,
        apply_unweighted,
        |a: &mut DmpcMaximalMatching, qs: &[Query]| a.answer_queries(qs),
        &batches,
        &plan,
        opts,
    );
    let plain = run_plain_stream(make, apply_unweighted, &batches);
    assert_eq!(chaos.final_digest, plain.final_digest);
    assert_eq!(chaos.retries, 1, "the round-1 kill must fire exactly once");
    assert_eq!(chaos.reads_answered, reads.len());
    assert_eq!(
        chaos.degraded_answers, 1,
        "IsMatched degrades; MatchingSize stays exact at the coordinator"
    );
}

/// Direct unit check of the degraded wave shape.
#[test]
fn degraded_wave_answers_locally() {
    let n = 32;
    let params = DmpcParams::new(n, 160);
    let mut alg = DmpcMaximalMatching::new(params);
    let ups = streams::churn_stream(n, 40, 80, 0.5, 3);
    for &u in &ups {
        match u {
            Update::Insert(e) => {
                alg.insert(e);
            }
            Update::Delete(e) => {
                alg.delete(e);
            }
        }
    }
    let size_before = match alg.answer_queries(&[Query::MatchingSize]).0[0] {
        QueryAnswer::Count(c) => c,
        other => panic!("unexpected {other:?}"),
    };
    alg.kill(1);
    let (answers, _) = alg.answer_queries(&[Query::IsMatched(0), Query::MatchingSize]);
    assert_eq!(answers[0], QueryAnswer::Degraded);
    assert_eq!(answers[1], QueryAnswer::Count(size_before));
}
