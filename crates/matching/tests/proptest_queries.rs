//! Property tests for the matching query plane (PR 5): batched
//! `answer_queries` is bit-identical to looped single queries and to the
//! maintained matching (itself audited against the `DynamicGraph` ground
//! truth), with query waves interleaved between update batches — and the
//! waves never touch the update path's state.

use dmpc_core::{DmpcParams, DynamicGraphAlgorithm, QueryableAlgorithm};
use dmpc_graph::{DynamicGraph, Edge, Query, QueryAnswer, Update, V};
use dmpc_matching::{DmpcMaximalMatching, DmpcThreeHalves};
use proptest::prelude::*;

fn valid_stream(n: usize, ops: Vec<(u32, u32, bool)>) -> Vec<Update> {
    let mut g = DynamicGraph::new(n);
    let mut stream = Vec::new();
    for (a, b, ins) in ops {
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if ins && !g.has_edge(e) {
            g.insert(e).unwrap();
            stream.push(Update::Insert(e));
        } else if !ins && g.has_edge(e) {
            g.delete(e).unwrap();
            stream.push(Update::Delete(e));
        }
    }
    stream
}

fn pool_from(n: u32, seeds: &[(u32, u8)]) -> Vec<Query> {
    seeds
        .iter()
        .map(|&(v, kind)| match kind % 4 {
            0 => Query::MatchingSize,
            _ => Query::IsMatched(v % n),
        })
        .collect()
}

fn check_against_matching(
    m: &dmpc_graph::matching::Matching,
    pool: &[Query],
    answers: &[QueryAnswer],
) -> Result<(), TestCaseError> {
    for (&q, &a) in pool.iter().zip(answers) {
        match (q, a) {
            (Query::IsMatched(v), QueryAnswer::Bool(b)) => {
                prop_assert_eq!(b, m.is_matched(v), "IsMatched({})", v);
            }
            (Query::MatchingSize, QueryAnswer::Count(c)) => {
                prop_assert_eq!(c, m.size(), "MatchingSize");
            }
            other => prop_assert!(false, "unexpected answer shape {:?}", other),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Section 3 matching: update batches interleaved with query waves;
    /// batched == looped == the extracted matching, the extracted matching
    /// is audited against the ground-truth graph, and the waves leave the
    /// update path untouched.
    #[test]
    fn matching_queries_interleave_with_batches(
        ops in proptest::collection::vec((0u32..20, 0u32..20, any::<bool>()), 1..100),
        qseeds in proptest::collection::vec((0u32..20, 0u8..4), 4..40),
        k in 1usize..16
    ) {
        let n = 20usize;
        let params = DmpcParams::new(n, 120);
        let mut alg = DmpcMaximalMatching::new(params);
        let mut g = DynamicGraph::new(n);
        let stream = valid_stream(n, ops);
        let pool = pool_from(n as u32, &qseeds);
        for batch in stream.chunks(k) {
            for &u in batch {
                match u {
                    Update::Insert(e) => g.insert(e).unwrap(),
                    Update::Delete(e) => g.delete(e).unwrap(),
                }
            }
            let bm = alg.apply_batch(batch);
            prop_assert!(bm.clean(), "batch violations: {}", bm.violations);

            let (batched, qm) = alg.answer_queries(&pool);
            prop_assert!(qm.clean(), "query violations: {}", qm.violations);
            prop_assert_eq!(qm.queries, pool.len());
            // Matching waves resolve in one round each and send no
            // machine-to-machine words (stats-local answers).
            prop_assert_eq!(qm.total_words, 0);
            let (looped, looped_qm) = dmpc_core::answer_queries_looped(&mut alg, &pool);
            prop_assert_eq!(&batched, &looped, "batched != looped");
            prop_assert!(qm.rounds <= looped_qm.rounds);
            let m = alg.matching();
            check_against_matching(&m, &pool, &batched)?;
            // The maintained matching itself is ground-truth-audited, so
            // the answers chain back to the DynamicGraph reference.
            alg.audit(&g).map_err(TestCaseError::fail)?;
        }
    }

    /// 3/2 mode delegates to the same query plane; single updates
    /// interleaved with waves, answers always match the extraction and the
    /// audit (incl. the no-short-augmenting-path certificate) still holds.
    #[test]
    fn threehalves_queries_interleave_with_updates(
        ops in proptest::collection::vec((0u32..16, 0u32..16, any::<bool>()), 1..70),
        qseeds in proptest::collection::vec((0u32..16, 0u8..4), 4..24),
        stride in 1usize..10
    ) {
        let n = 16usize;
        let params = DmpcParams::new(n, 100);
        let mut alg = DmpcThreeHalves::new(params);
        let mut g = DynamicGraph::new(n);
        let stream = valid_stream(n, ops);
        let pool = pool_from(n as u32, &qseeds);
        for (i, &u) in stream.iter().enumerate() {
            match u {
                Update::Insert(e) => g.insert(e).unwrap(),
                Update::Delete(e) => g.delete(e).unwrap(),
            }
            let m = alg.apply(u);
            prop_assert!(m.clean(), "violations: {:?}", m.violations);
            if i % stride != 0 {
                continue;
            }
            let (batched, qm) = alg.answer_queries(&pool);
            prop_assert!(qm.clean(), "query violations: {}", qm.violations);
            let (looped, _) = dmpc_core::answer_queries_looped(&mut alg, &pool);
            prop_assert_eq!(&batched, &looped, "batched != looped");
            check_against_matching(&alg.matching(), &pool, &batched)?;
            alg.audit(&g).map_err(TestCaseError::fail)?;
        }
    }
}

/// Bulk preprocessing presets the coordinator's matched-pair counter, so
/// `MatchingSize` is exact immediately after `bulk_load` (regression: the
/// counter starts at the preprocessed matching's size, not zero).
#[test]
fn matching_size_exact_after_bulk_load() {
    let n = 32usize;
    let params = DmpcParams::new(n, 3 * n);
    let mut alg = DmpcMaximalMatching::new(params);
    let edges: Vec<Edge> = (0..n as V - 1).map(|v| Edge::new(v, v + 1)).collect();
    alg.bulk_load(&edges);
    let size = alg.matching().size();
    assert!(size > 0);
    let (answers, qm) = alg.answer_queries(&[Query::MatchingSize, Query::IsMatched(0)]);
    assert!(qm.clean());
    assert_eq!(answers[0], QueryAnswer::Count(size));
    assert_eq!(answers[1], QueryAnswer::Bool(alg.matching().is_matched(0)));
}
