//! Layout differential for the Section 3 matching storage machines: the
//! compact SoA entry-arena layout against the legacy map layout.
//!
//! Entry order is semantic in the alive sets (mate-first, split-at-tau,
//! first-hit scans), so the SoA layout preserves positional order exactly;
//! both layouts exchange identical messages and their per-update metrics,
//! query answers, and state digests must be equal — including across a
//! kill + full-log-replay revive.

use dmpc_core::{
    apply_unweighted, run_chaos_stream, DmpcParams, DynamicGraphAlgorithm, ElasticAlgorithm,
};
use dmpc_graph::streams::{self, Update};
use dmpc_graph::Query;
use dmpc_matching::DmpcMaximalMatching;
use dmpc_mpc::{ChaosCaps, ChaosPlan, ExecOptions, Layout};
use proptest::prelude::*;

fn pair(n: usize, m_max: usize) -> (DmpcMaximalMatching, DmpcMaximalMatching) {
    let params = DmpcParams::new(n, m_max);
    (
        DmpcMaximalMatching::with_state_layout(params, ExecOptions::default(), Layout::Map),
        DmpcMaximalMatching::with_state_layout(params, ExecOptions::default(), Layout::Soa),
    )
}

fn apply(alg: &mut DmpcMaximalMatching, u: Update) -> dmpc_mpc::UpdateMetrics {
    match u {
        Update::Insert(e) => alg.insert(e),
        Update::Delete(e) => alg.delete(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On mixed churn streams, map and SoA storage layouts yield equal
    /// per-update metrics, matchings, query answers, and state digests.
    #[test]
    fn soa_equals_map_on_churn_streams(seed in 0u64..1u64 << 48) {
        let n = 40;
        let (mut map, mut soa) = pair(n, 160);
        let mut g = dmpc_graph::DynamicGraph::new(n);
        for (step, &u) in streams::churn_stream(n, 60, 140, 0.55, seed).iter().enumerate() {
            match u {
                Update::Insert(e) => g.insert(e).unwrap(),
                Update::Delete(e) => g.delete(e).unwrap(),
            };
            let mm = apply(&mut map, u);
            let ms = apply(&mut soa, u);
            prop_assert!(ms.clean(), "SoA violations at step {step}: {:?}", ms.violations);
            prop_assert_eq!(&mm, &ms, "metrics diverged at step {step} ({u:?})");
            if step % 16 == 0 {
                prop_assert_eq!(map.state_digest(), soa.state_digest());
            }
        }
        // Query plane agrees too.
        let queries: Vec<Query> = (0..n as u32).map(Query::IsMatched)
            .chain(std::iter::once(Query::MatchingSize)).collect();
        let (am, _) = dmpc_core::QueryableAlgorithm::answer_queries(&mut map, &queries);
        let (as_, _) = dmpc_core::QueryableAlgorithm::answer_queries(&mut soa, &queries);
        prop_assert_eq!(am, as_);
        prop_assert_eq!(map.state_digest(), soa.state_digest());
        soa.audit(&g).map_err(TestCaseError::fail)?;
    }

    /// Chaos runs (kills + full-log-replay revives) land on the same digest
    /// in both layouts, with zero violations each.
    #[test]
    fn soa_equals_map_under_chaos(seed in 0u64..1u64 << 48) {
        let n = 32;
        let batches = streams::chaos_churn_batches(n, 4, 4, 70, 8, seed);
        let mk = |layout: Layout| move || {
            DmpcMaximalMatching::with_state_layout(
                DmpcParams::new(n, 160),
                ExecOptions::default(),
                layout,
            )
        };
        let p = mk(Layout::Map)().n_shards();
        // Matching has no shard migration (full-log replay only), and the
        // coordinator (machine 0) is treated as reliable: kills only.
        let caps = ChaosCaps {
            kill_revive: true,
            split_merge: false,
            protect: 1,
        };
        let plan = ChaosPlan::generate(seed, batches.len(), p, 4, caps);
        let rm = run_chaos_stream(mk(Layout::Map), apply_unweighted, &batches, &plan, 3);
        let rs = run_chaos_stream(mk(Layout::Soa), apply_unweighted, &batches, &plan, 3);
        prop_assert_eq!(rm.recovery.violations, 0);
        prop_assert_eq!(rs.recovery.violations, 0);
        prop_assert_eq!(rm.final_digest, rs.final_digest, "chaos digests diverged");
    }
}

/// SoA resident memory stays within a small constant factor of the map
/// model on a loaded instance: compact SoA is strictly cheaper per alive
/// entry (~1.125 vs 4 words), and arena slack between compactions is
/// bounded by the `live/8 + 16` threshold plus growth headroom.
#[test]
fn soa_resident_within_slack_of_map() {
    let n = 128;
    let (mut map, mut soa) = pair(n, 3 * n);
    for &u in &streams::churn_stream(n, 2 * n, 384, 0.55, 42) {
        apply(&mut map, u);
        apply(&mut soa, u);
    }
    assert_eq!(map.state_digest(), soa.state_digest());
    let (rm, rs) = (map.resident_words(), soa.resident_words());
    assert!(
        rs <= rm + rm / 4,
        "SoA resident {rs} words exceeds map resident {rm} words by more than 25%"
    );
}
