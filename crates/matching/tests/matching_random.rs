//! Randomized end-to-end verification of the Section 3 maximal matching and
//! the Section 4 3/2-approximate matching, with deep audits after every
//! update (maximality, record exactness, alive/suspended invariants,
//! annotation coherence, counters, no short augmenting paths).

use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::maxmatch::maximum_matching_size;
use dmpc_graph::streams::{self, Update};
use dmpc_graph::{DynamicGraph, Edge};
use dmpc_matching::{DmpcMaximalMatching, DmpcThreeHalves};

fn drive<A: DynamicGraphAlgorithm>(
    n: usize,
    alg: &mut A,
    ups: &[Update],
    mut audit: impl FnMut(&DynamicGraph, usize),
) -> usize {
    let mut g = DynamicGraph::new(n);
    let mut max_rounds = 0;
    for (step, &u) in ups.iter().enumerate() {
        let m = match u {
            Update::Insert(e) => {
                g.insert(e).unwrap();
                alg.insert(e)
            }
            Update::Delete(e) => {
                g.delete(e).unwrap();
                alg.delete(e)
            }
        };
        assert!(
            m.clean(),
            "step {step} ({u:?}): violations {:?}",
            m.violations
        );
        max_rounds = max_rounds.max(m.rounds);
        audit(&g, step);
    }
    max_rounds
}

#[test]
fn maximal_random_churn_verified() {
    let n = 40;
    for seed in 0..3 {
        let params = DmpcParams::new(n, 300);
        let mut alg = DmpcMaximalMatching::new(params);
        let ups = streams::churn_stream(n, 80, 240, 0.5, seed);
        let rounds = drive(n, &mut alg, &ups, |_, _| {});
        assert!(
            rounds <= 24,
            "rounds per update must be constant, got {rounds}"
        );
    }
}

#[test]
fn maximal_audit_every_step() {
    let n = 36;
    let params = DmpcParams::new(n, 260);
    let mut alg = DmpcMaximalMatching::new(params);
    let mut g = DynamicGraph::new(n);
    let ups = streams::churn_stream(n, 70, 200, 0.5, 11);
    for (step, &u) in ups.iter().enumerate() {
        let m = match u {
            Update::Insert(e) => {
                g.insert(e).unwrap();
                alg.insert(e)
            }
            Update::Delete(e) => {
                g.delete(e).unwrap();
                alg.delete(e)
            }
        };
        assert!(m.clean(), "step {step}: {:?}", m.violations);
        alg.audit(&g)
            .unwrap_or_else(|err| panic!("step {step} ({u:?}): {err}"));
    }
}

#[test]
fn maximal_star_graph_heavy_stress() {
    // A star drives the center far beyond tau, exercising MakeHeavy, the
    // suspended stack, refills and MakeLight on the way back down.
    let n = 60;
    let params = DmpcParams::new(n, 64);
    let tau = params.heavy_threshold();
    assert!(n - 1 > tau + 4, "star center must go heavy");
    let mut alg = DmpcMaximalMatching::new(params);
    let mut g = DynamicGraph::new(n);
    let edges: Vec<Edge> = (1..n as u32).map(|v| Edge::new(0, v)).collect();
    for (i, &e) in edges.iter().enumerate() {
        g.insert(e).unwrap();
        let m = alg.insert(e);
        assert!(m.clean(), "insert {i}: {:?}", m.violations);
        alg.audit(&g)
            .unwrap_or_else(|err| panic!("insert {i}: {err}"));
    }
    // Delete in an interleaved order, including the matched edge.
    let mut order = edges.clone();
    order.reverse();
    for (i, &e) in order.iter().enumerate() {
        g.delete(e).unwrap();
        let m = alg.delete(e);
        assert!(m.clean(), "delete {i}: {:?}", m.violations);
        alg.audit(&g)
            .unwrap_or_else(|err| panic!("delete {i}: {err}"));
    }
    assert_eq!(alg.matching().size(), 0);
}

#[test]
fn maximal_bulk_load_then_churn() {
    let n = 32;
    let params = DmpcParams::new(n, 200);
    let edges = dmpc_graph::generators::gnm(n, 90, 5);
    let mut alg = DmpcMaximalMatching::new(params);
    alg.bulk_load(&edges);
    let mut g = DynamicGraph::from_edges(n, &edges);
    alg.audit(&g).unwrap();
    // Delete everything, auditing as we go.
    for (i, &e) in edges.iter().enumerate() {
        g.delete(e).unwrap();
        let m = alg.delete(e);
        assert!(m.clean(), "delete {i}: {:?}", m.violations);
        alg.audit(&g)
            .unwrap_or_else(|err| panic!("delete {i}: {err}"));
    }
}

#[test]
fn three_halves_random_churn_verified() {
    let n = 30;
    for seed in 0..3 {
        let params = DmpcParams::new(n, 220);
        let mut alg = DmpcThreeHalves::new(params);
        let mut g = DynamicGraph::new(n);
        let ups = streams::churn_stream(n, 60, 160, 0.5, seed);
        for (step, &u) in ups.iter().enumerate() {
            let m = match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                    alg.insert(e)
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                    alg.delete(e)
                }
            };
            assert!(m.clean(), "seed {seed} step {step}: {:?}", m.violations);
            alg.audit(&g)
                .unwrap_or_else(|err| panic!("seed {seed} step {step} ({u:?}): {err}"));
        }
        // Empirical approximation factor: 3/2 of the maximum matching.
        let max = maximum_matching_size(&g);
        let got = alg.matching().size();
        assert!(3 * got >= 2 * max, "|M|={got} vs maximum {max}");
    }
}

#[test]
fn three_halves_star_heavy_stress() {
    let n = 50;
    let params = DmpcParams::new(n, 56);
    let mut alg = DmpcThreeHalves::new(params);
    let mut g = DynamicGraph::new(n);
    // Star plus a few rim edges so augmenting paths exist.
    let mut edges: Vec<Edge> = (1..n as u32).map(|v| Edge::new(0, v)).collect();
    edges.push(Edge::new(1, 2));
    edges.push(Edge::new(3, 4));
    edges.push(Edge::new(5, 6));
    for (i, &e) in edges.iter().enumerate() {
        g.insert(e).unwrap();
        let m = alg.insert(e);
        assert!(m.clean(), "insert {i}: {:?}", m.violations);
        alg.audit(&g)
            .unwrap_or_else(|err| panic!("insert {i}: {err}"));
    }
    for (i, &e) in edges.clone().iter().rev().enumerate() {
        g.delete(e).unwrap();
        let m = alg.delete(e);
        assert!(m.clean(), "delete {i}: {:?}", m.violations);
        alg.audit(&g)
            .unwrap_or_else(|err| panic!("delete {i}: {err}"));
    }
}

#[test]
fn rounds_stay_constant_across_sizes() {
    // The Table 1 headline for rows 1-2: rounds per update do not grow
    // with N.
    let mut worst = Vec::new();
    for k in [5usize, 6, 7] {
        let n = 1 << k;
        let params = DmpcParams::new(n, 4 * n);
        let mut alg = DmpcMaximalMatching::new(params);
        let ups = streams::churn_stream(n, 2 * n, 60, 0.5, 9);
        let mut g = DynamicGraph::new(n);
        let mut max_rounds = 0;
        for &u in &ups {
            let m = match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                    alg.insert(e)
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                    alg.delete(e)
                }
            };
            assert!(m.clean(), "{:?}", m.violations);
            max_rounds = max_rounds.max(m.rounds);
        }
        worst.push(max_rounds);
    }
    assert!(
        worst.iter().all(|&r| r <= 24),
        "rounds must be O(1): {worst:?}"
    );
}

#[test]
fn batched_matching_cancellation_same_edge() {
    // A batch with insert+delete of the same edge nets out; the final
    // structure must audit clean against the ground truth.
    let n = 10;
    let params = DmpcParams::new(n, 30);
    let mut alg = DmpcMaximalMatching::new(params);
    let mut g = DynamicGraph::new(n);
    let (e, f) = (Edge::new(0, 1), Edge::new(2, 3));
    let batch = [
        Update::Insert(e),
        Update::Insert(f),
        Update::Delete(e), // cancels the first insert
    ];
    for &u in &batch {
        match u {
            Update::Insert(x) => g.insert(x).unwrap(),
            Update::Delete(x) => g.delete(x).unwrap(),
        }
    }
    let bm = alg.apply_batch(&batch);
    assert!(bm.clean(), "{} violations", bm.violations);
    assert_eq!(bm.updates, 3);
    alg.audit(&g).unwrap();
    let m = alg.matching();
    assert!(m.is_matched(2) && m.is_matched(3));
    assert!(!m.is_matched(0) && !m.is_matched(1));
}

#[test]
fn batched_matching_amortizes_rounds() {
    // The shared prefetch + back-to-back drain must beat the looped default
    // on amortized rounds per update.
    let n = 64;
    let params = DmpcParams::new(n, 3 * n);
    let ups = streams::churn_stream(n, 2 * n, 192, 0.5, 17);
    let mut batched = DmpcMaximalMatching::new(params);
    let mut looped = DmpcMaximalMatching::new(params);
    let mut bm = dmpc_mpc::BatchMetrics::default();
    let mut lm = dmpc_mpc::BatchMetrics::default();
    for batch in ups.chunks(64) {
        bm.merge(&batched.apply_batch(batch));
        lm.merge(&dmpc_core::apply_batch_looped(&mut looped, batch));
    }
    assert!(bm.clean(), "batched violations: {}", bm.violations);
    let g = streams::replay(n, &ups);
    batched.audit(&g).unwrap();
    assert!(
        bm.amortized_rounds() * 1.5 < lm.amortized_rounds(),
        "expected >=1.5x round amortization: batched {:.2} vs looped {:.2}",
        bm.amortized_rounds(),
        lm.amortized_rounds()
    );
}
