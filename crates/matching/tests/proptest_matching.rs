//! Property tests: arbitrary valid update sequences through the Section 3
//! and Section 4 matchings, with full audits every step — plus batch-vs-
//! sequential equivalence of `apply_batch`.

use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::{DynamicGraph, Edge, Update};
use dmpc_matching::{DmpcMaximalMatching, DmpcThreeHalves};
use proptest::prelude::*;

fn apply_ops<A: DynamicGraphAlgorithm>(
    n: usize,
    m_max: usize,
    alg: &mut A,
    ops: &[(u32, u32, bool)],
    mut audit: impl FnMut(&A, &DynamicGraph) -> Result<(), String>,
) -> Result<(), TestCaseError> {
    let mut g = DynamicGraph::new(n);
    for &(a, b, ins) in ops {
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        // The model fixes the live-edge capacity m_max up front.
        let m = if ins && !g.has_edge(e) && g.m() < m_max {
            g.insert(e).unwrap();
            alg.insert(e)
        } else if !ins && g.has_edge(e) {
            g.delete(e).unwrap();
            alg.delete(e)
        } else {
            continue;
        };
        prop_assert!(m.clean(), "violations: {:?}", m.violations);
        prop_assert!(m.rounds <= 64, "rounds {}", m.rounds);
        audit(alg, &g).map_err(TestCaseError::fail)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn maximal_matching_invariants(
        ops in proptest::collection::vec((0u32..16, 0u32..16, any::<bool>()), 1..100)
    ) {
        let n = 16usize;
        // Small m_max keeps tau tiny so heavy transitions actually happen.
        let params = DmpcParams::new(n, 40);
        let mut alg = DmpcMaximalMatching::new(params);
        apply_ops(n, 40, &mut alg, &ops, |alg, g| alg.audit(g))?;
    }

    #[test]
    fn three_halves_invariants(
        ops in proptest::collection::vec((0u32..14, 0u32..14, any::<bool>()), 1..90)
    ) {
        let n = 14usize;
        let params = DmpcParams::new(n, 36);
        let mut alg = DmpcThreeHalves::new(params);
        apply_ops(n, 36, &mut alg, &ops, |alg, g| alg.audit(g))?;
    }

    /// Batched execution preserves every Section 3 invariant: after each
    /// batch, the full structural audit (validity, maximality, record
    /// exactness vs the ground-truth graph) passes and the batch is model-
    /// clean. Batches routinely contain an insert and a delete of the same
    /// edge (ops are validity-filtered against the evolving graph, so
    /// in-batch cancellation arises naturally).
    #[test]
    fn batched_maximal_matching_invariants(
        ops in proptest::collection::vec((0u32..16, 0u32..16, any::<bool>()), 1..110),
        k in 1usize..20
    ) {
        let n = 16usize;
        let m_max = 40;
        let params = DmpcParams::new(n, m_max);
        let mut alg = DmpcMaximalMatching::new(params);
        let mut g = DynamicGraph::new(n);
        let mut stream: Vec<Update> = Vec::new();
        for (a, b, ins) in ops {
            if a == b { continue; }
            let e = Edge::new(a, b);
            if ins && !g.has_edge(e) && g.m() < m_max {
                g.insert(e).unwrap();
                stream.push(Update::Insert(e));
            } else if !ins && g.has_edge(e) {
                g.delete(e).unwrap();
                stream.push(Update::Delete(e));
            }
        }
        let mut truth = DynamicGraph::new(n);
        for batch in stream.chunks(k) {
            for &u in batch {
                match u {
                    Update::Insert(e) => truth.insert(e).unwrap(),
                    Update::Delete(e) => truth.delete(e).unwrap(),
                }
            }
            let bm = alg.apply_batch(batch);
            prop_assert!(bm.clean(), "batch violations: {}", bm.violations);
            alg.audit(&truth).map_err(TestCaseError::fail)?;
        }
    }
}
