//! Property tests for the simulator itself: determinism of the parallel
//! backend, conservation of message accounting, and cap enforcement.

use dmpc_mpc::{
    Backend, Cluster, ClusterConfig, Envelope, Machine, MachineId, Outbox, Payload, RoundCtx,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Packet(u64);
impl Payload for Packet {
    fn size_words(&self) -> usize {
        1 + (self.0 % 3) as usize
    }
}

/// A deterministic pseudo-random router: forwards each token `hops` times,
/// mixing its value so behaviour depends on history.
struct Router {
    acc: u64,
}

impl Machine for Router {
    type Msg = Packet;

    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<Packet>>,
        out: &mut Outbox<Packet>,
    ) {
        for env in inbox.drain(..) {
            self.acc = self.acc.wrapping_mul(0x9e3779b9).wrapping_add(env.msg.0);
            if env.msg.0 > 0 {
                let next = (self.acc % ctx.n_machines as u64) as MachineId;
                out.send(next, Packet(env.msg.0 - 1));
            }
        }
    }

    fn memory_words(&self) -> usize {
        1
    }
}

fn run(backend: Backend, tokens: &[(u8, u8)], machines: usize) -> (Vec<u64>, Vec<usize>) {
    let cfg = ClusterConfig {
        backend,
        threads: 4,
        track_flows: true,
        ..Default::default()
    };
    let mut c = Cluster::new(
        (0..machines).map(|i| Router { acc: i as u64 }).collect(),
        cfg,
    );
    let mut per_update = Vec::new();
    for &(to, hops) in tokens {
        c.inject((to as usize % machines) as MachineId, Packet(hops as u64));
        let m = c.run_update();
        per_update.push(m.total_words);
        assert!(m.clean());
    }
    let states = (0..machines)
        .map(|i| c.machine(i as MachineId).acc)
        .collect();
    (states, per_update)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every parallel backend is bit-identical to the serial one: same final
    /// machine states, same per-update communication totals.
    #[test]
    fn parallel_equals_serial(tokens in proptest::collection::vec((any::<u8>(), 0u8..20), 1..24)) {
        let serial = run(Backend::Serial, &tokens, 12);
        for backend in [Backend::ScopeThreads, Backend::WorkerPool] {
            let parallel = run(backend, &tokens, 12);
            prop_assert_eq!(&serial, &parallel);
        }
    }

    /// Batched injection is backend-independent: on randomized batches both
    /// parallel backends produce bit-identical `BatchMetrics` (and machine
    /// states) to the serial one.
    #[test]
    fn batch_metrics_parallel_equals_serial(
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), 0u8..24), 1..16),
            1..6,
        )
    ) {
        let machines = 12usize;
        let run_batches = |backend: Backend| {
            let cfg = ClusterConfig {
                backend,
                threads: 4,
                track_flows: true,
                ..Default::default()
            };
            let mut c = Cluster::new(
                (0..machines).map(|i| Router { acc: i as u64 }).collect::<Vec<_>>(),
                cfg,
            );
            let mut per_batch = Vec::new();
            for batch in &batches {
                let injections: Vec<(MachineId, Packet)> = batch
                    .iter()
                    .map(|&(to, hops)| {
                        ((to as usize % machines) as MachineId, Packet(hops as u64))
                    })
                    .collect();
                let k = injections.len();
                per_batch.push(c.run_batch(injections, k));
            }
            let states: Vec<u64> = (0..machines)
                .map(|i| c.machine(i as MachineId).acc)
                .collect();
            (states, per_batch)
        };
        let serial = run_batches(Backend::Serial);
        for backend in [Backend::ScopeThreads, Backend::WorkerPool] {
            let parallel = run_batches(backend);
            prop_assert_eq!(&serial.0, &parallel.0);
            prop_assert_eq!(&serial.1, &parallel.1);
        }
        // Sanity: the amortization denominator is the injected batch size.
        for (bm, batch) in serial.1.iter().zip(&batches) {
            prop_assert_eq!(bm.updates, batch.len());
            prop_assert!(bm.clean());
        }
    }

    /// Token routing conserves hop counts: a token of h hops generates
    /// exactly h machine-to-machine messages.
    #[test]
    fn message_counts_conserved(hops in 0u8..30) {
        let mut c = Cluster::new(
            (0..8).map(|i| Router { acc: i as u64 }).collect::<Vec<_>>(),
            ClusterConfig::default(),
        );
        c.inject(0, Packet(hops as u64));
        let m = c.run_update();
        prop_assert_eq!(m.total_messages, hops as usize);
        prop_assert_eq!(m.rounds, hops as usize + 1);
    }

    /// The sort-based routing path delivers inboxes in exactly the
    /// documented `(to, from, injection order)` order and produces metrics
    /// identical to a naive HashMap reference executor (kept below in this
    /// test module, mirroring the pre-sort implementation).
    #[test]
    fn sort_routing_matches_hashmap_reference(
        injections in proptest::collection::vec((any::<u8>(), 1u8..18), 1..20)
    ) {
        let machines = 9usize;
        let mk = || (0..machines)
            .map(|i| Recorder { acc: (i as u64) << 8, log: Vec::new() })
            .collect::<Vec<_>>();
        let inj: Vec<(MachineId, Packet)> = injections
            .iter()
            .map(|&(to, v)| ((to as usize % machines) as MachineId, Packet(v as u64)))
            .collect();

        // Real executor, serial backend, flows on.
        let cfg = ClusterConfig {
            track_flows: true,
            ..Default::default()
        };
        let mut c = Cluster::new(mk(), cfg);
        c.inject_batch(inj.clone());
        let real = c.run_update();

        // Naive reference executor over identical machine programs.
        let mut ref_machines = mk();
        let reference = reference_update(&mut ref_machines, inj);

        prop_assert_eq!(&real, &reference);
        for (i, rm) in ref_machines.iter().enumerate() {
            let cm = c.machine(i as MachineId);
            prop_assert_eq!(&cm.log, &rm.log, "inbox order diverged at machine {}", i);
            prop_assert_eq!(cm.acc, rm.acc);
        }
        // The logged order is (from, injection order) within every round.
        for m in ref_machines.iter() {
            for w in m.log.windows(2) {
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 <= w[1].1, "inbox not from-sorted: {:?}", w);
                }
            }
        }
    }
}

/// A machine that logs its full delivery order and fans out with
/// history-dependent targets, including same-`(to, from)` ties in one round.
struct Recorder {
    acc: u64,
    log: Vec<(u32, MachineId, u64)>,
}

impl Machine for Recorder {
    type Msg = Packet;

    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<Packet>>,
        out: &mut Outbox<Packet>,
    ) {
        for env in inbox.drain(..) {
            self.log.push((ctx.round, env.from, env.msg.0));
            self.acc = self.acc.wrapping_mul(0x9e3779b9).wrapping_add(env.msg.0);
            if env.msg.0 > 0 {
                let next = (self.acc % ctx.n_machines as u64) as MachineId;
                out.send(next, Packet(env.msg.0 - 1));
                if self.acc.is_multiple_of(3) {
                    // A tie: second message to the same receiver, same round.
                    out.send(next, Packet((env.msg.0 - 1) / 2));
                }
            }
        }
    }

    fn memory_words(&self) -> usize {
        1
    }
}

/// Reference executor: the pre-sort routing implementation — fresh
/// `HashMap`s per round, per-receiver vectors, per-group stable sort by
/// `from` — driving the same `Machine` programs. Kept deliberately naive;
/// the proptest above asserts the production sort-based path is
/// indistinguishable from it.
fn reference_update(
    machines: &mut [Recorder],
    injections: Vec<(MachineId, Packet)>,
) -> dmpc_mpc::UpdateMetrics {
    use std::collections::HashMap;
    let n_machines = machines.len();
    let mut pending: Vec<Envelope<Packet>> = injections
        .into_iter()
        .map(|(to, msg)| Envelope {
            from: Envelope::<Packet>::EXTERNAL,
            to,
            msg,
        })
        .collect();
    let mut metrics = dmpc_mpc::UpdateMetrics::default();
    let mut touched: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut round: u32 = 0;
    while !pending.is_empty() {
        round += 1;
        let mut rm = dmpc_mpc::RoundMetrics {
            round,
            ..Default::default()
        };
        let mut inboxes: HashMap<MachineId, Vec<Envelope<Packet>>> = HashMap::new();
        let mut recv_words: HashMap<MachineId, usize> = HashMap::new();
        for env in std::mem::take(&mut pending) {
            if env.from != Envelope::<Packet>::EXTERNAL {
                let w = env.msg.size_words();
                rm.words += w;
                rm.messages += 1;
                *recv_words.entry(env.to).or_default() += w;
                *metrics.flows.entry((env.from, env.to)).or_default() += w as u64;
            }
            inboxes.entry(env.to).or_default().push(env);
        }
        for &w in recv_words.values() {
            rm.max_recv_words = rm.max_recv_words.max(w);
        }
        let mut groups: Vec<(usize, Vec<Envelope<Packet>>)> = inboxes
            .into_iter()
            .map(|(to, mut msgs)| {
                msgs.sort_by_key(|e| e.from);
                (to as usize, msgs)
            })
            .collect();
        groups.sort_by_key(|g| g.0);
        rm.active_machines = groups.len();
        for &(idx, _) in &groups {
            if !touched.contains(&idx) {
                touched.insert(idx);
                metrics.machines_touched += 1;
            }
        }
        for (idx, mut inbox) in groups {
            let ctx = RoundCtx {
                self_id: idx as MachineId,
                n_machines,
                round,
            };
            let mut sink = Vec::new();
            let mut out = Outbox::open(idx as MachineId, &mut sink);
            machines[idx].on_messages(&ctx, &mut inbox, &mut out);
            rm.max_send_words = rm.max_send_words.max(out.queued_words());
            metrics.total_words_sent += out.queued_words();
            pending.extend(sink);
        }
        metrics.rounds += 1;
        metrics.max_active_machines = metrics.max_active_machines.max(rm.active_machines);
        metrics.max_words_per_round = metrics.max_words_per_round.max(rm.words);
        metrics.total_words += rm.words;
        metrics.total_messages += rm.messages;
        metrics.per_round.push(rm);
    }
    metrics
}
