//! Property tests for the simulator itself: determinism of the parallel
//! backend, conservation of message accounting, and cap enforcement.

use dmpc_mpc::{Cluster, ClusterConfig, Envelope, Machine, MachineId, Outbox, Payload, RoundCtx};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Packet(u64);
impl Payload for Packet {
    fn size_words(&self) -> usize {
        1 + (self.0 % 3) as usize
    }
}

/// A deterministic pseudo-random router: forwards each token `hops` times,
/// mixing its value so behaviour depends on history.
struct Router {
    acc: u64,
}

impl Machine for Router {
    type Msg = Packet;

    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: Vec<Envelope<Packet>>,
        out: &mut Outbox<Packet>,
    ) {
        for env in inbox {
            self.acc = self.acc.wrapping_mul(0x9e3779b9).wrapping_add(env.msg.0);
            if env.msg.0 > 0 {
                let next = (self.acc % ctx.n_machines as u64) as MachineId;
                out.send(next, Packet(env.msg.0 - 1));
            }
        }
    }

    fn memory_words(&self) -> usize {
        1
    }
}

fn run(parallel: bool, tokens: &[(u8, u8)], machines: usize) -> (Vec<u64>, Vec<usize>) {
    let cfg = ClusterConfig {
        parallel,
        threads: 4,
        track_flows: true,
        ..Default::default()
    };
    let mut c = Cluster::new(
        (0..machines).map(|i| Router { acc: i as u64 }).collect(),
        cfg,
    );
    let mut per_update = Vec::new();
    for &(to, hops) in tokens {
        c.inject((to as usize % machines) as MachineId, Packet(hops as u64));
        let m = c.run_update();
        per_update.push(m.total_words);
        assert!(m.clean());
    }
    let states = (0..machines)
        .map(|i| c.machine(i as MachineId).acc)
        .collect();
    (states, per_update)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The parallel backend is bit-identical to the serial one: same final
    /// machine states, same per-update communication totals.
    #[test]
    fn parallel_equals_serial(tokens in proptest::collection::vec((any::<u8>(), 0u8..20), 1..24)) {
        let serial = run(false, &tokens, 12);
        let parallel = run(true, &tokens, 12);
        prop_assert_eq!(serial, parallel);
    }

    /// Batched injection is backend-independent: on randomized batches the
    /// parallel backend produces bit-identical `BatchMetrics` (and machine
    /// states) to the serial one.
    #[test]
    fn batch_metrics_parallel_equals_serial(
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), 0u8..24), 1..16),
            1..6,
        )
    ) {
        let machines = 12usize;
        let run_batches = |parallel: bool| {
            let cfg = ClusterConfig {
                parallel,
                threads: 4,
                track_flows: true,
                ..Default::default()
            };
            let mut c = Cluster::new(
                (0..machines).map(|i| Router { acc: i as u64 }).collect::<Vec<_>>(),
                cfg,
            );
            let mut per_batch = Vec::new();
            for batch in &batches {
                let injections: Vec<(MachineId, Packet)> = batch
                    .iter()
                    .map(|&(to, hops)| {
                        ((to as usize % machines) as MachineId, Packet(hops as u64))
                    })
                    .collect();
                let k = injections.len();
                per_batch.push(c.run_batch(injections, k));
            }
            let states: Vec<u64> = (0..machines)
                .map(|i| c.machine(i as MachineId).acc)
                .collect();
            (states, per_batch)
        };
        let serial = run_batches(false);
        let parallel = run_batches(true);
        prop_assert_eq!(&serial.0, &parallel.0);
        prop_assert_eq!(&serial.1, &parallel.1);
        // Sanity: the amortization denominator is the injected batch size.
        for (bm, batch) in serial.1.iter().zip(&batches) {
            prop_assert_eq!(bm.updates, batch.len());
            prop_assert!(bm.clean());
        }
    }

    /// Token routing conserves hop counts: a token of h hops generates
    /// exactly h machine-to-machine messages.
    #[test]
    fn message_counts_conserved(hops in 0u8..30) {
        let mut c = Cluster::new(
            (0..8).map(|i| Router { acc: i as u64 }).collect::<Vec<_>>(),
            ClusterConfig::default(),
        );
        c.inject(0, Packet(hops as u64));
        let m = c.run_update();
        prop_assert_eq!(m.total_messages, hops as usize);
        prop_assert_eq!(m.rounds, hops as usize + 1);
    }
}
