//! Steady-state rounds allocate nothing: after a warm-up phase has sized
//! the cluster's scratch buffers, driving further updates and batches
//! through the executor performs zero heap allocation end-to-end.
//!
//! This is the tentpole property of the PR-3 executor overhaul — routing,
//! inbox delivery, outbox collection and metrics aggregation all run on
//! cluster-owned buffers reused across rounds. The test installs a counting
//! global allocator, so it lives alone in this integration-test binary
//! (other tests running concurrently would pollute the counter).

use dmpc_mpc::{
    ChaosKind, ChaosPlan, Cluster, ClusterConfig, Envelope, ExecOptions, Machine, MachineId,
    Outbox, RoundCtx, Violation,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Fans a token out around the ring without allocating machine-side.
struct Relay {
    id: MachineId,
    seen: u64,
}

impl Machine for Relay {
    type Msg = u64;

    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<u64>>,
        out: &mut Outbox<u64>,
    ) {
        for env in inbox.drain(..) {
            self.seen += 1;
            if env.msg > 0 {
                let next = (self.id + 1) % ctx.n_machines as MachineId;
                out.send(next, env.msg - 1);
                if env.msg.is_multiple_of(3) {
                    // A second same-round send exercises outbox growth paths.
                    out.send((self.id + 2) % ctx.n_machines as MachineId, env.msg / 2);
                }
            }
        }
    }

    fn memory_words(&self) -> usize {
        2
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    let cfg = ClusterConfig::default().with_exec(ExecOptions::lean());
    let machines = (0..16 as MachineId)
        .map(|id| Relay { id, seen: 0 })
        .collect();
    let mut cluster = Cluster::new(machines, cfg);

    // Warm-up: size every scratch buffer (pending/delivered/sort_aux,
    // counting-sort histogram, group index, worker inbox/outbox) at the
    // largest load the measured phase will see.
    for i in 0..50u64 {
        cluster.inject((i % 16) as MachineId, 24);
        cluster.run_update();
    }
    let _ = cluster.run_batch((0..8u64).map(|i| ((i % 16) as MachineId, 24u64)), 8);

    // Measured phase: identical load, zero allocations allowed.
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..100u64 {
        cluster.inject((i % 16) as MachineId, 24);
        let m = cluster.run_update();
        assert!(m.clean());
    }
    let b = cluster.run_batch((0..8u64).map(|i| ((i % 16) as MachineId, 24u64)), 8);
    COUNTING.store(false, Ordering::SeqCst);

    assert!(b.clean());
    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "steady-state executor rounds must not allocate"
    );
    // Sanity: the measured phase actually did work.
    let seen: u64 = cluster.machines().map(|m| m.seen).sum();
    assert!(seen > 1000);
}

/// The PR-6 chaos plane rides along without a steady-state tax: with a
/// chaos plan *compiled in but idle* (stored in the config, no machine
/// dead), rounds still allocate nothing. During a recovery epoch —
/// a machine dead, traffic addressed to it dropped with [`Violation::
/// DeadMachine`] records — allocation is bounded (violation bookkeeping
/// only), and after the revive the zero-alloc steady state returns: the
/// recovery scratch is released back to the reused buffers.
#[test]
fn chaos_plane_idle_is_zero_alloc_and_recovery_is_bounded() {
    let plan = ChaosPlan::new(99).with_event(usize::MAX, ChaosKind::Kill(3));
    let cfg = ClusterConfig::default()
        .with_exec(ExecOptions::lean())
        .with_chaos(plan);
    let machines = (0..16 as MachineId)
        .map(|id| Relay { id, seen: 0 })
        .collect();
    let mut cluster = Cluster::new(machines, cfg);
    assert!(cluster.chaos_plan().is_some());

    // Warm-up, as in the steady-state test.
    for i in 0..50u64 {
        cluster.inject((i % 16) as MachineId, 24);
        cluster.run_update();
    }

    // Phase 1: chaos plane present but idle — still zero allocations.
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..100u64 {
        cluster.inject((i % 16) as MachineId, 24);
        let m = cluster.run_update();
        assert!(m.clean());
    }
    COUNTING.store(false, Ordering::SeqCst);
    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "an idle chaos plane must not tax steady-state rounds"
    );

    // Phase 2: recovery epoch. A dead machine turns every message addressed
    // to it into a DeadMachine violation record; that bookkeeping may
    // allocate, but boundedly — no per-round runaway.
    cluster.kill(3);
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut dead_drops = 0usize;
    for i in 0..50u64 {
        cluster.inject((i % 16) as MachineId, 24);
        let m = cluster.run_update();
        dead_drops += m
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::DeadMachine { machine: 3, .. }))
            .count();
    }
    COUNTING.store(false, Ordering::SeqCst);
    let recovery_allocs = ALLOCS.load(Ordering::SeqCst);
    assert!(dead_drops > 0, "the outage must actually drop traffic");
    assert!(
        recovery_allocs <= 2048,
        "recovery-epoch allocation must stay bounded, got {recovery_allocs}"
    );

    // Phase 3: revive and re-warm once — the steady state is zero-alloc
    // again (recovery scratch released, buffers back to reuse).
    cluster.revive(3);
    for i in 0..50u64 {
        cluster.inject((i % 16) as MachineId, 24);
        cluster.run_update();
    }
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..100u64 {
        cluster.inject((i % 16) as MachineId, 24);
        let m = cluster.run_update();
        assert!(m.clean());
    }
    COUNTING.store(false, Ordering::SeqCst);
    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "post-recovery rounds must return to zero allocation"
    );
}
